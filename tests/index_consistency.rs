//! Differential property tests for the simulator's materialized indexes.
//!
//! The engine answers `SimView` queries from incrementally maintained
//! indexes (`crates/sim/src/index.rs`). These tests wrap the full
//! Gandiva_fair stack in an auditing shim that, at **every** scheduler
//! callback, (a) re-derives all indexes from the raw job/residency tables
//! via `SimView::audit_indexes` and (b) cross-checks the indexed public
//! queries against naive recomputations through the public API — across
//! random traces, clusters, server failures/recoveries and the migrations
//! the balancer plans along the way.

use gfair::prelude::*;
use gfair::sim::{Action, ClusterScheduler, ProfileReport, RoundPlan, SimView};
use gfair::types::JobState;
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Wraps a scheduler, validating every view it is handed.
struct Audited<S>(S);

impl<S> Audited<S> {
    fn check(view: &SimView<'_>) {
        // Oracle 1: internal from-scratch recomputation of every index.
        view.audit_indexes()
            .expect("indexes match naive recomputation");

        // Oracle 2: indexed public queries vs naive public-API derivations.
        for s in &view.cluster().servers {
            let naive: u32 = view
                .resident(s.id)
                .filter_map(|id| view.job(id))
                .map(|j| j.gang)
                .sum();
            assert_eq!(
                view.resident_demand(s.id),
                naive,
                "resident_demand diverged on {}",
                s.id
            );
            let gpus = view.cluster().server(s.id).num_gpus;
            assert_eq!(view.server_load(s.id), naive as f64 / gpus as f64);
        }
        let active: Vec<JobId> = view.active_jobs().map(|j| j.id).collect();
        let naive_active: Vec<JobId> = view
            .jobs()
            .filter(|j| j.state.is_active())
            .map(|j| j.id)
            .collect();
        assert_eq!(active, naive_active, "active_jobs diverged");
        let pending: Vec<JobId> = view.pending_jobs().map(|j| j.id).collect();
        let naive_pending: Vec<JobId> = view
            .jobs()
            .filter(|j| j.state == JobState::Pending)
            .map(|j| j.id)
            .collect();
        assert_eq!(pending, naive_pending, "pending_jobs diverged");
        let users = view.active_users();
        let naive_users: Vec<UserId> = {
            let set: BTreeSet<UserId> = view.active_jobs().map(|j| j.user).collect();
            set.into_iter().collect()
        };
        assert_eq!(users, naive_users, "active_users diverged");
        for u in users {
            let of_user: Vec<JobId> = view.jobs_of_user(u).map(|j| j.id).collect();
            let naive_of: Vec<JobId> = view
                .active_jobs()
                .filter(|j| j.user == u)
                .map(|j| j.id)
                .collect();
            assert_eq!(of_user, naive_of, "jobs_of_user({u}) diverged");
        }
    }
}

impl<S: ClusterScheduler> ClusterScheduler for Audited<S> {
    fn name(&self) -> &'static str {
        self.0.name()
    }
    fn on_job_arrival(&mut self, view: &SimView<'_>, job: JobId) -> Vec<Action> {
        Self::check(view);
        self.0.on_job_arrival(view, job)
    }
    fn on_job_finish(&mut self, view: &SimView<'_>, job: JobId) -> Vec<Action> {
        Self::check(view);
        self.0.on_job_finish(view, job)
    }
    fn on_migration_done(&mut self, view: &SimView<'_>, job: JobId) -> Vec<Action> {
        Self::check(view);
        self.0.on_migration_done(view, job)
    }
    fn on_job_evicted(&mut self, view: &SimView<'_>, job: JobId) -> Vec<Action> {
        Self::check(view);
        self.0.on_job_evicted(view, job)
    }
    fn on_server_down(&mut self, view: &SimView<'_>, server: ServerId) -> Vec<Action> {
        Self::check(view);
        self.0.on_server_down(view, server)
    }
    fn on_server_up(&mut self, view: &SimView<'_>, server: ServerId) -> Vec<Action> {
        Self::check(view);
        self.0.on_server_up(view, server)
    }
    fn on_profile_report(&mut self, view: &SimView<'_>, report: &ProfileReport) -> Vec<Action> {
        Self::check(view);
        self.0.on_profile_report(view, report)
    }
    fn plan_round(&mut self, view: &SimView<'_>) -> RoundPlan {
        Self::check(view);
        self.0.plan_round(view)
    }
    fn user_shares(&self, view: &SimView<'_>) -> Vec<gfair::obs::UserShare> {
        self.0.user_shares(view)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random heterogeneous runs — arrivals, finishes, placements and
    /// balancer migrations — keep every index equal to its naive
    /// recomputation at every callback.
    #[test]
    fn indexes_match_naive_recomputation(
        seed in 0u64..1000,
        k80 in 1u32..4,
        v100 in 1u32..3,
        n_users in 1u32..5,
        n_jobs in 1usize..50,
    ) {
        let cluster = ClusterSpec::build(
            GenCatalog::k80_p100_v100(),
            &[("K80", k80, 8), ("V100", v100, 8)],
        );
        let users = UserSpec::equal_users(n_users, 100);
        let mut params = PhillyParams::default();
        params.num_jobs = n_jobs;
        params.jobs_per_hour = 200.0;
        params.median_service_mins = 15.0;
        params.service_clamp_mins = (2.0, 60.0);
        let trace = TraceBuilder::new(params, seed).build(&users);
        let sim = Simulation::new(
            cluster,
            users,
            trace,
            SimConfig::default().with_seed(seed),
        )
        .unwrap();
        let mut sched = Audited(GandivaFair::new(GfairConfig::default()));
        let report = sim
            .run_until(&mut sched, SimTime::from_secs(8 * 3600))
            .expect("clean run");
        prop_assert!(report.rounds > 0);
    }

    /// Server failures (evicting whole resident sets at once) and
    /// recoveries — the bulk index transitions — stay consistent too.
    #[test]
    fn indexes_survive_failures_and_recoveries(
        seed in 0u64..1000,
        fail_at_mins in 10u64..120,
        down_mins in 5u64..120,
        n_jobs in 5usize..40,
    ) {
        let cluster = ClusterSpec::homogeneous(3, 8);
        let users = UserSpec::equal_users(3, 100);
        let mut params = PhillyParams::default();
        params.num_jobs = n_jobs;
        params.jobs_per_hour = 150.0;
        params.median_service_mins = 20.0;
        params.service_clamp_mins = (2.0, 90.0);
        let trace = TraceBuilder::new(params, seed).build(&users);
        let fail_at = SimTime::from_secs(fail_at_mins * 60);
        let sim = Simulation::new(
            cluster,
            users,
            trace,
            SimConfig::default().with_seed(seed),
        )
        .unwrap()
        .with_server_failure(ServerId::new(1), fail_at)
        .with_server_recovery(ServerId::new(1), fail_at + SimDuration::from_secs(down_mins * 60));
        let mut sched = Audited(GandivaFair::new(GfairConfig::default()));
        let report = sim
            .run_until(&mut sched, SimTime::from_secs(8 * 3600))
            .expect("clean run");
        prop_assert!(report.rounds > 0);
    }
}
