//! Cluster-wide fairness properties of Gandiva_fair, end to end.

use gfair::metrics::user_share_series;
use gfair::prelude::*;
use gfair::workloads::philly::uniform_batch;

fn long_jobs(user: u32, start_id: u32, count: u32, at_secs: u64) -> Vec<JobSpec> {
    let model = zoo_by_name("ResNet-50").expect("zoo model");
    uniform_batch(
        start_id,
        UserId::new(user),
        &model,
        count,
        1,
        100.0 * 3600.0,
        SimTime::from_secs(at_secs),
    )
}

#[test]
fn job_count_does_not_buy_cluster_share() {
    // User 0 floods with 24 jobs; user 1 submits 8. Equal tickets must mean
    // equal GPU time — the failure mode of job-level schedulers.
    let mut trace = long_jobs(0, 0, 24, 0);
    trace.extend(long_jobs(1, 100, 8, 0));
    let cluster = ClusterSpec::homogeneous(2, 8);
    let users = UserSpec::equal_users(2, 100);
    let sim = Simulation::new(cluster, users, trace, SimConfig::default()).unwrap();
    let mut sched = GandivaFair::new(GfairConfig::default());
    let report = sim
        .run_until(&mut sched, SimTime::from_secs(6 * 3600))
        .unwrap();
    let a = report.gpu_secs_of(UserId::new(0));
    let b = report.gpu_secs_of(UserId::new(1));
    assert!(
        (a - b).abs() / a.max(b) < 0.05,
        "job flooding bought share: {a} vs {b}"
    );
}

#[test]
fn gandiva_like_rewards_job_flooding_gandiva_fair_does_not() {
    // The motivating contrast: same workload, the efficiency-only baseline
    // hands the flooder ~3x, Gandiva_fair splits evenly.
    let build = || {
        let mut trace = long_jobs(0, 0, 24, 0);
        trace.extend(long_jobs(1, 100, 8, 0));
        Simulation::new(
            ClusterSpec::homogeneous(2, 8),
            UserSpec::equal_users(2, 100),
            trace,
            SimConfig::default(),
        )
        .unwrap()
    };
    let mut gl = GandivaLike::new();
    let gl_report = build()
        .run_until(&mut gl, SimTime::from_secs(4 * 3600))
        .unwrap();
    let gl_ratio = gl_report.gpu_secs_of(UserId::new(0)) / gl_report.gpu_secs_of(UserId::new(1));
    assert!(
        gl_ratio > 2.0,
        "baseline should reward flooding, ratio {gl_ratio}"
    );

    let mut gf = GandivaFair::new(GfairConfig::default());
    let gf_report = build()
        .run_until(&mut gf, SimTime::from_secs(4 * 3600))
        .unwrap();
    let gf_ratio = gf_report.gpu_secs_of(UserId::new(0)) / gf_report.gpu_secs_of(UserId::new(1));
    assert!(
        (gf_ratio - 1.0).abs() < 0.1,
        "gandiva-fair must not reward flooding, ratio {gf_ratio}"
    );
}

#[test]
fn tickets_weight_cluster_share() {
    let users = vec![
        UserSpec::new(UserId::new(0), "gold", 300),
        UserSpec::new(UserId::new(1), "bronze", 100),
    ];
    let mut trace = long_jobs(0, 0, 16, 0);
    trace.extend(long_jobs(1, 100, 16, 0));
    let sim = Simulation::new(
        ClusterSpec::homogeneous(2, 8),
        users,
        trace,
        SimConfig::default(),
    )
    .unwrap();
    let mut sched = GandivaFair::new(GfairConfig::default());
    let report = sim
        .run_until(&mut sched, SimTime::from_secs(6 * 3600))
        .unwrap();
    let ratio = report.gpu_secs_of(UserId::new(0)) / report.gpu_secs_of(UserId::new(1));
    assert!(
        (ratio - 3.0).abs() < 0.3,
        "3x tickets should buy 3x share, got {ratio}"
    );
}

#[test]
fn shares_converge_after_churn() {
    // Two incumbents plus a latecomer at t=2h: the latecomer must reach its
    // third of the cluster within a few windows of arriving.
    let mut trace = long_jobs(0, 0, 16, 0);
    trace.extend(long_jobs(1, 100, 16, 0));
    trace.extend(long_jobs(2, 200, 16, 2 * 3600));
    let cluster = ClusterSpec::homogeneous(2, 8);
    let users = UserSpec::equal_users(3, 100);
    let sim = Simulation::new(cluster, users, trace, SimConfig::default()).unwrap();
    let mut sched = GandivaFair::new(GfairConfig::default());
    let report = sim
        .run_until(&mut sched, SimTime::from_secs(5 * 3600))
        .unwrap();
    let series = user_share_series(&report, UserId::new(2));
    // Average the last hour's windows (stride rotates users across
    // windows, so single windows alias).
    let tail: Vec<f64> = series.iter().rev().take(12).map(|p| p.share).collect();
    let mean = tail.iter().sum::<f64>() / tail.len() as f64;
    assert!(
        (mean - 1.0 / 3.0).abs() < 0.05,
        "latecomer share did not converge: {mean}"
    );
}

#[test]
fn fairness_holds_on_random_traces_across_seeds() {
    use gfair::metrics::fairness::{jain_index, normalized_shares};
    for seed in [11u64, 22, 33] {
        let cluster = ClusterSpec::homogeneous(4, 8);
        let users = UserSpec::equal_users(4, 100);
        // Saturating load so every user always has demand.
        let mut params = PhillyParams::default();
        params.num_jobs = 120;
        params.jobs_per_hour = 200.0;
        params.median_service_mins = 300.0;
        let trace = TraceBuilder::new(params, seed).build(&users);
        let sim = Simulation::new(
            cluster,
            users.clone(),
            trace,
            SimConfig::default().with_seed(seed),
        )
        .unwrap();
        let mut sched = GandivaFair::new(GfairConfig::default());
        let report = sim
            .run_until(&mut sched, SimTime::from_secs(4 * 3600))
            .unwrap();
        let received: Vec<f64> = users.iter().map(|u| report.gpu_secs_of(u.id)).collect();
        let entitled = vec![1.0; users.len()];
        let jain = jain_index(&normalized_shares(&received, &entitled));
        assert!(
            jain > 0.97,
            "seed {seed}: Jain index {jain} too low ({received:?})"
        );
    }
}

#[test]
fn gang_sizes_do_not_distort_user_shares() {
    // User 0 runs 8-GPU gangs, user 1 runs 1-GPU jobs; equal tickets.
    let model = zoo_by_name("ResNet-50").unwrap();
    let mut trace = uniform_batch(
        0,
        UserId::new(0),
        &model,
        4,
        8,
        100.0 * 3600.0,
        SimTime::ZERO,
    );
    trace.extend(uniform_batch(
        100,
        UserId::new(1),
        &model,
        32,
        1,
        100.0 * 3600.0,
        SimTime::ZERO,
    ));
    let cluster = ClusterSpec::homogeneous(4, 8);
    let users = UserSpec::equal_users(2, 100);
    let sim = Simulation::new(cluster, users, trace, SimConfig::default()).unwrap();
    let mut sched = GandivaFair::new(GfairConfig::default());
    let report = sim
        .run_until(&mut sched, SimTime::from_secs(6 * 3600))
        .unwrap();
    let a = report.gpu_secs_of(UserId::new(0));
    let b = report.gpu_secs_of(UserId::new(1));
    assert!(
        (a - b).abs() / a.max(b) < 0.1,
        "gang width distorted shares: gangs {a} vs singles {b}"
    );
}
