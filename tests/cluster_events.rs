//! Failure injection and priority changes, end to end.
//!
//! These exercise the operational events a production scheduler must
//! survive: servers failing and recovering mid-run (jobs evicted and
//! re-placed, in-flight migrations stranded) and user ticket changes taking
//! effect at the next entitlement refresh.

use gfair::prelude::*;
use gfair::sim::ClusterScheduler;
use gfair::workloads::philly::uniform_batch;

fn model() -> std::sync::Arc<ModelProfile> {
    zoo_by_name("ResNet-50").expect("zoo model")
}

fn long_jobs(user: u32, start_id: u32, count: u32) -> Vec<JobSpec> {
    uniform_batch(
        start_id,
        UserId::new(user),
        &model(),
        count,
        1,
        100.0 * 3600.0,
        SimTime::ZERO,
    )
}

#[test]
fn failed_server_evicts_and_work_continues_elsewhere() {
    // 2 servers x 4 GPUs, 8 long jobs. Server 1 dies at t=1h: all jobs must
    // keep running on server 0 (time-sliced), and utilization of the
    // surviving half stays full.
    let cluster = ClusterSpec::homogeneous(2, 4);
    let users = UserSpec::equal_users(1, 100);
    let trace = long_jobs(0, 0, 8);
    let sim = Simulation::new(cluster, users, trace, SimConfig::default())
        .unwrap()
        .with_server_failure(ServerId::new(1), SimTime::from_secs(3600));
    let mut sched = GandivaFair::new(GfairConfig::default());
    let report = sim
        .run_until(&mut sched, SimTime::from_secs(2 * 3600))
        .unwrap();
    // Hour 1: 8 GPUs; hour 2: 4 GPUs. All of it should be used.
    let expect = 8.0 * 3600.0 + 4.0 * 3600.0;
    assert!(
        (report.gpu_secs_used - expect).abs() < 300.0,
        "used {} expected ~{expect}",
        report.gpu_secs_used
    );
    // No GPU-seconds were dispensed on the dead server after t=1h: its
    // total equals exactly one hour of 4 GPUs.
    let s1 = report.server_gpu_secs[&ServerId::new(1)];
    assert!((s1 - 4.0 * 3600.0).abs() < 1e-6, "dead server served {s1}");
}

#[test]
fn recovery_brings_capacity_back() {
    let cluster = ClusterSpec::homogeneous(2, 4);
    let users = UserSpec::equal_users(1, 100);
    let trace = long_jobs(0, 0, 8);
    let sim = Simulation::new(cluster, users, trace, SimConfig::default())
        .unwrap()
        .with_server_failure(ServerId::new(1), SimTime::from_secs(3600))
        .with_server_recovery(ServerId::new(1), SimTime::from_secs(2 * 3600));
    let mut sched = GandivaFair::new(GfairConfig::default());
    let report = sim
        .run_until(&mut sched, SimTime::from_secs(3 * 3600))
        .unwrap();
    // Hours 1 and 3 at 8 GPUs, hour 2 at 4: the balancer respreads after
    // recovery, so allow it a few minutes of migration lag.
    let expect = (8.0 + 4.0 + 8.0) * 3600.0;
    assert!(
        report.gpu_secs_used > expect - 2400.0,
        "used {} expected ~{expect}",
        report.gpu_secs_used
    );
    // The recovered server served again in hour 3.
    let s1 = report.server_gpu_secs[&ServerId::new(1)];
    assert!(
        s1 > 4.0 * 3600.0 + 1800.0,
        "recovered server never reused: {s1}"
    );
}

#[test]
fn all_baselines_survive_failure_and_recovery() {
    let cluster = ClusterSpec::homogeneous(2, 4);
    let users = UserSpec::equal_users(2, 100);
    let mut scheds: Vec<Box<dyn ClusterScheduler>> = vec![
        Box::new(GandivaFair::new(GfairConfig::default())),
        Box::new(GandivaLike::new()),
        Box::new(StaticPartition::new(&cluster, &users)),
        Box::new(Drf::new()),
        Box::new(Fifo::new()),
        Box::new(LotteryGang::new(3)),
    ];
    for sched in &mut scheds {
        let mut trace = long_jobs(0, 0, 3);
        trace.extend(long_jobs(1, 100, 3));
        let sim = Simulation::new(cluster.clone(), users.clone(), trace, SimConfig::default())
            .unwrap()
            .with_server_failure(ServerId::new(0), SimTime::from_secs(1800))
            .with_server_recovery(ServerId::new(0), SimTime::from_secs(5400));
        let report = sim
            .run_until(sched.as_mut(), SimTime::from_secs(3 * 3600))
            .expect("scheduler must survive failure injection");
        assert!(
            report.gpu_secs_used > 0.0,
            "{} dispensed nothing",
            report.scheduler
        );
    }
}

#[test]
fn migration_in_flight_to_failed_server_is_re_placed() {
    // A scheduler that immediately migrates job 0 to server 1, which dies
    // while the checkpoint is in flight. The engine must strand-and-re-place
    // the job rather than landing it on a dead server.
    use gfair::sim::{Action, RoundPlan, SimView};
    struct MigrateIntoDoom {
        issued: bool,
    }
    impl ClusterScheduler for MigrateIntoDoom {
        fn name(&self) -> &'static str {
            "doom"
        }
        fn on_job_arrival(&mut self, _v: &SimView<'_>, job: JobId) -> Vec<Action> {
            vec![Action::Place {
                job,
                server: ServerId::new(0),
            }]
        }
        fn plan_round(&mut self, view: &SimView<'_>) -> RoundPlan {
            let mut plan = RoundPlan::empty();
            if !self.issued && view.now() >= SimTime::from_secs(60) {
                self.issued = true;
                plan.actions.push(Action::Migrate {
                    job: JobId::new(0),
                    to: ServerId::new(1),
                });
                return plan;
            }
            // Re-place evicted/stranded jobs, run everything resident.
            for j in view.pending_jobs().map(|j| j.id).collect::<Vec<_>>() {
                plan.actions.push(Action::Place {
                    job: j,
                    server: ServerId::new(0),
                });
            }
            for server in view.up_servers() {
                for j in view.resident(server.id) {
                    plan.run_on(server.id, j);
                }
            }
            plan
        }
    }
    let cluster = ClusterSpec::homogeneous(2, 4);
    let users = UserSpec::equal_users(1, 100);
    let trace = vec![JobSpec::new(
        JobId::new(0),
        UserId::new(0),
        model(),
        1,
        1800.0,
        SimTime::ZERO,
    )];
    // ResNet-50 migration costs 50 s: failure at t=90 lands mid-flight
    // (migration spans 60..110).
    let sim = Simulation::new(cluster, users, trace, SimConfig::default())
        .unwrap()
        .with_server_failure(ServerId::new(1), SimTime::from_secs(90));
    let mut sched = MigrateIntoDoom { issued: false };
    let report = sim
        .run_until(&mut sched, SimTime::from_secs(2 * 3600))
        .unwrap();
    let rec = &report.jobs[&JobId::new(0)];
    assert!(rec.finish.is_some(), "stranded job never completed");
    // It never ran on the dead server.
    assert!(!report.server_gpu_secs.contains_key(&ServerId::new(1)));
}

#[test]
fn placement_on_down_server_is_rejected() {
    use gfair::sim::{Action, RoundPlan, SimView};
    // A scheduler that, with a *fresh* view in hand, still targets the
    // down server from its round plan: that is a hard scheduler bug.
    // (Queued decisions that race with a failure are skipped instead —
    // covered by the failure-injection property tests.)
    struct BlindPlacer;
    impl ClusterScheduler for BlindPlacer {
        fn name(&self) -> &'static str {
            "blind"
        }
        fn on_job_arrival(&mut self, _v: &SimView<'_>, _job: JobId) -> Vec<Action> {
            Vec::new()
        }
        fn plan_round(&mut self, view: &SimView<'_>) -> RoundPlan {
            let mut plan = RoundPlan::empty();
            for j in view.pending_jobs() {
                plan.actions.push(Action::Place {
                    job: j.id,
                    server: ServerId::new(1),
                });
            }
            plan
        }
    }
    let cluster = ClusterSpec::homogeneous(2, 4);
    let users = UserSpec::equal_users(1, 100);
    let trace = vec![JobSpec::new(
        JobId::new(0),
        UserId::new(0),
        model(),
        1,
        600.0,
        SimTime::from_secs(120),
    )];
    let sim = Simulation::new(cluster, users, trace, SimConfig::default())
        .unwrap()
        .with_server_failure(ServerId::new(1), SimTime::from_secs(60));
    let err = sim
        .run_until(&mut BlindPlacer, SimTime::from_secs(3600))
        .unwrap_err();
    assert!(matches!(err, gfair::types::GfairError::ServerDown(_)));
}

#[test]
fn ticket_change_shifts_shares_mid_run() {
    // Two equal users; at t=2h user 0's tickets triple. Shares must move
    // from 50/50 to 75/25 at the next entitlement refresh.
    let cluster = ClusterSpec::homogeneous(2, 8);
    let users = UserSpec::equal_users(2, 100);
    let mut trace = long_jobs(0, 0, 16);
    trace.extend(long_jobs(1, 100, 16));
    let sim = Simulation::new(cluster, users, trace, SimConfig::default())
        .unwrap()
        .with_ticket_change(UserId::new(0), SimTime::from_secs(2 * 3600), 300);
    let mut sched = GandivaFair::new(GfairConfig::default());
    let report = sim
        .run_until(&mut sched, SimTime::from_secs(4 * 3600))
        .unwrap();
    // Aggregate the second half (after a grace window for the refresh).
    let (mut a, mut b) = (0.0f64, 0.0f64);
    for w in &report.timeseries {
        if w.start >= SimTime::from_secs(2 * 3600 + 900) {
            a += w.user_gpu_secs.get(&UserId::new(0)).copied().unwrap_or(0.0);
            b += w.user_gpu_secs.get(&UserId::new(1)).copied().unwrap_or(0.0);
        }
    }
    let ratio = a / b;
    assert!(
        (ratio - 3.0).abs() < 0.3,
        "post-change ratio {ratio}, expected ~3"
    );
    // And the first half was an even split.
    let (mut a1, mut b1) = (0.0f64, 0.0f64);
    for w in &report.timeseries {
        if w.start < SimTime::from_secs(2 * 3600) {
            a1 += w.user_gpu_secs.get(&UserId::new(0)).copied().unwrap_or(0.0);
            b1 += w.user_gpu_secs.get(&UserId::new(1)).copied().unwrap_or(0.0);
        }
    }
    assert!((a1 / b1 - 1.0).abs() < 0.05, "pre-change ratio {}", a1 / b1);
}
