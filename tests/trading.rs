//! End-to-end trading properties on heterogeneous clusters.

use gfair::prelude::*;
use gfair::workloads::population::UserPopulation;

fn hetero_cluster() -> ClusterSpec {
    // Same shape as the F5 experiment: fast GPUs scarce, most capacity in
    // the base generation.
    ClusterSpec::build(
        GenCatalog::k80_p100_v100(),
        &[("K80", 10, 8), ("V100", 3, 4)],
    )
}

fn two_team_population() -> UserPopulation {
    UserPopulation::new()
        .user_of_class("vae-team", 100, ModelClass::LowSpeedup)
        .user_of_class("cnn-team", 100, ModelClass::HighSpeedup)
}

fn run(pop: &UserPopulation, cfg: GfairConfig, seed: u64) -> (SimReport, usize) {
    let mut params = PhillyParams::default();
    params.num_jobs = 200;
    params.jobs_per_hour = 60.0;
    params.median_service_mins = 150.0;
    let trace = pop.trace(params, seed);
    let sim = Simulation::new(
        hetero_cluster(),
        pop.users(),
        trace,
        SimConfig::default().with_seed(seed),
    )
    .unwrap();
    let mut sched = GandivaFair::new(cfg);
    let report = sim
        .run_until(&mut sched, SimTime::from_secs(8 * 3600))
        .unwrap();
    let n = sched.trades().len();
    (report, n)
}

#[test]
fn trading_raises_cluster_efficiency() {
    let pop = two_team_population();
    let (with, trades) = run(&pop, GfairConfig::default(), 7);
    let (without, none) = run(&pop, GfairConfig::default().without_trading(), 7);
    assert!(trades > 0, "no trades happened");
    assert_eq!(none, 0, "trading was supposed to be off");
    let gain = with.total_base_secs() / without.total_base_secs();
    assert!(
        gain > 1.05,
        "trading should raise effective throughput >5%, got {:.3}x",
        gain
    );
}

#[test]
fn no_team_ends_below_its_no_trading_service() {
    // The fairness guarantee: trading must not make anyone worse off.
    // Under the default MaxSpeedup price the buyer is *indifferent* in
    // valuation (pays exactly what fast GPUs are worth to them), so their
    // realized service can wobble a few percent either way from profiling
    // noise and migration overhead; the seller must strictly gain. The
    // exact no-worse-off-in-valuation invariant is unit-tested in
    // gfair-core's market tests.
    let pop = two_team_population();
    let (with, _) = run(&pop, GfairConfig::default(), 9);
    let (without, _) = run(&pop, GfairConfig::default().without_trading(), 9);
    let seller_before = without.base_secs_of(UserId::new(0));
    let seller_after = with.base_secs_of(UserId::new(0));
    assert!(
        seller_after > seller_before * 1.02,
        "seller should strictly gain: {seller_before} -> {seller_after}"
    );
    let buyer_before = without.base_secs_of(UserId::new(1));
    let buyer_after = with.base_secs_of(UserId::new(1));
    assert!(
        buyer_after >= buyer_before * 0.94,
        "buyer fell past the indifference noise band: {buyer_before} -> {buyer_after}"
    );
}

#[test]
fn trades_flow_fast_gpus_toward_high_speedup_team() {
    let pop = two_team_population();
    let mut params = PhillyParams::default();
    params.num_jobs = 120;
    params.jobs_per_hour = 60.0;
    params.median_service_mins = 120.0;
    let trace = pop.trace(params, 13);
    let sim = Simulation::new(hetero_cluster(), pop.users(), trace, SimConfig::default()).unwrap();
    let mut sched = GandivaFair::new(GfairConfig::default());
    let _ = sim
        .run_until(&mut sched, SimTime::from_secs(8 * 3600))
        .unwrap();
    assert!(!sched.trades().is_empty());
    for (_, t) in sched.trades() {
        assert_eq!(t.seller, UserId::new(0), "VAE team must be the seller");
        assert_eq!(t.buyer, UserId::new(1), "CNN team must be the buyer");
        assert!(t.buyer_speedup > t.seller_speedup);
        assert!(t.price > 1.0);
        assert!(t.fast_gpus > 0.0 && t.base_gpus > 0.0);
    }
}

#[test]
fn midpoint_pricing_also_trades_profitably() {
    let pop = two_team_population();
    let mut cfg_sim = SimConfig::default().with_price_strategy(PriceStrategy::Midpoint);
    cfg_sim.seed = 15;
    let mut params = PhillyParams::default();
    params.num_jobs = 120;
    params.jobs_per_hour = 60.0;
    params.median_service_mins = 120.0;
    let trace = pop.trace(params, 15);
    let sim = Simulation::new(hetero_cluster(), pop.users(), trace, cfg_sim).unwrap();
    let mut sched = GandivaFair::new(GfairConfig::default());
    let _ = sim
        .run_until(&mut sched, SimTime::from_secs(8 * 3600))
        .unwrap();
    assert!(!sched.trades().is_empty());
    for (_, t) in sched.trades() {
        // Midpoint price sits strictly between the two speedups.
        assert!(
            t.price > t.seller_speedup && t.price < t.buyer_speedup,
            "midpoint price {} outside ({}, {})",
            t.price,
            t.seller_speedup,
            t.buyer_speedup
        );
    }
}

#[test]
fn homogeneous_clusters_never_trade() {
    let pop = two_team_population();
    let mut params = PhillyParams::default();
    params.num_jobs = 60;
    let trace = pop.trace(params, 21);
    let sim = Simulation::new(
        ClusterSpec::homogeneous(8, 8),
        pop.users(),
        trace,
        SimConfig::default(),
    )
    .unwrap();
    let mut sched = GandivaFair::new(GfairConfig::default());
    let _ = sim
        .run_until(&mut sched, SimTime::from_secs(4 * 3600))
        .unwrap();
    assert!(
        sched.trades().is_empty(),
        "one-generation cluster has nothing to trade"
    );
}
