//! Cross-crate property tests: for random traces, clusters and seeds, the
//! full Gandiva_fair stack preserves the simulator's accounting invariants.

use gfair::prelude::*;
use proptest::prelude::*;

/// Accounting invariants every valid run must satisfy.
fn check_invariants(report: &SimReport, users: &[UserSpec]) -> Result<(), TestCaseError> {
    // Conservation: per-user service sums to the dispensed total, which
    // never exceeds capacity.
    let user_sum: f64 = report.user_gpu_secs.values().sum();
    prop_assert!(
        (user_sum - report.gpu_secs_used).abs() < 1e-6,
        "user sums {user_sum} != used {}",
        report.gpu_secs_used
    );
    prop_assert!(report.gpu_secs_used <= report.gpu_secs_capacity + 1e-6);
    // Per-server decomposition matches the total too.
    let server_sum: f64 = report.server_gpu_secs.values().sum();
    prop_assert!((server_sum - report.gpu_secs_used).abs() < 1e-6);
    // Window decomposition matches the total.
    let window_sum: f64 = report.timeseries.iter().map(|w| w.used_gpu_secs).sum();
    prop_assert!(
        (window_sum - report.gpu_secs_used).abs() < 1e-6,
        "windows {window_sum} != used {}",
        report.gpu_secs_used
    );
    // Per-job sanity.
    for job in report.jobs.values() {
        if let Some(finish) = job.finish {
            prop_assert!(finish >= job.arrival);
            let first = job.first_run.expect("finished jobs ran");
            prop_assert!(first >= job.arrival && first <= finish);
            // A finished gang consumed at least service/gang-width... on the
            // fastest generation it can be as low as service/speedup per
            // GPU; bound loosely by > 0 and <= gang * wall time.
            let wall = finish.saturating_since(job.arrival).as_secs_f64();
            prop_assert!(job.total_gpu_secs() > 0.0);
            prop_assert!(job.total_gpu_secs() <= job.gang as f64 * wall + 1e-6);
        }
        prop_assert!(users.iter().any(|u| u.id == job.user));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random Philly traces on random homogeneous clusters under the full
    /// Gandiva_fair stack keep all accounting invariants and finish every
    /// job when run to completion.
    #[test]
    fn gandiva_fair_preserves_accounting_invariants(
        seed in 0u64..1000,
        servers in 1u32..6,
        gpus in 1u32..9,
        n_users in 1u32..5,
        n_jobs in 1usize..40,
    ) {
        let cluster = ClusterSpec::homogeneous(servers, gpus);
        let users = UserSpec::equal_users(n_users, 100);
        let mut params = PhillyParams::default();
        params.num_jobs = n_jobs;
        params.jobs_per_hour = 120.0;
        params.median_service_mins = 20.0;
        params.service_clamp_mins = (2.0, 120.0);
        // Gangs must fit the smallest server in this sweep.
        params.gang_weights = match gpus {
            1 => [1.0, 0.0, 0.0, 0.0],
            2..=3 => [0.7, 0.3, 0.0, 0.0],
            4..=7 => [0.6, 0.2, 0.2, 0.0],
            _ => [0.6, 0.2, 0.1, 0.1],
        };
        let trace = TraceBuilder::new(params, seed).build(&users);
        let n = trace.len();
        let sim = Simulation::new(
            cluster,
            users.clone(),
            trace,
            SimConfig::default().with_seed(seed),
        )
        .expect("valid setup");
        let mut sched = GandivaFair::new(GfairConfig::default());
        let report = sim.run(&mut sched).expect("no invalid decisions");
        prop_assert_eq!(report.finished_jobs(), n, "all jobs must finish");
        check_invariants(&report, &users)?;
    }

    /// The same invariants hold for every baseline under a fixed trace
    /// sweep (horizon-bounded; baselines may legitimately strand queued
    /// jobs, e.g. FIFO head-of-line blocking).
    #[test]
    fn baselines_preserve_accounting_invariants(
        seed in 0u64..500,
        which in 0usize..5,
    ) {
        let cluster = ClusterSpec::homogeneous(3, 4);
        let users = UserSpec::equal_users(3, 100);
        let mut params = PhillyParams::default();
        params.num_jobs = 30;
        params.jobs_per_hour = 90.0;
        params.median_service_mins = 30.0;
        params.service_clamp_mins = (2.0, 180.0);
        params.gang_weights = [0.6, 0.2, 0.2, 0.0];
        let trace = TraceBuilder::new(params, seed).build(&users);
        let sim = Simulation::new(
            cluster.clone(),
            users.clone(),
            trace,
            SimConfig::default().with_seed(seed),
        )
        .expect("valid setup");
        let mut sched: Box<dyn gfair::sim::ClusterScheduler> = match which {
            0 => Box::new(GandivaLike::new()),
            1 => Box::new(StaticPartition::new(&cluster, &users)),
            2 => Box::new(Drf::new()),
            3 => Box::new(Fifo::new()),
            _ => Box::new(LotteryGang::new(seed)),
        };
        let report = sim
            .run_until(sched.as_mut(), SimTime::from_secs(12 * 3600))
            .expect("no invalid decisions");
        check_invariants(&report, &users)?;
    }

    /// Failure injection never breaks accounting: a random server fails and
    /// recovers at random times while Gandiva_fair runs a random trace.
    #[test]
    fn failure_injection_preserves_invariants(
        seed in 0u64..500,
        fail_at_mins in 5u64..120,
        down_mins in 5u64..120,
        victim in 0u32..3,
    ) {
        let cluster = ClusterSpec::homogeneous(3, 4);
        let users = UserSpec::equal_users(2, 100);
        let mut params = PhillyParams::default();
        params.num_jobs = 20;
        params.jobs_per_hour = 60.0;
        params.median_service_mins = 30.0;
        params.service_clamp_mins = (2.0, 180.0);
        params.gang_weights = [0.7, 0.3, 0.0, 0.0];
        let trace = TraceBuilder::new(params, seed).build(&users);
        let fail_at = SimTime::from_secs(fail_at_mins * 60);
        let sim = Simulation::new(
            cluster,
            users.clone(),
            trace,
            SimConfig::default().with_seed(seed),
        )
        .expect("valid setup")
        .with_server_failure(ServerId::new(victim), fail_at)
        .with_server_recovery(
            ServerId::new(victim),
            fail_at + SimDuration::from_mins(down_mins),
        );
        let mut sched = GandivaFair::new(GfairConfig::default());
        let report = sim
            .run_until(&mut sched, SimTime::from_secs(24 * 3600))
            .expect("no invalid decisions under failure injection");
        check_invariants(&report, &users)?;
        // With recovery well before the horizon, everything still finishes.
        prop_assert_eq!(report.finished_jobs(), report.jobs.len());
    }
}
