//! Quiescence fast-forward must be invisible: for the same trace, seed and
//! fault plan, a run with analytic multi-quantum stepping enabled must
//! produce a byte-identical `SimReport` — and an identical JSONL trace once
//! the per-round scheduling records (`gang_packed`, `round_planned`) and
//! their batched stand-in (`rounds_skipped`) are set aside — compared to a
//! run that steps every quantum naively. Everything else (job lifecycles,
//! migrations, windows, trades, audit counters, metrics) must match exactly.

use gfair::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

/// Runs one seeded simulation with fast-forwarding on or off and a JSONL
/// sink; returns the serialized report and raw trace bytes.
fn run_mode(
    seed: u64,
    fast_forward: bool,
    faults: Option<FaultPlan>,
    tag: &str,
) -> (String, Vec<u8>) {
    let path = std::env::temp_dir().join(format!(
        "gfair-fast-forward-{}-{tag}.jsonl",
        std::process::id()
    ));
    let cluster = ClusterSpec::paper_testbed();
    let users = UserSpec::equal_users(6, 100);
    let mut params = PhillyParams::default();
    params.num_jobs = 120;
    params.jobs_per_hour = 90.0;
    params.median_service_mins = 30.0;
    let trace = TraceBuilder::new(params, seed).build(&users);
    let obs: SharedObs = Arc::new(Obs::new());
    obs.jsonl(&path).expect("trace file");
    let mut sim = Simulation::new(cluster, users, trace, SimConfig::default().with_seed(seed))
        .unwrap()
        .with_obs(Arc::clone(&obs));
    if let Some(plan) = faults {
        sim = sim.with_faults(plan);
    }
    let cfg = if fast_forward {
        GfairConfig::default()
    } else {
        GfairConfig::default().without_fast_forward()
    };
    let mut sched = GandivaFair::new(cfg).with_obs(Arc::clone(&obs));
    let report = sim
        .run_until(&mut sched, SimTime::from_secs(8 * 3600))
        .expect("clean run");
    let json = serde_json::to_string(&report).expect("serialize report");
    let bytes = std::fs::read(&path).expect("read trace");
    let _ = std::fs::remove_file(&path);
    (json, bytes)
}

/// Trace lines minus the per-round scheduling records the fast-forward path
/// legitimately batches: `gang_packed` and `round_planned` (absent for
/// replayed rounds) and `rounds_skipped` (their single stand-in).
fn comparable_lines(bytes: &[u8]) -> Vec<String> {
    String::from_utf8(bytes.to_vec())
        .expect("utf8 trace")
        .lines()
        .filter(|l| {
            !l.starts_with("{\"kind\":\"gang_packed\"")
                && !l.starts_with("{\"kind\":\"round_planned\"")
                && !l.starts_with("{\"kind\":\"rounds_skipped\"")
        })
        .map(String::from)
        .collect()
}

fn assert_modes_equivalent(seed: u64, faults: Option<FaultPlan>, tag: &str) {
    let (on_report, on_trace) = run_mode(seed, true, faults.clone(), &format!("{tag}-on"));
    let (off_report, off_trace) = run_mode(seed, false, faults, &format!("{tag}-off"));
    assert_eq!(
        on_report, off_report,
        "fast-forward changed the report (seed {seed})"
    );
    assert_eq!(
        comparable_lines(&on_trace),
        comparable_lines(&off_trace),
        "fast-forward changed non-round trace events (seed {seed})"
    );
    assert!(
        !String::from_utf8_lossy(&off_trace).contains("\"kind\":\"rounds_skipped\""),
        "the naive path must never emit rounds_skipped"
    );
}

#[test]
fn fast_forward_is_byte_identical_without_faults() {
    let (on_report, on_trace) = run_mode(7, true, None, "plain-on");
    let (off_report, off_trace) = run_mode(7, false, None, "plain-off");
    assert_eq!(on_report, off_report, "fast-forward changed the report");
    assert_eq!(
        comparable_lines(&on_trace),
        comparable_lines(&off_trace),
        "fast-forward changed non-round trace events"
    );
    // The optimization must actually fire on this workload, otherwise the
    // equivalence above is vacuous.
    assert!(
        String::from_utf8_lossy(&on_trace).contains("\"kind\":\"rounds_skipped\""),
        "fast-forward never engaged"
    );
}

#[test]
fn fast_forward_is_byte_identical_under_faults() {
    let plan = FaultPlan::none()
        .with_seed(5)
        .with_migration_fail_rates(0.10, 0.10)
        .with_slowdown(0.10, 3.0)
        .with_partition(
            ServerId::new(2),
            SimTime::from_secs(2 * 3600),
            SimTime::from_secs(3 * 3600),
        )
        .with_flap(
            ServerId::new(4),
            SimTime::from_secs(4 * 3600),
            SimDuration::from_mins(10),
            SimDuration::from_mins(30),
            2,
        );
    assert_modes_equivalent(11, Some(plan), "faulted");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Random workloads and random fault plans: fast-forward on vs off must
    /// agree byte-for-byte on the report and on every non-round trace event.
    #[test]
    fn fast_forward_differential(
        seed in 0u64..10_000,
        fault_seed in 0u64..10_000,
        ckpt in 0.0f64..0.2,
        restore in 0.0f64..0.2,
        part_start in 1u64..5,
        part_len in 1u64..3,
        flap_server in 0u32..5,
    ) {
        let plan = FaultPlan::none()
            .with_seed(fault_seed)
            .with_migration_fail_rates(ckpt, restore)
            .with_partition(
                ServerId::new(1),
                SimTime::from_secs(part_start * 3600),
                SimTime::from_secs((part_start + part_len) * 3600),
            )
            .with_flap(
                ServerId::new(flap_server),
                SimTime::from_secs(3 * 3600),
                SimDuration::from_mins(15),
                SimDuration::from_mins(45),
                2,
            );
        assert_modes_equivalent(seed, Some(plan), &format!("prop-{seed}-{fault_seed}"));
    }
}
