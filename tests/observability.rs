//! Integration tests for the observability layer (`gfair-obs`): trace
//! determinism, the always-on invariant auditor across every built-in
//! scheduler, and end-to-end detection of a deliberately broken policy.

use gfair::obs::{TraceEvent, UserShare, ViolationKind};
use gfair::prelude::*;
use gfair::sim::{Action, ClusterScheduler, RoundPlan, SimView};
use gfair::types::GfairError;
use std::sync::Arc;

fn setup(seed: u64) -> (ClusterSpec, Vec<UserSpec>, Vec<JobSpec>) {
    let cluster = ClusterSpec::paper_testbed();
    let users = UserSpec::equal_users(4, 100);
    let mut params = PhillyParams::default();
    params.num_jobs = 80;
    params.jobs_per_hour = 50.0;
    params.median_service_mins = 45.0;
    let trace = TraceBuilder::new(params, seed).build(&users);
    (cluster, users, trace)
}

/// Runs one seeded simulation with a JSONL sink and returns the trace bytes.
fn traced_run(seed: u64, tag: &str) -> Vec<u8> {
    let path = std::env::temp_dir().join(format!(
        "gfair-obs-trace-{}-{tag}.jsonl",
        std::process::id()
    ));
    let (cluster, users, trace) = setup(seed);
    let obs: SharedObs = Arc::new(Obs::new());
    obs.jsonl(&path).expect("trace file");
    let sim = Simulation::new(cluster, users, trace, SimConfig::default().with_seed(seed))
        .unwrap()
        .with_obs(Arc::clone(&obs));
    let mut sched = GandivaFair::new(GfairConfig::default()).with_obs(Arc::clone(&obs));
    sim.run(&mut sched).expect("clean run");
    let bytes = std::fs::read(&path).expect("read trace");
    let _ = std::fs::remove_file(&path);
    bytes
}

#[test]
fn same_seed_byte_identical_jsonl_trace() {
    let a = traced_run(11, "a");
    let b = traced_run(11, "b");
    assert!(!a.is_empty());
    assert_eq!(a, b, "same seed must reproduce the trace byte-for-byte");
}

#[test]
fn trace_covers_the_event_taxonomy() {
    let (cluster, users, trace) = setup(3);
    let obs: SharedObs = Arc::new(Obs::new());
    let ring = obs.ring(200_000);
    let sim = Simulation::new(cluster, users, trace, SimConfig::default())
        .unwrap()
        .with_obs(Arc::clone(&obs));
    let mut sched = GandivaFair::new(GfairConfig::default()).with_obs(Arc::clone(&obs));
    sim.run(&mut sched).expect("clean run");
    let kinds: std::collections::BTreeSet<&'static str> =
        ring.events().iter().map(|e| e.kind()).collect();
    for kind in [
        "server_up",
        "job_arrive",
        "placement",
        "gang_packed",
        "round_planned",
        "migration",
        "profile_inferred",
        "job_finish",
    ] {
        assert!(kinds.contains(kind), "trace is missing {kind} events");
    }
}

/// The DESIGN.md event table and `TraceEvent::KINDS` must list exactly the
/// same kinds: documenting a new event (or retiring one) is part of adding
/// it. Rows may group related kinds with " / ".
#[test]
fn design_md_event_table_matches_the_event_taxonomy() {
    let design = include_str!("../DESIGN.md");
    let mut documented = std::collections::BTreeSet::new();
    let mut in_table = false;
    for line in design.lines() {
        if line.starts_with("| Kind | Emitted when |") {
            in_table = true;
            continue;
        }
        if in_table && !line.starts_with('|') {
            break;
        }
        if !in_table {
            continue;
        }
        // Table rows look like: | `kind_a` / `kind_b` | prose |
        let Some(first_cell) = line.strip_prefix("| `").and_then(|r| r.split('|').next()) else {
            continue;
        };
        for kind in first_cell.split(" / ") {
            let kind = kind.trim().trim_matches('`');
            if kind.chars().all(|c| c.is_ascii_lowercase() || c == '_') && !kind.is_empty() {
                documented.insert(kind.to_string());
            }
        }
    }
    let expected: std::collections::BTreeSet<String> =
        TraceEvent::KINDS.iter().map(|k| k.to_string()).collect();
    assert_eq!(
        documented, expected,
        "DESIGN.md's event table and TraceEvent::KINDS have drifted"
    );
}

#[test]
fn auditor_is_clean_on_every_builtin_scheduler() {
    let (cluster, users, _) = setup(5);
    let mut scheds: Vec<Box<dyn ClusterScheduler>> = vec![
        Box::new(GandivaFair::new(GfairConfig::default())),
        Box::new(GandivaLike::new()),
        Box::new(StaticPartition::new(&cluster, &users)),
        Box::new(Drf::new()),
        Box::new(Fifo::new()),
        Box::new(LotteryGang::new(5)),
    ];
    for sched in &mut scheds {
        let (cluster, users, trace) = setup(5);
        let sim = Simulation::new(cluster, users, trace, SimConfig::default()).unwrap();
        let report = sim
            .run_until(sched.as_mut(), SimTime::from_secs(8 * 3600))
            .expect("invariant-clean run");
        let obs = report.obs.expect("report carries an obs summary");
        assert_eq!(
            obs.violations, 0,
            "{}: auditor found violations",
            report.scheduler
        );
        assert!(obs.events > 0);
    }
}

#[test]
fn obs_summary_agrees_with_the_report() {
    let (cluster, users, trace) = setup(7);
    let n_jobs = trace.len() as u64;
    let sim = Simulation::new(cluster, users, trace, SimConfig::default()).unwrap();
    let mut sched = GandivaFair::new(GfairConfig::default());
    let report = sim.run(&mut sched).expect("clean run");
    let obs = report.obs.as_ref().expect("obs summary");
    assert_eq!(obs.counters["jobs_arrived"], n_jobs);
    assert_eq!(obs.counters["jobs_finished"], report.finished_jobs() as u64);
    assert_eq!(obs.counters["rounds"], report.rounds);
    assert_eq!(
        obs.counters.get("migrations").copied().unwrap_or(0),
        u64::from(report.migrations)
    );
    assert_eq!(
        obs.counters.get("stale_migrations").copied().unwrap_or(0),
        u64::from(report.stale_migrations)
    );
    assert_eq!(
        obs.counters.get("profile_reports").copied().unwrap_or(0),
        report.profile_reports
    );
}

#[test]
fn auditor_survives_server_failure_and_recovery() {
    let (cluster, users, trace) = setup(9);
    let sim = Simulation::new(cluster, users, trace, SimConfig::default())
        .unwrap()
        .with_server_failure(ServerId::new(0), SimTime::from_secs(3600))
        .with_server_recovery(ServerId::new(0), SimTime::from_secs(3 * 3600));
    let mut sched = GandivaFair::new(GfairConfig::default());
    let report = sim.run(&mut sched).expect("clean run through the outage");
    let obs = report.obs.expect("obs summary");
    assert_eq!(obs.violations, 0);
    assert_eq!(obs.counters["server_failures"], 1);
}

/// Behaves exactly like FIFO but reports a ticket economy that conjures
/// GPUs out of thin air. Only the auditor checks ticket conservation, so
/// this proves the auditor aborts runs the engine's inline validation
/// would accept.
struct TicketInflater(Fifo);

impl ClusterScheduler for TicketInflater {
    fn name(&self) -> &'static str {
        "ticket-inflater"
    }
    fn on_job_arrival(&mut self, view: &SimView<'_>, job: JobId) -> Vec<Action> {
        self.0.on_job_arrival(view, job)
    }
    fn plan_round(&mut self, view: &SimView<'_>) -> RoundPlan {
        self.0.plan_round(view)
    }
    fn user_shares(&self, view: &SimView<'_>) -> Vec<UserShare> {
        vec![UserShare {
            user: UserId::new(0),
            tickets: view.cluster().total_gpus() as f64 * 2.0,
            pass: 0.0,
        }]
    }
}

#[test]
fn broken_scheduler_is_caught_by_the_auditor() {
    let (cluster, users, trace) = setup(13);
    let sim = Simulation::new(cluster, users, trace, SimConfig::default()).unwrap();
    let mut sched = TicketInflater(Fifo::new());
    let err = sim
        .run_until(&mut sched, SimTime::from_secs(4 * 3600))
        .expect_err("the auditor must abort the run");
    match err {
        GfairError::InvariantViolation(report) => {
            assert!(
                report.contains("ticket"),
                "violation report should name the broken invariant: {report}"
            );
            assert!(
                report.contains("round"),
                "violation report should carry the round trace: {report}"
            );
        }
        other => panic!("expected InvariantViolation, got {other}"),
    }
}

#[test]
fn partial_gang_violation_is_detected_via_public_api() {
    let obs = Obs::new();
    obs.emit(TraceEvent::ServerUp {
        t: SimTime::ZERO,
        server: ServerId::new(0),
        gen: GenId::new(0),
        gpus: 4,
    });
    obs.emit(TraceEvent::JobArrive {
        t: SimTime::ZERO,
        job: JobId::new(1),
        user: UserId::new(0),
        gang: 4,
        service_secs: 60.0,
    });
    obs.emit(TraceEvent::Placement {
        t: SimTime::ZERO,
        job: JobId::new(1),
        server: ServerId::new(0),
        gang: 4,
    });
    obs.emit(TraceEvent::GangPacked {
        t: SimTime::ZERO,
        round: 1,
        server: ServerId::new(0),
        job: JobId::new(1),
        user: UserId::new(0),
        width: 2, // half the gang: atomicity broken
        gang: 4,
    });
    let v = obs.take_fatal().expect("gang atomicity violation");
    assert!(matches!(v.kind, ViolationKind::PartialGang { .. }));
    assert!(v.to_string().contains("gang"));
}
