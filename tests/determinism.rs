//! Parallel round planning must be invisible: for the same seed, any
//! `planning_workers` setting (sequential, pinned fan-out, or auto-sized)
//! must produce a byte-identical `SimReport` and a byte-identical JSONL
//! trace. Per-server planning is independent and results are merged in
//! server-id order, so parallelism only changes wall-clock time.

use gfair::prelude::*;
use std::sync::Arc;

/// Runs one seeded simulation with `workers` planning threads and a JSONL
/// sink; returns the serialized report and the raw trace bytes.
fn run(seed: u64, workers: usize, tag: &str) -> (String, Vec<u8>) {
    let path = std::env::temp_dir().join(format!(
        "gfair-determinism-{}-{tag}.jsonl",
        std::process::id()
    ));
    let cluster = ClusterSpec::paper_testbed();
    let users = UserSpec::equal_users(6, 100);
    let mut params = PhillyParams::default();
    params.num_jobs = 150;
    params.jobs_per_hour = 120.0;
    params.median_service_mins = 30.0;
    let trace = TraceBuilder::new(params, seed).build(&users);
    let obs: SharedObs = Arc::new(Obs::new());
    obs.jsonl(&path).expect("trace file");
    let sim = Simulation::new(cluster, users, trace, SimConfig::default().with_seed(seed))
        .unwrap()
        .with_server_failure(ServerId::new(2), SimTime::from_secs(2 * 3600))
        .with_server_recovery(ServerId::new(2), SimTime::from_secs(4 * 3600))
        .with_obs(Arc::clone(&obs));
    let mut sched = GandivaFair::new(GfairConfig::default().with_planning_workers(workers))
        .with_obs(Arc::clone(&obs));
    let report = sim
        .run_until(&mut sched, SimTime::from_secs(8 * 3600))
        .expect("clean run");
    let json = serde_json::to_string(&report).expect("serialize report");
    let bytes = std::fs::read(&path).expect("read trace");
    let _ = std::fs::remove_file(&path);
    (json, bytes)
}

#[test]
fn parallel_planning_is_byte_identical_to_sequential() {
    let (seq_report, seq_trace) = run(7, 1, "seq");
    let (par_report, par_trace) = run(7, 4, "par");
    assert!(!seq_trace.is_empty());
    assert_eq!(
        seq_report, par_report,
        "parallel planning changed the report"
    );
    assert_eq!(seq_trace, par_trace, "parallel planning changed the trace");
}

#[test]
fn auto_sized_planning_is_byte_identical_to_sequential() {
    let (seq_report, seq_trace) = run(13, 1, "seq-auto");
    let (auto_report, auto_trace) = run(13, 0, "auto");
    assert_eq!(
        seq_report, auto_report,
        "auto worker count changed the report"
    );
    assert_eq!(seq_trace, auto_trace, "auto worker count changed the trace");
}
