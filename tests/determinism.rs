//! Parallel round planning must be invisible: for the same seed, any
//! `planning_workers` setting (sequential, pinned fan-out, or auto-sized)
//! must produce a byte-identical `SimReport` and a byte-identical JSONL
//! trace. Per-server planning is independent and results are merged in
//! server-id order, so parallelism only changes wall-clock time.

use gfair::prelude::*;
use std::sync::Arc;

/// Runs one seeded simulation with `workers` planning threads and a JSONL
/// sink; returns the serialized report and the raw trace bytes.
fn run(seed: u64, workers: usize, tag: &str) -> (String, Vec<u8>) {
    let path = std::env::temp_dir().join(format!(
        "gfair-determinism-{}-{tag}.jsonl",
        std::process::id()
    ));
    let cluster = ClusterSpec::paper_testbed();
    let users = UserSpec::equal_users(6, 100);
    let mut params = PhillyParams::default();
    params.num_jobs = 150;
    params.jobs_per_hour = 120.0;
    params.median_service_mins = 30.0;
    let trace = TraceBuilder::new(params, seed).build(&users);
    let obs: SharedObs = Arc::new(Obs::new());
    obs.jsonl(&path).expect("trace file");
    let sim = Simulation::new(cluster, users, trace, SimConfig::default().with_seed(seed))
        .unwrap()
        .with_server_failure(ServerId::new(2), SimTime::from_secs(2 * 3600))
        .with_server_recovery(ServerId::new(2), SimTime::from_secs(4 * 3600))
        .with_obs(Arc::clone(&obs));
    let mut sched = GandivaFair::new(GfairConfig::default().with_planning_workers(workers))
        .with_obs(Arc::clone(&obs));
    let report = sim
        .run_until(&mut sched, SimTime::from_secs(8 * 3600))
        .expect("clean run");
    let json = serde_json::to_string(&report).expect("serialize report");
    let bytes = std::fs::read(&path).expect("read trace");
    let _ = std::fs::remove_file(&path);
    (json, bytes)
}

/// Runs one seeded, untraced simulation (faults included) with `cfg` and
/// returns the serialized report.
fn run_untraced(seed: u64, cfg: GfairConfig) -> String {
    let cluster = ClusterSpec::paper_testbed();
    let users = UserSpec::equal_users(6, 100);
    let mut params = PhillyParams::default();
    params.num_jobs = 150;
    params.jobs_per_hour = 120.0;
    params.median_service_mins = 30.0;
    let trace = TraceBuilder::new(params, seed).build(&users);
    let sim = Simulation::new(cluster, users, trace, SimConfig::default().with_seed(seed))
        .unwrap()
        .with_server_failure(ServerId::new(2), SimTime::from_secs(2 * 3600))
        .with_server_recovery(ServerId::new(2), SimTime::from_secs(4 * 3600));
    let mut sched = GandivaFair::new(cfg);
    let report = sim
        .run_until(&mut sched, SimTime::from_secs(8 * 3600))
        .expect("clean run");
    serde_json::to_string(&report).expect("serialize report")
}

#[test]
fn lazy_planning_is_byte_identical_to_eager() {
    // Lazy settling replays each server's cached selection strictly within
    // its proven quiescence span, so every (lazy, fast-forward) combination
    // must produce the same report byte-for-byte — including across a
    // failure/recovery cycle.
    let base = GfairConfig::default().with_planning_workers(1);
    let eager_ff = run_untraced(7, base.without_lazy_planning());
    let lazy_ff = run_untraced(7, base);
    assert_eq!(eager_ff, lazy_ff, "lazy settling changed the report");
    let eager_step = run_untraced(7, base.without_lazy_planning().without_fast_forward());
    let lazy_step = run_untraced(7, base.without_fast_forward());
    assert_eq!(
        eager_step, lazy_step,
        "lazy settling changed the report with fast-forward off"
    );
    assert_eq!(
        eager_ff, eager_step,
        "fast-forward changed the eager report"
    );
}

#[test]
fn parallel_planning_is_byte_identical_to_sequential() {
    let (seq_report, seq_trace) = run(7, 1, "seq");
    let (par_report, par_trace) = run(7, 4, "par");
    assert!(!seq_trace.is_empty());
    assert_eq!(
        seq_report, par_report,
        "parallel planning changed the report"
    );
    assert_eq!(seq_trace, par_trace, "parallel planning changed the trace");
}

#[test]
fn auto_sized_planning_is_byte_identical_to_sequential() {
    let (seq_report, seq_trace) = run(13, 1, "seq-auto");
    let (auto_report, auto_trace) = run(13, 0, "auto");
    assert_eq!(
        seq_report, auto_report,
        "auto worker count changed the report"
    );
    assert_eq!(seq_trace, auto_trace, "auto worker count changed the trace");
}
