//! End-to-end integration: every scheduler drives the paper-scale testbed
//! on a Philly-like trace without invalid decisions, deterministically.

use gfair::prelude::*;
use gfair::sim::ClusterScheduler;

fn setup(seed: u64) -> (ClusterSpec, Vec<UserSpec>, Vec<JobSpec>) {
    let cluster = ClusterSpec::paper_testbed();
    let users = UserSpec::equal_users(6, 100);
    let mut params = PhillyParams::default();
    params.num_jobs = 150;
    params.jobs_per_hour = 50.0;
    params.median_service_mins = 60.0;
    let trace = TraceBuilder::new(params, seed).build(&users);
    (cluster, users, trace)
}

fn run_with(sched: &mut dyn ClusterScheduler, seed: u64, horizon_hours: u64) -> SimReport {
    let (cluster, users, trace) = setup(seed);
    let sim =
        Simulation::new(cluster, users, trace, SimConfig::default()).expect("valid configuration");
    sim.run_until(sched, SimTime::from_secs(horizon_hours * 3600))
        .expect("scheduler made an invalid decision")
}

#[test]
fn all_schedulers_drive_the_paper_testbed() {
    let (cluster, users, _) = setup(1);
    let mut scheds: Vec<Box<dyn ClusterScheduler>> = vec![
        Box::new(GandivaFair::new(GfairConfig::default())),
        Box::new(GandivaLike::new()),
        Box::new(StaticPartition::new(&cluster, &users)),
        Box::new(Drf::new()),
        Box::new(Fifo::new()),
    ];
    for sched in &mut scheds {
        let report = run_with(sched.as_mut(), 1, 8);
        assert!(report.rounds > 0);
        assert!(
            report.finished_jobs() > 30,
            "{} finished too few jobs: {}",
            report.scheduler,
            report.finished_jobs()
        );
        // Accounting sanity: used never exceeds capacity, per-user sums
        // match the total.
        assert!(report.gpu_secs_used <= report.gpu_secs_capacity + 1e-6);
        let user_sum: f64 = report.user_gpu_secs.values().sum();
        assert!(
            (user_sum - report.gpu_secs_used).abs() < 1e-6,
            "{}: per-user sums diverge from total",
            report.scheduler
        );
    }
}

#[test]
fn gandiva_fair_runs_trace_to_completion() {
    let (cluster, users, trace) = setup(2);
    let n = trace.len();
    let sim = Simulation::new(cluster, users, trace, SimConfig::default()).unwrap();
    let mut sched = GandivaFair::new(GfairConfig::default());
    let report = sim.run(&mut sched).unwrap();
    assert_eq!(report.finished_jobs(), n, "all jobs must finish");
    // Every job record is self-consistent.
    for job in report.jobs.values() {
        let finish = job.finish.expect("finished");
        assert!(finish >= job.arrival);
        let first = job.first_run.expect("ran");
        assert!(first >= job.arrival && first <= finish);
        // A job consumes at least its service demand in GPU-seconds (gang
        // multiplies), modulo base-generation normalization.
        assert!(job.total_gpu_secs() > 0.0);
    }
}

#[test]
fn same_seed_same_everything() {
    let run = || {
        let mut sched = GandivaFair::new(GfairConfig::default());
        run_with(&mut sched, 3, 6)
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "simulation must be deterministic");
}

#[test]
fn different_seeds_change_outcomes() {
    let mut s1 = GandivaFair::new(GfairConfig::default());
    let mut s2 = GandivaFair::new(GfairConfig::default());
    let a = run_with(&mut s1, 4, 6);
    let b = run_with(&mut s2, 5, 6);
    assert_ne!(
        a.gpu_secs_used, b.gpu_secs_used,
        "different traces should differ"
    );
}

#[test]
fn gandiva_fair_matches_efficiency_pole_and_beats_partitioning() {
    // A heavier trace than the smoke tests: partitioning's queueing delay
    // only shows under real contention.
    fn heavy(sched: &mut dyn ClusterScheduler, seed: u64) -> SimReport {
        let cluster = ClusterSpec::paper_testbed();
        let users = UserSpec::equal_users(6, 100);
        let mut params = PhillyParams::default();
        params.num_jobs = 300;
        params.jobs_per_hour = 120.0;
        params.median_service_mins = 120.0;
        let trace = TraceBuilder::new(params, seed).build(&users);
        let sim = Simulation::new(cluster, users, trace, SimConfig::default()).unwrap();
        sim.run_until(sched, SimTime::from_secs(10 * 3600)).unwrap()
    }
    let mut gf = GandivaFair::new(GfairConfig::default());
    let gf_report = heavy(&mut gf, 6);

    let cluster = ClusterSpec::paper_testbed();
    let users = UserSpec::equal_users(6, 100);
    let mut sp = StaticPartition::new(&cluster, &users);
    let sp_report = heavy(&mut sp, 6);

    let mut gl = GandivaLike::new();
    let gl_report = heavy(&mut gl, 6);

    // Efficiency: within a whisker of the efficiency-only scheduler...
    assert!(
        gf_report.utilization() >= gl_report.utilization() - 0.05,
        "gandiva-fair util {} vs gandiva-like {}",
        gf_report.utilization(),
        gl_report.utilization()
    );
    // ...and clearly better than hard partitioning on completed work.
    assert!(
        gf_report.finished_jobs() > sp_report.finished_jobs(),
        "gandiva-fair finished {} vs static partition {}",
        gf_report.finished_jobs(),
        sp_report.finished_jobs()
    );
    let gf_jct = JctStats::from_durations(&gf_report.jcts()).unwrap();
    let sp_jct = JctStats::from_durations(&sp_report.jcts()).unwrap();
    assert!(
        gf_jct.mean_secs < sp_jct.mean_secs,
        "gandiva-fair mean JCT {} should beat partitioning {}",
        gf_jct.mean_secs,
        sp_jct.mean_secs
    );
}
