//! Fault-injection integration tests.
//!
//! Three families of guarantees:
//!
//! 1. **Determinism** — the same `FaultPlan` and seed produce byte-identical
//!    reports and JSONL traces, at any `planning_workers` setting. Fault
//!    draws are keyed on `(seed, job, attempt)`, never on event
//!    interleaving, so parallel planning cannot perturb them.
//! 2. **Recovery** — failed migrations are retried with backoff and jobs
//!    survive checkpoint failures, restore failures, partitions, and
//!    flapping servers; the online auditor (migration lifecycle, ticket
//!    conservation across heals) stays clean throughout.
//! 3. **The queued-decision race** — a placement or migration decided just
//!    before its target server fails is counted in `stale_migrations` AND
//!    routed through the scheduler's retry path, so the job is re-placed
//!    instead of silently dropped.

use gfair::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

fn lossy_plan(seed: u64) -> FaultPlan {
    FaultPlan::none()
        .with_seed(seed)
        .with_migration_fail_rates(0.10, 0.10)
        .with_slowdown(0.10, 3.0)
        .with_partition(
            ServerId::new(2),
            SimTime::from_secs(2 * 3600),
            SimTime::from_secs(3 * 3600),
        )
        .with_flap(
            ServerId::new(4),
            SimTime::from_secs(4 * 3600),
            SimDuration::from_mins(10),
            SimDuration::from_mins(30),
            2,
        )
}

/// Runs one seeded, fault-injected simulation with `workers` planning
/// threads and a JSONL sink; returns the serialized report and trace bytes.
fn run_faulted(seed: u64, workers: usize, plan: FaultPlan, tag: &str) -> (String, Vec<u8>) {
    let path = std::env::temp_dir().join(format!(
        "gfair-fault-determinism-{}-{tag}.jsonl",
        std::process::id()
    ));
    let cluster = ClusterSpec::paper_testbed();
    let users = UserSpec::equal_users(6, 100);
    let mut params = PhillyParams::default();
    params.num_jobs = 150;
    params.jobs_per_hour = 120.0;
    params.median_service_mins = 30.0;
    let trace = TraceBuilder::new(params, seed).build(&users);
    let obs: SharedObs = Arc::new(Obs::new());
    obs.jsonl(&path).expect("trace file");
    let sim = Simulation::new(cluster, users, trace, SimConfig::default().with_seed(seed))
        .unwrap()
        .with_faults(plan)
        .with_obs(Arc::clone(&obs));
    let mut sched = GandivaFair::new(GfairConfig::default().with_planning_workers(workers))
        .with_obs(Arc::clone(&obs));
    let report = sim
        .run_until(&mut sched, SimTime::from_secs(8 * 3600))
        .expect("clean run under faults");
    let json = serde_json::to_string(&report).expect("serialize report");
    let bytes = std::fs::read(&path).expect("read trace");
    let _ = std::fs::remove_file(&path);
    (json, bytes)
}

#[test]
fn fault_runs_are_byte_deterministic() {
    let (a_report, a_trace) = run_faulted(11, 1, lossy_plan(5), "a");
    let (b_report, b_trace) = run_faulted(11, 1, lossy_plan(5), "b");
    assert!(!a_trace.is_empty());
    assert!(
        a_report.contains("\"migration_failures\":"),
        "report must carry the failure counter"
    );
    assert_eq!(a_report, b_report, "same plan+seed must replay identically");
    assert_eq!(a_trace, b_trace, "same plan+seed must replay identically");
}

#[test]
fn fault_runs_are_byte_identical_across_planning_workers() {
    let (seq_report, seq_trace) = run_faulted(11, 1, lossy_plan(5), "seq");
    let (par_report, par_trace) = run_faulted(11, 4, lossy_plan(5), "par");
    assert_eq!(
        seq_report, par_report,
        "parallel planning changed a faulted report"
    );
    assert_eq!(
        seq_trace, par_trace,
        "parallel planning changed a faulted trace"
    );
}

#[test]
fn fault_seed_changes_outcomes() {
    let (a, _) = run_faulted(11, 1, lossy_plan(5), "seed5");
    let (b, _) = run_faulted(11, 1, lossy_plan(6), "seed6");
    assert_ne!(a, b, "different fault seeds should diverge");
}

/// The bugfix regression: a placement queued by an arrival callback races a
/// server failure that lands before the round boundary. The engine must
/// count it as stale AND hand it to the scheduler's retry path, which
/// re-places the job after its backoff — the job finishes on the surviving
/// server instead of being stranded pending forever.
#[test]
fn queued_decision_racing_a_failure_is_counted_and_retried() {
    let cluster = ClusterSpec::homogeneous(3, 4);
    let users = UserSpec::equal_users(1, 100);
    let model = Arc::new(ModelProfile::with_default_overheads("uni", vec![1.0]));
    // One job, placed on server 0 at t=0. Servers 0 AND 1 fail at the same
    // instant: the eviction callback for server 0 re-places the job onto
    // server 1 (still up in its view), then server 1's failure lands before
    // the round boundary applies the queued placement — the classic race.
    let trace = vec![JobSpec::new(
        JobId::new(0),
        UserId::new(0),
        model,
        1,
        7200.0,
        SimTime::ZERO,
    )];
    let obs: SharedObs = Arc::new(Obs::new());
    let at = SimTime::from_secs(3600);
    let sim = Simulation::new(cluster, users, trace, SimConfig::default())
        .unwrap()
        .with_server_failure(ServerId::new(0), at)
        .with_server_failure(ServerId::new(1), at)
        .with_obs(Arc::clone(&obs));
    let mut sched = GandivaFair::new(GfairConfig::default()).with_obs(Arc::clone(&obs));
    let report = sim
        .run_until(&mut sched, SimTime::from_secs(6 * 3600))
        .expect("clean run");
    assert_eq!(
        report.stale_migrations, 1,
        "the raced placement must be counted"
    );
    assert_eq!(
        report.finished_jobs(),
        1,
        "the retry path must re-place the raced job on the surviving server"
    );
    // The counter and the trace-derived counter agree.
    let summary = report.obs.as_ref().expect("obs attached");
    assert_eq!(
        summary
            .counters
            .get("stale_migrations")
            .copied()
            .unwrap_or(0),
        report.stale_migrations as u64
    );
    assert_eq!(summary.violations, 0);
}

/// A partition window freezes a server, then heals: entitlements re-sync,
/// a reconcile event fires, the auditor's heal-conservation check passes,
/// and final user shares land within a few percent of the no-fault run.
#[test]
fn partition_heal_restores_shares() {
    fn run(plan: Option<FaultPlan>) -> SimReport {
        let cluster = ClusterSpec::homogeneous(4, 4);
        let users = UserSpec::equal_users(4, 100);
        let mut params = PhillyParams::default();
        params.num_jobs = 64;
        params.jobs_per_hour = 240.0;
        params.median_service_mins = 600.0;
        params.gang_weights = [1.0, 0.0, 0.0, 0.0];
        let trace = TraceBuilder::new(params, 3).build(&users);
        // One shared obs so scheduler-side events (Reconcile) land in the
        // same summary as the engine-side partition events.
        let obs: SharedObs = Arc::new(Obs::new());
        let mut sim = Simulation::new(cluster, users, trace, SimConfig::default())
            .unwrap()
            .with_obs(Arc::clone(&obs));
        if let Some(plan) = plan {
            sim = sim.with_faults(plan);
        }
        let mut sched = GandivaFair::new(GfairConfig::default()).with_obs(Arc::clone(&obs));
        sim.run_until(&mut sched, SimTime::from_secs(8 * 3600))
            .expect("clean run")
    }
    let partition = FaultPlan::none().with_partition(
        ServerId::new(1),
        SimTime::from_secs(2 * 3600),
        SimTime::from_secs(3 * 3600),
    );
    let faulted = run(Some(partition));
    let clean = run(None);
    let summary = faulted.obs.as_ref().expect("obs attached");
    assert_eq!(summary.violations, 0, "auditor must stay clean across heal");
    assert_eq!(summary.counters.get("partitions").copied(), Some(1));
    assert_eq!(summary.counters.get("partition_heals").copied(), Some(1));
    assert_eq!(summary.counters.get("reconciles").copied(), Some(1));
    // Saturated, symmetric workload: every user's final share should be
    // within a few percent of the no-fault run (the partitioned server kept
    // running its residents, so little service was actually lost).
    let total_f: f64 = faulted.user_gpu_secs.values().sum();
    let total_c: f64 = clean.user_gpu_secs.values().sum();
    for (user, &secs) in &clean.user_gpu_secs {
        let share_c = secs / total_c;
        let share_f = faulted.gpu_secs_of(*user) / total_f;
        assert!(
            (share_c - share_f).abs() < 0.05,
            "share of {user} drifted: clean {share_c:.3} vs faulted {share_f:.3}"
        );
    }
}

/// The DESIGN.md fault-model table must enumerate exactly the fault types a
/// `FaultPlan` can construct — no missing rows, no phantom rows — so the
/// documentation cannot silently drift from `FaultKind::ALL`.
#[test]
fn design_doc_fault_table_matches_fault_kinds() {
    let design = include_str!("../DESIGN.md");
    let start = design
        .find("## Fault model & degraded mode")
        .expect("DESIGN.md must have a 'Fault model & degraded mode' section");
    let section = &design[start..];
    let end = section[2..]
        .find("\n## ")
        .map(|i| i + 2)
        .unwrap_or(section.len());
    let section = &section[..end];
    let rows: Vec<&str> = section.lines().filter(|l| l.starts_with("| `")).collect();
    for kind in FaultKind::ALL {
        let cell = format!("| `{}` |", kind.name());
        assert!(
            rows.iter().any(|r| r.starts_with(&cell)),
            "fault kind {:?} ({}) has no row in the DESIGN.md fault table",
            kind,
            kind.name()
        );
    }
    assert_eq!(
        rows.len(),
        FaultKind::ALL.len(),
        "DESIGN.md fault table documents a fault kind that FaultPlan cannot construct: {rows:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random fault plans — random failure/slowdown rates, a random
    /// partition window, a random flap — never break the online auditor:
    /// no job is lost or duplicated across failed migrations, tickets are
    /// conserved across partition heals, and accounting stays exact.
    #[test]
    fn random_fault_plans_keep_the_auditor_clean(
        seed in 0u64..400,
        ckpt_pct in 0u32..20,
        restore_pct in 0u32..20,
        slow_pct in 0u32..25,
        victim in 0u32..4,
        part_start_mins in 30u64..180,
        part_len_mins in 10u64..120,
        flap_victim in 0u32..4,
        flap_start_mins in 30u64..240,
    ) {
        let cluster = ClusterSpec::homogeneous(4, 4);
        let users = UserSpec::equal_users(3, 100);
        let mut params = PhillyParams::default();
        params.num_jobs = 30;
        params.jobs_per_hour = 90.0;
        params.median_service_mins = 30.0;
        params.service_clamp_mins = (2.0, 180.0);
        params.gang_weights = [0.7, 0.3, 0.0, 0.0];
        let trace = TraceBuilder::new(params, seed).build(&users);
        let part_start = SimTime::from_secs(part_start_mins * 60);
        let plan = FaultPlan::none()
            .with_seed(seed ^ 0x9e37)
            .with_migration_fail_rates(ckpt_pct as f64 / 100.0, restore_pct as f64 / 100.0)
            .with_slowdown(slow_pct as f64 / 100.0, 3.0)
            .with_partition(
                ServerId::new(victim),
                part_start,
                part_start + SimDuration::from_mins(part_len_mins),
            )
            .with_flap(
                ServerId::new(flap_victim),
                SimTime::from_secs(flap_start_mins * 60),
                SimDuration::from_mins(10),
                SimDuration::from_mins(20),
                2,
            );
        let sim = Simulation::new(
            cluster,
            users.clone(),
            trace,
            SimConfig::default().with_seed(seed),
        )
        .expect("valid setup")
        .with_faults(plan);
        let mut sched = GandivaFair::new(GfairConfig::default());
        // A violation aborts the run, so a clean Ok is the main assertion.
        let report = sim
            .run_until(&mut sched, SimTime::from_secs(24 * 3600))
            .expect("no invariant violations under random fault plans");
        let summary = report.obs.as_ref().expect("obs attached");
        prop_assert_eq!(summary.violations, 0);
        // No job lost: every job either finished or is still active at the
        // horizon — and none finished more than once (JobRecord is keyed by
        // id, so a duplicate finish would have tripped the auditor).
        let user_sum: f64 = report.user_gpu_secs.values().sum();
        prop_assert!((user_sum - report.gpu_secs_used).abs() < 1e-6);
        prop_assert!(report.gpu_secs_used <= report.gpu_secs_capacity + 1e-6);
        // The failure counter agrees with the trace-derived counter.
        let traced = summary.counters.get("migration_failures").copied().unwrap_or(0);
        prop_assert_eq!(traced, report.migration_failures as u64);
    }
}
