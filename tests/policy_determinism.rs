//! Byte-determinism for the policy zoo: each policy behind the
//! `AllocPolicy` boundary must produce a byte-identical `SimReport` and
//! JSONL trace across planning worker counts (sequential, pinned fan-out,
//! auto), and with quiescence fast-forward on or off the report must stay
//! byte-identical while the trace may differ only in the per-round
//! scheduling records that skipping legitimately batches (`round_planned`
//! and `gang_packed` collapse into `rounds_skipped` — the same convention
//! as `tests/fast_forward.rs`). All runs are fault-injected, so the
//! degraded-mode paths are exercised too.

use gfair::prelude::*;
use std::sync::Arc;

/// Runs one seeded, fault-injected simulation of `policy` with the given
/// worker count and fast-forward setting; returns the serialized report
/// and the raw trace bytes.
fn run(policy: PolicyId, seed: u64, workers: usize, ff: bool, tag: &str) -> (String, Vec<u8>) {
    let path = std::env::temp_dir().join(format!(
        "gfair-policy-det-{}-{}-{tag}.jsonl",
        policy.name(),
        std::process::id()
    ));
    let cluster = ClusterSpec::paper_testbed();
    let users = UserSpec::equal_users(6, 100);
    let mut params = PhillyParams::default();
    params.num_jobs = 150;
    params.jobs_per_hour = 120.0;
    params.median_service_mins = 30.0;
    let trace = TraceBuilder::new(params, seed).build(&users);
    let obs: SharedObs = Arc::new(Obs::new());
    obs.jsonl(&path).expect("trace file");
    // Checkpoint/restore failures and a partition window on top of the
    // outage: a failed or undeliverable placement must flow through the
    // driver's round-plan re-placement path exactly once. (A queued
    // per-notice retry used to race that path and place an already-resident
    // job — a hard engine error, so any regression fails this test loudly.)
    let faults = FaultPlan::none()
        .with_seed(seed)
        .with_migration_fail_rates(0.05, 0.05)
        .with_partition(
            ServerId::new(1),
            SimTime::from_secs(3600),
            SimTime::from_secs(3 * 3600),
        );
    let sim = Simulation::new(cluster, users, trace, SimConfig::default().with_seed(seed))
        .unwrap()
        .with_server_failure(ServerId::new(2), SimTime::from_secs(2 * 3600))
        .with_server_recovery(ServerId::new(2), SimTime::from_secs(4 * 3600))
        .with_faults(faults)
        .with_obs(Arc::clone(&obs));
    let mut cfg = GfairConfig::default()
        .with_policy(policy)
        .with_planning_workers(workers);
    if !ff {
        cfg = cfg.without_fast_forward();
    }
    let mut sched = build_policy(cfg, Arc::clone(&obs));
    let report = sim
        .run_until(sched.as_mut(), SimTime::from_secs(8 * 3600))
        .expect("clean run");
    let json = serde_json::to_string(&report).expect("serialize report");
    let bytes = std::fs::read(&path).expect("read trace");
    let _ = std::fs::remove_file(&path);
    (json, bytes)
}

/// Trace lines minus the per-round scheduling records the fast-forward
/// path batches: `gang_packed` and `round_planned` (absent for replayed
/// rounds) and `rounds_skipped` (their single stand-in).
fn comparable_lines(bytes: &[u8]) -> Vec<String> {
    String::from_utf8(bytes.to_vec())
        .expect("utf8 trace")
        .lines()
        .filter(|l| {
            !l.starts_with("{\"kind\":\"gang_packed\"")
                && !l.starts_with("{\"kind\":\"round_planned\"")
                && !l.starts_with("{\"kind\":\"rounds_skipped\"")
        })
        .map(String::from)
        .collect()
}

/// Sequential vs pinned fan-out vs auto, and fast-forward on vs off, all
/// byte-identical for one policy.
fn assert_policy_deterministic(policy: PolicyId, seed: u64) {
    let (base_report, base_trace) = run(policy, seed, 1, true, "seq-ff");
    assert!(!base_trace.is_empty(), "{policy}: empty trace");
    let (par_report, par_trace) = run(policy, seed, 4, true, "par-ff");
    assert_eq!(
        base_report, par_report,
        "{policy}: parallel planning changed the report"
    );
    assert_eq!(
        base_trace, par_trace,
        "{policy}: parallel planning changed the trace"
    );
    let (auto_report, auto_trace) = run(policy, seed, 0, true, "auto-ff");
    assert_eq!(
        base_report, auto_report,
        "{policy}: auto worker count changed the report"
    );
    assert_eq!(
        base_trace, auto_trace,
        "{policy}: auto worker count changed the trace"
    );
    let (noff_report, noff_trace) = run(policy, seed, 1, false, "seq-noff");
    assert_eq!(
        base_report, noff_report,
        "{policy}: fast-forward changed the report"
    );
    assert_eq!(
        comparable_lines(&base_trace),
        comparable_lines(&noff_trace),
        "{policy}: fast-forward changed the trace beyond batched round records"
    );
}

#[test]
fn gavel_hetero_is_byte_deterministic() {
    assert_policy_deterministic(PolicyId::GavelHetero, 7);
}

#[test]
fn themis_ftf_is_byte_deterministic() {
    assert_policy_deterministic(PolicyId::ThemisFtf, 7);
}
