//! Automatic GPU trading on a heterogeneous cluster.
//!
//! A "VAE team" (jobs barely benefit from V100s) shares a K80-heavy cluster
//! with a "CNN team" (jobs run ~5x faster on V100s). With trading enabled,
//! Gandiva_fair profiles both teams, then the VAE team automatically sells
//! its V100 entitlement to the CNN team for extra K80 capacity — both teams
//! end up with *more* effective compute than their plain fair share.
//!
//! Run with: `cargo run --example hetero_trading`

use gfair::prelude::*;
use gfair::workloads::population::UserPopulation;

fn run(trading: bool, seed: u64) -> (SimReport, usize) {
    let cluster = ClusterSpec::build(
        GenCatalog::k80_p100_v100(),
        &[("K80", 10, 8), ("V100", 3, 4)], // 92 GPUs, fast ones scarce
    );
    let pop = UserPopulation::new()
        .user_of_class("vae-team", 100, ModelClass::LowSpeedup)
        .user_of_class("cnn-team", 100, ModelClass::HighSpeedup);
    let mut params = PhillyParams::default();
    params.num_jobs = 160;
    params.jobs_per_hour = 60.0;
    params.median_service_mins = 120.0;
    let trace = pop.trace(params, seed);

    let cfg = if trading {
        GfairConfig::default()
    } else {
        GfairConfig::default().without_trading()
    };
    let sim = Simulation::new(cluster, pop.users(), trace, SimConfig::default())
        .expect("valid configuration");
    let mut sched = GandivaFair::new(cfg);
    let report = sim
        .run_until(&mut sched, SimTime::from_secs(8 * 3600))
        .expect("valid scheduling decisions");
    (report, sched.trades().len())
}

fn main() {
    let (with, trades) = run(true, 11);
    let (without, _) = run(false, 11);

    println!("Heterogeneous cluster: 80 K80 + 12 V100, two teams, equal tickets\n");
    let mut table = Table::new(vec!["metric", "no trading", "with trading", "change"]);
    let rows: Vec<(&str, f64, f64)> = vec![
        (
            "vae-team effective K80-eq GPU-hours",
            without.base_secs_of(UserId::new(0)) / 3600.0,
            with.base_secs_of(UserId::new(0)) / 3600.0,
        ),
        (
            "cnn-team effective K80-eq GPU-hours",
            without.base_secs_of(UserId::new(1)) / 3600.0,
            with.base_secs_of(UserId::new(1)) / 3600.0,
        ),
        (
            "cluster effective K80-eq GPU-hours",
            without.total_base_secs() / 3600.0,
            with.total_base_secs() / 3600.0,
        ),
        (
            "jobs finished",
            without.finished_jobs() as f64,
            with.finished_jobs() as f64,
        ),
    ];
    for (name, base, traded) in rows {
        let change = if base > 0.0 {
            format!("{:+.1}%", 100.0 * (traded - base) / base)
        } else {
            "n/a".to_string()
        };
        table.row(vec![
            name.to_string(),
            format!("{base:.1}"),
            format!("{traded:.1}"),
            change,
        ]);
    }
    println!("{}", table.render());
    println!("trades executed: {trades}");
    println!("\nThe market sells scarce V100 time from the team that gains ~1.2x to the");
    println!("team that gains ~5x, paying the seller in extra K80 capacity: cluster-wide");
    println!("effective throughput rises and neither team drops below its fair share.");
}
