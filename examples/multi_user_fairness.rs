//! Cluster-wide fairness under user churn (the paper's headline behaviour).
//!
//! Three users join a busy cluster at staggered times. Watch each user's
//! share of cluster GPU time re-converge to the fair split as the active
//! set changes: 100% -> 50/50 -> ~33/33/33 -> back, with idle capacity
//! always redistributed (work conservation).
//!
//! Run with: `cargo run --example multi_user_fairness`

use gfair::metrics::user_share_series;
use gfair::prelude::*;
use gfair::workloads::philly::uniform_batch;

fn main() {
    let cluster = ClusterSpec::homogeneous(4, 8); // 32 GPUs
    let users = UserSpec::equal_users(3, 100);
    let model = zoo_by_name("ResNet-50").expect("zoo model");

    // Each user submits a steady batch of 1-GPU jobs sized so they stay
    // active for the whole window they are present.
    let mut trace = Vec::new();
    // User 0 arrives at t=0 and stays busy ~4 h.
    trace.extend(uniform_batch(
        0,
        UserId::new(0),
        &model,
        40,
        1,
        4.0 * 3600.0,
        SimTime::ZERO,
    ));
    // User 1 arrives at t=1h.
    trace.extend(uniform_batch(
        100,
        UserId::new(1),
        &model,
        40,
        1,
        2.5 * 3600.0,
        SimTime::from_secs(3600),
    ));
    // User 2 arrives at t=2h with a short burst and departs early.
    trace.extend(uniform_batch(
        200,
        UserId::new(2),
        &model,
        40,
        1,
        20.0 * 60.0,
        SimTime::from_secs(2 * 3600),
    ));

    let sim = Simulation::new(cluster, users.clone(), trace, SimConfig::default())
        .expect("valid configuration");
    let mut scheduler = GandivaFair::new(GfairConfig::default());
    let report = sim
        .run_until(&mut scheduler, SimTime::from_secs(5 * 3600))
        .expect("valid scheduling decisions");

    println!("Per-user share of dispensed GPU time, per 15-minute bucket");
    println!("(user2 bursts in at 02:00 and departs when its jobs finish)\n");
    // Aggregate three 5-minute windows per bucket. Stride rotates users in a
    // multi-window cycle, so sampling single windows would alias; summing
    // over the cycle shows the true share.
    let series: Vec<_> = users
        .iter()
        .map(|u| user_share_series(&report, u.id))
        .collect();
    let mut table = Table::new(vec!["bucket", "user0", "user1", "user2", "bar"]);
    for chunk_start in (0..report.timeseries.len()).step_by(3) {
        let end = (chunk_start + 3).min(report.timeseries.len());
        let totals: Vec<f64> = series
            .iter()
            .map(|s| s[chunk_start..end].iter().map(|p| p.gpu_secs).sum())
            .collect();
        let dispensed: f64 = totals.iter().sum();
        if dispensed <= 0.0 {
            continue;
        }
        let shares: Vec<f64> = totals.iter().map(|t| t / dispensed).collect();
        let bar: String = shares
            .iter()
            .map(|s| "#".repeat((s * 20.0).round() as usize))
            .collect::<Vec<_>>()
            .join("|");
        table.row(vec![
            report.timeseries[chunk_start].start.to_string(),
            format!("{:.2}", shares[0]),
            format!("{:.2}", shares[1]),
            format!("{:.2}", shares[2]),
            bar,
        ]);
    }
    println!("{}", table.render());

    println!(
        "overall utilization: {:.1}% (work conservation keeps it high through churn)",
        report.utilization() * 100.0
    );
}
