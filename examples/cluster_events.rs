//! Operational events: server failure/recovery and a priority change.
//!
//! A 32-GPU cluster shared by two teams. At 01:00 one server dies (its jobs
//! are evicted and re-placed); at 02:00 it comes back; at 03:00 team-a's
//! tickets are tripled. Watch utilization dip and recover, and shares step
//! from 50/50 to 75/25.
//!
//! Run with: `cargo run --example cluster_events`

use gfair::prelude::*;
use gfair::workloads::philly::uniform_batch;

fn main() {
    let cluster = ClusterSpec::homogeneous(4, 8);
    let users = UserSpec::equal_users(2, 100);
    let model = zoo_by_name("ResNet-50").expect("zoo model");
    let mut trace = uniform_batch(
        0,
        UserId::new(0),
        &model,
        24,
        1,
        50.0 * 3600.0,
        SimTime::ZERO,
    );
    trace.extend(uniform_batch(
        100,
        UserId::new(1),
        &model,
        24,
        1,
        50.0 * 3600.0,
        SimTime::ZERO,
    ));

    let sim = Simulation::new(cluster, users, trace, SimConfig::default())
        .expect("valid configuration")
        .with_server_failure(ServerId::new(3), SimTime::from_secs(3600))
        .with_server_recovery(ServerId::new(3), SimTime::from_secs(2 * 3600))
        .with_ticket_change(UserId::new(0), SimTime::from_secs(3 * 3600), 300);

    let mut sched = GandivaFair::new(GfairConfig::default());
    let report = sim
        .run_until(&mut sched, SimTime::from_secs(4 * 3600))
        .expect("valid scheduling decisions");

    println!("timeline: 01:00 server S3 fails | 02:00 S3 recovers | 03:00 team-a tickets x3\n");
    let mut table = Table::new(vec!["bucket", "team-a", "team-b", "util"]);
    for chunk in report.timeseries.chunks(3) {
        let a: f64 = chunk
            .iter()
            .map(|w| w.user_gpu_secs.get(&UserId::new(0)).copied().unwrap_or(0.0))
            .sum();
        let b: f64 = chunk
            .iter()
            .map(|w| w.user_gpu_secs.get(&UserId::new(1)).copied().unwrap_or(0.0))
            .sum();
        let cap: f64 = chunk.iter().map(|w| w.capacity_gpu_secs).sum();
        if a + b <= 0.0 {
            continue;
        }
        table.row(vec![
            chunk[0].start.to_string(),
            format!("{:.2}", a / (a + b)),
            format!("{:.2}", b / (a + b)),
            format!("{:.0}%", 100.0 * (a + b) / cap),
        ]);
    }
    println!("{}", table.render());
    println!(
        "migrations: {} (evictions re-placed + balancer respreading after recovery)",
        report.migrations
    );
}
