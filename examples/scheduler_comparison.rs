//! Head-to-head comparison of all five schedulers on one trace.
//!
//! Reproduces the paper's qualitative landscape: the efficiency-only
//! scheduler and Gandiva_fair keep the cluster busy; static partitioning is
//! fair but wastes idle partitions; FIFO suffers head-of-line blocking;
//! only Gandiva_fair combines fairness *and* efficiency.
//!
//! Run with: `cargo run --example scheduler_comparison`

use gfair::metrics::fairness::normalized_shares;
use gfair::prelude::*;
use gfair::sim::ClusterScheduler;

fn trace_and_users() -> (ClusterSpec, Vec<UserSpec>, Vec<JobSpec>) {
    let cluster = ClusterSpec::homogeneous(6, 8); // 48 GPUs
    let users = UserSpec::equal_users(4, 100);
    let mut params = PhillyParams::default();
    params.num_jobs = 120;
    params.jobs_per_hour = 60.0;
    params.median_service_mins = 90.0;
    let trace = TraceBuilder::new(params, 5).build(&users);
    (cluster, users, trace)
}

fn run(mut sched: Box<dyn ClusterScheduler>) -> SimReport {
    let (cluster, users, trace) = trace_and_users();
    let sim =
        Simulation::new(cluster, users, trace, SimConfig::default()).expect("valid configuration");
    sim.run_until(sched.as_mut(), SimTime::from_secs(12 * 3600))
        .expect("valid scheduling decisions")
}

fn main() {
    let (cluster, users, _) = trace_and_users();
    let schedulers: Vec<Box<dyn ClusterScheduler>> = vec![
        Box::new(GandivaFair::new(GfairConfig::default())),
        Box::new(GandivaLike::new()),
        Box::new(StaticPartition::new(&cluster, &users)),
        Box::new(Drf::new()),
        Box::new(Fifo::new()),
    ];

    let mut table = Table::new(vec![
        "scheduler",
        "util",
        "jain(norm)",
        "mean JCT (min)",
        "p95 JCT (min)",
        "finished",
    ]);
    for sched in schedulers {
        let report = run(sched);
        // Normalized service: equal tickets => equal entitlement.
        let entitled = vec![1.0; users.len()];
        let received: Vec<f64> = users.iter().map(|u| report.gpu_secs_of(u.id)).collect();
        let jain = jain_index(&normalized_shares(&received, &entitled));
        let jct = JctStats::from_durations(&report.jcts());
        table.row(vec![
            report.scheduler.clone(),
            format!("{:.1}%", report.utilization() * 100.0),
            format!("{jain:.3}"),
            jct.map(|j| format!("{:.0}", j.mean_secs / 60.0))
                .unwrap_or_else(|| "-".into()),
            jct.map(|j| format!("{:.0}", j.p95_secs / 60.0))
                .unwrap_or_else(|| "-".into()),
            report.finished_jobs().to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("(48-GPU cluster, 4 equal-ticket users, 120-job Philly-like trace, 12 h horizon)");
}
