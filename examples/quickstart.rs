//! Quickstart: share a small GPU cluster between two users with
//! Gandiva_fair and print what each user received.
//!
//! Run with: `cargo run --example quickstart`

use gfair::prelude::*;

fn main() {
    // A 24-GPU homogeneous cluster (3 servers x 8 GPUs).
    let cluster = ClusterSpec::homogeneous(3, 8);

    // Two users with equal tickets.
    let users = UserSpec::equal_users(2, 100);

    // A synthetic Philly-like trace: 60 jobs over a few hours.
    let mut params = PhillyParams::default();
    params.num_jobs = 60;
    params.jobs_per_hour = 30.0;
    let trace = TraceBuilder::new(params, 42).build(&users);

    // Simulate under the Gandiva_fair scheduler.
    let sim = Simulation::new(cluster, users.clone(), trace, SimConfig::default())
        .expect("valid configuration");
    let mut scheduler = GandivaFair::new(GfairConfig::default());
    let report = sim.run(&mut scheduler).expect("valid scheduling decisions");

    println!("scheduler        : {}", report.scheduler);
    println!("simulated time   : {}", report.end);
    println!("jobs finished    : {}", report.finished_jobs());
    println!("GPU utilization  : {:.1}%", report.utilization() * 100.0);
    println!("migrations       : {}", report.migrations);
    println!();

    let mut table = Table::new(vec!["user", "tickets", "gpu-hours", "share"]);
    let total: f64 = report.user_gpu_secs.values().sum();
    for u in &users {
        let secs = report.gpu_secs_of(u.id);
        table.row(vec![
            u.name.clone(),
            u.tickets.to_string(),
            format!("{:.1}", secs / 3600.0),
            format!("{:.1}%", 100.0 * secs / total),
        ]);
    }
    println!("{}", table.render());

    let jct = JctStats::from_durations(&report.jcts()).expect("jobs finished");
    println!(
        "JCT: mean {:.1} min, p50 {:.1} min, p95 {:.1} min",
        jct.mean_secs / 60.0,
        jct.p50_secs / 60.0,
        jct.p95_secs / 60.0
    );
}
