//! `gfair` — command-line front end for the Gandiva_fair reproduction.
//!
//! ```text
//! gfair simulate [OPTIONS]   run a simulation and print a summary
//! gfair zoo                  print the model zoo (true per-generation speedups)
//! gfair help                 this text
//!
//! simulate options:
//!   --cluster <paper|trading|homogeneous:<servers>x<gpus>>   (default paper)
//!   --scheduler <gandiva-fair|gandiva-like|static|drf|fifo|lottery>
//!                                                            (default gandiva-fair)
//!   --policy <gfair|gavel-hetero|themis-ftf>   allocation policy for the
//!                            gfair machinery (overrides --scheduler; see
//!                            POLICIES.md)
//!   --users <n>              number of equal-ticket users    (default 4)
//!   --jobs <n>               trace length                    (default 200)
//!   --jobs-per-hour <x>      Poisson arrival rate            (default 60)
//!   --median-mins <x>        median job service demand       (default 60)
//!   --seed <n>               RNG seed                        (default 42)
//!   --horizon-hours <h>      stop after h simulated hours    (default: run to completion)
//!   --no-trading             disable the trading market (gandiva-fair only)
//!   --no-balancing           disable migration-based balancing (gandiva-fair only)
//!   --save-trace <path>      write the generated trace as JSON
//!   --load-trace <path>      replay a trace saved earlier (overrides generation)
//!   --json <path>            write the full SimReport as JSON
//!   --trace <path.jsonl>     stream scheduler events as JSONL (lean tier)
//!   --trace-full <path.jsonl> full tier: adds per-placement decision
//!                            provenance and the per-gang packing stream
//!   --obs-summary            print per-phase wall-clock p50/p99, counters,
//!                            and auditor findings after the run
//!   --fail <s>@<h1>[-<h2>]   fail server s at hour h1 (recover at h2)
//!   --faults <plan.json>     inject faults from a FaultPlan file
//!                            (see examples/faults.json)
//!   --fault-seed <n>         override the plan's randomization seed
//!   --planning-workers <n>   round-planning threads: 0 auto, 1 sequential
//!                            (gandiva-fair only; plans are byte-identical
//!                            at any setting)
//! ```
//!
//! The online invariant auditor is always on: every run re-derives cluster
//! state from the decision stream and aborts on gang-atomicity, overcommit,
//! residency, or ticket-conservation violations.

use gfair::metrics::fairness::normalized_shares;
use gfair::metrics::mean_slowdown;
use gfair::prelude::*;
use gfair::sim::ClusterScheduler;
use gfair::workloads::{load_trace, save_trace};
use std::process::ExitCode;
use std::sync::Arc;

/// Minimal argv reader: `value_of("--seed")`.
struct Args(Vec<String>);

impl Args {
    fn value_of(&self, key: &str) -> Option<&str> {
        self.0
            .iter()
            .position(|a| a == key)
            .and_then(|i| self.0.get(i + 1))
            .map(String::as_str)
    }

    fn flag(&self, key: &str) -> bool {
        self.0.iter().any(|a| a == key)
    }

    fn parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.value_of(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value for {key}: {v}")),
        }
    }
}

fn parse_cluster(spec: &str) -> Result<ClusterSpec, String> {
    match spec {
        "paper" => Ok(ClusterSpec::paper_testbed()),
        "trading" => Ok(ClusterSpec::build(
            GenCatalog::k80_p100_v100(),
            &[("K80", 10, 8), ("V100", 3, 4)],
        )),
        other => {
            let rest = other
                .strip_prefix("homogeneous:")
                .ok_or_else(|| format!("unknown cluster spec: {other}"))?;
            let (servers, gpus) = rest
                .split_once('x')
                .ok_or_else(|| format!("expected homogeneous:<servers>x<gpus>, got {other}"))?;
            let servers: u32 = servers
                .parse()
                .map_err(|_| "bad server count".to_string())?;
            let gpus: u32 = gpus.parse().map_err(|_| "bad gpu count".to_string())?;
            if servers == 0 || gpus == 0 {
                return Err("cluster must have at least one server and GPU".into());
            }
            Ok(ClusterSpec::homogeneous(servers, gpus))
        }
    }
}

/// Parses `--fail <server>@<down-hours>[-<up-hours>]`, e.g. `0@2-5`.
fn parse_failure(spec: &str) -> Result<(ServerId, u64, Option<u64>), String> {
    let (server, when) = spec
        .split_once('@')
        .ok_or_else(|| format!("expected --fail <server>@<down-hours>[-<up-hours>], got {spec}"))?;
    let server: u32 = server
        .parse()
        .map_err(|_| format!("bad server id in --fail: {server}"))?;
    let (down, up) = match when.split_once('-') {
        Some((d, u)) => (d, Some(u)),
        None => (when, None),
    };
    let down: u64 = down
        .parse()
        .map_err(|_| format!("bad failure hour in --fail: {down}"))?;
    let up = match up {
        Some(u) => {
            let u: u64 = u
                .parse()
                .map_err(|_| format!("bad recovery hour in --fail: {u}"))?;
            if u <= down {
                return Err("--fail: recovery hour must be after failure hour".into());
            }
            Some(u)
        }
        None => None,
    };
    Ok((ServerId::new(server), down, up))
}

fn make_scheduler(
    name: &str,
    args: &Args,
    cluster: &ClusterSpec,
    users: &[UserSpec],
    seed: u64,
    obs: &SharedObs,
) -> Result<Box<dyn ClusterScheduler>, String> {
    let mut cfg = GfairConfig::default();
    if args.flag("--no-trading") {
        cfg = cfg.without_trading();
    }
    if args.flag("--no-balancing") {
        cfg = cfg.without_balancing();
    }
    cfg = cfg.with_planning_workers(args.parsed("--planning-workers", 0usize)?);
    // --policy selects an allocation policy behind the gfair machinery and
    // takes precedence over --scheduler (the baselines have no policy
    // boundary to plug into).
    if let Some(policy) = args.value_of("--policy") {
        let policy = PolicyId::parse(policy).ok_or_else(|| {
            format!(
                "unknown policy: {policy} (expected one of: {})",
                PolicyId::ALL.map(|p| p.name()).join("|")
            )
        })?;
        return Ok(build_policy(cfg.with_policy(policy), Arc::clone(obs)));
    }
    Ok(match name {
        "gandiva-fair" => Box::new(GandivaFair::new(cfg).with_obs(Arc::clone(obs))),
        "gandiva-like" => Box::new(GandivaLike::new()),
        "static" => Box::new(StaticPartition::new(cluster, users)),
        "drf" => Box::new(Drf::new()),
        "fifo" => Box::new(Fifo::new()),
        "lottery" => Box::new(LotteryGang::new(seed)),
        other => return Err(format!("unknown scheduler: {other}")),
    })
}

fn cmd_zoo() {
    let mut t = Table::new(vec![
        "model",
        "class",
        "K80",
        "P100",
        "V100",
        "ckpt+restore",
    ]);
    for e in gfair::workloads::zoo() {
        t.row(vec![
            e.model.name.clone(),
            format!("{:?}", e.class),
            "1.00".into(),
            format!("{:.2}", e.model.rates[1]),
            format!("{:.2}", e.model.rates[2]),
            format!("{:.0}s", e.model.migration_cost().as_secs_f64()),
        ]);
    }
    println!("{}", t.render());
}

fn cmd_simulate(args: &Args) -> Result<(), String> {
    let seed: u64 = args.parsed("--seed", 42)?;
    let cluster = parse_cluster(args.value_of("--cluster").unwrap_or("paper"))?;
    let n_users: u32 = args.parsed("--users", 4)?;
    if n_users == 0 {
        return Err("--users must be at least 1".into());
    }
    let users = UserSpec::equal_users(n_users, 100);

    let trace = match args.value_of("--load-trace") {
        Some(path) => load_trace(path).map_err(|e| format!("loading trace: {e}"))?,
        None => {
            let mut params = PhillyParams::default();
            params.num_jobs = args.parsed("--jobs", 200usize)?;
            params.jobs_per_hour = args.parsed("--jobs-per-hour", 60.0f64)?;
            params.median_service_mins = args.parsed("--median-mins", 60.0f64)?;
            // Gangs must fit the widest server: zero out infeasible sizes.
            let max_gang = cluster.max_gang();
            for (i, size) in [1u32, 2, 4, 8].iter().enumerate() {
                if *size > max_gang {
                    params.gang_weights[i] = 0.0;
                }
            }
            TraceBuilder::new(params, seed).build(&users)
        }
    };
    if let Some(path) = args.value_of("--save-trace") {
        save_trace(path, &trace).map_err(|e| format!("saving trace: {e}"))?;
        eprintln!("trace written to {path}");
    }

    let obs: SharedObs = Arc::new(Obs::new());
    if let Some(path) = args.value_of("--trace-full") {
        obs.jsonl_full(path)
            .map_err(|e| format!("opening trace file {path}: {e}"))?;
    } else if let Some(path) = args.value_of("--trace") {
        obs.jsonl(path)
            .map_err(|e| format!("opening trace file {path}: {e}"))?;
    }

    let sched_name = args.value_of("--scheduler").unwrap_or("gandiva-fair");
    let mut scheduler = make_scheduler(sched_name, args, &cluster, &users, seed, &obs)?;
    let failure = match args.value_of("--fail") {
        Some(spec) => {
            let parsed = parse_failure(spec)?;
            if parsed.0.index() >= cluster.servers.len() {
                return Err(format!("--fail: unknown server {}", parsed.0));
            }
            Some(parsed)
        }
        None => None,
    };
    let mut sim = Simulation::new(
        cluster,
        users.clone(),
        trace,
        SimConfig::default().with_seed(seed),
    )
    .map_err(|e| e.to_string())?
    .with_obs(Arc::clone(&obs));
    if let Some((server, down_hours, up_hours)) = failure {
        sim = sim.with_server_failure(server, SimTime::from_secs(down_hours * 3600));
        if let Some(up) = up_hours {
            sim = sim.with_server_recovery(server, SimTime::from_secs(up * 3600));
        }
    }
    match args.value_of("--faults") {
        Some(path) => {
            let json = std::fs::read_to_string(path)
                .map_err(|e| format!("reading fault plan {path}: {e}"))?;
            let mut plan = FaultPlan::from_json(&json)
                .map_err(|e| format!("parsing fault plan {path}: {e}"))?;
            if let Some(seed) = args.value_of("--fault-seed") {
                plan.seed = seed
                    .parse()
                    .map_err(|_| format!("invalid value for --fault-seed: {seed}"))?;
            }
            sim = sim.with_faults(plan);
        }
        None => {
            if args.value_of("--fault-seed").is_some() {
                return Err("--fault-seed requires --faults <plan.json>".into());
            }
        }
    }
    let report = match args.value_of("--horizon-hours") {
        Some(h) => {
            let hours: u64 = h.parse().map_err(|_| "bad --horizon-hours")?;
            sim.run_until(scheduler.as_mut(), SimTime::from_secs(hours * 3600))
        }
        None => sim.run(scheduler.as_mut()),
    }
    .map_err(|e| e.to_string())?;

    println!("scheduler         : {}", report.scheduler);
    println!("simulated time    : {}", report.end);
    println!("rounds            : {}", report.rounds);
    println!(
        "jobs finished     : {} / {}",
        report.finished_jobs(),
        report.jobs.len()
    );
    println!("GPU utilization   : {:.1}%", report.utilization() * 100.0);
    println!(
        "effective service : {:.1} base-GPU-hours",
        report.total_base_secs() / 3600.0
    );
    println!("migrations        : {}", report.migrations);
    if report.migration_failures > 0 {
        println!("migration failures: {}", report.migration_failures);
    }
    if let Some(j) = JctStats::from_durations(&report.jcts()) {
        println!(
            "JCT               : mean {:.1} min, p50 {:.1}, p95 {:.1}",
            j.mean_secs / 60.0,
            j.p50_secs / 60.0,
            j.p95_secs / 60.0
        );
    }
    if let Some(s) = mean_slowdown(&report) {
        println!("mean slowdown     : {s:.2}x");
    }
    let received: Vec<f64> = users.iter().map(|u| report.gpu_secs_of(u.id)).collect();
    let jain = jain_index(&normalized_shares(&received, &vec![1.0; users.len()]));
    println!("fairness (Jain)   : {jain:.3}");
    println!();
    let mut t = Table::new(vec!["user", "gpu-hours", "share"]);
    let total: f64 = received.iter().sum();
    for (u, r) in users.iter().zip(&received) {
        t.row(vec![
            u.name.clone(),
            format!("{:.1}", r / 3600.0),
            format!("{:.1}%", 100.0 * r / total.max(1e-9)),
        ]);
    }
    println!("{}", t.render());

    if args.flag("--obs-summary") {
        print_obs_summary(&obs);
    }
    if let Some(path) = args.value_of("--trace-full") {
        eprintln!("full-provenance trace written to {path}");
    } else if let Some(path) = args.value_of("--trace") {
        eprintln!("trace written to {path}");
    }

    if let Some(path) = args.value_of("--json") {
        let json = serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?;
        std::fs::write(path, json).map_err(|e| e.to_string())?;
        eprintln!("report written to {path}");
    }
    Ok(())
}

fn print_obs_summary(obs: &SharedObs) {
    let stats = obs.phase_stats();
    println!("observability");
    println!("-------------");
    if stats.is_empty() {
        println!("no instrumented phases ran (baseline schedulers time round planning only)");
    }
    if !stats.is_empty() {
        let mut t = Table::new(vec![
            "phase", "spans", "total ms", "p50 us", "p99 us", "max us",
        ]);
        // Name order, not instrumentation order: every section of this
        // summary sorts by name so runs diff cleanly.
        let mut stats = stats;
        stats.sort_by_key(|s| s.phase.name());
        for s in &stats {
            t.row(vec![
                s.phase.name().to_string(),
                s.count.to_string(),
                format!("{:.2}", s.total_ms),
                format!("{:.1}", s.p50_us),
                format!("{:.1}", s.p99_us),
                format!("{:.1}", s.max_us),
            ]);
        }
        println!("{}", t.render());
    }

    let summary = obs.summary();
    let mut t = Table::new(vec!["counter", "value"]);
    for (name, value) in &summary.counters {
        t.row(vec![name.clone(), value.to_string()]);
    }
    println!("{}", t.render());

    if !summary.gauges.is_empty() {
        let mut t = Table::new(vec!["gauge", "value"]);
        for (name, value) in &summary.gauges {
            t.row(vec![name.clone(), format!("{value:.3}")]);
        }
        println!("{}", t.render());
    }

    if !summary.histograms.is_empty() {
        let mut hists = summary.histograms.clone();
        hists.sort_by(|a, b| a.name.cmp(&b.name));
        let mut t = Table::new(vec!["histogram", "count", "mean", "p50", "p99", "max"]);
        for h in &hists {
            t.row(vec![
                h.name.clone(),
                h.count.to_string(),
                format!("{:.2}", h.mean),
                format!("{:.2}", h.p50),
                format!("{:.2}", h.p99),
                format!("{:.2}", h.max),
            ]);
        }
        println!("{}", t.render());
    }

    let ledger = &summary.ledger;
    println!(
        "fairness ledger: rounds {} jain {:.4} gini {:.4} rho(n {} mean {:.3} p99 {:.3})",
        ledger.rounds, ledger.jain, ledger.gini, ledger.rho.count, ledger.rho.mean, ledger.rho.p99
    );
    if !ledger.users.is_empty() {
        let mut t = Table::new(vec!["user", "deserved", "received", "finished", "rho mean"]);
        for row in &ledger.users {
            t.row(vec![
                row.user.to_string(),
                format!("{:.1}", row.deserved),
                format!("{:.1}", row.received),
                row.finished.to_string(),
                format!("{:.3}", row.rho_mean),
            ]);
        }
        println!("{}", t.render());
    }

    if summary.violations == 0 {
        println!(
            "auditor: OK ({} events checked, {} warnings)",
            summary.events, summary.warnings
        );
    } else {
        println!("auditor: {} VIOLATIONS", summary.violations);
        for v in obs.violations() {
            println!("{v}");
        }
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let cmd = argv.first().map(String::as_str).unwrap_or("help");
    let args = Args(argv.clone());
    match cmd {
        "zoo" => {
            cmd_zoo();
            ExitCode::SUCCESS
        }
        "simulate" => match cmd_simulate(&args) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        "help" | "--help" | "-h" => {
            print!("{}", HELP);
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("unknown command: {other}\n");
            print!("{}", HELP);
            ExitCode::FAILURE
        }
    }
}

const HELP: &str = "\
gfair - Gandiva_fair (EuroSys 2020) reproduction

USAGE:
  gfair simulate [OPTIONS]   run a simulation and print a summary
  gfair zoo                  print the model zoo
  gfair help                 this text

SIMULATE OPTIONS:
  --cluster <paper|trading|homogeneous:<servers>x<gpus>>  (default paper)
  --scheduler <gandiva-fair|gandiva-like|static|drf|fifo|lottery>
  --policy <gfair|gavel-hetero|themis-ftf>  allocation policy for the
                        gfair machinery (overrides --scheduler; the
                        policy guide is POLICIES.md)
  --users <n>           equal-ticket users          (default 4)
  --jobs <n>            trace length                (default 200)
  --jobs-per-hour <x>   Poisson arrival rate        (default 60)
  --median-mins <x>     median job service demand   (default 60)
  --seed <n>            RNG seed                    (default 42)
  --horizon-hours <h>   stop after h simulated hours
  --no-trading          disable the trading market  (gandiva-fair)
  --no-balancing        disable migration balancing (gandiva-fair)
  --save-trace <path>   write the generated trace as JSON
  --load-trace <path>   replay a previously saved trace
  --json <path>         write the full report as JSON
  --trace <path.jsonl>  stream scheduler events as JSONL (lean tier:
                        no per-placement provenance, no per-gang stream)
  --trace-full <path.jsonl>  full tier: every event plus decision
                        provenance for placements and retries
  --obs-summary         print phase p50/p99 timings, counters, and
                        auditor findings after the run
  --fail <s>@<h1>[-<h2>]  fail server s at hour h1 (recover at h2)
  --faults <plan.json>  inject faults from a FaultPlan file
                        (see examples/faults.json)
  --fault-seed <n>      override the fault plan's randomization seed
  --planning-workers <n>  round-planning threads: 0 auto, 1 sequential
                        (gandiva-fair; plans are byte-identical at any
                        setting)

The invariant auditor always runs: gang atomicity, GPU overcommit,
residency, ticket conservation, migration lifecycle, and conservation
across partition heals are checked online and violations abort the run
with the offending round's trace.
";
