//! # gfair — Gandiva_fair in Rust
//!
//! A from-scratch reproduction of *"Balancing efficiency and fairness in
//! heterogeneous GPU clusters for deep learning"* (EuroSys 2020): a
//! cluster-wide, ticket-based fair scheduler for gang-scheduled
//! deep-learning training jobs, with gang-aware stride scheduling,
//! migration-based load balancing, transparent job profiling, and automatic
//! GPU trading across hardware generations.
//!
//! This umbrella crate re-exports the workspace's public API:
//!
//! * [`types`] — ids, simulated time, GPU generations, models, jobs, users,
//!   cluster topologies, configuration.
//! * [`sim`] — the deterministic discrete-event cluster simulator.
//! * [`stride`] — stride/lottery/gang-aware/split-stride scheduling
//!   primitives.
//! * [`core`] — the Gandiva_fair scheduler itself, plus the pluggable
//!   [`AllocPolicy`](core::AllocPolicy) boundary it runs behind.
//! * [`policies`] — the policy zoo: Gavel-style heterogeneity-aware
//!   max-min fairness and Themis-style finish-time fairness behind the
//!   same boundary (see `POLICIES.md`).
//! * [`baselines`] — comparison schedulers (Gandiva-like, static
//!   partitioning, DRF, FIFO).
//! * [`workloads`] — the model zoo and Philly-like trace generation.
//! * [`metrics`] — fairness indices, JCT statistics, report tables.
//! * [`obs`] — structured decision tracing, metrics, self-profiling, and
//!   the online invariant auditor.
//! * [`faults`] — deterministic fault injection: scripted and randomized
//!   migration failures, slowdowns, partitions, and server flapping.
//!
//! ## Quickstart
//!
//! ```
//! use gfair::prelude::*;
//!
//! // A 24-GPU homogeneous cluster shared by two users.
//! let cluster = ClusterSpec::homogeneous(3, 8);
//! let users = UserSpec::equal_users(2, 100);
//! let mut params = PhillyParams::default();
//! params.num_jobs = 40;
//! let trace = TraceBuilder::new(params, 7).build(&users);
//!
//! let sim = Simulation::new(cluster, users, trace, SimConfig::default()).unwrap();
//! let mut scheduler = GandivaFair::new(GfairConfig::default());
//! let report = sim.run(&mut scheduler).unwrap();
//! assert_eq!(report.finished_jobs(), 40);
//! ```

pub use gfair_baselines as baselines;
pub use gfair_core as core;
pub use gfair_faults as faults;
pub use gfair_metrics as metrics;
pub use gfair_obs as obs;
pub use gfair_policies as policies;
pub use gfair_sim as sim;
pub use gfair_stride as stride;
pub use gfair_types as types;
pub use gfair_workloads as workloads;

/// The most common imports, bundled.
pub mod prelude {
    pub use gfair_baselines::{Drf, Fifo, GandivaLike, LotteryGang, StaticPartition};
    pub use gfair_core::{GandivaFair, GfairConfig, PolicyId, PolicyScheduler};
    pub use gfair_faults::{FaultInjector, FaultKind, FaultPlan};
    pub use gfair_metrics::{jain_index, max_min_ratio, JctStats, Table};
    pub use gfair_obs::{Obs, ObsSummary, SharedObs, TraceEvent};
    pub use gfair_policies::{build_policy, GavelHetero, ThemisFtf};
    pub use gfair_sim::{ClusterScheduler, SimReport, Simulation};
    pub use gfair_types::{
        ClusterSpec, GenCatalog, GenId, JobId, JobSpec, ModelProfile, PriceStrategy, ServerId,
        SimConfig, SimDuration, SimTime, UserId, UserSpec,
    };
    pub use gfair_workloads::{zoo, zoo_by_name, ModelClass, PhillyParams, TraceBuilder};
}
