#!/usr/bin/env bash
# Regenerates the tracked simulator benchmark baseline (BENCH_sim.json).
# Full mode runs the six scales (32 → 50000 GPUs plus the million-job
# trace) on long traces and takes ~30-60s depending on the machine; pass
# extra args (e.g. --seed 7 --out /tmp/b.json) through.
# Usage: scripts/bench.sh [bench_sim args...]
set -euo pipefail
cd "$(dirname "$0")/.."

cargo run --release -p gfair-bench --bin bench_sim -- "$@"
