#!/usr/bin/env bash
# The full CI gate, runnable locally: formatting, lints, release build,
# and the whole test suite. CI (.github/workflows/ci.yml) runs exactly this.
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "### cargo fmt --check"
cargo fmt --all -- --check

echo "### cargo clippy (deny warnings)"
# field_reassign_with_default is allowed: tests and examples configure
# PhillyParams by mutating a default, which reads better than struct-update
# syntax for one or two fields.
cargo clippy --workspace --all-targets -- -D warnings \
    -A clippy::field_reassign_with_default

echo "### cargo build --release"
cargo build --release

echo "### cargo test"
cargo test --workspace -q

echo "### cargo doc (deny warnings: types, obs, faults, sim, core, metrics, policies)"
# These crates carry #![warn(missing_docs)]; deny rustdoc warnings so
# public-API doc gaps fail the gate instead of rotting.
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps \
    -p gfair-types -p gfair-obs -p gfair-faults \
    -p gfair-sim -p gfair-core -p gfair-metrics -p gfair-policies

echo "### bench smoke"
# Criterion micro-benches in test mode (one iteration, no measurement) and a
# quick pass of the simulator throughput bench. The JSON goes under target/
# so CI never dirties the tracked BENCH_sim.json baseline; regenerate that
# deliberately with scripts/bench.sh.
cargo bench --workspace -- --test
cargo run --release -p gfair-bench --bin bench_sim -- --quick \
    --out target/BENCH_sim.quick.json

echo "### policy zoo smoke (P1 faceoff, 2h horizon)"
# Runs all three AllocPolicy implementations (gfair, gavel-hetero,
# themis-ftf) end-to-end on a short horizon. Catches a policy that
# panics, deadlocks, or trips the invariant auditor without paying for
# the full 8-hour P1 run.
cargo run --release -p gfair-bench --bin exp_p1_policy_faceoff -- --horizon-hours 2

echo "### fast-forward equivalence gate (1000 GPUs)"
# Runs the 1000-GPU scale twice — fast-forward on and with
# --no-fast-forward semantics (the naive quantum-by-quantum path) — both
# clean and under a fault plan, and byte-compares the SimReport JSON.
# Any divergence between the analytic multi-quantum step and the naive
# round loop fails the gate.
cargo run --release -p gfair-bench --bin bench_sim -- --verify --only 1000gpu

echo "### observability overhead smoke (1000 GPUs)"
# Runs the 1000-GPU scale tracing-off vs tracing-on (the default-tier JSONL
# sink) in the same process and fails if traced throughput drops below 90%
# of untraced. Guards the "pay for what you observe" contract.
cargo run --release -p gfair-bench --bin bench_sim -- --obs-overhead --only 1000gpu

echo "CI gate passed."
