#!/usr/bin/env bash
# The full CI gate, runnable locally: formatting, lints, release build,
# and the whole test suite. CI (.github/workflows/ci.yml) runs exactly this.
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "### cargo fmt --check"
cargo fmt --all -- --check

echo "### cargo clippy (deny warnings)"
# field_reassign_with_default is allowed: tests and examples configure
# PhillyParams by mutating a default, which reads better than struct-update
# syntax for one or two fields.
cargo clippy --workspace --all-targets -- -D warnings \
    -A clippy::field_reassign_with_default

echo "### cargo build --release"
cargo build --release

echo "### cargo test"
cargo test --workspace -q

echo "CI gate passed."
