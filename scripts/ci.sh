#!/usr/bin/env bash
# The full CI gate, runnable locally: formatting, lints, release build,
# and the whole test suite. CI (.github/workflows/ci.yml) runs exactly this.
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "### cargo fmt --check"
cargo fmt --all -- --check

echo "### cargo clippy (deny warnings)"
# field_reassign_with_default is allowed: tests and examples configure
# PhillyParams by mutating a default, which reads better than struct-update
# syntax for one or two fields.
cargo clippy --workspace --all-targets -- -D warnings \
    -A clippy::field_reassign_with_default

echo "### cargo build --release"
cargo build --release

echo "### cargo test"
cargo test --workspace -q

echo "### cargo doc (deny warnings: types, obs, faults, sim, core, metrics, policies)"
# These crates carry #![warn(missing_docs)]; deny rustdoc warnings so
# public-API doc gaps fail the gate instead of rotting.
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps \
    -p gfair-types -p gfair-obs -p gfair-faults \
    -p gfair-sim -p gfair-core -p gfair-metrics -p gfair-policies

echo "### bench smoke"
# Criterion micro-benches in test mode (one iteration, no measurement) and a
# quick pass of the simulator throughput bench. The JSON goes under target/
# so CI never dirties the tracked BENCH_sim.json baseline; regenerate that
# deliberately with scripts/bench.sh.
cargo bench --workspace -- --test
cargo run --release -p gfair-bench --bin bench_sim -- --quick \
    --out target/BENCH_sim.quick.json

echo "### policy zoo smoke (P1 faceoff, 2h horizon)"
# Runs all three AllocPolicy implementations (gfair, gavel-hetero,
# themis-ftf) end-to-end on a short horizon. Catches a policy that
# panics, deadlocks, or trips the invariant auditor without paying for
# the full 8-hour P1 run.
cargo run --release -p gfair-bench --bin exp_p1_policy_faceoff -- --horizon-hours 2

echo "### equivalence gate (5000 GPUs, gfair)"
# Runs the 5000-GPU scale twice — fully optimized (fast-forward + lazy
# settling) and fully naive (both off, every quantum stepped, every server
# re-planned) — both clean and under a fault plan, and byte-compares the
# SimReport JSON. Any divergence between the optimized loop and the naive
# one fails the gate. 5000 GPUs (not 1000) so the incremental balancer,
# sharded event queue, and lazy settling are exercised at a scale where
# they actually engage.
cargo run --release -p gfair-bench --bin bench_sim -- \
    --verify --only 5000gpu --policy gfair

echo "### equivalence gate (5000 GPUs, policy zoo)"
# The same optimized-vs-naive byte comparison for the competitor policies
# behind the PolicyScheduler driver: the batched water-filler and the
# partial-selection Themis auction must be exactly the algorithms they
# replaced, under faults included.
cargo run --release -p gfair-bench --bin bench_sim -- \
    --verify --only 5000gpu --policy gavel-hetero
cargo run --release -p gfair-bench --bin bench_sim -- \
    --verify --only 5000gpu --policy themis-ftf

echo "### throughput regression gate (5000 GPUs, best of 3, all policies)"
# Re-measures the 5000-GPU scale three times per policy (gfair plus the
# zoo — 5000 GPUs is a per-policy scale), keeps each policy's fastest run,
# and fails if any per-GPU throughput (gpu_hours_per_wall_sec) fell more
# than 10% below the matching (scale, policy) row of the committed
# BENCH_sim.json baseline — the scaling work's guardrail. Best-of-three
# because single runs on shared runners jitter by more than the margin this
# gate polices; the JSON goes under target/ so the tracked baseline stays
# clean (regenerate it with scripts/bench.sh).
cargo run --release -p gfair-bench --bin bench_sim -- \
    --only 5000gpu --best-of 3 --check-against BENCH_sim.json \
    --out target/BENCH_sim.check.json

echo "### observability overhead smoke (1000 GPUs)"
# Runs the 1000-GPU scale tracing-off vs tracing-on (the default-tier JSONL
# sink) in the same process, both arms with lazy settling off (tracing
# forces eager planning, so eager/eager is the pair that isolates the
# tracing cost), and fails if traced throughput drops below 75% of
# untraced. Guards the "pay for what you observe" contract; the ratio
# budget is restated when the untraced loop gets much faster (see the
# bench_sim module docs).
cargo run --release -p gfair-bench --bin bench_sim -- --obs-overhead --only 1000gpu

echo "CI gate passed."
