#!/usr/bin/env bash
# Regenerates every table/figure of the reconstructed evaluation.
# Usage: scripts/run_experiments.sh [seed]
#
# Every cluster-scale experiment writes a default-tier JSONL trace per
# simulation into target/exp_traces/ (via GFAIR_TRACE_DIR, see
# gfair_bench::exp_trace), and gfair-trace replays the first trace of each
# experiment through the fairness ledger so each figure ships with a
# fairness summary. exp_f2/exp_a2 are single-server stride micro-benches
# with no cluster simulation, hence no trace. The P-family policy
# faceoffs run one simulation per policy, so for exp_p* every trace is
# replayed — one per-policy fairness summary each, in PolicyId::ALL
# order (gfair, gavel-hetero, themis-ftf).
set -euo pipefail
cd "$(dirname "$0")/.."
SEED="${1:-42}"
cargo build --release -p gfair-bench --bins -p gfair-tracetool
TRACE_DIR="target/exp_traces"
rm -rf "$TRACE_DIR"
mkdir -p "$TRACE_DIR"
export GFAIR_TRACE_DIR="$TRACE_DIR"
for exp in exp_t1_model_zoo exp_f2_gang_stride exp_f3_user_churn \
           exp_f4_efficiency exp_f5_trading exp_f6_load_balance \
           exp_f7_scale exp_f8_quantum_sweep exp_f9_failure \
           exp_f10_migration_faults exp_f11_partition \
           exp_t2_migration_overhead exp_t3_fairness_summary \
           exp_a1_price_ablation exp_a2_split_stride exp_a3_lottery_variance \
           exp_p1_policy_faceoff exp_p2_policy_faults exp_p3_policy_hetero; do
  echo "### $exp"
  "./target/release/$exp" --seed "$SEED"
  echo
  for t in "$TRACE_DIR/${exp}_"*.jsonl; do
    [ -e "$t" ] || continue
    echo "--- fairness ledger ($(basename "$t"))"
    ./target/release/gfair-trace fairness "$t"
    case "$exp" in exp_p*) ;; *) break ;; esac
  done
  echo
done
