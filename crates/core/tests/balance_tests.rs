//! Focused tests for the migration planner, driven through the engine with
//! a harness scheduler that pins residency into a known-bad shape and then
//! invokes `plan_migrations` once.

use gfair_core::balance::plan_migrations;
use gfair_core::{Entitlements, GfairConfig, Profiler};
use gfair_sim::{Action, ClusterScheduler, RoundPlan, SimView, Simulation};
use gfair_types::{
    ClusterSpec, GenCatalog, GenId, JobId, JobSpec, ModelProfile, ServerId, SimConfig, SimTime,
    UserId, UserSpec,
};
use std::sync::Arc;

/// Places all jobs on fixed servers, then calls the balancer exactly once at
/// t >= `balance_at` and records its plan.
struct Harness {
    placements: Vec<(JobId, ServerId)>,
    balance_at: SimTime,
    cfg: GfairConfig,
    ent_users: Vec<(UserId, u64)>,
    profiler: Profiler,
    planned: Option<Vec<Action>>,
}

impl Harness {
    fn new(placements: Vec<(JobId, ServerId)>, cfg: GfairConfig) -> Self {
        Harness {
            placements,
            balance_at: SimTime::from_secs(60),
            cfg,
            ent_users: vec![(UserId::new(0), 100), (UserId::new(1), 100)],
            profiler: Profiler::new(3, 1),
            planned: None,
        }
    }
}

impl ClusterScheduler for Harness {
    fn name(&self) -> &'static str {
        "balance-harness"
    }

    fn on_job_arrival(&mut self, _view: &SimView<'_>, job: JobId) -> Vec<Action> {
        self.placements
            .iter()
            .find(|(j, _)| *j == job)
            .map(|&(job, server)| vec![Action::Place { job, server }])
            .unwrap_or_default()
    }

    fn plan_round(&mut self, view: &SimView<'_>) -> RoundPlan {
        if self.planned.is_none() && view.now() >= self.balance_at {
            let ent = Entitlements::base(&view.cluster().gpus_per_gen(), &self.ent_users);
            let actions = plan_migrations(view, &ent, &self.profiler, &self.cfg);
            self.planned = Some(actions.clone());
            return RoundPlan {
                run: Default::default(),
                actions,
            };
        }
        // Otherwise idle: these tests only care about the planner's output.
        RoundPlan::empty()
    }
}

fn mono_model() -> Arc<ModelProfile> {
    Arc::new(ModelProfile::with_default_overheads(
        "uni",
        vec![1.0, 1.0, 1.0],
    ))
}

fn job(id: u32, user: u32, gang: u32) -> JobSpec {
    JobSpec::new(
        JobId::new(id),
        UserId::new(user),
        mono_model(),
        gang,
        1_000_000.0,
        SimTime::ZERO,
    )
}

fn run_harness(cluster: ClusterSpec, trace: Vec<JobSpec>, harness: &mut Harness) {
    let users = UserSpec::equal_users(2, 100);
    let sim = Simulation::new(cluster, users, trace, SimConfig::default()).unwrap();
    let _ = sim.run_until(harness, SimTime::from_secs(180)).unwrap();
}

#[test]
fn spreading_moves_jobs_from_hot_to_cold_servers() {
    // Two 4-GPU servers; all six 1-GPU jobs pinned on server 0.
    let cluster = ClusterSpec::homogeneous(2, 4);
    let trace: Vec<JobSpec> = (0..6).map(|i| job(i, 0, 1)).collect();
    let placements = (0..6).map(|i| (JobId::new(i), ServerId::new(0))).collect();
    let cfg = GfairConfig {
        profiling_migrations: false,
        trading: false,
        ..GfairConfig::default()
    };
    let mut h = Harness::new(placements, cfg);
    run_harness(cluster, trace, &mut h);
    let plan = h.planned.expect("balancer ran");
    let moves: Vec<_> = plan
        .iter()
        .filter_map(|a| match a {
            Action::Migrate { job, to } => Some((*job, *to)),
            _ => None,
        })
        .collect();
    assert!(!moves.is_empty(), "hot server should shed load");
    assert!(
        moves.iter().all(|(_, to)| *to == ServerId::new(1)),
        "moves must target the cold server: {moves:?}"
    );
    // Load 6/4 vs 0: moving ~2-3 jobs evens it; never more than needed.
    assert!(
        moves.len() >= 2 && moves.len() <= 3,
        "moved {}",
        moves.len()
    );
}

#[test]
fn balanced_servers_trigger_no_migrations() {
    let cluster = ClusterSpec::homogeneous(2, 4);
    let trace: Vec<JobSpec> = (0..6).map(|i| job(i, 0, 1)).collect();
    let placements = (0..6)
        .map(|i| (JobId::new(i), ServerId::new(i % 2)))
        .collect();
    let cfg = GfairConfig {
        profiling_migrations: false,
        trading: false,
        ..GfairConfig::default()
    };
    let mut h = Harness::new(placements, cfg);
    run_harness(cluster, trace, &mut h);
    let plan = h.planned.expect("balancer ran");
    assert!(plan.is_empty(), "balanced cluster must not churn: {plan:?}");
}

#[test]
fn big_jobs_move_first() {
    // Server 0 holds a gang-2 and two gang-1 jobs (load 4/4); server 1 is
    // empty. The first move from the hot server must be the biggest job.
    let cluster = ClusterSpec::homogeneous(2, 4);
    let trace = vec![job(0, 0, 1), job(1, 0, 2), job(2, 0, 1)];
    let placements = vec![
        (JobId::new(0), ServerId::new(0)),
        (JobId::new(1), ServerId::new(0)),
        (JobId::new(2), ServerId::new(0)),
    ];
    let cfg = GfairConfig {
        profiling_migrations: false,
        trading: false,
        ..GfairConfig::default()
    };
    let mut h = Harness::new(placements, cfg);
    run_harness(cluster, trace, &mut h);
    let plan = h.planned.expect("balancer ran");
    let first = plan.iter().find_map(|a| match a {
        Action::Migrate { job, .. } => Some(*job),
        _ => None,
    });
    assert_eq!(first, Some(JobId::new(1)), "gang-2 job should move first");
}

#[test]
fn profiling_pass_targets_unprofiled_generations() {
    // Hetero cluster; one job on a K80 server; the profiler knows nothing,
    // so the profiling pass should send it toward the fastest unprofiled
    // generation (V100).
    let cluster = ClusterSpec::build(
        GenCatalog::k80_p100_v100(),
        &[("K80", 1, 4), ("P100", 1, 4), ("V100", 1, 4)],
    );
    let trace = vec![job(0, 0, 1)];
    let placements = vec![(JobId::new(0), ServerId::new(0))];
    let cfg = GfairConfig {
        trading: false,
        ..GfairConfig::default()
    };
    let mut h = Harness::new(placements, cfg);
    run_harness(cluster.clone(), trace, &mut h);
    let plan = h.planned.expect("balancer ran");
    let target = plan.iter().find_map(|a| match a {
        Action::Migrate { job, to } if *job == JobId::new(0) => Some(*to),
        _ => None,
    });
    let v100_server = cluster
        .servers_of_gen(GenId::new(2))
        .next()
        .expect("v100 server")
        .id;
    assert_eq!(target, Some(v100_server));
}

#[test]
fn realization_pass_moves_overconsumers_toward_entitled_generation() {
    // Two users, equal tickets, on 8 K80 + 8 V100. User 0 squats on the
    // whole V100 server (8 GPUs used vs 4 entitled) while user 1 sits on
    // K80. The realization pass must move some user-0 job V100 -> K80.
    let cluster = ClusterSpec::build(
        GenCatalog::k80_p100_v100(),
        &[("K80", 1, 8), ("V100", 1, 8)],
    );
    let mut trace: Vec<JobSpec> = (0..4).map(|i| job(i, 0, 2)).collect();
    trace.extend((10..14).map(|i| job(i, 1, 2)));
    let mut placements: Vec<(JobId, ServerId)> = (0..4)
        .map(|i| (JobId::new(i), ServerId::new(1))) // V100 server
        .collect();
    placements.extend((10..14).map(|i| (JobId::new(i), ServerId::new(0))));
    let cfg = GfairConfig {
        profiling_migrations: false,
        trading: false,
        ..GfairConfig::default()
    };
    let mut h = Harness::new(placements, cfg);
    run_harness(cluster, trace, &mut h);
    let plan = h.planned.expect("balancer ran");
    let user0_moves_to_k80 = plan.iter().any(|a| match a {
        Action::Migrate { job, to } => job.raw() < 4 && *to == ServerId::new(0),
        _ => false,
    });
    assert!(
        user0_moves_to_k80,
        "over-consumer should be pushed toward its entitled generation: {plan:?}"
    );
}

#[test]
fn migration_budget_is_respected() {
    // 12 jobs all pinned on one server of four: even though much more
    // movement would help, at most max_migrations_per_tick moves are planned.
    let cluster = ClusterSpec::homogeneous(4, 4);
    let trace: Vec<JobSpec> = (0..12).map(|i| job(i, 0, 1)).collect();
    let placements = (0..12).map(|i| (JobId::new(i), ServerId::new(0))).collect();
    let cfg = GfairConfig {
        profiling_migrations: false,
        trading: false,
        ..GfairConfig::default()
    };
    let mut h = Harness::new(placements, cfg);
    run_harness(cluster, trace, &mut h);
    let plan = h.planned.expect("balancer ran");
    let budget = SimConfig::default().max_migrations_per_tick as usize;
    assert!(
        plan.len() <= budget,
        "planned {} moves, budget {budget}",
        plan.len()
    );
}

#[test]
fn fairness_pass_spreads_a_users_jobs_across_servers() {
    // Two users, equal entitlements, two 4-GPU servers. User 0's four jobs
    // all sit on server 0 while user 1's four jobs are split evenly. Load
    // spreading alone would not fire (loads 6/4 vs 2/4 moves any job); the
    // fairness pass must move *user 0's* jobs toward server 1, where user 0
    // is under-represented.
    let cluster = ClusterSpec::homogeneous(2, 4);
    let mut trace: Vec<JobSpec> = (0..4).map(|i| job(i, 0, 1)).collect();
    trace.extend((10..14).map(|i| job(i, 1, 1)));
    let mut placements: Vec<(JobId, ServerId)> =
        (0..4).map(|i| (JobId::new(i), ServerId::new(0))).collect();
    placements.push((JobId::new(10), ServerId::new(0)));
    placements.push((JobId::new(11), ServerId::new(0)));
    placements.push((JobId::new(12), ServerId::new(1)));
    placements.push((JobId::new(13), ServerId::new(1)));
    let cfg = GfairConfig {
        profiling_migrations: false,
        trading: false,
        ..GfairConfig::default()
    };
    let mut h = Harness::new(placements, cfg);
    run_harness(cluster, trace, &mut h);
    let plan = h.planned.expect("balancer ran");
    let user0_to_s1 = plan.iter().any(|a| match a {
        Action::Migrate { job, to } => job.raw() < 4 && *to == ServerId::new(1),
        _ => false,
    });
    assert!(
        user0_to_s1,
        "fairness pass should move a user-0 job to server 1: {plan:?}"
    );
}
