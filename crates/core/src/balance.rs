//! Migration-based load balancing.
//!
//! Time slicing is enforced per server, so cluster-wide fairness needs
//! servers to carry comparable load — and trading only changes *numbers*
//! until jobs actually move to the generations their owners now own. The
//! balancer runs periodically and plans up to
//! [`gfair_types::SimConfig::max_migrations_per_tick`] migrations, in three
//! passes:
//!
//! 1. **Profiling migrations** — move one job of a model that lacks rate
//!    estimates on some generation to a server of that generation, so the
//!    profiler can learn the speedups trading needs. (Transparent
//!    profiling-by-migration, as in the paper.)
//! 2. **Entitlement realization** — users consuming more of a generation
//!    than their (post-trade) entitlement have jobs moved toward the
//!    generations where they hold unused entitlement, biggest jobs first.
//! 3. **Fairness spreading** — within a generation, a user whose jobs are
//!    concentrated on few servers cannot consume their share there (local
//!    stride divides each server among the users *present* on it); their
//!    surplus jobs move toward servers where they are under-represented.
//! 4. **Load spreading** — within each generation, move the biggest
//!    eligible job from the most- to the least-loaded server while the
//!    spread exceeds the threshold and the move strictly helps.
//!
//! Every pass honors the per-job migration cooldown and never plans two
//! moves for the same job in one tick.
//!
//! During a network partition the balancer degrades gracefully: partitioned
//! servers are excluded both as migration targets (a restore request cannot
//! be delivered) and as sources (jobs there cannot be checkpointed), so
//! balancing continues among the reachable remainder of the cluster.

use crate::config::GfairConfig;
use crate::entitlement::Entitlements;
use crate::profiler::Profiler;
use gfair_obs::{Candidate, Obs, Phase, TraceEvent};
use gfair_sim::{Action, JobInfo, SimView};
use gfair_types::{GenId, JobId, ServerId, SimTime, UserId};
use std::collections::{BTreeMap, BTreeSet};

/// Tie-break rule for load-based target selection (passes 1 and 2).
const TIE_BREAK_LOAD: &str = "least projected load, then lowest server id";

/// Cap on the scored candidates carried in one migration decision.
const MAX_WHY_CANDIDATES: usize = 8;

/// Provenance for one planned migration: which pass chose it, what the
/// endpoints were, and which alternatives were scored. Paired 1:1 with the
/// `Action::Migrate` pushed at the same time.
struct MoveWhy {
    job: JobId,
    user: UserId,
    pass: &'static str,
    from: ServerId,
    to: ServerId,
    tie_break: &'static str,
    considered: u32,
    candidates: Vec<Candidate>,
}

/// Plans this tick's migrations. Pure with respect to the view: the caller
/// applies the returned actions through the simulator.
pub fn plan_migrations(
    view: &SimView<'_>,
    ent: &Entitlements,
    profiler: &Profiler,
    cfg: &GfairConfig,
) -> Vec<Action> {
    plan_migrations_explained(view, ent, profiler, cfg, false).0
}

/// [`plan_migrations`] plus one [`MoveWhy`] provenance record per action.
/// With `want_why` false the provenance side is skipped entirely: no
/// candidate labels are formatted and `why` comes back empty, keeping the
/// untraced path allocation-free.
fn plan_migrations_explained(
    view: &SimView<'_>,
    ent: &Entitlements,
    profiler: &Profiler,
    cfg: &GfairConfig,
    want_why: bool,
) -> (Vec<Action>, Vec<MoveWhy>) {
    let mut planner = Planner::new(view, cfg, want_why);
    if cfg.profiling_migrations {
        planner.profiling_pass(profiler);
    }
    planner.realization_pass(ent);
    planner.fairness_pass(ent);
    planner.spreading_pass();
    (planner.actions, planner.why)
}

/// Observed [`plan_migrations`]: the whole search (all passes) is timed as
/// one [`Phase::MigrationSearch`] span, and every planned move is emitted
/// as a `migration` [`TraceEvent::Decision`] naming the pass that chose it
/// and the alternatives it scored. The resulting `Migration` trace events
/// are emitted by the engine when the moves are actually applied.
pub fn plan_migrations_traced(
    obs: &Obs,
    view: &SimView<'_>,
    ent: &Entitlements,
    profiler: &Profiler,
    cfg: &GfairConfig,
) -> Vec<Action> {
    let want_why = obs.tracing();
    let (actions, why) = obs.time(Phase::MigrationSearch, || {
        plan_migrations_explained(view, ent, profiler, cfg, want_why)
    });
    let now = view.now();
    for w in why {
        obs.emit(TraceEvent::Decision {
            t: now,
            decision: "migration".to_string(),
            job: Some(w.job),
            user: Some(w.user),
            chosen: format!(
                "server:{} -> server:{} ({} pass)",
                w.from.index(),
                w.to.index(),
                w.pass
            ),
            tie_break: w.tie_break.to_string(),
            considered: w.considered,
            candidates: w.candidates,
            rejected: Vec::new(),
        });
    }
    actions
}

/// Working state for one balancing tick.
struct Planner<'a, 'v> {
    view: &'a SimView<'v>,
    cfg: &'a GfairConfig,
    now: SimTime,
    budget: u32,
    /// Jobs already scheduled to move this tick.
    moved: BTreeSet<JobId>,
    /// Per-server GPU-demand delta from the moves planned so far, overlaid
    /// on the view's live residency demand. Only touched servers carry an
    /// entry, so a tick starts O(1) instead of snapshotting every server.
    delta: BTreeMap<ServerId, i64>,
    actions: Vec<Action>,
    /// Whether to record provenance at all (a trace sink is attached).
    want_why: bool,
    /// Provenance, one record per entry in `actions` when `want_why`.
    why: Vec<MoveWhy>,
}

impl<'a, 'v> Planner<'a, 'v> {
    fn new(view: &'a SimView<'v>, cfg: &'a GfairConfig, want_why: bool) -> Self {
        Planner {
            view,
            cfg,
            now: view.now(),
            budget: view.config().max_migrations_per_tick,
            moved: BTreeSet::new(),
            delta: BTreeMap::new(),
            actions: Vec::new(),
            want_why,
            why: Vec::new(),
        }
    }

    /// Projected GPU demand of a server after the moves planned so far.
    fn projected_demand(&self, server: ServerId) -> i64 {
        self.view.resident_demand(server) as i64 + self.delta.get(&server).copied().unwrap_or(0)
    }

    /// Projected load of a server (demand after planned moves / GPUs).
    fn load(&self, server: ServerId) -> f64 {
        let gpus = self.view.cluster().server(server).num_gpus;
        self.projected_demand(server) as f64 / gpus as f64
    }

    /// Whether a job may move this tick. A job on a partitioned server is
    /// frozen: the checkpoint request cannot be delivered, so the balancer
    /// leaves it alone until the partition heals.
    fn eligible(&self, job: &JobInfo) -> bool {
        if self.moved.contains(&job.id) || !job.state.is_schedulable() {
            return false;
        }
        if let Some(server) = job.server {
            if !self.view.is_reachable(server) {
                return false;
            }
        }
        match job.last_migration {
            Some(t) => t + self.view.config().migration_cooldown <= self.now,
            None => true,
        }
    }

    /// Extreme reachable server of `gen` able to host `gang` under the
    /// `(projected load ⟨total_cmp⟩, server id)` total order — the minimum
    /// (`most == false`, a migration target) or the maximum (`most == true`,
    /// a spreading source).
    ///
    /// Reads the sim's load index instead of scanning the generation: a
    /// server no planned move has touched carries no `delta` entry, so its
    /// projected load *is* its index key and the ordered walk can stop at
    /// the first fitting entry. Only the handful of delta-touched servers
    /// are then re-scored live. Selection is exactly the full scan's:
    /// untouched extreme vs. touched extremes under the same total order.
    fn extreme_in_gen(&self, gen: GenId, gang: u32, most: bool) -> Option<ServerId> {
        let view = self.view;
        let untouched = |s: &ServerId| {
            !self.delta.contains_key(s)
                && view.is_reachable(*s)
                && view.cluster().server(*s).num_gpus >= gang
        };
        let mut best: Option<(f64, ServerId)> = if most {
            view.servers_by_load(gen).rev().find(untouched)
        } else {
            view.servers_by_load(gen).find(untouched)
        }
        .map(|s| (self.load(s), s));
        for &s in self.delta.keys() {
            let spec = view.cluster().server(s);
            if spec.gen != gen || !view.is_reachable(s) || spec.num_gpus < gang {
                continue;
            }
            let load = self.load(s);
            let better = match best {
                None => true,
                Some((bl, bid)) => {
                    let ord = load.total_cmp(&bl).then(s.cmp(&bid));
                    if most {
                        ord.is_gt()
                    } else {
                        ord.is_lt()
                    }
                }
            };
            if better {
                best = Some((load, s));
            }
        }
        best.map(|(_, s)| s)
    }

    /// Least-loaded reachable server of `gen` that can host `gang`, by
    /// projected load, plus the fitting-server count and scored candidates
    /// for decision provenance.
    fn target_in_gen(&self, gen: GenId, gang: u32) -> (Option<ServerId>, u32, Vec<Candidate>) {
        if !self.want_why {
            // Untraced: index-backed min, no allocation. The considered
            // count is only ever read into provenance, which this path
            // skips, so it is not tallied here.
            return (self.extreme_in_gen(gen, gang, false), 0, Vec::new());
        }
        // Scores stay as plain pairs until after truncation (see the same
        // pattern in the central scheduler): label formatting is deferred
        // to the few candidates that survive.
        let mut scored: Vec<(f64, ServerId)> = Vec::new();
        for s in self.view.reachable_servers_of_gen(gen) {
            if s.num_gpus < gang {
                continue;
            }
            scored.push((self.load(s.id), s.id));
        }
        let considered = scored.len() as u32;
        scored.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let best = scored.first().map(|&(_, id)| id);
        scored.truncate(MAX_WHY_CANDIDATES);
        let candidates = scored
            .into_iter()
            .map(|(load, id)| Candidate {
                label: format!("server:{}", id.index()),
                score: load,
            })
            .collect();
        (best, considered, candidates)
    }

    /// Commits a planned move, updating projections and recording its
    /// provenance.
    #[allow(clippy::too_many_arguments)]
    fn push_move(
        &mut self,
        job: &JobInfo,
        to: ServerId,
        pass: &'static str,
        tie_break: &'static str,
        considered: u32,
        candidates: Vec<Candidate>,
    ) {
        let from = job.server.expect("resident job has a server");
        *self.delta.entry(from).or_insert(0) -= job.gang as i64;
        *self.delta.entry(to).or_insert(0) += job.gang as i64;
        self.moved.insert(job.id);
        self.budget -= 1;
        self.actions.push(Action::Migrate { job: job.id, to });
        if self.want_why {
            self.why.push(MoveWhy {
                job: job.id,
                user: job.user,
                pass,
                from,
                to,
                tie_break,
                considered,
                candidates,
            });
        }
    }

    /// Pass 1: send jobs of unprofiled models to the generations the
    /// profiler is missing (at most two per tick — profiling is background
    /// work, not the main event).
    ///
    /// Walks the index's model → active-jobs map, so a model's missing
    /// generations are computed once per model instead of once per job and
    /// fully-profiled models (the steady state) cost one lookup each.
    /// The index's model → active-jobs map narrows the scan to jobs of
    /// still-unprofiled models: in the steady state (every model profiled)
    /// the pass costs one profiler lookup per active model and returns
    /// before touching any job. The candidate jobs are visited in id order,
    /// exactly as the former full active-job scan did.
    fn profiling_pass(&mut self, profiler: &Profiler) {
        let view = self.view;
        let mut missing_by_model: BTreeMap<&std::sync::Arc<str>, Vec<GenId>> = BTreeMap::new();
        let mut probe_jobs: BTreeSet<JobId> = BTreeSet::new();
        for (model, jobs) in view.active_models() {
            let unprofiled = profiler.unprofiled_gens(model);
            if !unprofiled.is_empty() {
                missing_by_model.insert(model, unprofiled);
                probe_jobs.extend(jobs.iter().copied());
            }
        }
        if missing_by_model.is_empty() {
            return;
        }
        let mut sent_models: BTreeSet<&std::sync::Arc<str>> = BTreeSet::new();
        let mut sent = 0u32;
        for &id in &probe_jobs {
            if self.budget == 0 || sent >= 2 {
                return;
            }
            let Some(job) = view.job(id) else {
                continue;
            };
            if !self.eligible(job) || sent_models.contains(&job.model) {
                continue;
            }
            let Some(cur_server) = job.server else {
                continue;
            };
            let cur_gen = view.cluster().server(cur_server).gen;
            // Only consider gens this job could actually run on, and prefer
            // the fastest unprofiled one (most valuable information).
            let unprofiled = &missing_by_model[&job.model];
            let Some(&gen) = unprofiled.iter().rfind(|&&g| g != cur_gen) else {
                continue;
            };
            let (target, considered, candidates) = self.target_in_gen(gen, job.gang);
            if let Some(to) = target {
                sent_models.insert(&job.model);
                self.push_move(job, to, "profiling", TIE_BREAK_LOAD, considered, candidates);
                sent += 1;
            }
        }
    }

    /// Pass 2: realize entitlements — move jobs of over-consuming users
    /// from generations where they exceed their allocation toward
    /// generations where they have slack, biggest jobs first.
    fn realization_pass(&mut self, ent: &Entitlements) {
        // Per (user, gen) GPUs consumed by placed jobs: read straight from
        // the engine's materialized index (exact integer sums) instead of
        // re-summing every active job each tick.
        let num_gens = ent.num_gens();
        let users: Vec<gfair_types::UserId> = ent.users().collect();
        for user in users {
            if self.budget == 0 {
                return;
            }
            // Find this user's most-overused and most-underused generation.
            let mut over: Option<(GenId, f64)> = None;
            let mut under: Option<(GenId, f64)> = None;
            for g in 0..num_gens {
                let gen = GenId::new(g as u32);
                let u = self.view.user_gen_assigned(user, gen) as f64;
                let a = ent.get(user, gen);
                let excess = u - a;
                if excess > 1.0 && over.map(|(_, e)| excess > e).unwrap_or(true) {
                    over = Some((gen, excess));
                }
                let slack = a - u;
                if slack > 1.0 && under.map(|(_, s)| slack > s).unwrap_or(true) {
                    under = Some((gen, slack));
                }
            }
            let (Some((over_gen, excess)), Some((under_gen, slack))) = (over, under) else {
                continue;
            };
            // Biggest eligible job that fits the imbalance on both sides.
            let limit = excess.min(slack) + 1.0;
            let candidate = self
                .view
                .jobs_of_user(user)
                .filter(|j| self.eligible(j))
                .filter(|j| {
                    j.server
                        .map(|s| self.view.cluster().server(s).gen == over_gen)
                        .unwrap_or(false)
                })
                .filter(|j| (j.gang as f64) <= limit)
                .max_by_key(|j| (j.gang, std::cmp::Reverse(j.id)));
            if let Some(job) = candidate {
                let (target, considered, candidates) = self.target_in_gen(under_gen, job.gang);
                if let Some(to) = target {
                    self.push_move(
                        job,
                        to,
                        "realization",
                        TIE_BREAK_LOAD,
                        considered,
                        candidates,
                    );
                }
            }
        }
    }

    /// Pass 3: spread each user's jobs across the servers of a generation
    /// in proportion to server size, so every user can actually consume
    /// their per-server stride share. Without this, a user whose jobs are
    /// piled on one server (e.g. after a failure re-placement burst) is
    /// capped at that server's split even though they own cluster-wide
    /// share.
    fn fairness_pass(&mut self, ent: &Entitlements) {
        let gens: Vec<GenId> = self.view.cluster().catalog.ids().collect();
        let users: Vec<gfair_types::UserId> = ent.users().collect();
        // Per-user placed demand — by server and totaled by generation —
        // comes from the engine's materialized index (exact integer sums),
        // so the pass never scans the active-job list.
        for gen in gens {
            if self.budget == 0 {
                return;
            }
            let servers: Vec<(ServerId, u32)> = self
                .view
                .reachable_servers_of_gen(gen)
                .map(|s| (s.id, s.num_gpus))
                .collect();
            if servers.len() < 2 {
                continue;
            }
            let gen_gpus: u32 = servers.iter().map(|&(_, g)| g).sum();
            // Size-ranked server list for the absence probe below: a server
            // the user is absent from has deficit proportional to its size,
            // so the best such candidate is the first entry of this list
            // (biggest, then lowest-id) the user has nothing placed on.
            let mut by_size: Vec<(ServerId, u32)> = servers.clone();
            by_size.sort_by_key(|&(s, g)| (std::cmp::Reverse(g), s));
            for &user in &users {
                if self.budget == 0 {
                    return;
                }
                // The user's entitlement on this generation, spread over its
                // servers in proportion to server size.
                let alloc = ent.get(user, gen);
                if alloc <= 0.0 {
                    continue;
                }
                // This user's placed demand on this generation.
                let total = self.view.user_gen_assigned(user, gen) as f64;
                if total <= 0.0 {
                    continue;
                }
                // A user cannot spread more demand than they have; target
                // per-server presence proportional to server size, capped by
                // total demand.
                let spreadable = total.min(alloc);
                // Folding every server of the generation collapses to two
                // sparse walks: servers the user is present on (the
                // per-user index range — excess and deficit can both arise
                // there) plus the single best absent server (`have == 0`,
                // deficit == target — every other absent server has a
                // smaller-or-equal deficit and a higher id). Ties keep the
                // lowest id, exactly as the dense first-strict-max fold did.
                let mut over: Option<(ServerId, f64)> = None;
                let mut under: Option<(ServerId, f64)> = None;
                let mut consider = |srv: ServerId, gpus: u32, have: f64| {
                    let target = spreadable * gpus as f64 / gen_gpus as f64;
                    let excess = have - target;
                    if excess > 0.5
                        && over
                            .map(|(s, e)| excess > e || (excess == e && srv < s))
                            .unwrap_or(true)
                    {
                        over = Some((srv, excess));
                    }
                    let deficit = target - have;
                    if deficit > 0.5
                        && under
                            .map(|(s, d)| deficit > d || (deficit == d && srv < s))
                            .unwrap_or(true)
                    {
                        under = Some((srv, deficit));
                    }
                };
                for (srv, have) in self.view.user_server_assignments(user) {
                    let spec = self.view.cluster().server(srv);
                    if spec.gen != gen || !self.view.is_reachable(srv) {
                        continue;
                    }
                    consider(srv, spec.num_gpus, have as f64);
                }
                for &(srv, gpus) in &by_size {
                    if self.view.user_server_assigned(user, srv) == 0 {
                        consider(srv, gpus, 0.0);
                        break;
                    }
                }
                let (Some((src, excess)), Some((dst, deficit))) = (over, under) else {
                    continue;
                };
                let limit = excess.min(deficit) + 0.5;
                let dst_gpus = self.view.cluster().server(dst).num_gpus;
                let candidate = self
                    .view
                    .resident(src)
                    .filter_map(|id| self.view.job(id))
                    .filter(|j| j.user == user && self.eligible(j))
                    .filter(|j| (j.gang as f64) <= limit && j.gang <= dst_gpus)
                    .max_by_key(|j| (j.gang, std::cmp::Reverse(j.id)));
                if let Some(job) = candidate {
                    let candidates = if self.want_why {
                        vec![
                            Candidate {
                                label: format!("over-represented on server:{}", src.index()),
                                score: excess,
                            },
                            Candidate {
                                label: format!("under-represented on server:{}", dst.index()),
                                score: deficit,
                            },
                        ]
                    } else {
                        Vec::new()
                    };
                    self.push_move(
                        job,
                        dst,
                        "fairness-spread",
                        "largest per-server excess vs. deficit",
                        servers.len() as u32,
                        candidates,
                    );
                }
            }
        }
    }

    /// Pass 4: flatten load within each generation, big jobs first.
    fn spreading_pass(&mut self) {
        let gens: Vec<GenId> = self.view.cluster().catalog.ids().collect();
        for gen in gens {
            // Reachability cannot change mid-tick, so the per-gen server
            // list is collected once per generation, not once per move.
            let servers: Vec<ServerId> = self
                .view
                .reachable_servers_of_gen(gen)
                .map(|s| s.id)
                .collect();
            if servers.len() < 2 {
                continue;
            }
            loop {
                if self.budget == 0 {
                    return;
                }
                // Most- and least-loaded under the same (load, id) total
                // order the old dense max_by/min_by scans used, but read
                // from the load index plus the move-delta overlay instead
                // of re-scoring every server per move.
                let hi = self
                    .extreme_in_gen(gen, 0, true)
                    .expect("guard ensures ≥ 2 reachable servers");
                let lo = self
                    .extreme_in_gen(gen, 0, false)
                    .expect("guard ensures ≥ 2 reachable servers");
                if self.load(hi) - self.load(lo) <= self.cfg.load_spread {
                    break;
                }
                // Biggest eligible job on `hi` whose move strictly helps:
                // the destination must not end up more loaded than the
                // source was.
                let hi_gpus = self.view.cluster().server(hi).num_gpus as f64;
                let lo_gpus = self.view.cluster().server(lo).num_gpus as f64;
                let candidate = self
                    .view
                    .resident(hi)
                    .filter_map(|id| self.view.job(id))
                    .filter(|j| self.eligible(j))
                    .filter(|j| j.gang as f64 <= lo_gpus)
                    .filter(|j| {
                        let new_lo = (self.projected_demand(lo) + j.gang as i64) as f64 / lo_gpus;
                        let old_hi = self.projected_demand(hi) as f64 / hi_gpus;
                        new_lo < old_hi
                    })
                    .max_by_key(|j| (j.gang, std::cmp::Reverse(j.id)));
                match candidate {
                    Some(job) => {
                        let candidates = if self.want_why {
                            vec![
                                Candidate {
                                    label: format!("most loaded server:{}", hi.index()),
                                    score: self.load(hi),
                                },
                                Candidate {
                                    label: format!("least loaded server:{}", lo.index()),
                                    score: self.load(lo),
                                },
                            ]
                        } else {
                            Vec::new()
                        };
                        self.push_move(
                            job,
                            lo,
                            "load-spread",
                            "biggest eligible job, most- to least-loaded server",
                            servers.len() as u32,
                            candidates,
                        );
                    }
                    None => break,
                }
            }
        }
    }
}
