//! Migration-based load balancing.
//!
//! Time slicing is enforced per server, so cluster-wide fairness needs
//! servers to carry comparable load — and trading only changes *numbers*
//! until jobs actually move to the generations their owners now own. The
//! balancer runs periodically and plans up to
//! [`gfair_types::SimConfig::max_migrations_per_tick`] migrations, in three
//! passes:
//!
//! 1. **Profiling migrations** — move one job of a model that lacks rate
//!    estimates on some generation to a server of that generation, so the
//!    profiler can learn the speedups trading needs. (Transparent
//!    profiling-by-migration, as in the paper.)
//! 2. **Entitlement realization** — users consuming more of a generation
//!    than their (post-trade) entitlement have jobs moved toward the
//!    generations where they hold unused entitlement, biggest jobs first.
//! 3. **Fairness spreading** — within a generation, a user whose jobs are
//!    concentrated on few servers cannot consume their share there (local
//!    stride divides each server among the users *present* on it); their
//!    surplus jobs move toward servers where they are under-represented.
//! 4. **Load spreading** — within each generation, move the biggest
//!    eligible job from the most- to the least-loaded server while the
//!    spread exceeds the threshold and the move strictly helps.
//!
//! Every pass honors the per-job migration cooldown and never plans two
//! moves for the same job in one tick.
//!
//! During a network partition the balancer degrades gracefully: partitioned
//! servers are excluded both as migration targets (a restore request cannot
//! be delivered) and as sources (jobs there cannot be checkpointed), so
//! balancing continues among the reachable remainder of the cluster.

use crate::config::GfairConfig;
use crate::entitlement::Entitlements;
use crate::profiler::Profiler;
use gfair_obs::{Candidate, Obs, Phase, TraceEvent};
use gfair_sim::{Action, JobInfo, SimView};
use gfair_types::{GenId, JobId, ServerId, SimTime, UserId};
use std::collections::{BTreeMap, BTreeSet};

/// Tie-break rule for load-based target selection (passes 1 and 2).
const TIE_BREAK_LOAD: &str = "least projected load, then lowest server id";

/// Cap on the scored candidates carried in one migration decision.
const MAX_WHY_CANDIDATES: usize = 8;

/// Provenance for one planned migration: which pass chose it, what the
/// endpoints were, and which alternatives were scored. Paired 1:1 with the
/// `Action::Migrate` pushed at the same time.
struct MoveWhy {
    job: JobId,
    user: UserId,
    pass: &'static str,
    from: ServerId,
    to: ServerId,
    tie_break: &'static str,
    considered: u32,
    candidates: Vec<Candidate>,
}

/// Plans this tick's migrations. Pure with respect to the view: the caller
/// applies the returned actions through the simulator.
pub fn plan_migrations(
    view: &SimView<'_>,
    ent: &Entitlements,
    profiler: &Profiler,
    cfg: &GfairConfig,
) -> Vec<Action> {
    plan_migrations_explained(view, ent, profiler, cfg, false).0
}

/// [`plan_migrations`] plus one [`MoveWhy`] provenance record per action.
/// With `want_why` false the provenance side is skipped entirely: no
/// candidate labels are formatted and `why` comes back empty, keeping the
/// untraced path allocation-free.
fn plan_migrations_explained(
    view: &SimView<'_>,
    ent: &Entitlements,
    profiler: &Profiler,
    cfg: &GfairConfig,
    want_why: bool,
) -> (Vec<Action>, Vec<MoveWhy>) {
    let mut planner = Planner::new(view, cfg, want_why);
    if cfg.profiling_migrations {
        planner.profiling_pass(profiler);
    }
    planner.realization_pass(ent);
    planner.fairness_pass(ent);
    planner.spreading_pass();
    (planner.actions, planner.why)
}

/// Observed [`plan_migrations`]: the whole search (all passes) is timed as
/// one [`Phase::MigrationSearch`] span, and every planned move is emitted
/// as a `migration` [`TraceEvent::Decision`] naming the pass that chose it
/// and the alternatives it scored. The resulting `Migration` trace events
/// are emitted by the engine when the moves are actually applied.
pub fn plan_migrations_traced(
    obs: &Obs,
    view: &SimView<'_>,
    ent: &Entitlements,
    profiler: &Profiler,
    cfg: &GfairConfig,
) -> Vec<Action> {
    let want_why = obs.tracing();
    let (actions, why) = obs.time(Phase::MigrationSearch, || {
        plan_migrations_explained(view, ent, profiler, cfg, want_why)
    });
    let now = view.now();
    for w in why {
        obs.emit(TraceEvent::Decision {
            t: now,
            decision: "migration".to_string(),
            job: Some(w.job),
            user: Some(w.user),
            chosen: format!(
                "server:{} -> server:{} ({} pass)",
                w.from.index(),
                w.to.index(),
                w.pass
            ),
            tie_break: w.tie_break.to_string(),
            considered: w.considered,
            candidates: w.candidates,
            rejected: Vec::new(),
        });
    }
    actions
}

/// Working state for one balancing tick.
struct Planner<'a, 'v> {
    view: &'a SimView<'v>,
    cfg: &'a GfairConfig,
    now: SimTime,
    budget: u32,
    /// Jobs already scheduled to move this tick.
    moved: BTreeSet<JobId>,
    /// Projected per-server GPU demand after the moves planned so far.
    demand: BTreeMap<ServerId, u32>,
    actions: Vec<Action>,
    /// Whether to record provenance at all (a trace sink is attached).
    want_why: bool,
    /// Provenance, one record per entry in `actions` when `want_why`.
    why: Vec<MoveWhy>,
}

impl<'a, 'v> Planner<'a, 'v> {
    fn new(view: &'a SimView<'v>, cfg: &'a GfairConfig, want_why: bool) -> Self {
        let demand = view
            .cluster()
            .servers
            .iter()
            .map(|s| (s.id, view.resident_demand(s.id)))
            .collect();
        Planner {
            view,
            cfg,
            now: view.now(),
            budget: view.config().max_migrations_per_tick,
            moved: BTreeSet::new(),
            demand,
            actions: Vec::new(),
            want_why,
            why: Vec::new(),
        }
    }

    /// Projected load of a server (demand after planned moves / GPUs).
    fn load(&self, server: ServerId) -> f64 {
        let gpus = self.view.cluster().server(server).num_gpus;
        self.demand[&server] as f64 / gpus as f64
    }

    /// Whether a job may move this tick. A job on a partitioned server is
    /// frozen: the checkpoint request cannot be delivered, so the balancer
    /// leaves it alone until the partition heals.
    fn eligible(&self, job: &JobInfo) -> bool {
        if self.moved.contains(&job.id) || !job.state.is_schedulable() {
            return false;
        }
        if let Some(server) = job.server {
            if !self.view.is_reachable(server) {
                return false;
            }
        }
        match job.last_migration {
            Some(t) => t + self.view.config().migration_cooldown <= self.now,
            None => true,
        }
    }

    /// Least-loaded reachable server of `gen` that can host `gang`, by
    /// projected load, plus the fitting-server count and scored candidates
    /// for decision provenance.
    fn target_in_gen(&self, gen: GenId, gang: u32) -> (Option<ServerId>, u32, Vec<Candidate>) {
        if !self.want_why {
            // Untraced: plain min-scan, no allocation.
            let mut best: Option<(f64, ServerId)> = None;
            let mut considered = 0u32;
            for s in self.view.reachable_servers_of_gen(gen) {
                if s.num_gpus < gang {
                    continue;
                }
                considered += 1;
                let load = self.load(s.id);
                if best
                    .map(|(bl, bid)| load.total_cmp(&bl).then(s.id.cmp(&bid)).is_lt())
                    .unwrap_or(true)
                {
                    best = Some((load, s.id));
                }
            }
            return (best.map(|(_, id)| id), considered, Vec::new());
        }
        // Scores stay as plain pairs until after truncation (see the same
        // pattern in the central scheduler): label formatting is deferred
        // to the few candidates that survive.
        let mut scored: Vec<(f64, ServerId)> = Vec::new();
        for s in self.view.reachable_servers_of_gen(gen) {
            if s.num_gpus < gang {
                continue;
            }
            scored.push((self.load(s.id), s.id));
        }
        let considered = scored.len() as u32;
        scored.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let best = scored.first().map(|&(_, id)| id);
        scored.truncate(MAX_WHY_CANDIDATES);
        let candidates = scored
            .into_iter()
            .map(|(load, id)| Candidate {
                label: format!("server:{}", id.index()),
                score: load,
            })
            .collect();
        (best, considered, candidates)
    }

    /// Commits a planned move, updating projections and recording its
    /// provenance.
    #[allow(clippy::too_many_arguments)]
    fn push_move(
        &mut self,
        job: &JobInfo,
        to: ServerId,
        pass: &'static str,
        tie_break: &'static str,
        considered: u32,
        candidates: Vec<Candidate>,
    ) {
        let from = job.server.expect("resident job has a server");
        *self.demand.get_mut(&from).expect("known server") -= job.gang;
        *self.demand.get_mut(&to).expect("known server") += job.gang;
        self.moved.insert(job.id);
        self.budget -= 1;
        self.actions.push(Action::Migrate { job: job.id, to });
        if self.want_why {
            self.why.push(MoveWhy {
                job: job.id,
                user: job.user,
                pass,
                from,
                to,
                tie_break,
                considered,
                candidates,
            });
        }
    }

    /// Pass 1: send jobs of unprofiled models to the generations the
    /// profiler is missing (at most two per tick — profiling is background
    /// work, not the main event).
    fn profiling_pass(&mut self, profiler: &Profiler) {
        let mut sent_models: BTreeSet<std::sync::Arc<str>> = BTreeSet::new();
        let mut sent = 0u32;
        let jobs: Vec<&JobInfo> = self.view.active_jobs().collect();
        for job in jobs {
            if self.budget == 0 || sent >= 2 {
                return;
            }
            if !self.eligible(job) || sent_models.contains(&job.model) {
                continue;
            }
            let Some(cur_server) = job.server else {
                continue;
            };
            let cur_gen = self.view.cluster().server(cur_server).gen;
            // Only consider gens this job could actually run on, and prefer
            // the fastest unprofiled one (most valuable information).
            let missing: Vec<GenId> = profiler
                .unprofiled_gens(&job.model)
                .into_iter()
                .filter(|&g| g != cur_gen)
                .collect();
            let Some(&gen) = missing.last() else {
                continue;
            };
            let (target, considered, candidates) = self.target_in_gen(gen, job.gang);
            if let Some(to) = target {
                sent_models.insert(std::sync::Arc::clone(&job.model));
                self.push_move(job, to, "profiling", TIE_BREAK_LOAD, considered, candidates);
                sent += 1;
            }
        }
    }

    /// Pass 2: realize entitlements — move jobs of over-consuming users
    /// from generations where they exceed their allocation toward
    /// generations where they have slack, biggest jobs first.
    fn realization_pass(&mut self, ent: &Entitlements) {
        // Per (user, gen): GPUs currently consumed by resident jobs.
        let mut used: BTreeMap<(gfair_types::UserId, GenId), f64> = BTreeMap::new();
        for job in self.view.active_jobs() {
            if let Some(server) = job.server {
                let gen = self.view.cluster().server(server).gen;
                *used.entry((job.user, gen)).or_insert(0.0) += job.gang as f64;
            }
        }
        let num_gens = ent.num_gens();
        let users: Vec<gfair_types::UserId> = ent.users().collect();
        for user in users {
            if self.budget == 0 {
                return;
            }
            // Find this user's most-overused and most-underused generation.
            let mut over: Option<(GenId, f64)> = None;
            let mut under: Option<(GenId, f64)> = None;
            for g in 0..num_gens {
                let gen = GenId::new(g as u32);
                let u = used.get(&(user, gen)).copied().unwrap_or(0.0);
                let a = ent.get(user, gen);
                let excess = u - a;
                if excess > 1.0 && over.map(|(_, e)| excess > e).unwrap_or(true) {
                    over = Some((gen, excess));
                }
                let slack = a - u;
                if slack > 1.0 && under.map(|(_, s)| slack > s).unwrap_or(true) {
                    under = Some((gen, slack));
                }
            }
            let (Some((over_gen, excess)), Some((under_gen, slack))) = (over, under) else {
                continue;
            };
            // Biggest eligible job that fits the imbalance on both sides.
            let limit = excess.min(slack) + 1.0;
            let candidate = self
                .view
                .jobs_of_user(user)
                .filter(|j| self.eligible(j))
                .filter(|j| {
                    j.server
                        .map(|s| self.view.cluster().server(s).gen == over_gen)
                        .unwrap_or(false)
                })
                .filter(|j| (j.gang as f64) <= limit)
                .max_by_key(|j| (j.gang, std::cmp::Reverse(j.id)));
            if let Some(job) = candidate {
                let (target, considered, candidates) = self.target_in_gen(under_gen, job.gang);
                if let Some(to) = target {
                    self.push_move(
                        job,
                        to,
                        "realization",
                        TIE_BREAK_LOAD,
                        considered,
                        candidates,
                    );
                }
            }
        }
    }

    /// Pass 3: spread each user's jobs across the servers of a generation
    /// in proportion to server size, so every user can actually consume
    /// their per-server stride share. Without this, a user whose jobs are
    /// piled on one server (e.g. after a failure re-placement burst) is
    /// capped at that server's split even though they own cluster-wide
    /// share.
    fn fairness_pass(&mut self, ent: &Entitlements) {
        let gens: Vec<GenId> = self.view.cluster().catalog.ids().collect();
        let users: Vec<gfair_types::UserId> = ent.users().collect();
        // Per-user demand, computed once for the whole pass: by server, and
        // totaled by generation. The old code rescanned the user's job list
        // for every (generation, user) pair.
        let mut user_server_demand: BTreeMap<(gfair_types::UserId, ServerId), f64> =
            BTreeMap::new();
        let mut user_gen_demand: BTreeMap<(gfair_types::UserId, GenId), f64> = BTreeMap::new();
        for job in self.view.active_jobs() {
            if let Some(srv) = job.server {
                let gen = self.view.cluster().server(srv).gen;
                *user_server_demand.entry((job.user, srv)).or_insert(0.0) += job.gang as f64;
                *user_gen_demand.entry((job.user, gen)).or_insert(0.0) += job.gang as f64;
            }
        }
        for gen in gens {
            if self.budget == 0 {
                return;
            }
            let servers: Vec<(ServerId, u32)> = self
                .view
                .reachable_servers_of_gen(gen)
                .map(|s| (s.id, s.num_gpus))
                .collect();
            if servers.len() < 2 {
                continue;
            }
            let gen_gpus: u32 = servers.iter().map(|&(_, g)| g).sum();
            for &user in &users {
                if self.budget == 0 {
                    return;
                }
                // The user's entitlement on this generation, spread over its
                // servers in proportion to server size.
                let alloc = ent.get(user, gen);
                if alloc <= 0.0 {
                    continue;
                }
                // This user's demand on this generation, from the per-pass
                // precomputed maps.
                let total = user_gen_demand.get(&(user, gen)).copied().unwrap_or(0.0);
                if total <= 0.0 {
                    continue;
                }
                // A user cannot spread more demand than they have; target
                // per-server presence proportional to server size, capped by
                // total demand.
                let spreadable = total.min(alloc);
                let mut over: Option<(ServerId, f64)> = None;
                let mut under: Option<(ServerId, f64)> = None;
                for &(srv, gpus) in &servers {
                    let target = spreadable * gpus as f64 / gen_gpus as f64;
                    let have = user_server_demand.get(&(user, srv)).copied().unwrap_or(0.0);
                    let excess = have - target;
                    if excess > 0.5 && over.map(|(_, e)| excess > e).unwrap_or(true) {
                        over = Some((srv, excess));
                    }
                    let deficit = target - have;
                    if deficit > 0.5 && under.map(|(_, d)| deficit > d).unwrap_or(true) {
                        under = Some((srv, deficit));
                    }
                }
                let (Some((src, excess)), Some((dst, deficit))) = (over, under) else {
                    continue;
                };
                let limit = excess.min(deficit) + 0.5;
                let dst_gpus = self.view.cluster().server(dst).num_gpus;
                let candidate = self
                    .view
                    .resident(src)
                    .filter_map(|id| self.view.job(id))
                    .filter(|j| j.user == user && self.eligible(j))
                    .filter(|j| (j.gang as f64) <= limit && j.gang <= dst_gpus)
                    .max_by_key(|j| (j.gang, std::cmp::Reverse(j.id)));
                if let Some(job) = candidate {
                    let candidates = if self.want_why {
                        vec![
                            Candidate {
                                label: format!("over-represented on server:{}", src.index()),
                                score: excess,
                            },
                            Candidate {
                                label: format!("under-represented on server:{}", dst.index()),
                                score: deficit,
                            },
                        ]
                    } else {
                        Vec::new()
                    };
                    self.push_move(
                        job,
                        dst,
                        "fairness-spread",
                        "largest per-server excess vs. deficit",
                        servers.len() as u32,
                        candidates,
                    );
                }
            }
        }
    }

    /// Pass 4: flatten load within each generation, big jobs first.
    fn spreading_pass(&mut self) {
        let gens: Vec<GenId> = self.view.cluster().catalog.ids().collect();
        for gen in gens {
            loop {
                if self.budget == 0 {
                    return;
                }
                let servers: Vec<ServerId> = self
                    .view
                    .reachable_servers_of_gen(gen)
                    .map(|s| s.id)
                    .collect();
                if servers.len() < 2 {
                    break;
                }
                let hi = *servers
                    .iter()
                    .max_by(|a, b| self.load(**a).total_cmp(&self.load(**b)).then(a.cmp(b)))
                    .expect("non-empty");
                let lo = *servers
                    .iter()
                    .min_by(|a, b| self.load(**a).total_cmp(&self.load(**b)).then(a.cmp(b)))
                    .expect("non-empty");
                if self.load(hi) - self.load(lo) <= self.cfg.load_spread {
                    break;
                }
                // Biggest eligible job on `hi` whose move strictly helps:
                // the destination must not end up more loaded than the
                // source was.
                let hi_gpus = self.view.cluster().server(hi).num_gpus as f64;
                let lo_gpus = self.view.cluster().server(lo).num_gpus as f64;
                let candidate = self
                    .view
                    .resident(hi)
                    .filter_map(|id| self.view.job(id))
                    .filter(|j| self.eligible(j))
                    .filter(|j| j.gang as f64 <= lo_gpus)
                    .filter(|j| {
                        let new_lo = (self.demand[&lo] + j.gang) as f64 / lo_gpus;
                        let old_hi = self.demand[&hi] as f64 / hi_gpus;
                        new_lo < old_hi
                    })
                    .max_by_key(|j| (j.gang, std::cmp::Reverse(j.id)));
                match candidate {
                    Some(job) => {
                        let candidates = if self.want_why {
                            vec![
                                Candidate {
                                    label: format!("most loaded server:{}", hi.index()),
                                    score: self.load(hi),
                                },
                                Candidate {
                                    label: format!("least loaded server:{}", lo.index()),
                                    score: self.load(lo),
                                },
                            ]
                        } else {
                            Vec::new()
                        };
                        self.push_move(
                            job,
                            lo,
                            "load-spread",
                            "biggest eligible job, most- to least-loaded server",
                            servers.len() as u32,
                            candidates,
                        );
                    }
                    None => break,
                }
            }
        }
    }
}
