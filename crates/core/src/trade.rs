//! The resource-trading market.
//!
//! Heterogeneity breaks naive fairness: giving every user a ticket share of
//! *each* generation wastes fast GPUs on jobs that barely benefit. The
//! market fixes this with Pareto-improving trades. For each fast generation
//! `f`, users are ranked by their profiled speedup `s_u = rate(f)/rate(base)`.
//! The lowest-speedup holder of fast entitlement (the *seller*) trades with
//! the highest-speedup user (the *buyer*): the seller gives `delta` fast GPUs
//! and receives `price * delta` base-generation GPUs from the buyer.
//!
//! With the paper's conservative [`PriceStrategy::MaxSpeedup`] the price is
//! the buyer's own speedup: the buyer's valuation is unchanged (pays exactly
//! what the fast GPUs are worth to them) while the seller strictly gains
//! (receives more base-GPU value than their fast share was worth to them).
//! Cluster efficiency strictly improves because fast GPUs move to the jobs
//! that extract the most from them. No participant ever ends below their
//! ticket entitlement — the fairness guarantee survives trading.
//!
//! Trades are bounded by what each side can *use*: a buyer only buys fast
//! capacity up to their jobs' GPU demand, a seller only accepts base-GPU
//! volume their jobs can consume, and both sides must hold the entitlement
//! they spend. Users without profiled speedups do not participate — the
//! market never trades on guesses.

use crate::entitlement::Entitlements;
use crate::inputs::PolicyInputs;
use gfair_obs::{Candidate, Obs, Phase, Rejection, TraceEvent};
use gfair_types::{GenId, PriceStrategy, SimTime, UserId};
use std::collections::BTreeMap;

/// Amounts below this are treated as zero (floating-point dust).
const EPS: f64 = 1e-9;

/// One executed trade.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Trade {
    /// User giving up fast-generation entitlement.
    pub seller: UserId,
    /// User acquiring fast-generation entitlement.
    pub buyer: UserId,
    /// The fast generation being traded (base GPUs flow the other way).
    pub gen: GenId,
    /// Fast GPUs transferred seller -> buyer.
    pub fast_gpus: f64,
    /// Base GPUs transferred buyer -> seller (`price * fast_gpus`).
    pub base_gpus: f64,
    /// Exchange rate in base GPUs per fast GPU.
    pub price: f64,
    /// Seller's profiled speedup on `gen` at trade time.
    pub seller_speedup: f64,
    /// Buyer's profiled speedup on `gen` at trade time.
    pub buyer_speedup: f64,
}

/// Runs the market over `ent`, mutating allocations in place.
///
/// * `inputs` — the dense per-user policy inputs:
///   [`PolicyInputs::speedup`] gives user `u`'s profiled speedup on a
///   generation relative to the base (`None` means unprofiled — the user
///   sits out for that generation) and [`PolicyInputs::demand`] the total
///   GPUs the user's active jobs can consume simultaneously (sum of gang
///   sizes).
/// * `margin` — minimum buyer-minus-seller speedup gap for a trade.
///
/// Returns the executed trades in execution order.
pub fn run_market(
    ent: &mut Entitlements,
    inputs: &PolicyInputs,
    strategy: PriceStrategy,
    margin: f64,
) -> Vec<Trade> {
    run_market_inner(ent, inputs, strategy, margin)
}

/// Observed [`run_market`]: the matching pass is timed as a
/// [`Phase::TradeMatching`] span and every executed trade is emitted as a
/// [`TraceEvent::TradeExecuted`] stamped with `now`.
pub fn run_market_traced(
    obs: &Obs,
    now: SimTime,
    ent: &mut Entitlements,
    inputs: &PolicyInputs,
    strategy: PriceStrategy,
    margin: f64,
) -> Vec<Trade> {
    let trades = obs.time(Phase::TradeMatching, || {
        run_market_inner(ent, inputs, strategy, margin)
    });
    // Provenance: per-generation participant counts, re-derived with the
    // market's own eligibility filter (active demand + profiled speedup).
    // The inputs are untouched by the matching pass, so these counts match
    // what the market ranked. Decision events are a trace-only product;
    // without a sink the `TradeExecuted` stream alone is emitted.
    let want_why = obs.tracing();
    let users_total = ent.users().count() as u32;
    let participants: BTreeMap<GenId, u32> = if want_why {
        (1..ent.num_gens())
            .map(|gen_idx| {
                let n = ent
                    .users()
                    .filter(|&u| inputs.demand(u) > EPS)
                    .filter(|&u| inputs.speedup(u, gen_idx).is_some())
                    .count() as u32;
                (GenId::new(gen_idx as u32), n)
            })
            .collect()
    } else {
        BTreeMap::new()
    };
    for t in &trades {
        obs.emit(TraceEvent::TradeExecuted {
            t: now,
            seller: t.seller,
            buyer: t.buyer,
            gen: t.gen,
            fast_gpus: t.fast_gpus,
            base_gpus: t.base_gpus,
            price: t.price,
        });
        if !want_why {
            continue;
        }
        let considered = participants.get(&t.gen).copied().unwrap_or(0);
        obs.emit(TraceEvent::Decision {
            t: now,
            decision: "trade".to_string(),
            job: None,
            user: Some(t.buyer),
            chosen: format!(
                "user:{} buys {:.3} gen:{} GPUs from user:{} at {:.3} base/fast",
                t.buyer.index(),
                t.fast_gpus,
                t.gen.index(),
                t.seller.index(),
                t.price
            ),
            tie_break: "widest speedup gap first, then lowest user id".to_string(),
            considered,
            candidates: vec![
                Candidate {
                    label: format!("buyer user:{}", t.buyer.index()),
                    score: t.buyer_speedup,
                },
                Candidate {
                    label: format!("seller user:{}", t.seller.index()),
                    score: t.seller_speedup,
                },
            ],
            rejected: if users_total > considered {
                vec![Rejection {
                    reason: "idle_or_unprofiled".into(),
                    count: users_total - considered,
                }]
            } else {
                Vec::new()
            },
        });
    }
    trades
}

fn run_market_inner(
    ent: &mut Entitlements,
    inputs: &PolicyInputs,
    strategy: PriceStrategy,
    margin: f64,
) -> Vec<Trade> {
    let base = GenId::new(0);
    let mut trades = Vec::new();
    // Fastest generation first: its misallocation costs the most.
    for gen_idx in (1..ent.num_gens()).rev() {
        let gen = GenId::new(gen_idx as u32);
        // Participants: active demand and a profiled speedup on `gen`.
        let mut ranked: Vec<(UserId, f64)> = ent
            .users()
            .filter(|&u| inputs.demand(u) > EPS)
            .filter_map(|u| Some((u, inputs.speedup(u, gen_idx)?)))
            .collect();
        ranked.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        if ranked.len() < 2 {
            continue;
        }
        let (mut i, mut j) = (0usize, ranked.len() - 1);
        // Each iteration either executes a trade or retires one side, so
        // the loop terminates in O(n + trades).
        while i < j {
            let (seller, s_sell) = ranked[i];
            let (buyer, s_buy) = ranked[j];
            if s_buy - s_sell <= margin {
                break;
            }
            let price = match strategy {
                PriceStrategy::MaxSpeedup => s_buy,
                PriceStrategy::Midpoint => 0.5 * (s_buy + s_sell),
            };
            debug_assert!(price > 1.0, "fast GPUs always cost more than base");
            let seller_avail = ent.get(seller, gen);
            if seller_avail <= EPS {
                i += 1;
                continue;
            }
            let buyer_budget = ent.get(buyer, base) / price;
            let buyer_room = (inputs.demand(buyer) - ent.get(buyer, gen)).max(0.0);
            if buyer_budget <= EPS || buyer_room <= EPS {
                j -= 1;
                continue;
            }
            // The seller only accepts base-GPU volume their jobs can use:
            // after the swap their total grows by (price - 1) * delta.
            let seller_headroom = (inputs.demand(seller) - ent.gpus_of(seller)).max(0.0);
            let seller_room = seller_headroom / (price - 1.0);
            if seller_room <= EPS {
                i += 1;
                continue;
            }
            let delta = seller_avail
                .min(buyer_budget)
                .min(buyer_room)
                .min(seller_room);
            if delta <= EPS {
                // Dust: retire whichever side binds.
                if seller_avail <= buyer_budget.min(buyer_room) {
                    i += 1;
                } else {
                    j -= 1;
                }
                continue;
            }
            let base_gpus = price * delta;
            ent.adjust(seller, gen, -delta);
            ent.adjust(seller, base, base_gpus);
            ent.adjust(buyer, gen, delta);
            ent.adjust(buyer, base, -base_gpus);
            trades.push(Trade {
                seller,
                buyer,
                gen,
                fast_gpus: delta,
                base_gpus,
                price,
                seller_speedup: s_sell,
                buyer_speedup: s_buy,
            });
            // Whichever constraint bound, retire that side for this round.
            if (ent.get(seller, gen)).min(seller_room - delta) <= EPS {
                i += 1;
            }
            if (ent.get(buyer, base) / price).min(buyer_room - delta) <= EPS {
                j -= 1;
            }
        }
    }
    trades
}

/// Test-only adapter: packs explicit speedup/demand maps into the dense
/// [`PolicyInputs`] the market consumes (generation count inferred from the
/// widest speedup row).
#[cfg(test)]
fn market_inputs(
    speedups: &BTreeMap<UserId, Vec<Option<f64>>>,
    demand: &BTreeMap<UserId, f64>,
) -> PolicyInputs {
    let num_gens = speedups.values().map(|r| r.len()).max().unwrap_or(1);
    PolicyInputs::from_maps(num_gens, demand, speedups, &BTreeMap::new())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 16 K80 + 8 V100 cluster, two generations for clarity.
    fn two_gen_gpus() -> BTreeMap<GenId, u32> {
        BTreeMap::from([(GenId::new(0), 16), (GenId::new(1), 8)])
    }

    fn speedups(rows: &[(u32, Option<f64>)]) -> BTreeMap<UserId, Vec<Option<f64>>> {
        rows.iter()
            .map(|&(u, s)| (UserId::new(u), vec![Some(1.0), s]))
            .collect()
    }

    fn demands(rows: &[(u32, f64)]) -> BTreeMap<UserId, f64> {
        rows.iter().map(|&(u, d)| (UserId::new(u), d)).collect()
    }

    /// The canonical paper scenario: a VAE-like user (1.25x) and a
    /// ResNeXt-like user (5x) with equal tickets and plenty of demand.
    #[allow(clippy::type_complexity)]
    fn canonical() -> (
        Entitlements,
        BTreeMap<UserId, Vec<Option<f64>>>,
        BTreeMap<UserId, f64>,
    ) {
        let ent = Entitlements::base(
            &two_gen_gpus(),
            &[(UserId::new(0), 100), (UserId::new(1), 100)],
        );
        (
            ent,
            speedups(&[(0, Some(1.25)), (1, Some(5.0))]),
            demands(&[(0, 100.0), (1, 100.0)]),
        )
    }

    #[test]
    fn low_speedup_user_sells_fast_gpus_to_high() {
        let (mut ent, sp, dm) = canonical();
        let trades = run_market(
            &mut ent,
            &market_inputs(&sp, &dm),
            PriceStrategy::MaxSpeedup,
            0.2,
        );
        assert!(!trades.is_empty());
        let t = &trades[0];
        assert_eq!(t.seller, UserId::new(0));
        assert_eq!(t.buyer, UserId::new(1));
        assert_eq!(t.gen, GenId::new(1));
        assert!((t.price - 5.0).abs() < 1e-9);
        // Seller ends with no fast share; buyer holds all 8 V100s... but the
        // buyer's base budget (8 K80 / price 5 = 1.6) binds first.
        let sold: f64 = trades.iter().map(|t| t.fast_gpus).sum();
        assert!((sold - 1.6).abs() < 1e-6, "sold {sold}");
        assert!((ent.get(UserId::new(1), GenId::new(1)) - 5.6).abs() < 1e-6);
        assert!((ent.get(UserId::new(1), GenId::new(0)) - 0.0).abs() < 1e-6);
    }

    #[test]
    fn physical_gpus_are_conserved() {
        let (mut ent, sp, dm) = canonical();
        let _ = run_market(
            &mut ent,
            &market_inputs(&sp, &dm),
            PriceStrategy::MaxSpeedup,
            0.2,
        );
        assert!((ent.total_of_gen(GenId::new(0)) - 16.0).abs() < 1e-6);
        assert!((ent.total_of_gen(GenId::new(1)) - 8.0).abs() < 1e-6);
    }

    #[test]
    fn no_user_valued_below_entitlement() {
        let (mut ent, sp, dm) = canonical();
        let before: Vec<f64> = [0, 1]
            .iter()
            .map(|&u| ent.valuation(UserId::new(u), &[Some(1.0), sp[&UserId::new(u)][1]]))
            .collect();
        let _ = run_market(
            &mut ent,
            &market_inputs(&sp, &dm),
            PriceStrategy::MaxSpeedup,
            0.2,
        );
        for (k, &u) in [0u32, 1].iter().enumerate() {
            let after = ent.valuation(UserId::new(u), &[Some(1.0), sp[&UserId::new(u)][1]]);
            assert!(
                after >= before[k] - 1e-6,
                "user {u} lost value: {} -> {after}",
                before[k]
            );
        }
    }

    #[test]
    fn seller_strictly_gains_under_max_price() {
        let (mut ent, sp, dm) = canonical();
        let before = ent.valuation(UserId::new(0), &[Some(1.0), Some(1.25)]);
        let _ = run_market(
            &mut ent,
            &market_inputs(&sp, &dm),
            PriceStrategy::MaxSpeedup,
            0.2,
        );
        let after = ent.valuation(UserId::new(0), &[Some(1.0), Some(1.25)]);
        assert!(
            after > before + 1.0,
            "seller gain too small: {before} -> {after}"
        );
    }

    #[test]
    fn both_gain_under_midpoint_price() {
        let (mut ent, sp, dm) = canonical();
        let b0 = ent.valuation(UserId::new(0), &[Some(1.0), Some(1.25)]);
        let b1 = ent.valuation(UserId::new(1), &[Some(1.0), Some(5.0)]);
        let trades = run_market(
            &mut ent,
            &market_inputs(&sp, &dm),
            PriceStrategy::Midpoint,
            0.2,
        );
        assert!(!trades.is_empty());
        assert!((trades[0].price - 3.125).abs() < 1e-9);
        let a0 = ent.valuation(UserId::new(0), &[Some(1.0), Some(1.25)]);
        let a1 = ent.valuation(UserId::new(1), &[Some(1.0), Some(5.0)]);
        assert!(a0 > b0 + 1e-6, "seller did not gain");
        assert!(a1 > b1 + 1e-6, "buyer did not gain");
    }

    #[test]
    fn cluster_efficiency_improves() {
        let (mut ent, sp, dm) = canonical();
        let total_before: f64 = [0u32, 1]
            .iter()
            .map(|&u| ent.valuation(UserId::new(u), &[Some(1.0), sp[&UserId::new(u)][1]]))
            .sum();
        let _ = run_market(
            &mut ent,
            &market_inputs(&sp, &dm),
            PriceStrategy::MaxSpeedup,
            0.2,
        );
        let total_after: f64 = [0u32, 1]
            .iter()
            .map(|&u| ent.valuation(UserId::new(u), &[Some(1.0), sp[&UserId::new(u)][1]]))
            .sum();
        assert!(
            total_after > total_before + 1.0,
            "efficiency did not improve: {total_before} -> {total_after}"
        );
    }

    #[test]
    fn no_trade_without_profiles() {
        let mut ent = Entitlements::base(
            &two_gen_gpus(),
            &[(UserId::new(0), 100), (UserId::new(1), 100)],
        );
        let sp = speedups(&[(0, None), (1, Some(5.0))]);
        let dm = demands(&[(0, 100.0), (1, 100.0)]);
        let trades = run_market(
            &mut ent,
            &market_inputs(&sp, &dm),
            PriceStrategy::MaxSpeedup,
            0.2,
        );
        assert!(trades.is_empty());
    }

    #[test]
    fn no_trade_within_margin() {
        let mut ent = Entitlements::base(
            &two_gen_gpus(),
            &[(UserId::new(0), 100), (UserId::new(1), 100)],
        );
        let sp = speedups(&[(0, Some(2.0)), (1, Some(2.1))]);
        let dm = demands(&[(0, 100.0), (1, 100.0)]);
        let trades = run_market(
            &mut ent,
            &market_inputs(&sp, &dm),
            PriceStrategy::MaxSpeedup,
            0.2,
        );
        assert!(trades.is_empty());
    }

    #[test]
    fn idle_users_do_not_trade() {
        let mut ent = Entitlements::base(
            &two_gen_gpus(),
            &[(UserId::new(0), 100), (UserId::new(1), 100)],
        );
        let sp = speedups(&[(0, Some(1.25)), (1, Some(5.0))]);
        // The high-speedup user has no jobs: nothing to buy for.
        let dm = demands(&[(0, 100.0), (1, 0.0)]);
        let trades = run_market(
            &mut ent,
            &market_inputs(&sp, &dm),
            PriceStrategy::MaxSpeedup,
            0.2,
        );
        assert!(trades.is_empty());
    }

    #[test]
    fn buyer_demand_caps_the_purchase() {
        let mut ent = Entitlements::base(
            &two_gen_gpus(),
            &[(UserId::new(0), 100), (UserId::new(1), 100)],
        );
        let sp = speedups(&[(0, Some(1.25)), (1, Some(5.0))]);
        // Buyer can use at most 4.5 GPUs total; they already hold 4 fast.
        let dm = demands(&[(0, 100.0), (1, 4.5)]);
        let trades = run_market(
            &mut ent,
            &market_inputs(&sp, &dm),
            PriceStrategy::MaxSpeedup,
            0.2,
        );
        let bought: f64 = trades.iter().map(|t| t.fast_gpus).sum();
        assert!(bought <= 0.5 + 1e-9, "bought {bought} beyond demand room");
    }

    #[test]
    fn seller_headroom_caps_the_sale() {
        let mut ent = Entitlements::base(
            &two_gen_gpus(),
            &[(UserId::new(0), 100), (UserId::new(1), 100)],
        );
        let sp = speedups(&[(0, Some(1.25)), (1, Some(5.0))]);
        // Seller's demand (13) barely exceeds their 12-GPU entitlement:
        // headroom 1 GPU, so at price 5 they accept at most 1/(5-1) fast.
        let dm = demands(&[(0, 13.0), (1, 100.0)]);
        let trades = run_market(
            &mut ent,
            &market_inputs(&sp, &dm),
            PriceStrategy::MaxSpeedup,
            0.2,
        );
        let sold: f64 = trades.iter().map(|t| t.fast_gpus).sum();
        assert!(sold <= 0.25 + 1e-9, "sold {sold} beyond usable headroom");
    }

    #[test]
    fn three_generations_trade_fastest_first() {
        let gpus = BTreeMap::from([
            (GenId::new(0), 100),
            (GenId::new(1), 20),
            (GenId::new(2), 10),
        ]);
        let mut ent = Entitlements::base(&gpus, &[(UserId::new(0), 100), (UserId::new(1), 100)]);
        let sp: BTreeMap<UserId, Vec<Option<f64>>> = BTreeMap::from([
            (UserId::new(0), vec![Some(1.0), Some(1.1), Some(1.3)]),
            (UserId::new(1), vec![Some(1.0), Some(2.5), Some(5.0)]),
        ]);
        let dm = demands(&[(0, 200.0), (1, 200.0)]);
        let trades = run_market(
            &mut ent,
            &market_inputs(&sp, &dm),
            PriceStrategy::MaxSpeedup,
            0.2,
        );
        // Both the V100 (gen 2) and P100 (gen 1) markets fire, fastest first.
        assert!(trades.iter().any(|t| t.gen == GenId::new(2)));
        assert!(trades.iter().any(|t| t.gen == GenId::new(1)));
        let first_gen = trades[0].gen;
        assert_eq!(first_gen, GenId::new(2));
        for g in [GenId::new(0), GenId::new(1), GenId::new(2)] {
            let expect = gpus[&g] as f64;
            assert!(
                (ent.total_of_gen(g) - expect).abs() < 1e-6,
                "gen {g} not conserved"
            );
        }
    }

    #[test]
    fn many_users_match_extremes_first() {
        let mut ent = Entitlements::base(
            &two_gen_gpus(),
            &[
                (UserId::new(0), 100),
                (UserId::new(1), 100),
                (UserId::new(2), 100),
                (UserId::new(3), 100),
            ],
        );
        let sp = speedups(&[
            (0, Some(1.2)),
            (1, Some(2.0)),
            (2, Some(3.0)),
            (3, Some(5.0)),
        ]);
        let dm = demands(&[(0, 100.0), (1, 100.0), (2, 100.0), (3, 100.0)]);
        let trades = run_market(
            &mut ent,
            &market_inputs(&sp, &dm),
            PriceStrategy::MaxSpeedup,
            0.2,
        );
        assert!(!trades.is_empty());
        // The first trade pairs the extreme speedups.
        assert_eq!(trades[0].seller, UserId::new(0));
        assert_eq!(trades[0].buyer, UserId::new(3));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Builds market inputs from raw proptest vectors: up to 6 users with
    /// tickets, per-gen speedups (some unprofiled) and demands.
    #[allow(clippy::type_complexity)]
    fn build(
        rows: &[(u16, f64, f64, f64, bool)],
        gpus: (u32, u32, u32),
    ) -> (
        Entitlements,
        BTreeMap<UserId, Vec<Option<f64>>>,
        BTreeMap<UserId, f64>,
    ) {
        let gpu_map = BTreeMap::from([
            (GenId::new(0), gpus.0),
            (GenId::new(1), gpus.1),
            (GenId::new(2), gpus.2),
        ]);
        let active: Vec<(UserId, u64)> = rows
            .iter()
            .enumerate()
            .map(|(i, r)| (UserId::new(i as u32), r.0 as u64 + 1))
            .collect();
        let ent = Entitlements::base(&gpu_map, &active);
        let speedups = rows
            .iter()
            .enumerate()
            .map(|(i, r)| {
                let s2 = 1.0 + r.1; // V100 speedup in [1, 6)
                let s1 = 1.0 + r.1 * 0.5;
                let profiled = r.4;
                (
                    UserId::new(i as u32),
                    vec![Some(1.0), profiled.then_some(s1), profiled.then_some(s2)],
                )
            })
            .collect();
        let demand = rows
            .iter()
            .enumerate()
            .map(|(i, r)| (UserId::new(i as u32), r.2 * 100.0 + r.3))
            .collect();
        (ent, speedups, demand)
    }

    proptest! {
        /// Physical GPUs are conserved per generation by any trade sequence.
        #[test]
        fn market_conserves_physical_gpus(
            rows in proptest::collection::vec(
                (0u16..500, 0.0f64..5.0, 0.0f64..2.0, 0.0f64..50.0, proptest::bool::ANY),
                1..6,
            ),
            gpus in (1u32..200, 1u32..64, 1u32..32),
            midpoint in proptest::bool::ANY,
        ) {
            let (mut ent, speedups, demand) = build(&rows, gpus);
            let strategy = if midpoint {
                PriceStrategy::Midpoint
            } else {
                PriceStrategy::MaxSpeedup
            };
            let before: Vec<f64> = (0..3)
                .map(|g| ent.total_of_gen(GenId::new(g)))
                .collect();
            let _ = run_market(&mut ent, &market_inputs(&speedups, &demand), strategy, 0.2);
            for g in 0..3u32 {
                let after = ent.total_of_gen(GenId::new(g));
                prop_assert!(
                    (after - before[g as usize]).abs() < 1e-6,
                    "gen {g}: {} -> {after}",
                    before[g as usize]
                );
            }
        }

        /// No participant's valuation (at their own profiled speedups) drops
        /// below their pre-trade entitlement value.
        #[test]
        fn market_never_hurts_anyone(
            rows in proptest::collection::vec(
                (0u16..500, 0.0f64..5.0, 0.0f64..2.0, 0.0f64..50.0, proptest::bool::ANY),
                2..6,
            ),
            gpus in (1u32..200, 1u32..64, 1u32..32),
            midpoint in proptest::bool::ANY,
        ) {
            let (mut ent, speedups, demand) = build(&rows, gpus);
            let strategy = if midpoint {
                PriceStrategy::Midpoint
            } else {
                PriceStrategy::MaxSpeedup
            };
            let users: Vec<UserId> = ent.users().collect();
            let before: Vec<f64> = users
                .iter()
                .map(|&u| ent.valuation(u, &speedups[&u]))
                .collect();
            let trades = run_market(&mut ent, &market_inputs(&speedups, &demand), strategy, 0.2);
            for (i, &u) in users.iter().enumerate() {
                let after = ent.valuation(u, &speedups[&u]);
                prop_assert!(
                    after >= before[i] - 1e-6,
                    "user {u} lost value {} -> {after} (trades {trades:?})",
                    before[i]
                );
            }
        }

        /// Fast GPUs only ever flow from lower-speedup to higher-speedup
        /// users, at a price between (or at) their speedups, and total
        /// valuation (efficiency) never decreases.
        #[test]
        fn market_trades_are_sensible(
            rows in proptest::collection::vec(
                (0u16..500, 0.0f64..5.0, 0.5f64..2.0, 0.0f64..50.0, proptest::bool::ANY),
                2..6,
            ),
            gpus in (8u32..200, 1u32..64, 1u32..32),
        ) {
            let (mut ent, speedups, demand) = build(&rows, gpus);
            let users: Vec<UserId> = ent.users().collect();
            let total_before: f64 = users
                .iter()
                .map(|&u| ent.valuation(u, &speedups[&u]))
                .sum();
            let trades = run_market(
                &mut ent,
                &market_inputs(&speedups, &demand),
                PriceStrategy::MaxSpeedup,
                0.2,
            );
            for t in &trades {
                prop_assert!(t.buyer_speedup > t.seller_speedup + 0.2 - 1e-9);
                prop_assert!(t.price >= t.seller_speedup - 1e-9);
                prop_assert!(t.price <= t.buyer_speedup + 1e-9);
                prop_assert!(t.fast_gpus > 0.0);
                prop_assert!((t.base_gpus - t.price * t.fast_gpus).abs() < 1e-6);
            }
            let total_after: f64 = users
                .iter()
                .map(|&u| ent.valuation(u, &speedups[&u]))
                .sum();
            prop_assert!(total_after >= total_before - 1e-6);
        }
    }
}
