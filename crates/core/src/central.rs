//! The central Gandiva_fair scheduler.
//!
//! Orchestrates everything: placement of arriving jobs, per-round gang
//! scheduling through the per-server [`LocalScheduler`]s, periodic
//! entitlement refresh + trading, and periodic migration-based balancing.
//!
//! ## Decision flow per round
//!
//! 1. Refresh entitlements if the active user set changed or the trade
//!    interval elapsed; re-run the trading market on refresh.
//! 2. If the balance interval elapsed, plan migrations (profiling /
//!    realization / spreading passes).
//! 3. Sync every local scheduler with residency (excluding jobs that are
//!    about to migrate) and with user weights = the user's post-trade
//!    entitlement on that server's generation.
//! 4. Collect each server's gang-aware stride selection into the round plan.

use crate::balance::plan_migrations_traced;
use crate::config::GfairConfig;
use crate::entitlement::Entitlements;
use crate::local::LocalScheduler;
use crate::pool::WorkerPool;
use crate::profiler::Profiler;
use crate::trade::{run_market_traced, Trade};
use gfair_obs::{Candidate, Obs, Phase, Rejection, SharedObs, TraceEvent, UserShare};
use gfair_sim::{Action, ClusterScheduler, ProfileReport, RoundPlan, SimView};
use gfair_types::{
    GenId, JobId, JobState, MigrationFailReason, ServerId, ServerSpec, SimTime, UserId,
};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Recovery bookkeeping for one job whose migration (or queued placement)
/// failed: how many attempts have failed, when the next one may be issued,
/// and which generation the failed move was targeting.
#[derive(Debug, Clone, Copy)]
struct RetryState {
    /// Failed attempts observed so far in this recovery episode.
    attempts: u32,
    /// Earliest time the next attempt may be issued (exponential backoff).
    next_try: SimTime,
    /// Generation the failed move was targeting; the retry re-targets the
    /// least-loaded reachable server of this generation.
    gen: GenId,
}

/// The Gandiva_fair cluster scheduler.
///
/// # Examples
///
/// ```no_run
/// use gfair_core::{GandivaFair, GfairConfig};
/// use gfair_sim::Simulation;
/// use gfair_types::{ClusterSpec, SimConfig, UserSpec};
///
/// let cluster = ClusterSpec::paper_testbed();
/// let users = UserSpec::equal_users(4, 100);
/// let trace = vec![]; // build with gfair-workloads
/// let sim = Simulation::new(cluster, users, trace, SimConfig::default()).unwrap();
/// let mut sched = GandivaFair::new(GfairConfig::default());
/// let report = sim.run(&mut sched).unwrap();
/// ```
#[derive(Debug)]
pub struct GandivaFair {
    cfg: GfairConfig,
    name: &'static str,
    profiler: Option<Profiler>,
    ent: Option<Entitlements>,
    locals: BTreeMap<ServerId, LocalScheduler>,
    /// Active-user signature the current entitlements were computed from.
    active_sig: Vec<(UserId, u64)>,
    next_trade: SimTime,
    next_balance: SimTime,
    /// Executed trades with their timestamps, for experiment reporting.
    trade_log: Vec<(SimTime, Trade)>,
    /// GPU demand of placements issued this round but not yet applied by the
    /// engine (placement callbacks run before the round boundary), so that
    /// simultaneous arrivals do not pile onto one server. Indexed by
    /// `ServerId::index()` (server ids are dense) — this is read once per
    /// candidate server on every placement, the hottest lookup in the
    /// arrival path.
    inflight: Vec<u32>,
    /// Jobs whose migration failed and is being retried with backoff.
    retry: BTreeMap<JobId, RetryState>,
    /// Per-generation stride weight vectors derived from the current
    /// entitlements, indexed by `GenId::index()` and id-sorted per vector
    /// (entitlements iterate users in id order). Weights depend only on a
    /// server's generation, so the cache is rebuilt once per entitlement
    /// refresh — a few vectors — instead of once per server per round.
    gen_weights: Vec<Vec<(UserId, f64)>>,
    /// Weight snapshots for servers that were unreachable at an entitlement
    /// refresh: an unreachable server cannot receive updates, so its local
    /// scheduler keeps running on the last weights it was sent until it is
    /// reachable again (graceful degradation). Entries are dropped the
    /// moment the server is reachable again.
    stale_weights: BTreeMap<ServerId, Vec<(UserId, f64)>>,
    /// Observability pipeline: trade and profile-convergence events plus
    /// self-profiling spans for the hot phases. Share the simulation's
    /// instance via [`GandivaFair::with_obs`] to get one unified trace.
    obs: SharedObs,
    /// Persistent planning workers, created on the first parallel round and
    /// reused every round thereafter (per-round thread spawns dominate the
    /// planning phase at benchmark scale).
    pool: Option<WorkerPool>,
    /// Resolved planning-worker count, computed once at init:
    /// `available_parallelism` re-reads cgroup state on every call, which is
    /// far too slow for the per-round path.
    workers: usize,
}

impl GandivaFair {
    /// Creates the scheduler with the given policy configuration.
    pub fn new(cfg: GfairConfig) -> Self {
        GandivaFair {
            cfg,
            name: "gandiva-fair",
            profiler: None,
            ent: None,
            locals: BTreeMap::new(),
            active_sig: Vec::new(),
            next_trade: SimTime::ZERO,
            next_balance: SimTime::ZERO,
            trade_log: Vec::new(),
            inflight: Vec::new(),
            retry: BTreeMap::new(),
            gen_weights: Vec::new(),
            stale_weights: BTreeMap::new(),
            obs: Arc::new(Obs::new()),
            pool: None,
            workers: 0,
        }
    }

    /// Overrides the report name (used by ablation variants).
    pub fn with_name(mut self, name: &'static str) -> Self {
        self.name = name;
        self
    }

    /// Attaches a shared observability pipeline. Pass the same instance to
    /// `Simulation::with_obs` so scheduler-side events (trades, profile
    /// convergence) and engine-side events land in one ordered trace.
    pub fn with_obs(mut self, obs: SharedObs) -> Self {
        self.obs = obs;
        self
    }

    /// Trades executed so far, with timestamps.
    pub fn trades(&self) -> &[(SimTime, Trade)] {
        &self.trade_log
    }

    /// The profiler's current state (None before the first round).
    pub fn profiler(&self) -> Option<&Profiler> {
        self.profiler.as_ref()
    }

    /// The current entitlements (None before the first round).
    pub fn entitlements(&self) -> Option<&Entitlements> {
        self.ent.as_ref()
    }

    /// Lazily builds the profiler and local schedulers from the cluster.
    fn ensure_init(&mut self, view: &SimView<'_>) {
        if self.profiler.is_none() {
            self.profiler = Some(Profiler::new(
                view.cluster().catalog.len(),
                self.cfg.min_profile_samples,
            ));
        }
        if self.locals.is_empty() {
            for s in &view.cluster().servers {
                self.locals.insert(
                    s.id,
                    LocalScheduler::new(s.id, s.num_gpus, self.cfg.gang_policy),
                );
            }
        }
        if self.inflight.len() < view.cluster().servers.len() {
            self.inflight.resize(view.cluster().servers.len(), 0);
        }
        if self.workers == 0 {
            self.workers = planning_workers(self.cfg.planning_workers, self.locals.len());
        }
    }

    /// The active-user signature: (user, tickets) for users with active jobs.
    fn active_signature(view: &SimView<'_>) -> Vec<(UserId, u64)> {
        let tickets: BTreeMap<UserId, u64> =
            view.users().iter().map(|u| (u.id, u.tickets)).collect();
        view.active_users()
            .into_iter()
            .map(|u| (u, tickets.get(&u).copied().unwrap_or(1)))
            .collect()
    }

    /// Per-user total GPU demand (sum of active gang sizes).
    fn demands(view: &SimView<'_>) -> BTreeMap<UserId, f64> {
        let mut d = BTreeMap::new();
        for j in view.active_jobs() {
            *d.entry(j.user).or_insert(0.0) += j.gang as f64;
        }
        d
    }

    /// Per-user, per-generation speedup estimates: the demand-weighted mean
    /// of the profiled speedups of the user's active jobs' models. `None`
    /// where no job of the user is profiled on that generation.
    fn user_speedups(&self, view: &SimView<'_>) -> BTreeMap<UserId, Vec<Option<f64>>> {
        let profiler = self.profiler.as_ref().expect("initialized");
        let base = GenId::new(0);
        let num_gens = view.cluster().catalog.len();
        let mut out: BTreeMap<UserId, Vec<Option<f64>>> = BTreeMap::new();
        let mut weights: BTreeMap<(UserId, usize), f64> = BTreeMap::new();
        let mut sums: BTreeMap<(UserId, usize), f64> = BTreeMap::new();
        for j in view.active_jobs() {
            for g in 0..num_gens {
                let gen = GenId::new(g as u32);
                if let Some(s) = profiler.speedup(&j.model, gen, base) {
                    *weights.entry((j.user, g)).or_insert(0.0) += j.gang as f64;
                    *sums.entry((j.user, g)).or_insert(0.0) += s * j.gang as f64;
                }
            }
        }
        for u in view.active_users() {
            let mut row = vec![None; num_gens];
            row[0] = Some(1.0);
            for (g, slot) in row.iter_mut().enumerate().skip(1) {
                if let (Some(&w), Some(&s)) = (weights.get(&(u, g)), sums.get(&(u, g))) {
                    if w > 0.0 {
                        *slot = Some(s / w);
                    }
                }
            }
            out.insert(u, row);
        }
        out
    }

    /// Recomputes base entitlements and re-runs the market.
    fn refresh_entitlements(&mut self, view: &SimView<'_>, active: Vec<(UserId, u64)>) {
        let gpus = view.cluster().gpus_per_gen();
        let mut ent = Entitlements::base(&gpus, &active);
        if self.cfg.trading && !active.is_empty() {
            let speedups = self.user_speedups(view);
            let demand = Self::demands(view);
            let now = view.now();
            let trades = run_market_traced(
                &self.obs,
                now,
                &mut ent,
                &speedups,
                &demand,
                view.config().price_strategy,
                self.cfg.trade_margin,
            );
            self.trade_log.extend(trades.into_iter().map(|t| (now, t)));
        }
        self.ent = Some(ent);
        self.active_sig = active;
        // Servers that cannot be reached right now keep the weights they
        // last received: snapshot those (the pre-refresh per-gen vectors)
        // before rebuilding the cache, unless an earlier refresh already
        // recorded a snapshot for them.
        {
            let gen_weights = &self.gen_weights;
            let stale = &mut self.stale_weights;
            for s in &view.cluster().servers {
                if !view.is_reachable(s.id) {
                    stale.entry(s.id).or_insert_with(|| {
                        gen_weights.get(s.gen.index()).cloned().unwrap_or_default()
                    });
                }
            }
        }
        let ent = self.ent.as_ref().expect("assigned above");
        let min_weight = self.cfg.min_weight;
        let num_gens = view.cluster().catalog.ids().count();
        let mut gen_weights = vec![Vec::new(); num_gens];
        for gen in view.cluster().catalog.ids() {
            gen_weights[gen.index()] = ent
                .users()
                .map(|u| (u, ent.get(u, gen).max(min_weight)))
                .collect();
        }
        self.gen_weights = gen_weights;
    }

    /// Server load including placements issued this round but not yet
    /// applied by the engine.
    fn projected_load(&self, view: &SimView<'_>, server: ServerId) -> f64 {
        let gpus = view.cluster().server(server).num_gpus;
        let pending = self.inflight.get(server.index()).copied().unwrap_or(0);
        (view.resident_demand(server) + pending) as f64 / gpus as f64
    }

    /// Scores every server in `scope` that fits the gang by projected load
    /// and picks the minimum (ties to the lowest id). Returns the winner
    /// plus the provenance rows: fitting-server count, servers ruled out as
    /// too narrow, and the top-[`MAX_WHY_CANDIDATES`] candidates by score.
    fn pick_least_loaded<'a>(
        &self,
        view: &SimView<'_>,
        gang: u32,
        scope: impl Iterator<Item = &'a ServerSpec>,
        want_why: bool,
    ) -> (Option<ServerId>, u32, u32, Vec<Candidate>) {
        let mut too_narrow = 0u32;
        if !want_why {
            // Allocation-free fast path for untraced runs: the same
            // selection rule (least projected load, then lowest id), no
            // provenance materialized.
            let mut considered = 0u32;
            let mut best: Option<(f64, ServerId)> = None;
            for s in scope {
                if s.num_gpus < gang {
                    too_narrow += 1;
                    continue;
                }
                considered += 1;
                let load = self.projected_load(view, s.id);
                let better = match best {
                    None => true,
                    Some((bl, bid)) => load.total_cmp(&bl).then(s.id.cmp(&bid)).is_lt(),
                };
                if better {
                    best = Some((load, s.id));
                }
            }
            return (best.map(|(_, id)| id), considered, too_narrow, Vec::new());
        }
        // Scores stay as plain pairs until after truncation: formatting a
        // label per scanned server would put ~100 heap allocations on every
        // job arrival at the 1000-GPU scale.
        let mut scored: Vec<(f64, ServerId)> = Vec::new();
        for s in scope {
            if s.num_gpus < gang {
                too_narrow += 1;
                continue;
            }
            scored.push((self.projected_load(view, s.id), s.id));
        }
        let considered = scored.len() as u32;
        scored.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let best = scored.first().map(|&(_, id)| id);
        scored.truncate(MAX_WHY_CANDIDATES);
        let candidates = scored
            .into_iter()
            .map(|(load, id)| Candidate {
                label: format!("server:{}", id.index()),
                score: load,
            })
            .collect();
        (best, considered, too_narrow, candidates)
    }

    /// Picks a server for an arriving job: prefer the generation where the
    /// user has the most entitlement slack, then the least-loaded server of
    /// that generation that fits; fall back to least-loaded overall. Only
    /// reachable servers are considered — a placement sent to a partitioned
    /// server could not be delivered.
    ///
    /// Alongside the choice, returns the [`ChoiceWhy`] provenance the
    /// caller renders into a [`TraceEvent::Decision`].
    fn choose_server_explained(
        &self,
        view: &SimView<'_>,
        user: UserId,
        gang: u32,
        want_why: bool,
    ) -> (Option<ServerId>, Option<ChoiceWhy>) {
        // Current per-gen usage of this user.
        let mut used: BTreeMap<GenId, f64> = BTreeMap::new();
        for j in view.jobs_of_user(user) {
            if let Some(s) = j.server {
                *used.entry(view.cluster().server(s).gen).or_insert(0.0) += j.gang as f64;
            }
        }
        let mut rejected: Vec<Rejection> = Vec::new();
        if let Some(ent) = &self.ent {
            let mut gens_without_slack = 0u32;
            let mut best_gen: Option<(GenId, f64)> = None;
            for gen in view.cluster().catalog.ids() {
                let slack = ent.get(user, gen) - used.get(&gen).copied().unwrap_or(0.0);
                if slack <= 0.0 {
                    gens_without_slack += 1;
                    continue;
                }
                if best_gen.map(|(_, s)| slack > s).unwrap_or(true) {
                    // Only generations with an online server wide enough
                    // for the gang.
                    if view
                        .reachable_servers_of_gen(gen)
                        .any(|s| s.num_gpus >= gang)
                    {
                        best_gen = Some((gen, slack));
                    }
                }
            }
            if want_why && gens_without_slack > 0 {
                rejected.push(Rejection {
                    reason: "gen_without_slack".to_string(),
                    count: gens_without_slack,
                });
            }
            if let Some((gen, slack)) = best_gen {
                let (target, considered, too_narrow, candidates) = self.pick_least_loaded(
                    view,
                    gang,
                    view.reachable_servers_of_gen(gen),
                    want_why,
                );
                if let Some(server) = target {
                    if !want_why {
                        return (Some(server), None);
                    }
                    if too_narrow > 0 {
                        rejected.push(Rejection {
                            reason: "gang_too_wide_for_server".to_string(),
                            count: too_narrow,
                        });
                    }
                    let why = ChoiceWhy {
                        chosen: format!(
                            "server:{} (gen:{} slack-first, slack {:.2})",
                            server.index(),
                            gen.index(),
                            slack
                        ),
                        tie_break: TIE_BREAK_LOAD,
                        considered,
                        candidates,
                        rejected,
                    };
                    return (Some(server), Some(why));
                }
            }
        }
        // Work conservation fallback: least-loaded fitting server anywhere.
        if want_why {
            let total = view.cluster().servers.len() as u32;
            let reachable = view.reachable_servers().count() as u32;
            if total > reachable {
                rejected.push(Rejection {
                    reason: "unreachable".to_string(),
                    count: total - reachable,
                });
            }
        }
        let (target, considered, too_narrow, candidates) =
            self.pick_least_loaded(view, gang, view.reachable_servers(), want_why);
        if !want_why {
            return (target, None);
        }
        if too_narrow > 0 {
            rejected.push(Rejection {
                reason: "gang_too_wide_for_server".to_string(),
                count: too_narrow,
            });
        }
        let why = ChoiceWhy {
            chosen: match target {
                Some(s) => format!("server:{} (work-conserving fallback)", s.index()),
                None => "none (no reachable server fits)".to_string(),
            },
            tie_break: TIE_BREAK_LOAD,
            considered,
            candidates,
            rejected,
        };
        (target, Some(why))
    }

    /// Re-issues failed migrations whose backoff window has expired.
    ///
    /// Pending jobs (restore failures, stranded mid-flight) are left to the
    /// placement path, which honors the same backoff; in-flight jobs wait
    /// for their `MigrationDone`; resident jobs already sitting on the
    /// generation the failed move was targeting count as recovered.
    fn plan_retries(&mut self, view: &SimView<'_>, actions: &mut Vec<Action>) {
        if self.retry.is_empty() {
            return;
        }
        let now = view.now();
        let planned: BTreeSet<JobId> = actions
            .iter()
            .map(|a| match a {
                Action::Migrate { job, .. } | Action::Place { job, .. } => *job,
            })
            .collect();
        let due: Vec<(JobId, RetryState)> = self
            .retry
            .iter()
            .filter(|(_, r)| r.next_try <= now)
            .map(|(&j, &r)| (j, r))
            .collect();
        for (job, state) in due {
            let Some(info) = view.job(job) else {
                self.retry.remove(&job);
                continue;
            };
            match info.state {
                JobState::Finished => {
                    self.retry.remove(&job);
                }
                // The placement path owns pending jobs; in-flight jobs are
                // resolved by their MigrationDone (or the next failure).
                JobState::Pending | JobState::Migrating => {}
                JobState::Resident => {
                    let cur = info.server.expect("resident job has a server");
                    if view.cluster().server(cur).gen == state.gen {
                        // The job already sits where the failed move was
                        // headed (e.g. the balancer got there first).
                        self.retry.remove(&job);
                        continue;
                    }
                    if planned.contains(&job) {
                        continue;
                    }
                    let want_why = self.obs.why();
                    let (target, considered, too_narrow, candidates) = self.pick_least_loaded(
                        view,
                        info.gang,
                        view.reachable_servers_of_gen(state.gen),
                        want_why,
                    );
                    if let Some(to) = target {
                        if to != cur {
                            if want_why {
                                let mut rejected = Vec::new();
                                if too_narrow > 0 {
                                    rejected.push(Rejection {
                                        reason: "gang_too_wide_for_server".to_string(),
                                        count: too_narrow,
                                    });
                                }
                                self.obs.emit(TraceEvent::Decision {
                                    t: now,
                                    decision: "retry".to_string(),
                                    job: Some(job),
                                    user: Some(info.user),
                                    chosen: format!(
                                        "migrate to server:{} (gen:{}, attempt {})",
                                        to.index(),
                                        state.gen.index(),
                                        state.attempts + 1
                                    ),
                                    tie_break: TIE_BREAK_LOAD.to_string(),
                                    considered,
                                    candidates,
                                    rejected,
                                });
                            }
                            actions.push(Action::Migrate { job, to });
                        }
                    }
                }
            }
        }
    }
}

/// Tie-break rule shared by every load-based server selection; quoted
/// verbatim in [`TraceEvent::Decision`] provenance.
const TIE_BREAK_LOAD: &str = "least projected load, then lowest server id";

/// Cap on the scored candidates carried in one decision event. The full
/// candidate count is still reported via `considered`.
const MAX_WHY_CANDIDATES: usize = 8;

/// Provenance for one server choice: what was picked, how ties were
/// broken, and what was ruled out. Rendered into a
/// [`TraceEvent::Decision`] by the caller, which knows the decision site.
struct ChoiceWhy {
    /// Human-readable selected alternative (or `none (...)`).
    chosen: String,
    /// Tie-break rule applied among equally-scored candidates.
    tie_break: &'static str,
    /// Fitting servers that were scored.
    considered: u32,
    /// Best-scoring alternatives, winner first (bounded).
    candidates: Vec<Candidate>,
    /// Alternatives ruled out, grouped by reason.
    rejected: Vec<Rejection>,
}

/// Weight of `u` in an id-sorted per-server weight vec, if present.
fn weight_lookup(weights: &[(UserId, f64)], u: UserId) -> Option<f64> {
    weights
        .binary_search_by_key(&u, |&(user, _)| user)
        .ok()
        .map(|i| weights[i].1)
}

/// Resolves the configured planning-worker count against the machine and
/// the number of servers: `0` means auto-size from available parallelism,
/// and the pool never exceeds the server count (an idle worker is pure
/// spawn overhead).
fn planning_workers(configured: usize, servers: usize) -> usize {
    let requested = if configured == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        configured
    };
    requested.min(servers).max(1)
}

impl ClusterScheduler for GandivaFair {
    fn name(&self) -> &'static str {
        self.name
    }

    fn on_job_arrival(&mut self, view: &SimView<'_>, job: JobId) -> Vec<Action> {
        self.ensure_init(view);
        let info = view.job(job).expect("arriving job is known");
        let want_why = self.obs.why();
        let (target, why) = self.choose_server_explained(view, info.user, info.gang, want_why);
        if let Some(why) = why {
            self.obs.emit(TraceEvent::Decision {
                t: view.now(),
                decision: "placement".to_string(),
                job: Some(job),
                user: Some(info.user),
                chosen: why.chosen,
                tie_break: why.tie_break.to_string(),
                considered: why.considered,
                candidates: why.candidates,
                rejected: why.rejected,
            });
        }
        match target {
            Some(server) => {
                self.inflight[server.index()] += info.gang;
                vec![Action::Place { job, server }]
            }
            // Unplaceable gangs are rejected at simulation construction, so
            // this only happens for an empty cluster.
            None => Vec::new(),
        }
    }

    fn on_profile_report(&mut self, view: &SimView<'_>, report: &ProfileReport) -> Vec<Action> {
        self.ensure_init(view);
        if let Some(info) = view.job(report.job) {
            let profiler = self.profiler.as_mut().expect("initialized");
            let converged = profiler.record(&info.model, report.gen, report.rate);
            if converged {
                // The estimate just crossed the sample threshold: announce
                // the inferred rate once per (model, generation).
                self.obs.emit(TraceEvent::ProfileInferred {
                    t: view.now(),
                    model: info.model.to_string(),
                    gen: report.gen,
                    rate: profiler
                        .rate(&info.model, report.gen)
                        .expect("just recorded"),
                    samples: profiler.samples(&info.model, report.gen),
                });
            }
        }
        Vec::new()
    }

    fn on_migration_failed(
        &mut self,
        view: &SimView<'_>,
        job: JobId,
        to: ServerId,
        _reason: MigrationFailReason,
    ) -> Vec<Action> {
        self.ensure_init(view);
        let state = view.job(job).map(|j| j.state);
        if state.is_none() || state == Some(JobState::Finished) {
            self.retry.remove(&job);
            return Vec::new();
        }
        let entry = self.retry.entry(job).or_insert(RetryState {
            attempts: 0,
            next_try: SimTime::ZERO,
            gen: GenId::new(0),
        });
        entry.attempts += 1;
        if entry.attempts > self.cfg.max_migration_retries {
            // Retry budget exhausted: leave the job where the failure put
            // it. Resident jobs stay at the source; pending jobs fall to
            // the ordinary placement path with no backoff gate.
            self.retry.remove(&job);
            self.obs.inc("migration_retries_abandoned", 1);
            return Vec::new();
        }
        let shift = (entry.attempts - 1).min(16);
        entry.next_try = view.now() + self.cfg.backoff_base * (1u64 << shift);
        entry.gen = view.cluster().server(to).gen;
        Vec::new()
    }

    fn on_migration_done(&mut self, _view: &SimView<'_>, job: JobId) -> Vec<Action> {
        // A landed migration ends any recovery episode for the job.
        self.retry.remove(&job);
        Vec::new()
    }

    fn on_partition_heal(&mut self, view: &SimView<'_>, server: ServerId) -> Vec<Action> {
        self.ensure_init(view);
        // Reconcile: re-sync entitlements cluster-wide (clearing the active
        // signature forces a refresh at the next round) and re-validate the
        // healed server's residency against the local scheduler's
        // last-known membership. The next sync() repairs any drift; the
        // Reconcile event records how much there was.
        self.active_sig.clear();
        let local_jobs: BTreeSet<JobId> = self
            .locals
            .get(&server)
            .map(|l| l.jobs().collect())
            .unwrap_or_default();
        let actual: BTreeSet<JobId> = view.resident(server).collect();
        let drift = local_jobs.symmetric_difference(&actual).count() as u32;
        let users_resynced = self
            .ent
            .as_ref()
            .map(|e| e.users().count() as u32)
            .unwrap_or(0);
        self.obs.emit(TraceEvent::Reconcile {
            t: view.now(),
            server,
            users_resynced,
            jobs_revalidated: actual.len() as u32,
            drift,
        });
        Vec::new()
    }

    fn plan_round(&mut self, view: &SimView<'_>) -> RoundPlan {
        self.ensure_init(view);
        // Queued placements were applied before this callback.
        self.inflight.fill(0);
        let now = view.now();

        // 1. Entitlements: refresh on churn or on the trade timer.
        let active = Self::active_signature(view);
        let trade_due = now >= self.next_trade;
        let refreshed = trade_due || active != self.active_sig || self.ent.is_none();
        if refreshed {
            self.refresh_entitlements(view, active);
            if trade_due {
                self.next_trade = now + view.config().trade_interval;
            }
        }

        // 2. Balancing.
        let mut actions = Vec::new();
        if self.cfg.balancing && now >= self.next_balance {
            let ent = self.ent.as_ref().expect("refreshed above");
            let profiler = self.profiler.as_ref().expect("initialized");
            actions = plan_migrations_traced(&self.obs, view, ent, profiler, &self.cfg);
            self.next_balance = now + view.config().balance_interval;
        }
        // 3. Recovery: re-issue failed migrations whose backoff expired.
        self.plan_retries(view, &mut actions);

        // 4. Retry jobs whose placement failed earlier (e.g. every fitting
        // server was down at arrival time). Jobs in a backoff window after
        // a failed migration wait until their retry is due; once placed,
        // the placement path owns them and the retry entry is dropped.
        let retries: Vec<(JobId, UserId, u32)> = view
            .pending_jobs()
            .filter(|j| {
                self.retry
                    .get(&j.id)
                    .map(|r| r.next_try <= now)
                    .unwrap_or(true)
            })
            .map(|j| (j.id, j.user, j.gang))
            .collect();
        let want_why = self.obs.why();
        for (job, user, gang) in retries {
            let (target, why) = self.choose_server_explained(view, user, gang, want_why);
            if let Some(server) = target {
                self.retry.remove(&job);
                // Emit only on success: an unplaceable job would otherwise
                // flood the trace with one identical decision per round.
                if let Some(why) = why {
                    self.obs.emit(TraceEvent::Decision {
                        t: now,
                        decision: "retry".to_string(),
                        job: Some(job),
                        user: Some(user),
                        chosen: why.chosen,
                        tie_break: why.tie_break.to_string(),
                        considered: why.considered,
                        candidates: why.candidates,
                        rejected: why.rejected,
                    });
                }
                actions.push(Action::Place { job, server });
            }
        }

        // 5. Sync locals and collect per-server selections. Jobs involved
        // in this round's actions (migrating away or just being placed) are
        // excluded from the run sets.
        let departing: BTreeSet<JobId> = actions
            .iter()
            .map(|a| match a {
                Action::Migrate { job, .. } | Action::Place { job, .. } => *job,
            })
            .collect();
        let min_weight = self.cfg.min_weight;
        // A reachable server always plans on the current per-gen weights;
        // any stale snapshot it held while unreachable is dropped the round
        // it comes back (entitlements are re-refreshed on heal, so it
        // converges to the live economy immediately). A dropped snapshot
        // changes that server's effective weights, so the round counts as
        // weight-dirty just like an entitlement refresh.
        let mut weights_dirty = refreshed;
        self.stale_weights.retain(|s, _| {
            let keep = !view.is_reachable(*s);
            weights_dirty |= !keep;
            keep
        });
        let mut plan = RoundPlan {
            run: BTreeMap::new(),
            actions,
        };
        let workers = self.workers.max(1);
        let pool = &mut self.pool;
        if workers > 1 && pool.as_ref().map(WorkerPool::size) != Some(workers) {
            *pool = Some(WorkerPool::new(workers));
        }
        let locals = &mut self.locals;
        let gen_weights = &self.gen_weights;
        let stale_weights = &self.stale_weights;
        let cluster = view.cluster();
        // The weight vector a server plans on: its stale snapshot while
        // unreachable, the live per-gen vector otherwise.
        let weights_of = |server: ServerId| -> &[(UserId, f64)] {
            stale_weights
                .get(&server)
                .map(Vec::as_slice)
                .unwrap_or_else(|| {
                    gen_weights
                        .get(cluster.server(server).gen.index())
                        .map(Vec::as_slice)
                        .unwrap_or(&[])
                })
        };
        let obs = Arc::clone(&self.obs);
        obs.time(Phase::GangPacking, || {
            if workers <= 1 {
                for (&server, local) in locals.iter_mut() {
                    let weights = weights_of(server);
                    local.sync(
                        view,
                        &departing,
                        |u| weight_lookup(weights, u).unwrap_or(min_weight),
                        weights_dirty,
                    );
                    let selected = local.plan();
                    if !selected.is_empty() {
                        plan.run.insert(server, selected);
                    }
                }
                return;
            }
            // Parallel fan-out. Each server's local scheduler is an
            // independent piece of state and the weight function is pure, so
            // per-server planning commutes; workers take contiguous chunks
            // of the id-ordered server list and the merge below re-inserts
            // in that same order — the resulting plan is byte-identical to
            // the sequential path no matter the worker count.
            let departing = &departing;
            let mut work: Vec<(ServerId, &mut LocalScheduler)> =
                locals.iter_mut().map(|(&s, l)| (s, l)).collect();
            let chunk = work.len().div_ceil(workers);
            let mut results: Vec<Vec<(ServerId, Vec<JobId>)>> =
                vec![Vec::new(); work.len().div_ceil(chunk)];
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = work
                .chunks_mut(chunk)
                .zip(results.iter_mut())
                .map(|(slice, out)| {
                    Box::new(move || {
                        *out = slice
                            .iter_mut()
                            .map(|(server, local)| {
                                let weights = weights_of(*server);
                                local.sync(
                                    view,
                                    departing,
                                    |u| weight_lookup(weights, u).unwrap_or(min_weight),
                                    weights_dirty,
                                );
                                (*server, local.plan())
                            })
                            .collect();
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            pool.as_ref().expect("pool sized above").run(tasks);
            for (server, selected) in results.into_iter().flatten() {
                if !selected.is_empty() {
                    plan.run.insert(server, selected);
                }
            }
        });
        plan
    }

    fn next_decision_time(&self) -> Option<SimTime> {
        // Epoch timers and retry backoffs are the only internal clocks that
        // can change a plan with otherwise-unchanged inputs. A past retry
        // deadline (job waiting in a non-retryable state) keeps the minimum
        // in the past, which makes the engine's horizon collapse to zero —
        // conservative, never wrong.
        let mut t = self.next_trade;
        if self.cfg.balancing {
            t = t.min(self.next_balance);
        }
        for r in self.retry.values() {
            t = t.min(r.next_try);
        }
        Some(t)
    }

    fn probe_fast_forward(&mut self, view: &SimView<'_>, plan: &RoundPlan, k: u64) -> u64 {
        if !self.cfg.fast_forward || k == 0 || self.locals.is_empty() {
            return 0;
        }
        // Anything that would steer the next plan_round down a different
        // path declines: a pending job could be placed, an epoch timer could
        // fire, a due retry could re-enter the planning flow. The engine
        // already bounds k by next_decision_time, so these are defensive.
        if view.pending_jobs().next().is_some() {
            return 0;
        }
        let now = view.now();
        if now >= self.next_trade {
            return 0;
        }
        if self.cfg.balancing && now >= self.next_balance {
            return 0;
        }
        if self.retry.values().any(|r| r.next_try <= now) {
            return 0;
        }
        // All-or-nothing across servers: the replayable horizon is the
        // minimum over every local scheduler's differential check against
        // the cached plan (absent servers must reproduce an empty
        // selection).
        let mut j = k;
        for (&server, local) in self.locals.iter() {
            let expected = plan.run.get(&server).map(Vec::as_slice).unwrap_or(&[]);
            j = j.min(local.quiescent_rounds(expected, k));
            if j == 0 {
                return 0;
            }
        }
        j
    }

    fn commit_fast_forward(&mut self, j: u64) {
        for local in self.locals.values_mut() {
            local.fast_forward(j);
        }
    }

    fn user_shares(&self, _view: &SimView<'_>) -> Vec<UserShare> {
        let Some(ent) = &self.ent else {
            return Vec::new();
        };
        // The user's effective priority is the best (lowest) stride pass
        // among their jobs anywhere in the cluster. Fold it in one pass over
        // the locals instead of scanning every server once per entitled user
        // — locals dominate users at bench scale, so this turns a
        // users × servers sweep into servers + users.
        let mut min_pass: BTreeMap<UserId, f64> = BTreeMap::new();
        for local in self.locals.values() {
            local.for_each_user_pass(|u, p| {
                min_pass
                    .entry(u)
                    .and_modify(|m| {
                        if p.total_cmp(m).is_lt() {
                            *m = p;
                        }
                    })
                    .or_insert(p);
            });
        }
        ent.users()
            .map(|user| UserShare {
                user,
                tickets: ent.gpus_of(user),
                pass: min_pass.get(&user).copied().unwrap_or(0.0),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfair_sim::Simulation;
    use gfair_types::{ClusterSpec, JobSpec, ModelProfile, SimConfig, UserSpec};
    use std::sync::Arc;

    fn mono_model() -> Arc<ModelProfile> {
        Arc::new(ModelProfile::with_default_overheads("uni", vec![1.0]))
    }

    fn job(id: u32, user: u32, gang: u32, service: f64, at: u64) -> JobSpec {
        JobSpec::new(
            JobId::new(id),
            UserId::new(user),
            mono_model(),
            gang,
            service,
            SimTime::from_secs(at),
        )
    }

    #[test]
    fn single_job_completes_promptly() {
        let sim = Simulation::new(
            ClusterSpec::homogeneous(2, 4),
            UserSpec::equal_users(1, 100),
            vec![job(0, 0, 2, 600.0, 0)],
            SimConfig::default(),
        )
        .unwrap();
        let mut sched = GandivaFair::new(GfairConfig::default());
        let report = sim.run(&mut sched).unwrap();
        assert_eq!(report.finished_jobs(), 1);
        assert_eq!(
            report.jobs[&JobId::new(0)].finish,
            Some(SimTime::from_secs(600))
        );
    }

    #[test]
    fn equal_users_get_equal_gpu_time_under_contention() {
        // 1 server x 4 GPUs, 2 users x 4 single-GPU long jobs each.
        let mut trace = Vec::new();
        for u in 0..2u32 {
            for k in 0..4u32 {
                trace.push(job(u * 4 + k, u, 1, 50_000.0, 0));
            }
        }
        let sim = Simulation::new(
            ClusterSpec::homogeneous(1, 4),
            UserSpec::equal_users(2, 100),
            trace,
            SimConfig::default(),
        )
        .unwrap();
        let mut sched = GandivaFair::new(GfairConfig::default());
        let report = sim
            .run_until(&mut sched, SimTime::from_secs(4 * 3600))
            .unwrap();
        let a = report.gpu_secs_of(UserId::new(0));
        let b = report.gpu_secs_of(UserId::new(1));
        assert!(
            (a - b).abs() / a.max(b) < 0.02,
            "unequal GPU time: {a} vs {b}"
        );
        // Work conservation: the server never idles.
        assert!(report.utilization() > 0.99, "util {}", report.utilization());
    }

    #[test]
    fn ticket_ratio_is_respected() {
        let users = vec![
            UserSpec::new(UserId::new(0), "big", 300),
            UserSpec::new(UserId::new(1), "small", 100),
        ];
        let mut trace = Vec::new();
        for u in 0..2u32 {
            for k in 0..4u32 {
                trace.push(job(u * 4 + k, u, 1, 50_000.0, 0));
            }
        }
        let sim = Simulation::new(
            ClusterSpec::homogeneous(1, 4),
            users,
            trace,
            SimConfig::default(),
        )
        .unwrap();
        let mut sched = GandivaFair::new(GfairConfig::default());
        let report = sim
            .run_until(&mut sched, SimTime::from_secs(4 * 3600))
            .unwrap();
        let ratio = report.gpu_secs_of(UserId::new(0)) / report.gpu_secs_of(UserId::new(1));
        assert!(
            (ratio - 3.0).abs() < 0.25,
            "expected 3x GPU time for 3x tickets, got {ratio}"
        );
    }

    #[test]
    fn idle_user_capacity_goes_to_active_users() {
        // User 1 has tickets but no jobs; user 0 must get the whole cluster.
        let users = UserSpec::equal_users(2, 100);
        let trace = vec![job(0, 0, 4, 10_000.0, 0)];
        let sim = Simulation::new(
            ClusterSpec::homogeneous(1, 4),
            users,
            trace,
            SimConfig::default(),
        )
        .unwrap();
        let mut sched = GandivaFair::new(GfairConfig::default());
        let report = sim.run_until(&mut sched, SimTime::from_secs(3600)).unwrap();
        assert!(report.utilization() > 0.99);
        assert!((report.gpu_secs_of(UserId::new(0)) - 4.0 * 3600.0).abs() < 60.0);
    }

    #[test]
    fn gangs_are_packed_across_servers() {
        // Two 4-GPU servers; four 2-GPU jobs must spread and all run.
        let trace: Vec<JobSpec> = (0..4).map(|i| job(i, 0, 2, 100_000.0, 0)).collect();
        let sim = Simulation::new(
            ClusterSpec::homogeneous(2, 4),
            UserSpec::equal_users(1, 100),
            trace,
            SimConfig::default(),
        )
        .unwrap();
        let mut sched = GandivaFair::new(GfairConfig::default());
        let report = sim.run_until(&mut sched, SimTime::from_secs(1800)).unwrap();
        assert!(report.utilization() > 0.99, "util {}", report.utilization());
    }

    #[test]
    fn profiling_migrations_learn_cross_generation_rates() {
        let model = Arc::new(ModelProfile::new(
            "learnme",
            vec![1.0, 2.0, 4.0],
            gfair_types::SimDuration::from_secs(10),
            gfair_types::SimDuration::from_secs(10),
        ));
        let cluster = ClusterSpec::build(
            gfair_types::GenCatalog::k80_p100_v100(),
            &[("K80", 2, 4), ("P100", 1, 4), ("V100", 1, 4)],
        );
        let trace = vec![JobSpec::new(
            JobId::new(0),
            UserId::new(0),
            model,
            1,
            1_000_000.0,
            SimTime::ZERO,
        )];
        let sim = Simulation::new(
            cluster,
            UserSpec::equal_users(1, 100),
            trace,
            SimConfig::default(),
        )
        .unwrap();
        let mut sched = GandivaFair::new(GfairConfig::default());
        let _ = sim
            .run_until(&mut sched, SimTime::from_secs(4 * 3600))
            .unwrap();
        let profiler = sched.profiler().unwrap();
        // The job was migrated around until every generation was profiled.
        for g in 0..3u32 {
            assert!(
                profiler.is_profiled("learnme", GenId::new(g)),
                "generation {g} never profiled"
            );
        }
        let s = profiler
            .speedup("learnme", GenId::new(2), GenId::new(0))
            .unwrap();
        assert!((s - 4.0).abs() < 0.5, "V100 speedup estimate {s}");
    }

    #[test]
    fn trading_moves_fast_gpus_to_high_speedup_user() {
        // User 0 runs low-speedup jobs, user 1 high-speedup jobs, cluster
        // has scarce V100s: after profiling, trades must fire and user 1
        // must end up consuming more V100 time than user 0.
        let low = Arc::new(ModelProfile::new(
            "low",
            vec![1.0, 1.1, 1.2],
            gfair_types::SimDuration::from_secs(5),
            gfair_types::SimDuration::from_secs(5),
        ));
        let high = Arc::new(ModelProfile::new(
            "high",
            vec![1.0, 2.5, 5.0],
            gfair_types::SimDuration::from_secs(5),
            gfair_types::SimDuration::from_secs(5),
        ));
        let cluster = ClusterSpec::build(
            gfair_types::GenCatalog::k80_p100_v100(),
            &[("K80", 4, 4), ("V100", 1, 4)],
        );
        // Oversubscribed: each user's demand (16 GPUs) exceeds their fair
        // share (10 GPUs) — the regime where trading fires. Under-demanded
        // users correctly refuse to sell (tested in trade.rs).
        let mut trace = Vec::new();
        for k in 0..16u32 {
            trace.push(JobSpec::new(
                JobId::new(k),
                UserId::new(0),
                Arc::clone(&low),
                1,
                1_000_000.0,
                SimTime::ZERO,
            ));
            trace.push(JobSpec::new(
                JobId::new(100 + k),
                UserId::new(1),
                Arc::clone(&high),
                1,
                1_000_000.0,
                SimTime::ZERO,
            ));
        }
        let sim = Simulation::new(
            cluster,
            UserSpec::equal_users(2, 100),
            trace,
            SimConfig::default(),
        )
        .unwrap();
        let mut sched = GandivaFair::new(GfairConfig::default());
        let report = sim
            .run_until(&mut sched, SimTime::from_secs(6 * 3600))
            .unwrap();
        assert!(
            !sched.trades().is_empty(),
            "no trades fired despite profiled speedup gap"
        );
        // The catalog has three generations; this cluster populates K80
        // (gen 0) and V100 (gen 2).
        let v100 = GenId::new(2);
        let low_v100 = report
            .user_gen_gpu_secs
            .get(&(UserId::new(0), v100))
            .copied()
            .unwrap_or(0.0);
        let high_v100 = report
            .user_gen_gpu_secs
            .get(&(UserId::new(1), v100))
            .copied()
            .unwrap_or(0.0);
        assert!(
            high_v100 > low_v100 * 1.5,
            "V100 time did not shift to the high-speedup user: low {low_v100}, high {high_v100}"
        );
    }
}
