//! The central Gandiva_fair scheduler.
//!
//! Orchestrates everything: placement of arriving jobs, per-round gang
//! scheduling through the per-server local schedulers (via the shared
//! `RoundPlanner`), periodic entitlement refresh + trading
//! (the [`TicketTrading`] allocation policy), and periodic migration-based
//! balancing.
//!
//! ## Decision flow per round
//!
//! 1. Refresh entitlements if the active user set changed or the trade
//!    interval elapsed; re-run the trading market on refresh.
//! 2. If the balance interval elapsed, plan migrations (profiling /
//!    realization / spreading passes).
//! 3. Sync every local scheduler with residency (excluding jobs that are
//!    about to migrate) and with user weights = the user's post-trade
//!    entitlement on that server's generation.
//! 4. Collect each server's gang-aware stride selection into the round plan.
//!
//! Relative to the generic [`crate::PolicyScheduler`] driver, this scheduler
//! adds the migration retry machinery (exponential backoff, generation
//! re-targeting) that the gfair experiments measure.

use crate::balance::plan_migrations_traced;
use crate::config::GfairConfig;
use crate::entitlement::Entitlements;
use crate::inputs::PolicyInputs;
use crate::placement::{Placer, TIE_BREAK_LOAD};
use crate::planner::RoundPlanner;
use crate::policy::{record_profile_report, AllocPolicy, PolicyRound, TicketTrading};
use crate::profiler::Profiler;
use crate::trade::Trade;
use gfair_obs::{Obs, Rejection, SharedObs, TraceEvent, UserShare};
use gfair_sim::{Action, ClusterScheduler, ProfileReport, RoundPlan, SimView};
use gfair_types::{GenId, JobId, JobState, MigrationFailReason, ServerId, SimTime, UserId};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Recovery bookkeeping for one job whose migration (or queued placement)
/// failed: how many attempts have failed, when the next one may be issued,
/// and which generation the failed move was targeting.
#[derive(Debug, Clone, Copy)]
struct RetryState {
    /// Failed attempts observed so far in this recovery episode.
    attempts: u32,
    /// Earliest time the next attempt may be issued (exponential backoff).
    next_try: SimTime,
    /// Generation the failed move was targeting; the retry re-targets the
    /// least-loaded reachable server of this generation.
    gen: GenId,
}

/// The Gandiva_fair cluster scheduler.
///
/// # Examples
///
/// ```no_run
/// use gfair_core::{GandivaFair, GfairConfig};
/// use gfair_sim::Simulation;
/// use gfair_types::{ClusterSpec, SimConfig, UserSpec};
///
/// let cluster = ClusterSpec::paper_testbed();
/// let users = UserSpec::equal_users(4, 100);
/// let trace = vec![]; // build with gfair-workloads
/// let sim = Simulation::new(cluster, users, trace, SimConfig::default()).unwrap();
/// let mut sched = GandivaFair::new(GfairConfig::default());
/// let report = sim.run(&mut sched).unwrap();
/// ```
#[derive(Debug)]
pub struct GandivaFair {
    cfg: GfairConfig,
    name: &'static str,
    profiler: Option<Profiler>,
    ent: Option<Entitlements>,
    /// Shared per-server stride planning (locals, weight caches, pool).
    planner: RoundPlanner,
    /// Shared placement logic with in-flight demand tracking.
    placer: Placer,
    /// Active-user signature the current entitlements were computed from.
    active_sig: Vec<(UserId, u64)>,
    next_trade: SimTime,
    next_balance: SimTime,
    /// The entitlement + trading allocation policy.
    policy: TicketTrading,
    /// Jobs whose migration failed and is being retried with backoff.
    retry: BTreeMap<JobId, RetryState>,
    /// Dense per-user policy inputs (demand, speedups), refreshed
    /// incrementally from the cluster-index aggregates each epoch.
    inputs: PolicyInputs,
    /// Observability pipeline: trade and profile-convergence events plus
    /// self-profiling spans for the hot phases. Share the simulation's
    /// instance via [`GandivaFair::with_obs`] to get one unified trace.
    obs: SharedObs,
}

impl GandivaFair {
    /// Creates the scheduler with the given policy configuration.
    pub fn new(cfg: GfairConfig) -> Self {
        GandivaFair {
            cfg,
            name: "gandiva-fair",
            profiler: None,
            ent: None,
            planner: RoundPlanner::new(),
            placer: Placer::new(),
            active_sig: Vec::new(),
            next_trade: SimTime::ZERO,
            next_balance: SimTime::ZERO,
            policy: TicketTrading::new(&cfg),
            retry: BTreeMap::new(),
            inputs: PolicyInputs::new(),
            obs: Arc::new(Obs::new()),
        }
    }

    /// Overrides the report name (used by ablation variants).
    pub fn with_name(mut self, name: &'static str) -> Self {
        self.name = name;
        self
    }

    /// Attaches a shared observability pipeline. Pass the same instance to
    /// `Simulation::with_obs` so scheduler-side events (trades, profile
    /// convergence) and engine-side events land in one ordered trace.
    pub fn with_obs(mut self, obs: SharedObs) -> Self {
        self.obs = obs;
        self
    }

    /// Trades executed so far, with timestamps.
    pub fn trades(&self) -> &[(SimTime, Trade)] {
        self.policy.trades()
    }

    /// The profiler's current state (None before the first round).
    pub fn profiler(&self) -> Option<&Profiler> {
        self.profiler.as_ref()
    }

    /// The current entitlements (None before the first round).
    pub fn entitlements(&self) -> Option<&Entitlements> {
        self.ent.as_ref()
    }

    /// Lazily builds the profiler and shared planning state.
    fn ensure_init(&mut self, view: &SimView<'_>) {
        if self.profiler.is_none() {
            self.profiler = Some(Profiler::new(
                view.cluster().catalog.len(),
                self.cfg.min_profile_samples,
            ));
        }
        self.planner
            .ensure_init(view, self.cfg.gang_policy, self.cfg.planning_workers);
        self.placer.ensure_capacity(view);
        self.inputs.ensure_init(view);
    }

    /// Recomputes base entitlements, re-runs the market and pushes the
    /// derived weights into the planner.
    ///
    /// The dense inputs are refreshed incrementally from the cluster-index
    /// aggregates; in debug builds every refresh is differential-checked
    /// against the from-scratch map builders ([`PolicyInputs::audit`]).
    fn refresh_entitlements(&mut self, view: &SimView<'_>, active: Vec<(UserId, u64)>) {
        let profiler = self.profiler.as_ref().expect("initialized");
        self.inputs.refresh(view, profiler);
        #[cfg(debug_assertions)]
        if let Err(e) = self.inputs.audit(view, profiler, None) {
            panic!("dense policy inputs diverged from from-scratch oracle: {e}");
        }
        let round = PolicyRound {
            view,
            now: view.now(),
            active: &active,
            inputs: &self.inputs,
            obs: &self.obs,
        };
        let ent = self.policy.allocate(&round);
        self.planner
            .refresh_weights(view, &ent, self.cfg.min_weight);
        self.ent = Some(ent);
        self.active_sig = active;
    }

    /// Re-issues failed migrations whose backoff window has expired.
    ///
    /// Pending jobs (restore failures, stranded mid-flight) are left to the
    /// placement path, which honors the same backoff; in-flight jobs wait
    /// for their `MigrationDone`; resident jobs already sitting on the
    /// generation the failed move was targeting count as recovered.
    fn plan_retries(&mut self, view: &SimView<'_>, actions: &mut Vec<Action>) {
        if self.retry.is_empty() {
            return;
        }
        let now = view.now();
        let planned: BTreeSet<JobId> = actions
            .iter()
            .map(|a| match a {
                Action::Migrate { job, .. } | Action::Place { job, .. } => *job,
            })
            .collect();
        let due: Vec<(JobId, RetryState)> = self
            .retry
            .iter()
            .filter(|(_, r)| r.next_try <= now)
            .map(|(&j, &r)| (j, r))
            .collect();
        for (job, state) in due {
            let Some(info) = view.job(job) else {
                self.retry.remove(&job);
                continue;
            };
            match info.state {
                JobState::Finished => {
                    self.retry.remove(&job);
                }
                // The placement path owns pending jobs; in-flight jobs are
                // resolved by their MigrationDone (or the next failure).
                JobState::Pending | JobState::Migrating => {}
                JobState::Resident => {
                    let cur = info.server.expect("resident job has a server");
                    if view.cluster().server(cur).gen == state.gen {
                        // The job already sits where the failed move was
                        // headed (e.g. the balancer got there first).
                        self.retry.remove(&job);
                        continue;
                    }
                    if planned.contains(&job) {
                        continue;
                    }
                    let want_why = self.obs.why();
                    let (target, considered, too_narrow, candidates) =
                        self.placer.pick_least_loaded(
                            view,
                            info.gang,
                            view.reachable_servers_of_gen(state.gen),
                            want_why,
                        );
                    if let Some(to) = target {
                        if to != cur {
                            if want_why {
                                let mut rejected = Vec::new();
                                if too_narrow > 0 {
                                    rejected.push(Rejection {
                                        reason: "gang_too_wide_for_server".into(),
                                        count: too_narrow,
                                    });
                                }
                                self.obs.emit(TraceEvent::Decision {
                                    t: now,
                                    decision: "retry".to_string(),
                                    job: Some(job),
                                    user: Some(info.user),
                                    chosen: format!(
                                        "migrate to server:{} (gen:{}, attempt {})",
                                        to.index(),
                                        state.gen.index(),
                                        state.attempts + 1
                                    ),
                                    tie_break: TIE_BREAK_LOAD.to_string(),
                                    considered,
                                    candidates,
                                    rejected,
                                });
                            }
                            actions.push(Action::Migrate { job, to });
                        }
                    }
                }
            }
        }
    }
}

impl ClusterScheduler for GandivaFair {
    fn name(&self) -> &'static str {
        self.name
    }

    fn on_job_arrival(&mut self, view: &SimView<'_>, job: JobId) -> Vec<Action> {
        self.ensure_init(view);
        let info = view.job(job).expect("arriving job is known");
        let want_why = self.obs.why();
        let (target, why) = self.placer.choose_server_explained(
            view,
            self.ent.as_ref(),
            info.user,
            info.gang,
            want_why,
        );
        if let Some(why) = why {
            self.obs.emit(TraceEvent::Decision {
                t: view.now(),
                decision: "placement".to_string(),
                job: Some(job),
                user: Some(info.user),
                chosen: why.chosen,
                tie_break: why.tie_break.to_string(),
                considered: why.considered,
                candidates: why.candidates,
                rejected: why.rejected,
            });
        }
        match target {
            Some(server) => {
                self.placer.note_placement(view, server, info.gang);
                vec![Action::Place { job, server }]
            }
            // Unplaceable gangs are rejected at simulation construction, so
            // this only happens for an empty cluster.
            None => Vec::new(),
        }
    }

    fn on_profile_report(&mut self, view: &SimView<'_>, report: &ProfileReport) -> Vec<Action> {
        self.ensure_init(view);
        let profiler = self.profiler.as_mut().expect("initialized");
        record_profile_report(profiler, &self.obs, view, report);
        Vec::new()
    }

    fn on_migration_failed(
        &mut self,
        view: &SimView<'_>,
        job: JobId,
        to: ServerId,
        _reason: MigrationFailReason,
    ) -> Vec<Action> {
        self.ensure_init(view);
        let state = view.job(job).map(|j| j.state);
        if state.is_none() || state == Some(JobState::Finished) {
            self.retry.remove(&job);
            return Vec::new();
        }
        let entry = self.retry.entry(job).or_insert(RetryState {
            attempts: 0,
            next_try: SimTime::ZERO,
            gen: GenId::new(0),
        });
        entry.attempts += 1;
        if entry.attempts > self.cfg.max_migration_retries {
            // Retry budget exhausted: leave the job where the failure put
            // it. Resident jobs stay at the source; pending jobs fall to
            // the ordinary placement path with no backoff gate.
            self.retry.remove(&job);
            self.obs.inc("migration_retries_abandoned", 1);
            return Vec::new();
        }
        let shift = (entry.attempts - 1).min(16);
        entry.next_try = view.now() + self.cfg.backoff_base * (1u64 << shift);
        entry.gen = view.cluster().server(to).gen;
        Vec::new()
    }

    fn on_migration_done(&mut self, _view: &SimView<'_>, job: JobId) -> Vec<Action> {
        // A landed migration ends any recovery episode for the job.
        self.retry.remove(&job);
        Vec::new()
    }

    fn on_partition_heal(&mut self, view: &SimView<'_>, server: ServerId) -> Vec<Action> {
        self.ensure_init(view);
        // Reconcile: re-sync entitlements cluster-wide (clearing the active
        // signature forces a refresh at the next round) and re-validate the
        // healed server's residency against the local scheduler's
        // last-known membership. The next sync() repairs any drift; the
        // Reconcile event records how much there was.
        self.active_sig.clear();
        let local_jobs = self.planner.jobs_on(server);
        let actual: BTreeSet<JobId> = view.resident(server).collect();
        let drift = local_jobs.symmetric_difference(&actual).count() as u32;
        let users_resynced = self
            .ent
            .as_ref()
            .map(|e| e.users().count() as u32)
            .unwrap_or(0);
        self.obs.emit(TraceEvent::Reconcile {
            t: view.now(),
            server,
            users_resynced,
            jobs_revalidated: actual.len() as u32,
            drift,
        });
        Vec::new()
    }

    fn plan_round(&mut self, view: &SimView<'_>) -> RoundPlan {
        self.ensure_init(view);
        // Queued placements were applied before this callback.
        self.placer.reset();
        let now = view.now();

        // 1. Entitlements: refresh on churn or on the trade timer.
        let active = self.inputs.active_signature(view);
        let trade_due = now >= self.next_trade;
        let refreshed = trade_due || active != self.active_sig || self.ent.is_none();
        if refreshed {
            self.refresh_entitlements(view, active);
            if trade_due {
                self.next_trade = now + view.config().trade_interval;
            }
        }

        // 2. Balancing.
        let mut actions = Vec::new();
        if self.cfg.balancing && now >= self.next_balance {
            let ent = self.ent.as_ref().expect("refreshed above");
            let profiler = self.profiler.as_ref().expect("initialized");
            actions = plan_migrations_traced(&self.obs, view, ent, profiler, &self.cfg);
            self.next_balance = now + view.config().balance_interval;
        }
        // 3. Recovery: re-issue failed migrations whose backoff expired.
        self.plan_retries(view, &mut actions);

        // 4. Retry jobs whose placement failed earlier (e.g. every fitting
        // server was down at arrival time). Jobs in a backoff window after
        // a failed migration wait until their retry is due; once placed,
        // the placement path owns them and the retry entry is dropped.
        let retries: Vec<(JobId, UserId, u32)> = view
            .pending_jobs()
            .filter(|j| {
                self.retry
                    .get(&j.id)
                    .map(|r| r.next_try <= now)
                    .unwrap_or(true)
            })
            .map(|j| (j.id, j.user, j.gang))
            .collect();
        let want_why = self.obs.why();
        for (job, user, gang) in retries {
            let (target, why) =
                self.placer
                    .choose_server_explained(view, self.ent.as_ref(), user, gang, want_why);
            if let Some(server) = target {
                self.retry.remove(&job);
                // Emit only on success: an unplaceable job would otherwise
                // flood the trace with one identical decision per round.
                if let Some(why) = why {
                    self.obs.emit(TraceEvent::Decision {
                        t: now,
                        decision: "retry".to_string(),
                        job: Some(job),
                        user: Some(user),
                        chosen: why.chosen,
                        tie_break: why.tie_break.to_string(),
                        considered: why.considered,
                        candidates: why.candidates,
                        rejected: why.rejected,
                    });
                }
                actions.push(Action::Place { job, server });
            }
        }

        // 5. Sync locals and collect per-server selections. Jobs involved
        // in this round's actions (migrating away or just being placed) are
        // excluded from the run sets.
        let departing: BTreeSet<JobId> = actions
            .iter()
            .map(|a| match a {
                Action::Migrate { job, .. } | Action::Place { job, .. } => *job,
            })
            .collect();
        let run = self.planner.plan_runs(
            view,
            &departing,
            self.cfg.min_weight,
            refreshed,
            self.cfg.lazy_planning,
            &self.obs,
        );
        RoundPlan { run, actions }
    }

    fn next_decision_time(&self) -> Option<SimTime> {
        // Epoch timers and retry backoffs are the only internal clocks that
        // can change a plan with otherwise-unchanged inputs. A past retry
        // deadline (job waiting in a non-retryable state) keeps the minimum
        // in the past, which makes the engine's horizon collapse to zero —
        // conservative, never wrong.
        let mut t = self.next_trade;
        if self.cfg.balancing {
            t = t.min(self.next_balance);
        }
        for r in self.retry.values() {
            t = t.min(r.next_try);
        }
        Some(t)
    }

    fn probe_fast_forward(&mut self, view: &SimView<'_>, plan: &RoundPlan, k: u64) -> u64 {
        if !self.cfg.fast_forward || k == 0 || self.planner.is_empty() {
            return 0;
        }
        // Anything that would steer the next plan_round down a different
        // path declines: a pending job could be placed, an epoch timer could
        // fire, a due retry could re-enter the planning flow. The engine
        // already bounds k by next_decision_time, so these are defensive.
        if view.pending_jobs().next().is_some() {
            return 0;
        }
        let now = view.now();
        if now >= self.next_trade {
            return 0;
        }
        if self.cfg.balancing && now >= self.next_balance {
            return 0;
        }
        if self.retry.values().any(|r| r.next_try <= now) {
            return 0;
        }
        // All-or-nothing across servers: the replayable horizon is the
        // minimum over every local scheduler's differential check against
        // the cached plan (absent servers must reproduce an empty
        // selection).
        self.planner.probe(&plan.run, k)
    }

    fn commit_fast_forward(&mut self, j: u64) {
        self.planner.commit(j);
    }

    fn user_shares(&self, _view: &SimView<'_>) -> Vec<UserShare> {
        let Some(ent) = &self.ent else {
            return Vec::new();
        };
        // The user's effective priority is the best (lowest) stride pass
        // among their jobs anywhere in the cluster. Lazily-settled locals
        // hold intentionally stale passes between settles, so passes are
        // folded only for traced runs — where planning is always eager and
        // they are exact. (0.0 is the schema's "no pass exposed" value, and
        // auditing keys off tickets alone.)
        let min_pass = if self.obs.tracing() {
            self.planner.fold_min_passes()
        } else {
            BTreeMap::new()
        };
        ent.users()
            .map(|user| UserShare {
                user,
                tickets: ent.gpus_of(user),
                pass: min_pass.get(&user).copied().unwrap_or(0.0),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfair_sim::Simulation;
    use gfair_types::{ClusterSpec, JobSpec, ModelProfile, SimConfig, UserSpec};
    use std::sync::Arc;

    fn mono_model() -> Arc<ModelProfile> {
        Arc::new(ModelProfile::with_default_overheads("uni", vec![1.0]))
    }

    fn job(id: u32, user: u32, gang: u32, service: f64, at: u64) -> JobSpec {
        JobSpec::new(
            JobId::new(id),
            UserId::new(user),
            mono_model(),
            gang,
            service,
            SimTime::from_secs(at),
        )
    }

    #[test]
    fn single_job_completes_promptly() {
        let sim = Simulation::new(
            ClusterSpec::homogeneous(2, 4),
            UserSpec::equal_users(1, 100),
            vec![job(0, 0, 2, 600.0, 0)],
            SimConfig::default(),
        )
        .unwrap();
        let mut sched = GandivaFair::new(GfairConfig::default());
        let report = sim.run(&mut sched).unwrap();
        assert_eq!(report.finished_jobs(), 1);
        assert_eq!(
            report.jobs[&JobId::new(0)].finish,
            Some(SimTime::from_secs(600))
        );
    }

    #[test]
    fn equal_users_get_equal_gpu_time_under_contention() {
        // 1 server x 4 GPUs, 2 users x 4 single-GPU long jobs each.
        let mut trace = Vec::new();
        for u in 0..2u32 {
            for k in 0..4u32 {
                trace.push(job(u * 4 + k, u, 1, 50_000.0, 0));
            }
        }
        let sim = Simulation::new(
            ClusterSpec::homogeneous(1, 4),
            UserSpec::equal_users(2, 100),
            trace,
            SimConfig::default(),
        )
        .unwrap();
        let mut sched = GandivaFair::new(GfairConfig::default());
        let report = sim
            .run_until(&mut sched, SimTime::from_secs(4 * 3600))
            .unwrap();
        let a = report.gpu_secs_of(UserId::new(0));
        let b = report.gpu_secs_of(UserId::new(1));
        assert!(
            (a - b).abs() / a.max(b) < 0.02,
            "unequal GPU time: {a} vs {b}"
        );
        // Work conservation: the server never idles.
        assert!(report.utilization() > 0.99, "util {}", report.utilization());
    }

    #[test]
    fn ticket_ratio_is_respected() {
        let users = vec![
            UserSpec::new(UserId::new(0), "big", 300),
            UserSpec::new(UserId::new(1), "small", 100),
        ];
        let mut trace = Vec::new();
        for u in 0..2u32 {
            for k in 0..4u32 {
                trace.push(job(u * 4 + k, u, 1, 50_000.0, 0));
            }
        }
        let sim = Simulation::new(
            ClusterSpec::homogeneous(1, 4),
            users,
            trace,
            SimConfig::default(),
        )
        .unwrap();
        let mut sched = GandivaFair::new(GfairConfig::default());
        let report = sim
            .run_until(&mut sched, SimTime::from_secs(4 * 3600))
            .unwrap();
        let ratio = report.gpu_secs_of(UserId::new(0)) / report.gpu_secs_of(UserId::new(1));
        assert!(
            (ratio - 3.0).abs() < 0.25,
            "expected 3x GPU time for 3x tickets, got {ratio}"
        );
    }

    #[test]
    fn idle_user_capacity_goes_to_active_users() {
        // User 1 has tickets but no jobs; user 0 must get the whole cluster.
        let users = UserSpec::equal_users(2, 100);
        let trace = vec![job(0, 0, 4, 10_000.0, 0)];
        let sim = Simulation::new(
            ClusterSpec::homogeneous(1, 4),
            users,
            trace,
            SimConfig::default(),
        )
        .unwrap();
        let mut sched = GandivaFair::new(GfairConfig::default());
        let report = sim.run_until(&mut sched, SimTime::from_secs(3600)).unwrap();
        assert!(report.utilization() > 0.99);
        assert!((report.gpu_secs_of(UserId::new(0)) - 4.0 * 3600.0).abs() < 60.0);
    }

    #[test]
    fn gangs_are_packed_across_servers() {
        // Two 4-GPU servers; four 2-GPU jobs must spread and all run.
        let trace: Vec<JobSpec> = (0..4).map(|i| job(i, 0, 2, 100_000.0, 0)).collect();
        let sim = Simulation::new(
            ClusterSpec::homogeneous(2, 4),
            UserSpec::equal_users(1, 100),
            trace,
            SimConfig::default(),
        )
        .unwrap();
        let mut sched = GandivaFair::new(GfairConfig::default());
        let report = sim.run_until(&mut sched, SimTime::from_secs(1800)).unwrap();
        assert!(report.utilization() > 0.99, "util {}", report.utilization());
    }

    #[test]
    fn profiling_migrations_learn_cross_generation_rates() {
        let model = Arc::new(ModelProfile::new(
            "learnme",
            vec![1.0, 2.0, 4.0],
            gfair_types::SimDuration::from_secs(10),
            gfair_types::SimDuration::from_secs(10),
        ));
        let cluster = ClusterSpec::build(
            gfair_types::GenCatalog::k80_p100_v100(),
            &[("K80", 2, 4), ("P100", 1, 4), ("V100", 1, 4)],
        );
        let trace = vec![JobSpec::new(
            JobId::new(0),
            UserId::new(0),
            model,
            1,
            1_000_000.0,
            SimTime::ZERO,
        )];
        let sim = Simulation::new(
            cluster,
            UserSpec::equal_users(1, 100),
            trace,
            SimConfig::default(),
        )
        .unwrap();
        let mut sched = GandivaFair::new(GfairConfig::default());
        let _ = sim
            .run_until(&mut sched, SimTime::from_secs(4 * 3600))
            .unwrap();
        let profiler = sched.profiler().unwrap();
        // The job was migrated around until every generation was profiled.
        for g in 0..3u32 {
            assert!(
                profiler.is_profiled("learnme", GenId::new(g)),
                "generation {g} never profiled"
            );
        }
        let s = profiler
            .speedup("learnme", GenId::new(2), GenId::new(0))
            .unwrap();
        assert!((s - 4.0).abs() < 0.5, "V100 speedup estimate {s}");
    }

    #[test]
    fn trading_moves_fast_gpus_to_high_speedup_user() {
        // User 0 runs low-speedup jobs, user 1 high-speedup jobs, cluster
        // has scarce V100s: after profiling, trades must fire and user 1
        // must end up consuming more V100 time than user 0.
        let low = Arc::new(ModelProfile::new(
            "low",
            vec![1.0, 1.1, 1.2],
            gfair_types::SimDuration::from_secs(5),
            gfair_types::SimDuration::from_secs(5),
        ));
        let high = Arc::new(ModelProfile::new(
            "high",
            vec![1.0, 2.5, 5.0],
            gfair_types::SimDuration::from_secs(5),
            gfair_types::SimDuration::from_secs(5),
        ));
        let cluster = ClusterSpec::build(
            gfair_types::GenCatalog::k80_p100_v100(),
            &[("K80", 4, 4), ("V100", 1, 4)],
        );
        // Oversubscribed: each user's demand (16 GPUs) exceeds their fair
        // share (10 GPUs) — the regime where trading fires. Under-demanded
        // users correctly refuse to sell (tested in trade.rs).
        let mut trace = Vec::new();
        for k in 0..16u32 {
            trace.push(JobSpec::new(
                JobId::new(k),
                UserId::new(0),
                Arc::clone(&low),
                1,
                1_000_000.0,
                SimTime::ZERO,
            ));
            trace.push(JobSpec::new(
                JobId::new(100 + k),
                UserId::new(1),
                Arc::clone(&high),
                1,
                1_000_000.0,
                SimTime::ZERO,
            ));
        }
        let sim = Simulation::new(
            cluster,
            UserSpec::equal_users(2, 100),
            trace,
            SimConfig::default(),
        )
        .unwrap();
        let mut sched = GandivaFair::new(GfairConfig::default());
        let report = sim
            .run_until(&mut sched, SimTime::from_secs(6 * 3600))
            .unwrap();
        assert!(
            !sched.trades().is_empty(),
            "no trades fired despite profiled speedup gap"
        );
        // The catalog has three generations; this cluster populates K80
        // (gen 0) and V100 (gen 2).
        let v100 = GenId::new(2);
        let low_v100 = report
            .user_gen_gpu_secs
            .get(&(UserId::new(0), v100))
            .copied()
            .unwrap_or(0.0);
        let high_v100 = report
            .user_gen_gpu_secs
            .get(&(UserId::new(1), v100))
            .copied()
            .unwrap_or(0.0);
        assert!(
            high_v100 > low_v100 * 1.5,
            "V100 time did not shift to the high-speedup user: low {low_v100}, high {high_v100}"
        );
    }
}
