//! The shared round planner: per-server stride planning behind any policy.
//!
//! Every policy in the zoo produces the same *kind* of output — per-user
//! weights per GPU generation — and hands it to this planner, which owns the
//! per-server [`LocalScheduler`]s, the per-generation weight cache, the
//! stale-weight snapshots for unreachable servers, and the persistent
//! planning worker pool. Because the planner is shared, every policy
//! inherits the same guarantees for free:
//!
//! - **byte-determinism across worker counts** — workers take contiguous
//!   chunks of the id-ordered server list and results merge in that same
//!   order;
//! - **graceful degradation** — a partitioned server keeps planning on the
//!   weights it last received until it heals;
//! - **quiescence fast-forward** — [`RoundPlanner::probe`] checks each
//!   local scheduler's replay horizon and [`RoundPlanner::commit`] advances
//!   stride state analytically.

use crate::entitlement::Entitlements;
use crate::local::LocalScheduler;
use crate::pool::WorkerPool;
use gfair_obs::{Phase, SharedObs};
use gfair_sim::SimView;
use gfair_stride::GangPolicy;
use gfair_types::{JobId, ServerId, UserId};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Weight of `u` in an id-sorted per-server weight vec, if present.
pub(crate) fn weight_lookup(weights: &[(UserId, f64)], u: UserId) -> Option<f64> {
    weights
        .binary_search_by_key(&u, |&(user, _)| user)
        .ok()
        .map(|i| weights[i].1)
}

/// Resolves the configured planning-worker count against the machine and
/// the number of servers: `0` means auto-size from available parallelism,
/// and the pool never exceeds the server count (an idle worker is pure
/// spawn overhead).
pub(crate) fn planning_workers(configured: usize, servers: usize) -> usize {
    let requested = if configured == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        configured
    };
    requested.min(servers).max(1)
}

/// Per-server stride planning shared by every policy behind the
/// [`crate::policy::AllocPolicy`] boundary.
#[derive(Debug, Default)]
pub(crate) struct RoundPlanner {
    /// One local scheduler per server, in server-id order.
    locals: BTreeMap<ServerId, LocalScheduler>,
    /// Per-generation stride weight vectors derived from the current
    /// entitlements, indexed by `GenId::index()` and id-sorted per vector
    /// (entitlements iterate users in id order). Weights depend only on a
    /// server's generation, so the cache is rebuilt once per entitlement
    /// refresh — a few vectors — instead of once per server per round.
    gen_weights: Vec<Vec<(UserId, f64)>>,
    /// Weight snapshots for servers that were unreachable at an entitlement
    /// refresh: an unreachable server cannot receive updates, so its local
    /// scheduler keeps running on the last weights it was sent until it is
    /// reachable again (graceful degradation). Entries are dropped the
    /// moment the server is reachable again.
    stale_weights: BTreeMap<ServerId, Vec<(UserId, f64)>>,
    /// Persistent planning workers, created on the first parallel round and
    /// reused every round thereafter (per-round thread spawns dominate the
    /// planning phase at benchmark scale).
    pool: Option<WorkerPool>,
    /// Resolved planning-worker count, computed once at init:
    /// `available_parallelism` re-reads cgroup state on every call, which is
    /// far too slow for the per-round path.
    workers: usize,
}

impl RoundPlanner {
    /// Creates an empty planner; call [`ensure_init`](Self::ensure_init)
    /// before the first round.
    pub fn new() -> Self {
        RoundPlanner::default()
    }

    /// Lazily builds the local schedulers from the cluster and resolves the
    /// worker count.
    pub fn ensure_init(&mut self, view: &SimView<'_>, gang_policy: GangPolicy, configured: usize) {
        if self.locals.is_empty() {
            for s in &view.cluster().servers {
                self.locals
                    .insert(s.id, LocalScheduler::new(s.id, s.num_gpus, gang_policy));
            }
        }
        if self.workers == 0 {
            self.workers = planning_workers(configured, self.locals.len());
        }
    }

    /// True before [`ensure_init`](Self::ensure_init) (or on an empty
    /// cluster): there is nothing to plan or fast-forward.
    pub fn is_empty(&self) -> bool {
        self.locals.is_empty()
    }

    /// Jobs the local scheduler of `server` currently believes are resident,
    /// for post-partition reconciliation diffs.
    pub fn jobs_on(&self, server: ServerId) -> BTreeSet<JobId> {
        self.locals
            .get(&server)
            .map(|l| l.jobs().collect())
            .unwrap_or_default()
    }

    /// Rebuilds the per-generation weight cache from fresh entitlements,
    /// first snapshotting the pre-refresh weights for servers that are
    /// unreachable right now (they keep planning on what they last
    /// received).
    pub fn refresh_weights(&mut self, view: &SimView<'_>, ent: &Entitlements, min_weight: f64) {
        // Servers that cannot be reached right now keep the weights they
        // last received: snapshot those (the pre-refresh per-gen vectors)
        // before rebuilding the cache, unless an earlier refresh already
        // recorded a snapshot for them.
        {
            let gen_weights = &self.gen_weights;
            let stale = &mut self.stale_weights;
            for s in &view.cluster().servers {
                if !view.is_reachable(s.id) {
                    stale.entry(s.id).or_insert_with(|| {
                        gen_weights.get(s.gen.index()).cloned().unwrap_or_default()
                    });
                }
            }
        }
        let num_gens = view.cluster().catalog.ids().count();
        let mut gen_weights = vec![Vec::new(); num_gens];
        for gen in view.cluster().catalog.ids() {
            gen_weights[gen.index()] = ent
                .users()
                .map(|u| (u, ent.get(u, gen).max(min_weight)))
                .collect();
        }
        self.gen_weights = gen_weights;
    }

    /// Syncs every local scheduler and collects the per-server run sets for
    /// this quantum, excluding `departing` jobs (ones this round's actions
    /// move or place). `refreshed` says whether the weight cache was rebuilt
    /// since the last call.
    ///
    /// Sequential (`workers == 1`) and parallel paths produce byte-identical
    /// run maps: per-server planning commutes and the merge re-inserts in
    /// server-id order.
    pub fn plan_runs(
        &mut self,
        view: &SimView<'_>,
        departing: &BTreeSet<JobId>,
        min_weight: f64,
        refreshed: bool,
        obs: &SharedObs,
    ) -> BTreeMap<ServerId, Vec<JobId>> {
        // A reachable server always plans on the current per-gen weights;
        // any stale snapshot it held while unreachable is dropped the round
        // it comes back (entitlements are re-refreshed on heal, so it
        // converges to the live economy immediately). A dropped snapshot
        // changes that server's effective weights, so the round counts as
        // weight-dirty just like an entitlement refresh.
        let mut weights_dirty = refreshed;
        self.stale_weights.retain(|s, _| {
            let keep = !view.is_reachable(*s);
            weights_dirty |= !keep;
            keep
        });
        let mut run: BTreeMap<ServerId, Vec<JobId>> = BTreeMap::new();
        let workers = self.workers.max(1);
        let pool = &mut self.pool;
        if workers > 1 && pool.as_ref().map(WorkerPool::size) != Some(workers) {
            *pool = Some(WorkerPool::new(workers));
        }
        let locals = &mut self.locals;
        let gen_weights = &self.gen_weights;
        let stale_weights = &self.stale_weights;
        let cluster = view.cluster();
        // The weight vector a server plans on: its stale snapshot while
        // unreachable, the live per-gen vector otherwise.
        let weights_of = |server: ServerId| -> &[(UserId, f64)] {
            stale_weights
                .get(&server)
                .map(Vec::as_slice)
                .unwrap_or_else(|| {
                    gen_weights
                        .get(cluster.server(server).gen.index())
                        .map(Vec::as_slice)
                        .unwrap_or(&[])
                })
        };
        let obs = Arc::clone(obs);
        obs.time(Phase::GangPacking, || {
            if workers <= 1 {
                for (&server, local) in locals.iter_mut() {
                    let weights = weights_of(server);
                    local.sync(
                        view,
                        departing,
                        |u| weight_lookup(weights, u).unwrap_or(min_weight),
                        weights_dirty,
                    );
                    let selected = local.plan();
                    if !selected.is_empty() {
                        run.insert(server, selected);
                    }
                }
                return;
            }
            // Parallel fan-out. Each server's local scheduler is an
            // independent piece of state and the weight function is pure, so
            // per-server planning commutes; workers take contiguous chunks
            // of the id-ordered server list and the merge below re-inserts
            // in that same order — the resulting plan is byte-identical to
            // the sequential path no matter the worker count.
            let mut work: Vec<(ServerId, &mut LocalScheduler)> =
                locals.iter_mut().map(|(&s, l)| (s, l)).collect();
            let chunk = work.len().div_ceil(workers);
            let mut results: Vec<Vec<(ServerId, Vec<JobId>)>> =
                vec![Vec::new(); work.len().div_ceil(chunk)];
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = work
                .chunks_mut(chunk)
                .zip(results.iter_mut())
                .map(|(slice, out)| {
                    Box::new(move || {
                        *out = slice
                            .iter_mut()
                            .map(|(server, local)| {
                                let weights = weights_of(*server);
                                local.sync(
                                    view,
                                    departing,
                                    |u| weight_lookup(weights, u).unwrap_or(min_weight),
                                    weights_dirty,
                                );
                                (*server, local.plan())
                            })
                            .collect();
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            pool.as_ref().expect("pool sized above").run(tasks);
            for (server, selected) in results.into_iter().flatten() {
                if !selected.is_empty() {
                    run.insert(server, selected);
                }
            }
        });
        run
    }

    /// All-or-nothing fast-forward probe across servers: the replayable
    /// horizon is the minimum over every local scheduler's differential
    /// check against the cached plan (absent servers must reproduce an empty
    /// selection). Must not mutate state.
    pub fn probe(&self, run: &BTreeMap<ServerId, Vec<JobId>>, k: u64) -> u64 {
        let mut j = k;
        for (&server, local) in self.locals.iter() {
            let expected = run.get(&server).map(Vec::as_slice).unwrap_or(&[]);
            j = j.min(local.quiescent_rounds(expected, k));
            if j == 0 {
                return 0;
            }
        }
        j
    }

    /// Advances every local scheduler's stride state by `j` quanta in one
    /// analytic step.
    pub fn commit(&mut self, j: u64) {
        for local in self.locals.values_mut() {
            local.fast_forward(j);
        }
    }

    /// Folds the best (lowest) stride pass per user across all servers, for
    /// [`gfair_sim::ClusterScheduler::user_shares`] reporting. One pass over
    /// the locals instead of scanning every server once per entitled user —
    /// locals dominate users at bench scale, so this turns a
    /// users × servers sweep into servers + users.
    pub fn fold_min_passes(&self) -> BTreeMap<UserId, f64> {
        let mut min_pass: BTreeMap<UserId, f64> = BTreeMap::new();
        for local in self.locals.values() {
            local.for_each_user_pass(|u, p| {
                min_pass
                    .entry(u)
                    .and_modify(|m| {
                        if p.total_cmp(m).is_lt() {
                            *m = p;
                        }
                    })
                    .or_insert(p);
            });
        }
        min_pass
    }
}
