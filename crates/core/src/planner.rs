//! The shared round planner: per-server stride planning behind any policy.
//!
//! Every policy in the zoo produces the same *kind* of output — per-user
//! weights per GPU generation — and hands it to this planner, which owns the
//! per-server [`LocalScheduler`]s, the per-generation weight cache, the
//! stale-weight snapshots for unreachable servers, and the persistent
//! planning worker pool. Because the planner is shared, every policy
//! inherits the same guarantees for free:
//!
//! - **byte-determinism across worker counts** — workers take contiguous
//!   chunks of the id-ordered server list and results merge in that same
//!   order;
//! - **graceful degradation** — a partitioned server keeps planning on the
//!   weights it last received until it heals;
//! - **quiescence fast-forward** — [`RoundPlanner::probe`] checks each
//!   local scheduler's replay horizon and [`RoundPlanner::commit`] advances
//!   stride state analytically.
//!
//! ## Lazy settling (O(dirty-servers) planning)
//!
//! When no trace sink is attached (and `GfairConfig::lazy_planning` is on),
//! the planner switches to an incremental mode: instead of syncing and
//! re-planning every server every round, it keeps the last selection per
//! server (`cached_run`) and only *settles* — fast-forwards the lagging
//! stride state, syncs, re-plans — servers that provably need it:
//!
//! * servers whose residency changed since the last round, discovered from
//!   the sim index's bounded dirty ring ([`SimView::residency_dirty_since`]);
//! * servers hosting a job departing this round (their selection must
//!   exclude it, and they re-settle next round because the exclusion is
//!   synthetic);
//! * servers whose *quiescence span* expired: at each settle the planner
//!   asks the local scheduler how many future rounds reproduce the fresh
//!   selection verbatim ([`LocalScheduler::quiescent_rounds`], capped at
//!   [`QUIESCENT_SPAN`]) and records `valid_until = round + span` in an
//!   expiry queue. A cached selection is only ever reused strictly within
//!   its span, so the replay is byte-identical to per-round planning — the
//!   same differential guarantee quiescence fast-forward rests on, applied
//!   per server instead of per cluster.
//!
//! Weight refreshes settle every server (the same cost the eager path pays
//! every round), and an overflowed dirty ring falls back to a full settle.
//! The span cap also bounds each settle's catch-up fast-forward, so no
//! single round pays more than `O(span)` per touched server.
//!
//! Traced runs keep the eager path: `RoundPlanned` records each user's
//! *current* minimum stride pass every round, and lazily-settled servers
//! hold passes that are intentionally stale between settles.

use crate::entitlement::Entitlements;
use crate::local::LocalScheduler;
use crate::pool::WorkerPool;
use gfair_obs::{Phase, SharedObs};
use gfair_sim::SimView;
use gfair_stride::GangPolicy;
use gfair_types::{JobId, ServerId, UserId};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Cap on the per-settle quiescence probe, and therefore on how far any
/// server's stride state may lag behind the current round. Stable servers
/// (one client, or none) re-settle only this often — an O(span) float
/// replay amortizing to O(1) per round — while contended servers break the
/// probe early and settle at their natural reorder cadence.
const QUIESCENT_SPAN: u64 = 4096;

/// Floor for the adaptive per-settle probe budget (see
/// [`RoundPlanner::plan_runs_lazy`]). The probe replays the stride scan
/// round by round, so probing the full [`QUIESCENT_SPAN`] on a server that
/// an arrival will dirty ten rounds later wastes the whole span's work; the
/// planner instead probes about twice the server's observed settle-to-settle
/// gap, clamped to `[QUIESCENT_MIN, QUIESCENT_SPAN]`, which grows
/// geometrically on quiet servers and stays small on churning ones.
const QUIESCENT_MIN: u64 = 16;

/// Weight of `u` in an id-sorted per-server weight vec, if present.
pub(crate) fn weight_lookup(weights: &[(UserId, f64)], u: UserId) -> Option<f64> {
    weights
        .binary_search_by_key(&u, |&(user, _)| user)
        .ok()
        .map(|i| weights[i].1)
}

/// Resolves the configured planning-worker count against the machine and
/// the number of servers: `0` means auto-size from available parallelism,
/// and the pool never exceeds the server count (an idle worker is pure
/// spawn overhead).
pub(crate) fn planning_workers(configured: usize, servers: usize) -> usize {
    let requested = if configured == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        configured
    };
    requested.min(servers).max(1)
}

/// Per-server stride planning shared by every policy behind the
/// [`crate::policy::AllocPolicy`] boundary.
#[derive(Debug, Default)]
pub(crate) struct RoundPlanner {
    /// One local scheduler per server, in server-id order.
    locals: BTreeMap<ServerId, LocalScheduler>,
    /// Per-generation stride weight vectors derived from the current
    /// entitlements, indexed by `GenId::index()` and id-sorted per vector
    /// (entitlements iterate users in id order). Weights depend only on a
    /// server's generation, so the cache is rebuilt once per entitlement
    /// refresh — a few vectors — instead of once per server per round.
    gen_weights: Vec<Vec<(UserId, f64)>>,
    /// Weight snapshots for servers that were unreachable at an entitlement
    /// refresh: an unreachable server cannot receive updates, so its local
    /// scheduler keeps running on the last weights it was sent until it is
    /// reachable again (graceful degradation). Entries are dropped the
    /// moment the server is reachable again.
    stale_weights: BTreeMap<ServerId, Vec<(UserId, f64)>>,
    /// Persistent planning workers, created on the first parallel round and
    /// reused every round thereafter (per-round thread spawns dominate the
    /// planning phase at benchmark scale).
    pool: Option<WorkerPool>,
    /// Resolved planning-worker count, computed once at init:
    /// `available_parallelism` re-reads cgroup state on every call, which is
    /// far too slow for the per-round path.
    workers: usize,
    /// Whether this planner runs the lazy-settling path, decided once at the
    /// first [`plan_runs`](Self::plan_runs) call (config allows it and no
    /// trace sink is attached). `None` until then.
    lazy: Option<bool>,
    /// Rounds planned and committed so far (lazy mode only): `plan_runs`
    /// advances it by one, [`commit`](Self::commit) by the fast-forward span.
    cur_round: u64,
    /// Per-server `(settled_round, valid_until)` by `ServerId::index()`
    /// (lazy mode): the round the server's local state was last settled at,
    /// and the last round its cached selection is proven to reproduce.
    meta: Vec<(u64, u64)>,
    /// `(valid_until, server)` expiry queue over `meta` — the next round any
    /// server *must* settle is `expiry.first().0 + 1`.
    expiry: BTreeSet<(u64, ServerId)>,
    /// Consumed position in the sim index's residency dirty ring.
    dirty_cursor: u64,
    /// Last settled selection per server, nonempty selections only — the run
    /// map lazy rounds return.
    cached_run: BTreeMap<ServerId, Vec<JobId>>,
    /// Which generations' weight vectors actually changed at the last
    /// [`refresh_weights`](Self::refresh_weights), by `GenId::index()`.
    /// Entitlements are re-derived every epoch but usually converge to the
    /// exact same values, so a refresh round only needs to re-sync the
    /// servers of generations whose vector really moved — bit-identical
    /// weights make every downstream weight application a no-op.
    changed_gens: Vec<bool>,
}

impl RoundPlanner {
    /// Creates an empty planner; call [`ensure_init`](Self::ensure_init)
    /// before the first round.
    pub fn new() -> Self {
        RoundPlanner::default()
    }

    /// Lazily builds the local schedulers from the cluster and resolves the
    /// worker count.
    pub fn ensure_init(&mut self, view: &SimView<'_>, gang_policy: GangPolicy, configured: usize) {
        if self.locals.is_empty() {
            for s in &view.cluster().servers {
                self.locals
                    .insert(s.id, LocalScheduler::new(s.id, s.num_gpus, gang_policy));
            }
            // Lazy-settling state: every server starts unsettled (valid
            // through round 0), so the first planned round settles them all.
            let len = view
                .cluster()
                .servers
                .iter()
                .map(|s| s.id.index() + 1)
                .max()
                .unwrap_or(0);
            self.meta = vec![(0, 0); len];
            self.expiry = self.locals.keys().map(|&s| (0, s)).collect();
        }
        if self.workers == 0 {
            self.workers = planning_workers(configured, self.locals.len());
        }
    }

    /// True before [`ensure_init`](Self::ensure_init) (or on an empty
    /// cluster): there is nothing to plan or fast-forward.
    pub fn is_empty(&self) -> bool {
        self.locals.is_empty()
    }

    /// Jobs the local scheduler of `server` currently believes are resident,
    /// for post-partition reconciliation diffs.
    pub fn jobs_on(&self, server: ServerId) -> BTreeSet<JobId> {
        self.locals
            .get(&server)
            .map(|l| l.jobs().collect())
            .unwrap_or_default()
    }

    /// Rebuilds the per-generation weight cache from fresh entitlements,
    /// first snapshotting the pre-refresh weights for servers that are
    /// unreachable right now (they keep planning on what they last
    /// received).
    pub fn refresh_weights(&mut self, view: &SimView<'_>, ent: &Entitlements, min_weight: f64) {
        // Servers that cannot be reached right now keep the weights they
        // last received: snapshot those (the pre-refresh per-gen vectors)
        // before rebuilding the cache, unless an earlier refresh already
        // recorded a snapshot for them.
        {
            let gen_weights = &self.gen_weights;
            let stale = &mut self.stale_weights;
            for s in &view.cluster().servers {
                if !view.is_reachable(s.id) {
                    stale.entry(s.id).or_insert_with(|| {
                        gen_weights.get(s.gen.index()).cloned().unwrap_or_default()
                    });
                }
            }
        }
        let num_gens = view.cluster().catalog.ids().count();
        let mut gen_weights = vec![Vec::new(); num_gens];
        for gen in view.cluster().catalog.ids() {
            gen_weights[gen.index()] = ent
                .users()
                .map(|u| (u, ent.get(u, gen).max(min_weight)))
                .collect();
        }
        self.changed_gens = gen_weights
            .iter()
            .enumerate()
            .map(|(i, w)| self.gen_weights.get(i) != Some(w))
            .collect();
        self.gen_weights = gen_weights;
    }

    /// Syncs local schedulers and collects the per-server run sets for this
    /// quantum, excluding `departing` jobs (ones this round's actions move
    /// or place). `refreshed` says whether the weight cache was rebuilt
    /// since the last call; `lazy_cfg` is `GfairConfig::lazy_planning`.
    ///
    /// Eager mode touches every server; lazy mode (see the module docs)
    /// settles only dirty, departing-host and span-expired servers and
    /// serves the rest from `cached_run`. Both modes, and the sequential
    /// (`workers == 1`) and parallel eager paths, produce byte-identical run
    /// maps: per-server planning commutes, merges re-insert in server-id
    /// order, and a cached selection is only reused strictly within its
    /// proven quiescence span.
    pub fn plan_runs(
        &mut self,
        view: &SimView<'_>,
        departing: &BTreeSet<JobId>,
        min_weight: f64,
        refreshed: bool,
        lazy_cfg: bool,
        obs: &SharedObs,
    ) -> BTreeMap<ServerId, Vec<JobId>> {
        // Decide the mode once: traced runs need exact per-round stride
        // passes in `RoundPlanned`, so they keep the eager path.
        let lazy = *self.lazy.get_or_insert(lazy_cfg && !obs.tracing());
        // A reachable server always plans on the current per-gen weights;
        // any stale snapshot it held while unreachable is dropped the round
        // it comes back (entitlements are re-refreshed on heal, so it
        // converges to the live economy immediately). A dropped snapshot
        // changes that server's effective weights, so that server counts as
        // weight-dirty just like one whose generation vector moved.
        let mut dropped: BTreeSet<ServerId> = BTreeSet::new();
        self.stale_weights.retain(|s, _| {
            let keep = !view.is_reachable(*s);
            if !keep {
                dropped.insert(*s);
            }
            keep
        });
        if lazy {
            return self.plan_runs_lazy(view, departing, min_weight, refreshed, &dropped, obs);
        }
        let mut run: BTreeMap<ServerId, Vec<JobId>> = BTreeMap::new();
        let workers = self.workers.max(1);
        let pool = &mut self.pool;
        if workers > 1 && pool.as_ref().map(WorkerPool::size) != Some(workers) {
            *pool = Some(WorkerPool::new(workers));
        }
        let locals = &mut self.locals;
        let gen_weights = &self.gen_weights;
        let stale_weights = &self.stale_weights;
        let changed_gens = &self.changed_gens;
        let cluster = view.cluster();
        // The weight vector a server plans on: its stale snapshot while
        // unreachable, the live per-gen vector otherwise.
        let weights_of = |server: ServerId| -> &[(UserId, f64)] {
            stale_weights
                .get(&server)
                .map(Vec::as_slice)
                .unwrap_or_else(|| {
                    gen_weights
                        .get(cluster.server(server).gen.index())
                        .map(Vec::as_slice)
                        .unwrap_or(&[])
                })
        };
        // Whether this server's effective weights may differ from what its
        // local scheduler last applied. Unchanged (bit-identical) vectors
        // make the weight refresh inside `sync` a no-op, so such servers
        // keep their version-check fast path even on refresh rounds.
        let weight_dirty = |server: ServerId| -> bool {
            (refreshed
                && changed_gens
                    .get(cluster.server(server).gen.index())
                    .copied()
                    .unwrap_or(true))
                || dropped.contains(&server)
        };
        let obs = Arc::clone(obs);
        obs.time(Phase::GangPacking, || {
            if workers <= 1 {
                for (&server, local) in locals.iter_mut() {
                    let weights = weights_of(server);
                    local.sync(
                        view,
                        departing,
                        |u| weight_lookup(weights, u).unwrap_or(min_weight),
                        weight_dirty(server),
                    );
                    let selected = local.plan();
                    if !selected.is_empty() {
                        run.insert(server, selected);
                    }
                }
                return;
            }
            // Parallel fan-out. Each server's local scheduler is an
            // independent piece of state and the weight function is pure, so
            // per-server planning commutes; workers take contiguous chunks
            // of the id-ordered server list and the merge below re-inserts
            // in that same order — the resulting plan is byte-identical to
            // the sequential path no matter the worker count.
            let mut work: Vec<(ServerId, &mut LocalScheduler)> =
                locals.iter_mut().map(|(&s, l)| (s, l)).collect();
            let chunk = work.len().div_ceil(workers);
            let mut results: Vec<Vec<(ServerId, Vec<JobId>)>> =
                vec![Vec::new(); work.len().div_ceil(chunk)];
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = work
                .chunks_mut(chunk)
                .zip(results.iter_mut())
                .map(|(slice, out)| {
                    Box::new(move || {
                        *out = slice
                            .iter_mut()
                            .map(|(server, local)| {
                                let weights = weights_of(*server);
                                local.sync(
                                    view,
                                    departing,
                                    |u| weight_lookup(weights, u).unwrap_or(min_weight),
                                    weight_dirty(*server),
                                );
                                (*server, local.plan())
                            })
                            .collect();
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            pool.as_ref().expect("pool sized above").run(tasks);
            for (server, selected) in results.into_iter().flatten() {
                if !selected.is_empty() {
                    run.insert(server, selected);
                }
            }
        });
        run
    }

    /// The lazy-settling round: drain the residency dirty ring, settle the
    /// union of dirty, weight-changed, departing-host and span-expired
    /// servers (every server on ring overflow), and return the cached run
    /// map. `refreshed` and `dropped` carry the weight-dirtiness inputs:
    /// generations whose refreshed vector really changed, and servers whose
    /// stale snapshot was just dropped.
    fn plan_runs_lazy(
        &mut self,
        view: &SimView<'_>,
        departing: &BTreeSet<JobId>,
        min_weight: f64,
        refreshed: bool,
        dropped: &BTreeSet<ServerId>,
        obs: &SharedObs,
    ) -> BTreeMap<ServerId, Vec<JobId>> {
        let r = self.cur_round + 1;
        self.cur_round = r;
        let mut settle_all = false;
        let mut to_settle: BTreeSet<ServerId> = BTreeSet::new();
        match view.residency_dirty_since(self.dirty_cursor) {
            Some(dirty) => to_settle.extend(dirty),
            None => settle_all = true,
        }
        self.dirty_cursor = view.residency_dirty_seq();
        // Weight-dirty servers: every server of a generation whose refreshed
        // weight vector actually changed, plus healed servers that just
        // dropped a stale snapshot. Refreshes that converge to bit-identical
        // vectors (the common case at steady state) dirty nothing here.
        if refreshed && self.changed_gens.iter().any(|&c| c) {
            for s in &view.cluster().servers {
                if self
                    .changed_gens
                    .get(s.gen.index())
                    .copied()
                    .unwrap_or(true)
                {
                    to_settle.insert(s.id);
                }
            }
        }
        to_settle.extend(dropped.iter().copied());
        // Hosts of departing jobs must exclude them from this round's
        // selection. (A job being *placed* this round has no host yet; its
        // target server turns dirty once the action applies.)
        let mut departing_hosts: BTreeSet<ServerId> = BTreeSet::new();
        for &j in departing {
            if let Some(server) = view.job(j).and_then(|info| info.server) {
                departing_hosts.insert(server);
            }
        }
        to_settle.extend(departing_hosts.iter().copied());
        while let Some(&(vu, server)) = self.expiry.first() {
            if vu >= r {
                break;
            }
            self.expiry.pop_first();
            to_settle.insert(server);
        }
        let locals = &mut self.locals;
        let meta = &mut self.meta;
        let expiry = &mut self.expiry;
        let cached = &mut self.cached_run;
        let gen_weights = &self.gen_weights;
        let stale_weights = &self.stale_weights;
        let changed_gens = &self.changed_gens;
        let cluster = view.cluster();
        let weights_of = |server: ServerId| -> &[(UserId, f64)] {
            stale_weights
                .get(&server)
                .map(Vec::as_slice)
                .unwrap_or_else(|| {
                    gen_weights
                        .get(cluster.server(server).gen.index())
                        .map(Vec::as_slice)
                        .unwrap_or(&[])
                })
        };
        let weight_dirty = |server: ServerId| -> bool {
            (refreshed
                && changed_gens
                    .get(cluster.server(server).gen.index())
                    .copied()
                    .unwrap_or(true))
                || dropped.contains(&server)
        };
        let obs = Arc::clone(obs);
        obs.time(Phase::GangPacking, || {
            // Catch the local state up to the previous round (the cached
            // selection replays verbatim across the lag by the quiescence
            // guarantee), re-derive, and re-probe the new span.
            let mut settle = |server: ServerId, local: &mut LocalScheduler| {
                let m = &mut meta[server.index()];
                let lag = (r - 1).saturating_sub(m.0);
                if lag > 0 {
                    local.fast_forward(lag);
                }
                let weights = weights_of(server);
                local.sync(
                    view,
                    departing,
                    |u| weight_lookup(weights, u).unwrap_or(min_weight),
                    weight_dirty(server),
                );
                let selected = local.plan();
                // Adaptive probe budget: ~2x the settle-to-settle gap (see
                // `QUIESCENT_MIN`). The budget only decides how far ahead
                // the replay guarantee is *sought*, never how it is used, so
                // any budget schedule yields byte-identical plans.
                let gap = r.saturating_sub(m.0).max(1);
                let cap = (gap.saturating_mul(2)).clamp(QUIESCENT_MIN, QUIESCENT_SPAN);
                let span = local.quiescent_rounds(&selected, cap);
                let vu = r + span;
                expiry.remove(&(m.1, server));
                expiry.insert((vu, server));
                *m = (r, vu);
                if selected.is_empty() {
                    cached.remove(&server);
                } else {
                    cached.insert(server, selected);
                }
            };
            if settle_all {
                for (&server, local) in locals.iter_mut() {
                    settle(server, local);
                }
            } else {
                for &server in &to_settle {
                    if let Some(local) = locals.get_mut(&server) {
                        settle(server, local);
                    }
                }
            }
            // A departing job's exclusion is synthetic: if the action is
            // skipped (raced a fault), the job stays resident without a
            // dirty mark, so its host's fresh span must not outlive this
            // round — force a re-settle next round.
            for &server in &departing_hosts {
                let m = &mut meta[server.index()];
                if m.1 > r {
                    expiry.remove(&(m.1, server));
                    expiry.insert((r, server));
                    m.1 = r;
                }
            }
        });
        self.cached_run.clone()
    }

    /// All-or-nothing fast-forward probe across servers: the replayable
    /// horizon is the minimum over every local scheduler's differential
    /// check against the cached plan (absent servers must reproduce an empty
    /// selection). Must not mutate state.
    ///
    /// Lazy mode answers from the expiry queue in O(1): every cached
    /// selection is proven through its `valid_until` round, so the whole
    /// cluster replays through the earliest one.
    pub fn probe(&self, run: &BTreeMap<ServerId, Vec<JobId>>, k: u64) -> u64 {
        if self.lazy == Some(true) {
            debug_assert_eq!(run, &self.cached_run, "probe against a stale plan");
            let min_vu = self.expiry.first().map(|&(vu, _)| vu).unwrap_or(u64::MAX);
            return k.min(min_vu.saturating_sub(self.cur_round));
        }
        let mut j = k;
        for (&server, local) in self.locals.iter() {
            let expected = run.get(&server).map(Vec::as_slice).unwrap_or(&[]);
            j = j.min(local.quiescent_rounds(expected, k));
            if j == 0 {
                return 0;
            }
        }
        j
    }

    /// Advances stride state by `j` quanta in one analytic step. Lazy mode
    /// only advances the round counter — each server's state catches up at
    /// its next settle (the lag replay), and the probe guaranteed `j` stays
    /// within every span.
    pub fn commit(&mut self, j: u64) {
        if self.lazy == Some(true) {
            self.cur_round += j;
            return;
        }
        for local in self.locals.values_mut() {
            local.fast_forward(j);
        }
    }

    /// Folds the best (lowest) stride pass per user across all servers, for
    /// [`gfair_sim::ClusterScheduler::user_shares`] reporting. One pass over
    /// the locals instead of scanning every server once per entitled user —
    /// locals dominate users at bench scale, so this turns a
    /// users × servers sweep into servers + users.
    pub fn fold_min_passes(&self) -> BTreeMap<UserId, f64> {
        let mut min_pass: BTreeMap<UserId, f64> = BTreeMap::new();
        for local in self.locals.values() {
            local.for_each_user_pass(|u, p| {
                min_pass
                    .entry(u)
                    .and_modify(|m| {
                        if p.total_cmp(m).is_lt() {
                            *m = p;
                        }
                    })
                    .or_insert(p);
            });
        }
        min_pass
    }
}
