//! Configuration knobs specific to the Gandiva_fair policy.
//!
//! Intervals, the quantum, the trade price strategy and the RNG seed live in
//! the shared [`gfair_types::SimConfig`]; this struct holds the policy
//! toggles (used by the ablation experiments) and tuning constants.

use gfair_stride::GangPolicy;
use gfair_types::SimDuration;
use std::fmt;

/// Selector for the allocation policy that drives scheduling decisions.
///
/// The id is just a name — the mapping to a concrete scheduler lives in the
/// `gfair-policies` crate (`build_policy`), which keeps this core crate free
/// of policy implementations it doesn't own. `POLICIES.md` documents each
/// policy; its table is cross-checked against [`PolicyId::ALL`] by a test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PolicyId {
    /// The paper's policy: ticket-proportional entitlements plus the
    /// big/small trading market ([`crate::GandivaFair`]).
    Gfair,
    /// Gavel-style heterogeneity-aware max-min fairness via deterministic
    /// water-filling over estimated per-generation throughput.
    GavelHetero,
    /// Themis-style finish-time fairness: online ρ̂ tracking with a
    /// partial-allocation auction among the worst-off users each lease.
    ThemisFtf,
}

impl PolicyId {
    /// Every selectable policy, in CLI-listing order.
    pub const ALL: [PolicyId; 3] = [PolicyId::Gfair, PolicyId::GavelHetero, PolicyId::ThemisFtf];

    /// The CLI / report name of the policy.
    pub fn name(self) -> &'static str {
        match self {
            PolicyId::Gfair => "gfair",
            PolicyId::GavelHetero => "gavel-hetero",
            PolicyId::ThemisFtf => "themis-ftf",
        }
    }

    /// Parses a CLI name back into a policy id.
    pub fn parse(s: &str) -> Option<PolicyId> {
        PolicyId::ALL.into_iter().find(|p| p.name() == s)
    }
}

impl fmt::Display for PolicyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Policy toggles and tuning constants for [`crate::GandivaFair`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GfairConfig {
    /// Which allocation policy drives scheduling. The default is the
    /// paper's entitlement + trading policy; `gavel-hetero` and
    /// `themis-ftf` select the alternative formulations from
    /// `gfair-policies`.
    pub policy: PolicyId,
    /// Run the trading market (ablation: off reproduces "fairness without
    /// heterogeneity awareness").
    pub trading: bool,
    /// Run migration-based load balancing.
    pub balancing: bool,
    /// Migrate jobs to unprofiled generations so the profiler can learn
    /// cross-generation rates (requires `balancing`).
    pub profiling_migrations: bool,
    /// Gang scheduling policy used by the per-server local schedulers.
    /// The ablations swap in the naive variants.
    pub gang_policy: GangPolicy,
    /// Load-spread threshold: migrate only when a server's load exceeds the
    /// generation mean by more than this.
    pub load_spread: f64,
    /// Minimum speedup gap between buyer and seller before a trade fires
    /// (filters profiling noise).
    pub trade_margin: f64,
    /// Floor for a user's per-server stride weight. A user who traded away
    /// an entire generation still gets a vanishing — but nonzero — weight so
    /// stranded jobs cannot deadlock.
    pub min_weight: f64,
    /// Minimum profile samples per (model, generation) before the estimate
    /// is considered trustworthy for trading.
    pub min_profile_samples: u64,
    /// Worker threads for per-server round planning: `0` sizes the pool from
    /// the machine's available parallelism, `1` forces the sequential path,
    /// higher values pin the fan-out width. Per-server planning is
    /// independent and results are merged in server-id order, so every
    /// setting produces byte-identical plans (asserted by the determinism
    /// tests).
    pub planning_workers: usize,
    /// Maximum times a failed migration is retried before the job is left
    /// where the failure stranded it (resident at the source for checkpoint
    /// failures, pending for restore failures — the placement path then
    /// owns it). `0` disables retries entirely.
    pub max_migration_retries: u32,
    /// Base delay of the exponential backoff between migration retries:
    /// attempt `n` waits `backoff_base * 2^(n-1)`.
    pub backoff_base: SimDuration,
    /// Allow the engine to replay a cached round plan across quiescent
    /// quanta in one analytic step (see `DESIGN.md`, "Quiescence
    /// fast-forward"). Purely a performance knob: reports and traces are
    /// byte-identical either way, which the differential tests assert.
    pub fast_forward: bool,
    /// Allow the round planner to settle servers lazily — re-plan only
    /// servers whose residency, weights or quiescence span changed, serving
    /// the rest from the cached selection. Purely a performance knob:
    /// reports are byte-identical either way (asserted by the differential
    /// tests), and traced runs always plan eagerly regardless of this flag
    /// so per-round stride passes stay exact in the trace.
    pub lazy_planning: bool,
    /// Themis lease length: how often the partial-allocation auction among
    /// the worst-ρ̂ users re-runs (only read by the `themis-ftf` policy).
    pub themis_lease: SimDuration,
    /// Fraction of active users admitted to each Themis auction, taken from
    /// the worst-ρ̂ end (only read by the `themis-ftf` policy). Clamped to
    /// at least one user.
    pub themis_filter: f64,
}

impl Default for GfairConfig {
    fn default() -> Self {
        GfairConfig {
            policy: PolicyId::Gfair,
            trading: true,
            balancing: true,
            profiling_migrations: true,
            gang_policy: GangPolicy::GangAware,
            load_spread: 0.25,
            trade_margin: 0.2,
            min_weight: 1e-3,
            min_profile_samples: 2,
            planning_workers: 0,
            max_migration_retries: 3,
            backoff_base: SimDuration::from_secs(60),
            fast_forward: true,
            lazy_planning: true,
            themis_lease: SimDuration::from_mins(10),
            themis_filter: 0.5,
        }
    }
}

impl GfairConfig {
    /// Selects the allocation policy (builder-style).
    pub fn with_policy(mut self, policy: PolicyId) -> Self {
        self.policy = policy;
        self
    }

    /// Overrides the Themis auction knobs (builder-style): lease length and
    /// the worst-ρ̂ fraction admitted to each auction.
    pub fn with_themis(mut self, lease: SimDuration, filter: f64) -> Self {
        self.themis_lease = lease;
        self.themis_filter = filter;
        self
    }

    /// Disables trading (builder-style).
    pub fn without_trading(mut self) -> Self {
        self.trading = false;
        self
    }

    /// Disables load balancing and profiling migrations (builder-style).
    pub fn without_balancing(mut self) -> Self {
        self.balancing = false;
        self.profiling_migrations = false;
        self
    }

    /// Overrides the gang policy (builder-style, used by ablations).
    pub fn with_gang_policy(mut self, policy: GangPolicy) -> Self {
        self.gang_policy = policy;
        self
    }

    /// Overrides the planning worker count (builder-style): `0` = auto,
    /// `1` = sequential, `n > 1` = fan out across up to `n` threads.
    pub fn with_planning_workers(mut self, workers: usize) -> Self {
        self.planning_workers = workers;
        self
    }

    /// Overrides the migration retry policy (builder-style): at most
    /// `retries` attempts after the first failure, spaced by exponential
    /// backoff starting at `base`.
    pub fn with_migration_retry(mut self, retries: u32, base: SimDuration) -> Self {
        self.max_migration_retries = retries;
        self.backoff_base = base;
        self
    }

    /// Disables quiescence fast-forwarding (builder-style), forcing the
    /// engine to step every quantum. Used by the differential tests and the
    /// bench baseline.
    pub fn without_fast_forward(mut self) -> Self {
        self.fast_forward = false;
        self
    }

    /// Disables lazy plan settling (builder-style), forcing every server to
    /// re-plan every round. Used by the differential tests (lazy vs eager
    /// byte-equality) and by benchmarks that must isolate other costs.
    pub fn without_lazy_planning(mut self) -> Self {
        self.lazy_planning = false;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_enables_all_mechanisms() {
        let c = GfairConfig::default();
        assert!(c.trading && c.balancing && c.profiling_migrations);
        assert_eq!(c.gang_policy, GangPolicy::GangAware);
        assert_eq!(c.policy, PolicyId::Gfair);
    }

    #[test]
    fn policy_names_round_trip() {
        for p in PolicyId::ALL {
            assert_eq!(PolicyId::parse(p.name()), Some(p));
            assert_eq!(p.to_string(), p.name());
        }
        assert_eq!(PolicyId::parse("no-such-policy"), None);
    }

    #[test]
    fn policy_builders() {
        let c = GfairConfig::default().with_policy(PolicyId::GavelHetero);
        assert_eq!(c.policy, PolicyId::GavelHetero);
        let c = GfairConfig::default().with_themis(SimDuration::from_mins(5), 0.25);
        assert_eq!(c.themis_lease, SimDuration::from_mins(5));
        assert_eq!(c.themis_filter, 0.25);
    }

    #[test]
    fn builders_toggle_mechanisms() {
        let c = GfairConfig::default().without_trading();
        assert!(!c.trading);
        assert!(c.balancing);
        let c = GfairConfig::default().without_balancing();
        assert!(!c.balancing);
        assert!(!c.profiling_migrations);
        let c = GfairConfig::default().with_gang_policy(GangPolicy::StrictNoBackfill);
        assert_eq!(c.gang_policy, GangPolicy::StrictNoBackfill);
        let c = GfairConfig::default().with_planning_workers(4);
        assert_eq!(c.planning_workers, 4);
        let c = GfairConfig::default().with_migration_retry(5, SimDuration::from_secs(30));
        assert_eq!(c.max_migration_retries, 5);
        assert_eq!(c.backoff_base, SimDuration::from_secs(30));
        assert!(GfairConfig::default().fast_forward);
        let c = GfairConfig::default().without_fast_forward();
        assert!(!c.fast_forward);
        assert!(GfairConfig::default().lazy_planning);
        let c = GfairConfig::default().without_lazy_planning();
        assert!(!c.lazy_planning);
    }
}
