//! Per-user, per-generation GPU entitlements.
//!
//! The fairness contract: at any instant, each *active* user (one with at
//! least one unfinished job) is entitled to a ticket-proportional slice of
//! every GPU generation. [`Entitlements::base`] computes that baseline;
//! the trading market then rearranges slices *between* generations while
//! preserving each generation's total (physical GPUs are conserved) and
//! never pushing a user's valuation below baseline.

use gfair_types::{GenId, UserId};
use std::collections::BTreeMap;

/// A per-(user, generation) allocation of GPU capacity, in GPU units.
#[derive(Debug, Clone, PartialEq)]
pub struct Entitlements {
    num_gens: usize,
    alloc: BTreeMap<UserId, Vec<f64>>,
}

impl Entitlements {
    /// Ticket-proportional baseline: user `u` receives
    /// `gpus[g] * tickets(u) / total_tickets` of every generation `g`.
    ///
    /// `active` lists the active users and their tickets; inactive users get
    /// no entitlement (work conservation: their capacity is implicitly
    /// redistributed by the proportional split over active tickets).
    ///
    /// # Panics
    ///
    /// Panics if `gpus_per_gen` is empty or any ticket count is zero.
    pub fn base(gpus_per_gen: &BTreeMap<GenId, u32>, active: &[(UserId, u64)]) -> Self {
        assert!(!gpus_per_gen.is_empty(), "need at least one generation");
        let num_gens = gpus_per_gen
            .keys()
            .map(|g| g.index() + 1)
            .max()
            .expect("non-empty");
        let total: u64 = active.iter().map(|&(_, t)| t).sum();
        let mut alloc = BTreeMap::new();
        for &(user, tickets) in active {
            assert!(tickets > 0, "active user {user} has zero tickets");
            let mut row = vec![0.0; num_gens];
            for (&gen, &gpus) in gpus_per_gen {
                row[gen.index()] = gpus as f64 * tickets as f64 / total as f64;
            }
            alloc.insert(user, row);
        }
        Entitlements { num_gens, alloc }
    }

    /// Builds entitlements directly from explicit per-user rows (one slot
    /// per generation, indexed by `GenId::index()`), for policies that
    /// compute allocations by their own rule rather than from tickets.
    ///
    /// The caller is responsible for the conservation invariant: summed
    /// over users, each generation's slots should equal its physical GPU
    /// count (the trace auditor checks this every round).
    ///
    /// # Panics
    ///
    /// Panics if any row's length differs from `num_gens`.
    pub fn from_shares(num_gens: usize, alloc: BTreeMap<UserId, Vec<f64>>) -> Self {
        for (user, row) in &alloc {
            assert!(
                row.len() == num_gens,
                "user {user} row has {} slots, expected {num_gens}",
                row.len()
            );
        }
        Entitlements { num_gens, alloc }
    }

    /// Number of generations covered.
    pub fn num_gens(&self) -> usize {
        self.num_gens
    }

    /// Allocation of `user` on `gen` in GPU units (0.0 for unknown users).
    pub fn get(&self, user: UserId, gen: GenId) -> f64 {
        self.alloc
            .get(&user)
            .and_then(|row| row.get(gen.index()))
            .copied()
            .unwrap_or(0.0)
    }

    /// Mutably adjusts `user`'s allocation on `gen` by `delta` (may be
    /// negative), clamping at zero to absorb floating-point dust.
    ///
    /// # Panics
    ///
    /// Panics if the user is unknown or the generation is out of range.
    pub fn adjust(&mut self, user: UserId, gen: GenId, delta: f64) {
        let row = self.alloc.get_mut(&user).expect("unknown user");
        let slot = &mut row[gen.index()];
        *slot = (*slot + delta).max(0.0);
    }

    /// Total allocation across users for `gen` — invariant under trading:
    /// always equals the generation's physical GPU count (when any user is
    /// active).
    pub fn total_of_gen(&self, gen: GenId) -> f64 {
        self.alloc.values().map(|row| row[gen.index()]).sum()
    }

    /// Total GPUs (across generations) allocated to `user`.
    pub fn gpus_of(&self, user: UserId) -> f64 {
        self.alloc
            .get(&user)
            .map(|row| row.iter().sum())
            .unwrap_or(0.0)
    }

    /// Users holding an allocation, in id order.
    pub fn users(&self) -> impl Iterator<Item = UserId> + '_ {
        self.alloc.keys().copied()
    }

    /// The user's valuation of an allocation under the given per-generation
    /// speedups: `sum_g alloc[g] * speedup[g]` (base-GPU equivalents).
    ///
    /// `speedups` is indexed by generation; missing entries count as the
    /// base rate 1.0 (conservative).
    pub fn valuation(&self, user: UserId, speedups: &[Option<f64>]) -> f64 {
        let Some(row) = self.alloc.get(&user) else {
            return 0.0;
        };
        row.iter()
            .enumerate()
            .map(|(g, &a)| a * speedups.get(g).copied().flatten().unwrap_or(1.0))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpus() -> BTreeMap<GenId, u32> {
        BTreeMap::from([
            (GenId::new(0), 128),
            (GenId::new(1), 48),
            (GenId::new(2), 24),
        ])
    }

    #[test]
    fn base_is_ticket_proportional_per_gen() {
        let e = Entitlements::base(&gpus(), &[(UserId::new(0), 100), (UserId::new(1), 300)]);
        assert!((e.get(UserId::new(0), GenId::new(0)) - 32.0).abs() < 1e-9);
        assert!((e.get(UserId::new(1), GenId::new(0)) - 96.0).abs() < 1e-9);
        assert!((e.get(UserId::new(0), GenId::new(2)) - 6.0).abs() < 1e-9);
    }

    #[test]
    fn totals_equal_physical_gpus() {
        let e = Entitlements::base(
            &gpus(),
            &[
                (UserId::new(0), 7),
                (UserId::new(1), 11),
                (UserId::new(2), 13),
            ],
        );
        assert!((e.total_of_gen(GenId::new(0)) - 128.0).abs() < 1e-9);
        assert!((e.total_of_gen(GenId::new(1)) - 48.0).abs() < 1e-9);
        assert!((e.total_of_gen(GenId::new(2)) - 24.0).abs() < 1e-9);
    }

    #[test]
    fn inactive_users_get_nothing() {
        let e = Entitlements::base(&gpus(), &[(UserId::new(0), 100)]);
        assert_eq!(e.get(UserId::new(9), GenId::new(0)), 0.0);
        assert_eq!(e.gpus_of(UserId::new(9)), 0.0);
        // The sole active user gets everything.
        assert!((e.gpus_of(UserId::new(0)) - 200.0).abs() < 1e-9);
    }

    #[test]
    fn adjust_moves_allocation() {
        let mut e = Entitlements::base(&gpus(), &[(UserId::new(0), 100), (UserId::new(1), 100)]);
        let before = e.get(UserId::new(0), GenId::new(2));
        e.adjust(UserId::new(0), GenId::new(2), -3.0);
        e.adjust(UserId::new(1), GenId::new(2), 3.0);
        assert!((e.get(UserId::new(0), GenId::new(2)) - (before - 3.0)).abs() < 1e-9);
        // Physical conservation.
        assert!((e.total_of_gen(GenId::new(2)) - 24.0).abs() < 1e-9);
    }

    #[test]
    fn adjust_clamps_at_zero() {
        let mut e = Entitlements::base(&gpus(), &[(UserId::new(0), 100)]);
        e.adjust(UserId::new(0), GenId::new(2), -1e9);
        assert_eq!(e.get(UserId::new(0), GenId::new(2)), 0.0);
    }

    #[test]
    fn valuation_weights_by_speedups() {
        let e = Entitlements::base(&gpus(), &[(UserId::new(0), 100)]);
        // All 200 GPUs; V100s (24) at 5x, P100s (48) at 3x, K80s at 1x.
        let v = e.valuation(UserId::new(0), &[Some(1.0), Some(3.0), Some(5.0)]);
        assert!((v - (128.0 + 144.0 + 120.0)).abs() < 1e-9);
        // Missing speedups default to 1.0.
        let v = e.valuation(UserId::new(0), &[Some(1.0), None, None]);
        assert!((v - 200.0).abs() < 1e-9);
    }

    #[test]
    fn users_iterates_in_id_order() {
        let e = Entitlements::base(&gpus(), &[(UserId::new(5), 1), (UserId::new(2), 1)]);
        let ids: Vec<UserId> = e.users().collect();
        assert_eq!(ids, vec![UserId::new(2), UserId::new(5)]);
    }

    #[test]
    #[should_panic(expected = "zero tickets")]
    fn zero_ticket_active_user_panics() {
        let _ = Entitlements::base(&gpus(), &[(UserId::new(0), 0)]);
    }
}
