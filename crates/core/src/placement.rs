//! Shared server-selection logic for placements, retries and migrations.
//!
//! Every policy-side decision "which server should this gang land on?" goes
//! through [`Placer`]: an entitlement-slack-first generation choice followed
//! by least-projected-load selection among the reachable servers of that
//! generation, with a work-conserving fallback across the whole reachable
//! cluster. The placer also owns the *in-flight* demand book-keeping —
//! placements issued this round but not yet applied by the engine — so that
//! simultaneous arrivals do not pile onto one server.
//!
//! Extracted from the central Gandiva_fair scheduler so that every policy
//! behind the [`crate::policy::AllocPolicy`] boundary places jobs with the
//! same rules, the same provenance rows, and the same tie-breaks.

use crate::entitlement::Entitlements;
use gfair_obs::{Candidate, Rejection};
use gfair_sim::SimView;
use gfair_types::{GenId, ServerId, ServerSpec, UserId};
use std::collections::BTreeMap;

/// Tie-break rule shared by every load-based server selection; quoted
/// verbatim in [`gfair_obs::TraceEvent::Decision`] provenance.
pub(crate) const TIE_BREAK_LOAD: &str = "least projected load, then lowest server id";

/// Cap on the scored candidates carried in one decision event. The full
/// candidate count is still reported via `considered`.
pub(crate) const MAX_WHY_CANDIDATES: usize = 8;

/// Provenance for one server choice: what was picked, how ties were
/// broken, and what was ruled out. Rendered into a
/// [`gfair_obs::TraceEvent::Decision`] by the caller, which knows the
/// decision site.
pub(crate) struct ChoiceWhy {
    /// Human-readable selected alternative (or `none (...)`).
    pub chosen: String,
    /// Tie-break rule applied among equally-scored candidates.
    pub tie_break: &'static str,
    /// Fitting servers that were scored.
    pub considered: u32,
    /// Best-scoring alternatives, winner first (bounded).
    pub candidates: Vec<Candidate>,
    /// Alternatives ruled out, grouped by reason.
    pub rejected: Vec<Rejection>,
}

/// Load-aware server picker with in-flight placement tracking.
#[derive(Debug, Default)]
pub(crate) struct Placer {
    /// GPU demand of placements issued this round but not yet applied by the
    /// engine (placement callbacks run before the round boundary). Indexed
    /// by `ServerId::index()` (server ids are dense) — this is read once per
    /// candidate server on every placement, the hottest lookup in the
    /// arrival path.
    inflight: Vec<u32>,
}

impl Placer {
    /// Creates an empty placer.
    pub fn new() -> Self {
        Placer::default()
    }

    /// Grows the in-flight table to cover `servers` servers.
    pub fn ensure_capacity(&mut self, servers: usize) {
        if self.inflight.len() < servers {
            self.inflight.resize(servers, 0);
        }
    }

    /// Clears the in-flight book (queued placements were applied by the
    /// engine before the round boundary). Call once per `plan_round`.
    pub fn reset(&mut self) {
        self.inflight.fill(0);
    }

    /// Records a placement issued this round, so later picks in the same
    /// round see the projected demand.
    pub fn note_placement(&mut self, server: ServerId, gang: u32) {
        self.inflight[server.index()] += gang;
    }

    /// Server load including placements issued this round but not yet
    /// applied by the engine.
    pub fn projected_load(&self, view: &SimView<'_>, server: ServerId) -> f64 {
        let gpus = view.cluster().server(server).num_gpus;
        let pending = self.inflight.get(server.index()).copied().unwrap_or(0);
        (view.resident_demand(server) + pending) as f64 / gpus as f64
    }

    /// Scores every server in `scope` that fits the gang by projected load
    /// and picks the minimum (ties to the lowest id). Returns the winner
    /// plus the provenance rows: fitting-server count, servers ruled out as
    /// too narrow, and the top-[`MAX_WHY_CANDIDATES`] candidates by score.
    pub fn pick_least_loaded<'a>(
        &self,
        view: &SimView<'_>,
        gang: u32,
        scope: impl Iterator<Item = &'a ServerSpec>,
        want_why: bool,
    ) -> (Option<ServerId>, u32, u32, Vec<Candidate>) {
        let mut too_narrow = 0u32;
        if !want_why {
            // Allocation-free fast path for untraced runs: the same
            // selection rule (least projected load, then lowest id), no
            // provenance materialized.
            let mut considered = 0u32;
            let mut best: Option<(f64, ServerId)> = None;
            for s in scope {
                if s.num_gpus < gang {
                    too_narrow += 1;
                    continue;
                }
                considered += 1;
                let load = self.projected_load(view, s.id);
                let better = match best {
                    None => true,
                    Some((bl, bid)) => load.total_cmp(&bl).then(s.id.cmp(&bid)).is_lt(),
                };
                if better {
                    best = Some((load, s.id));
                }
            }
            return (best.map(|(_, id)| id), considered, too_narrow, Vec::new());
        }
        // Scores stay as plain pairs until after truncation: formatting a
        // label per scanned server would put ~100 heap allocations on every
        // job arrival at the 1000-GPU scale.
        let mut scored: Vec<(f64, ServerId)> = Vec::new();
        for s in scope {
            if s.num_gpus < gang {
                too_narrow += 1;
                continue;
            }
            scored.push((self.projected_load(view, s.id), s.id));
        }
        let considered = scored.len() as u32;
        scored.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let best = scored.first().map(|&(_, id)| id);
        scored.truncate(MAX_WHY_CANDIDATES);
        let candidates = scored
            .into_iter()
            .map(|(load, id)| Candidate {
                label: format!("server:{}", id.index()),
                score: load,
            })
            .collect();
        (best, considered, too_narrow, candidates)
    }

    /// Picks a server for an arriving job: prefer the generation where the
    /// user has the most allocation slack under `ent`, then the least-loaded
    /// server of that generation that fits; fall back to least-loaded
    /// overall. Only reachable servers are considered — a placement sent to
    /// a partitioned server could not be delivered.
    ///
    /// Alongside the choice, returns the [`ChoiceWhy`] provenance the
    /// caller renders into a [`gfair_obs::TraceEvent::Decision`].
    pub fn choose_server_explained(
        &self,
        view: &SimView<'_>,
        ent: Option<&Entitlements>,
        user: UserId,
        gang: u32,
        want_why: bool,
    ) -> (Option<ServerId>, Option<ChoiceWhy>) {
        // Current per-gen usage of this user.
        let mut used: BTreeMap<GenId, f64> = BTreeMap::new();
        for j in view.jobs_of_user(user) {
            if let Some(s) = j.server {
                *used.entry(view.cluster().server(s).gen).or_insert(0.0) += j.gang as f64;
            }
        }
        let mut rejected: Vec<Rejection> = Vec::new();
        if let Some(ent) = ent {
            let mut gens_without_slack = 0u32;
            let mut best_gen: Option<(GenId, f64)> = None;
            for gen in view.cluster().catalog.ids() {
                let slack = ent.get(user, gen) - used.get(&gen).copied().unwrap_or(0.0);
                if slack <= 0.0 {
                    gens_without_slack += 1;
                    continue;
                }
                if best_gen.map(|(_, s)| slack > s).unwrap_or(true) {
                    // Only generations with an online server wide enough
                    // for the gang.
                    if view
                        .reachable_servers_of_gen(gen)
                        .any(|s| s.num_gpus >= gang)
                    {
                        best_gen = Some((gen, slack));
                    }
                }
            }
            if want_why && gens_without_slack > 0 {
                rejected.push(Rejection {
                    reason: "gen_without_slack".to_string(),
                    count: gens_without_slack,
                });
            }
            if let Some((gen, slack)) = best_gen {
                let (target, considered, too_narrow, candidates) = self.pick_least_loaded(
                    view,
                    gang,
                    view.reachable_servers_of_gen(gen),
                    want_why,
                );
                if let Some(server) = target {
                    if !want_why {
                        return (Some(server), None);
                    }
                    if too_narrow > 0 {
                        rejected.push(Rejection {
                            reason: "gang_too_wide_for_server".to_string(),
                            count: too_narrow,
                        });
                    }
                    let why = ChoiceWhy {
                        chosen: format!(
                            "server:{} (gen:{} slack-first, slack {:.2})",
                            server.index(),
                            gen.index(),
                            slack
                        ),
                        tie_break: TIE_BREAK_LOAD,
                        considered,
                        candidates,
                        rejected,
                    };
                    return (Some(server), Some(why));
                }
            }
        }
        // Work conservation fallback: least-loaded fitting server anywhere.
        if want_why {
            let total = view.cluster().servers.len() as u32;
            let reachable = view.reachable_servers().count() as u32;
            if total > reachable {
                rejected.push(Rejection {
                    reason: "unreachable".to_string(),
                    count: total - reachable,
                });
            }
        }
        let (target, considered, too_narrow, candidates) =
            self.pick_least_loaded(view, gang, view.reachable_servers(), want_why);
        if !want_why {
            return (target, None);
        }
        if too_narrow > 0 {
            rejected.push(Rejection {
                reason: "gang_too_wide_for_server".to_string(),
                count: too_narrow,
            });
        }
        let why = ChoiceWhy {
            chosen: match target {
                Some(s) => format!("server:{} (work-conserving fallback)", s.index()),
                None => "none (no reachable server fits)".to_string(),
            },
            tie_break: TIE_BREAK_LOAD,
            considered,
            candidates,
            rejected,
        };
        (target, Some(why))
    }
}
