//! Shared server-selection logic for placements, retries and migrations.
//!
//! Every policy-side decision "which server should this gang land on?" goes
//! through [`Placer`]: an entitlement-slack-first generation choice followed
//! by least-projected-load selection among the reachable servers of that
//! generation, with a work-conserving fallback across the whole reachable
//! cluster. The placer also owns the *in-flight* demand book-keeping —
//! placements issued this round but not yet applied by the engine — so that
//! simultaneous arrivals do not pile onto one server.
//!
//! Extracted from the central Gandiva_fair scheduler so that every policy
//! behind the [`crate::policy::AllocPolicy`] boundary places jobs with the
//! same rules, the same provenance rows, and the same tie-breaks.

use crate::entitlement::Entitlements;
use gfair_obs::{Candidate, Rejection};
use gfair_sim::SimView;
use gfair_types::{GenId, ServerId, ServerSpec, UserId};

/// Tie-break rule shared by every load-based server selection; quoted
/// verbatim in [`gfair_obs::TraceEvent::Decision`] provenance.
pub(crate) const TIE_BREAK_LOAD: &str = "least projected load, then lowest server id";

/// Cap on the scored candidates carried in one decision event. The full
/// candidate count is still reported via `considered`.
pub(crate) const MAX_WHY_CANDIDATES: usize = 8;

/// Provenance for one server choice: what was picked, how ties were
/// broken, and what was ruled out. Rendered into a
/// [`gfair_obs::TraceEvent::Decision`] by the caller, which knows the
/// decision site.
pub(crate) struct ChoiceWhy {
    /// Human-readable selected alternative (or `none (...)`).
    pub chosen: String,
    /// Tie-break rule applied among equally-scored candidates.
    pub tie_break: &'static str,
    /// Fitting servers that were scored.
    pub considered: u32,
    /// Best-scoring alternatives, winner first (bounded).
    pub candidates: Vec<Candidate>,
    /// Alternatives ruled out, grouped by reason.
    pub rejected: Vec<Rejection>,
}

/// Load-aware server picker with in-flight placement tracking.
#[derive(Debug, Default)]
pub(crate) struct Placer {
    /// GPU demand of placements issued this round but not yet applied by the
    /// engine (placement callbacks run before the round boundary). Indexed
    /// by `ServerId::index()` (server ids are dense) — this is read once per
    /// candidate server on every placement, the hottest lookup in the
    /// arrival path.
    inflight: Vec<u32>,
    /// Servers whose in-flight demand went `0 → nonzero` this round. Lets
    /// [`Self::reset`] clear only the entries that changed — O(placements
    /// this round), not O(servers).
    touched: Vec<ServerId>,
    /// The `(projected-load bits, id)` key each touched server currently
    /// holds in its generation's set below, by `ServerId::index()`. Only
    /// meaningful while `inflight > 0`.
    touched_key: Vec<u64>,
    /// Touched servers per generation, ordered by (projected load as
    /// non-negative f64 bits, id) — the same total order `f64::total_cmp`
    /// then id gives. Together with the residency index this answers
    /// "least projected load in gen" without scanning the generation: the
    /// index covers untouched servers (their projected load *is* their
    /// resident load), these sets cover the rest.
    touched_by_gen: Vec<std::collections::BTreeSet<(u64, ServerId)>>,
    /// Consumed position in the sim index's residency dirty ring, used to
    /// re-key touched servers whose *resident* demand changed (a finish or
    /// migration mid-batch) so the set order stays equal to live projected
    /// load.
    dirty_cursor: u64,
}

impl Placer {
    /// Creates an empty placer.
    pub fn new() -> Self {
        Placer::default()
    }

    /// Grows the in-flight table to cover the cluster's servers and the
    /// per-generation touched sets to cover its generations.
    pub fn ensure_capacity(&mut self, view: &SimView<'_>) {
        let servers = view.cluster().servers.len();
        if self.inflight.len() < servers {
            self.inflight.resize(servers, 0);
            self.touched_key.resize(servers, 0);
        }
        let gens = view.cluster().catalog.ids().count();
        if self.touched_by_gen.len() < gens {
            self.touched_by_gen
                .resize_with(gens, std::collections::BTreeSet::new);
        }
    }

    /// Clears the in-flight book (queued placements were applied by the
    /// engine before the round boundary). Call once per `plan_round`.
    /// O(servers that took a placement), not O(servers).
    pub fn reset(&mut self) {
        for s in self.touched.drain(..) {
            self.inflight[s.index()] = 0;
        }
        for set in &mut self.touched_by_gen {
            set.clear();
        }
    }

    /// The (projected-load bits, id) ordering key of `server` given its
    /// current resident demand and in-flight placements.
    fn key_of(&self, view: &SimView<'_>, server: ServerId) -> u64 {
        let spec = view.cluster().server(server);
        let pending = self.inflight[server.index()];
        ((view.resident_demand(server) + pending) as f64 / spec.num_gpus as f64).to_bits()
    }

    /// Re-computes `server`'s key in its generation set after its resident
    /// demand changed. No-op for servers with no in-flight placements (they
    /// are not in any set).
    fn rekey(&mut self, view: &SimView<'_>, server: ServerId) {
        if self
            .inflight
            .get(server.index())
            .is_none_or(|&pending| pending == 0)
        {
            return;
        }
        let gen = view.cluster().server(server).gen;
        let set = &mut self.touched_by_gen[gen.index()];
        set.remove(&(self.touched_key[server.index()], server));
        let key = self.key_of(view, server);
        self.touched_key[server.index()] = key;
        self.touched_by_gen[gen.index()].insert((key, server));
    }

    /// Catches the touched-set keys up with residency changes (finishes and
    /// migrations land immediately, mid-batch) by draining the sim index's
    /// dirty ring. Amortized O(residency changes); on ring overflow every
    /// touched server is re-keyed.
    fn drain_dirty(&mut self, view: &SimView<'_>) {
        let seq = view.residency_dirty_seq();
        if seq == self.dirty_cursor {
            return;
        }
        match view.residency_dirty_since(self.dirty_cursor) {
            Some(dirty) => {
                // The iterator borrows the view, not the placer.
                let dirty: Vec<ServerId> = dirty.collect();
                for s in dirty {
                    self.rekey(view, s);
                }
            }
            None => {
                let touched = self.touched.clone();
                for s in touched {
                    self.rekey(view, s);
                }
            }
        }
        self.dirty_cursor = seq;
    }

    /// Records a placement issued this round, so later picks in the same
    /// round see the projected demand.
    pub fn note_placement(&mut self, view: &SimView<'_>, server: ServerId, gang: u32) {
        let i = server.index();
        let gen = view.cluster().server(server).gen;
        if self.inflight[i] > 0 {
            self.touched_by_gen[gen.index()].remove(&(self.touched_key[i], server));
        } else {
            self.touched.push(server);
        }
        self.inflight[i] += gang;
        let key = self.key_of(view, server);
        self.touched_key[i] = key;
        self.touched_by_gen[gen.index()].insert((key, server));
    }

    /// Server load including placements issued this round but not yet
    /// applied by the engine.
    pub fn projected_load(&self, view: &SimView<'_>, server: ServerId) -> f64 {
        let gpus = view.cluster().server(server).num_gpus;
        let pending = self.inflight.get(server.index()).copied().unwrap_or(0);
        (view.resident_demand(server) + pending) as f64 / gpus as f64
    }

    /// Least-(projected load, id) reachable server of `gen` that fits
    /// `gang`, via the residency index instead of a generation scan.
    ///
    /// `SimView::servers_by_load` iterates `gen`'s servers in exactly the
    /// (resident load by `f64::total_cmp`, id) order, and a server with no
    /// in-flight placements has a projected load bit-identical to its index
    /// key — so the first reachable fitting server with an empty in-flight
    /// slot is the minimum over all such servers. Touched servers are
    /// covered by their generation's key-ordered set (kept equal to live
    /// projected load by [`Self::drain_dirty`]), walked the same way. The
    /// winner is the minimum of the two — exactly
    /// [`Self::pick_least_loaded`]'s selection, in O(log touched + probe)
    /// instead of O(servers of the generation). Callers must `drain_dirty`
    /// first.
    fn pick_in_gen_indexed(
        &self,
        view: &SimView<'_>,
        gen: GenId,
        gang: u32,
    ) -> Option<(f64, ServerId)> {
        let mut best: Option<(f64, ServerId)> = None;
        for s in view.servers_by_load(gen) {
            if !view.is_reachable(s) || view.cluster().server(s).num_gpus < gang {
                continue;
            }
            if self.inflight.get(s.index()).copied().unwrap_or(0) > 0 {
                continue; // covered by the touched set below
            }
            best = Some((view.server_load(s), s));
            break;
        }
        if let Some(set) = self.touched_by_gen.get(gen.index()) {
            for &(key, s) in set {
                if !view.is_reachable(s) || view.cluster().server(s).num_gpus < gang {
                    continue;
                }
                let load = f64::from_bits(key);
                debug_assert_eq!(
                    load.to_bits(),
                    self.projected_load(view, s).to_bits(),
                    "stale touched key for {s}"
                );
                let better = match best {
                    None => true,
                    Some((bl, bid)) => load.total_cmp(&bl).then(s.cmp(&bid)).is_lt(),
                };
                if better {
                    best = Some((load, s));
                }
                break;
            }
        }
        best
    }

    /// Scores every server in `scope` that fits the gang by projected load
    /// and picks the minimum (ties to the lowest id). Returns the winner
    /// plus the provenance rows: fitting-server count, servers ruled out as
    /// too narrow, and the top-[`MAX_WHY_CANDIDATES`] candidates by score.
    pub fn pick_least_loaded<'a>(
        &self,
        view: &SimView<'_>,
        gang: u32,
        scope: impl Iterator<Item = &'a ServerSpec>,
        want_why: bool,
    ) -> (Option<ServerId>, u32, u32, Vec<Candidate>) {
        let mut too_narrow = 0u32;
        if !want_why {
            // Allocation-free fast path for untraced runs: the same
            // selection rule (least projected load, then lowest id), no
            // provenance materialized.
            let mut considered = 0u32;
            let mut best: Option<(f64, ServerId)> = None;
            for s in scope {
                if s.num_gpus < gang {
                    too_narrow += 1;
                    continue;
                }
                considered += 1;
                let load = self.projected_load(view, s.id);
                let better = match best {
                    None => true,
                    Some((bl, bid)) => load.total_cmp(&bl).then(s.id.cmp(&bid)).is_lt(),
                };
                if better {
                    best = Some((load, s.id));
                }
            }
            return (best.map(|(_, id)| id), considered, too_narrow, Vec::new());
        }
        // Scores stay as plain pairs until after truncation: formatting a
        // label per scanned server would put ~100 heap allocations on every
        // job arrival at the 1000-GPU scale.
        let mut scored: Vec<(f64, ServerId)> = Vec::new();
        for s in scope {
            if s.num_gpus < gang {
                too_narrow += 1;
                continue;
            }
            scored.push((self.projected_load(view, s.id), s.id));
        }
        let considered = scored.len() as u32;
        scored.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let best = scored.first().map(|&(_, id)| id);
        scored.truncate(MAX_WHY_CANDIDATES);
        let candidates = scored
            .into_iter()
            .map(|(load, id)| Candidate {
                label: format!("server:{}", id.index()),
                score: load,
            })
            .collect();
        (best, considered, too_narrow, candidates)
    }

    /// Picks a server for an arriving job: prefer the generation where the
    /// user has the most allocation slack under `ent`, then the least-loaded
    /// server of that generation that fits; fall back to least-loaded
    /// overall. Only reachable servers are considered — a placement sent to
    /// a partitioned server could not be delivered.
    ///
    /// Alongside the choice, returns the [`ChoiceWhy`] provenance the
    /// caller renders into a [`gfair_obs::TraceEvent::Decision`].
    pub fn choose_server_explained(
        &mut self,
        view: &SimView<'_>,
        ent: Option<&Entitlements>,
        user: UserId,
        gang: u32,
        want_why: bool,
    ) -> (Option<ServerId>, Option<ChoiceWhy>) {
        if !want_why {
            // The index-backed picks below read the touched-set keys; bring
            // them up to date with residency changes since the last pick.
            self.drain_dirty(view);
        }
        let mut rejected: Vec<Rejection> = Vec::new();
        if let Some(ent) = ent {
            let mut gens_without_slack = 0u32;
            let mut best_gen: Option<(GenId, f64)> = None;
            for gen in view.cluster().catalog.ids() {
                // The user's placed GPUs on this generation, from the
                // residency index (migrating jobs count toward their
                // destination, same as a scan over the user's jobs).
                let used = view.user_gen_assigned(user, gen) as f64;
                let slack = ent.get(user, gen) - used;
                if slack <= 0.0 {
                    gens_without_slack += 1;
                    continue;
                }
                if best_gen.map(|(_, s)| slack > s).unwrap_or(true) {
                    // Only generations with an online server wide enough
                    // for the gang. `servers_by_load` walks just this gen's
                    // servers (usually stopping at the first), not the
                    // whole cluster.
                    if view
                        .servers_by_load(gen)
                        .any(|s| view.is_reachable(s) && view.cluster().server(s).num_gpus >= gang)
                    {
                        best_gen = Some((gen, slack));
                    }
                }
            }
            if want_why && gens_without_slack > 0 {
                rejected.push(Rejection {
                    reason: "gen_without_slack".into(),
                    count: gens_without_slack,
                });
            }
            if let Some((gen, slack)) = best_gen {
                if !want_why {
                    // Index-backed pick: same server as the generation scan
                    // below, without walking the generation.
                    if let Some((_, server)) = self.pick_in_gen_indexed(view, gen, gang) {
                        return (Some(server), None);
                    }
                }
                let (target, considered, too_narrow, candidates) = self.pick_least_loaded(
                    view,
                    gang,
                    view.reachable_servers_of_gen(gen),
                    want_why,
                );
                if let Some(server) = target {
                    if !want_why {
                        return (Some(server), None);
                    }
                    if too_narrow > 0 {
                        rejected.push(Rejection {
                            reason: "gang_too_wide_for_server".into(),
                            count: too_narrow,
                        });
                    }
                    let why = ChoiceWhy {
                        chosen: format!(
                            "server:{} (gen:{} slack-first, slack {:.2})",
                            server.index(),
                            gen.index(),
                            slack
                        ),
                        tie_break: TIE_BREAK_LOAD,
                        considered,
                        candidates,
                        rejected,
                    };
                    return (Some(server), Some(why));
                }
            }
        }
        // Work conservation fallback: least-loaded fitting server anywhere.
        if !want_why {
            // Min over the per-generation index-backed picks — same winner
            // as a full reachable-cluster scan, in O(gens + placements this
            // round).
            let mut best: Option<(f64, ServerId)> = None;
            for gen in view.cluster().catalog.ids() {
                if let Some((load, s)) = self.pick_in_gen_indexed(view, gen, gang) {
                    let better = match best {
                        None => true,
                        Some((bl, bid)) => load.total_cmp(&bl).then(s.cmp(&bid)).is_lt(),
                    };
                    if better {
                        best = Some((load, s));
                    }
                }
            }
            return (best.map(|(_, s)| s), None);
        }
        let total = view.cluster().servers.len() as u32;
        let reachable = view.reachable_count();
        if total > reachable {
            rejected.push(Rejection {
                reason: "unreachable".into(),
                count: total - reachable,
            });
        }
        let (target, considered, too_narrow, candidates) =
            self.pick_least_loaded(view, gang, view.reachable_servers(), want_why);
        if too_narrow > 0 {
            rejected.push(Rejection {
                reason: "gang_too_wide_for_server".into(),
                count: too_narrow,
            });
        }
        let why = ChoiceWhy {
            chosen: match target {
                Some(s) => format!("server:{} (work-conserving fallback)", s.index()),
                None => "none (no reachable server fits)".to_string(),
            },
            tie_break: TIE_BREAK_LOAD,
            considered,
            candidates,
            rejected,
        };
        (target, Some(why))
    }
}
