//! The Gandiva_fair scheduler — the paper's primary contribution.
//!
//! [`GandivaFair`] is a cluster-wide, ticket-based fair-share scheduler for
//! gang-scheduled deep-learning jobs on heterogeneous GPU clusters. It
//! combines four mechanisms, each in its own module:
//!
//! * [`local`] — a per-server **split stride** scheduler (user-level
//!   fairness, then job-level) running gang-aware stride over the server's
//!   GPUs every quantum.
//! * [`profiler`] — transparent **throughput profiling**: noisy rate
//!   observations from the simulator are aggregated per model and
//!   generation, yielding the speedup estimates trading relies on.
//! * [`trade`] — the **resource trading** market: users whose jobs gain
//!   little from fast GPUs sell their fast-GPU entitlement for a larger
//!   slow-GPU entitlement at a price that leaves no participant worse off,
//!   raising cluster efficiency without weakening any fairness guarantee.
//! * [`balance`] — **migration-based load balancing**: jobs move (big jobs
//!   first) from overloaded to underloaded servers, realize trade outcomes
//!   by relocating jobs to the generations their owners are entitled to,
//!   and visit unprofiled generations so the profiler can learn.
//!
//! The central scheduler in [`central`] wires these into the
//! [`gfair_sim::ClusterScheduler`] interface.
//!
//! ## The policy boundary
//!
//! The machinery above is policy-agnostic: placement, per-server stride
//! planning, balancing and fast-forward live behind [`policy::AllocPolicy`]
//! — a per-epoch allocation rule — driven by the generic
//! [`PolicyScheduler`]. [`GandivaFair`] runs the paper's entitlement +
//! trading rule ([`TicketTrading`]) through the same shared planner;
//! alternative fairness formulations (Gavel-style water-filling,
//! Themis-style finish-time fairness) plug in from the `gfair-policies`
//! crate. See `POLICIES.md` at the repo root for the catalogue.

#![warn(missing_docs)]

pub mod balance;
pub mod central;
pub mod config;
pub mod entitlement;
pub mod inputs;
pub mod local;
mod placement;
mod planner;
pub mod policy;
mod pool;
pub mod profiler;
pub mod trade;

pub use central::GandivaFair;
pub use config::{GfairConfig, PolicyId};
pub use entitlement::Entitlements;
pub use inputs::PolicyInputs;
pub use policy::{AllocPolicy, PolicyRound, PolicyScheduler, TicketTrading};
pub use profiler::Profiler;
pub use trade::{run_market, Trade};
