//! Dense, reusable policy inputs.
//!
//! Every allocation epoch the driver must hand the policy the active users'
//! demand, per-generation speedup estimates and (for finish-time-fairness
//! policies) ρ̂. The original implementation collected fresh `BTreeMap`s from
//! full index scans on every refresh — an allocation and `O(n log n)`
//! rebuild whose cost grew with the whole cluster. [`PolicyInputs`] replaces
//! those maps with dense `UserId`-indexed vectors filled straight from the
//! engine's materialized cluster-index aggregates
//! ([`SimView::user_demands`], [`SimView::user_model_demands`]) into reused
//! buffers: no allocation after the first epoch, O(active) refresh cost, and
//! round-stamped validity so nothing is ever cleared.
//!
//! ## Determinism
//!
//! Fills iterate the same id-ordered aggregates in the same order as the
//! retained `BTreeMap` builders, so every float accumulation sequence — the
//! demand-weighted speedup fold, the per-user ρ̂ max — is bit-identical to
//! the from-scratch path. [`PolicyInputs::audit`] *is* that from-scratch
//! path: it rebuilds the maps and compares them against the dense state
//! bit-for-bit; the drivers run it after every refresh in debug builds, so
//! the whole test suite doubles as the differential oracle.

use crate::profiler::Profiler;
use gfair_sim::SimView;
use gfair_types::{GenId, SimTime, UserId};
use std::collections::BTreeMap;

/// Dense per-user inputs to an allocation policy, refreshed once per epoch
/// from the cluster-index aggregates and reused across epochs.
///
/// All vectors are indexed by [`UserId::index`]; an entry is valid only if
/// its stamp matches the current refresh epoch, so stale values from
/// previous epochs are unreachable without any clearing pass.
#[derive(Debug, Default)]
pub struct PolicyInputs {
    /// Generation count, cached at init.
    num_gens: usize,
    /// Per-user tickets, re-synced from the user table on every signature
    /// read (tickets can change mid-run via scheduled priority events; the
    /// user *set* is fixed, so the sync is a linear slice copy).
    tickets: Vec<u64>,
    /// Refresh counter; `stamp[u] == epoch` marks `demand`/`speedup` rows
    /// valid for this epoch.
    epoch: u32,
    stamp: Vec<u32>,
    /// Per-user total GPU demand (sum of active gang sizes).
    demand: Vec<f64>,
    /// Per-(user, generation) speedup estimates, `num_gens` slots per user;
    /// NaN encodes "unprofiled".
    speedup: Vec<f64>,
    /// Scratch for the demand-weighted speedup fold (weights and weighted
    /// sums per (user, generation) slot, stamped like the outputs).
    fold_stamp: Vec<u32>,
    fold_weight: Vec<f64>,
    fold_sum: Vec<f64>,
    /// ρ̂ state, stamped separately (only maintained for policies that ask).
    rho_epoch: u32,
    rho_stamp: Vec<u32>,
    rho: Vec<f64>,
}

impl PolicyInputs {
    /// Creates an empty input set; sized lazily by
    /// [`ensure_init`](Self::ensure_init).
    pub fn new() -> Self {
        PolicyInputs::default()
    }

    /// Sizes the buffers from the cluster and the user table. Idempotent;
    /// call once per scheduler init.
    pub fn ensure_init(&mut self, view: &SimView<'_>) {
        if !self.tickets.is_empty() {
            return;
        }
        self.num_gens = view.cluster().catalog.len();
        let num_users = view
            .users()
            .iter()
            .map(|u| u.id.index() + 1)
            .max()
            .unwrap_or(0);
        self.tickets = vec![1; num_users];
        for u in view.users() {
            self.tickets[u.id.index()] = u.tickets;
        }
        self.stamp = vec![0; num_users];
        self.demand = vec![0.0; num_users];
        self.speedup = vec![f64::NAN; num_users * self.num_gens];
        self.fold_stamp = vec![0; num_users * self.num_gens];
        self.fold_weight = vec![0.0; num_users * self.num_gens];
        self.fold_sum = vec![0.0; num_users * self.num_gens];
        self.rho_stamp = vec![0; num_users];
        self.rho = vec![1.0; num_users];
    }

    /// Number of GPU generations covered.
    pub fn num_gens(&self) -> usize {
        self.num_gens
    }

    /// The user's configured tickets (1 for unknown users).
    pub fn tickets(&self, user: UserId) -> u64 {
        self.tickets.get(user.index()).copied().unwrap_or(1)
    }

    /// The active-user signature: (user, tickets) for users with active
    /// jobs, in user-id order, read off the cluster index and the dense
    /// ticket table (no per-round map rebuild). The ticket table is
    /// re-synced from the user specs first — a linear copy — because
    /// scheduled priority events can change a user's tickets mid-run.
    pub fn active_signature(&mut self, view: &SimView<'_>) -> Vec<(UserId, u64)> {
        for u in view.users() {
            self.tickets[u.id.index()] = u.tickets;
        }
        view.active_users()
            .into_iter()
            .map(|u| (u, self.tickets(u)))
            .collect()
    }

    /// Total GPU demand of `user`'s active jobs this epoch (0.0 if the user
    /// was inactive at the last refresh).
    pub fn demand(&self, user: UserId) -> f64 {
        let i = user.index();
        if self.stamp.get(i) == Some(&self.epoch) {
            self.demand[i]
        } else {
            0.0
        }
    }

    /// The user's estimated speedup on generation `gen` relative to the
    /// base generation: `Some(1.0)` for the base generation itself, `None`
    /// where no active job of the user is profiled on `gen` (or the user
    /// was inactive at the last refresh).
    pub fn speedup(&self, user: UserId, gen: usize) -> Option<f64> {
        let i = user.index();
        if self.stamp.get(i) != Some(&self.epoch) {
            return None;
        }
        let s = self.speedup[i * self.num_gens + gen];
        if s.is_nan() {
            None
        } else {
            Some(s)
        }
    }

    /// The user's online finish-time-fairness estimate ρ̂ (worst active
    /// job), defaulting to 1.0 where not maintained.
    pub fn rho(&self, user: UserId) -> f64 {
        let i = user.index();
        if self.rho_stamp.get(i) == Some(&self.rho_epoch) {
            self.rho[i]
        } else {
            1.0
        }
    }

    /// Refreshes demand and speedups for the current active set from the
    /// cluster-index aggregates. O(active users × generations + distinct
    /// (user, model) pairs × generations); allocation-free after init.
    pub fn refresh(&mut self, view: &SimView<'_>, profiler: &Profiler) {
        debug_assert!(!self.tickets.is_empty() || view.users().is_empty());
        self.epoch = self.epoch.wrapping_add(1);
        let epoch = self.epoch;
        let gens = self.num_gens;
        // Demand straight off the per-user index aggregate; stamping here
        // marks the user's speedup row valid too (the fill below writes
        // every slot of every stamped row).
        for (u, d) in view.user_demands() {
            let i = u.index();
            self.stamp[i] = epoch;
            self.demand[i] = d as f64;
        }
        // Demand-weighted speedup fold over the (user, model) aggregates —
        // the same iteration order as the from-scratch builder, so the
        // float accumulation sequence per (user, generation) is identical.
        let base = GenId::new(0);
        for (user, model, demand) in view.user_model_demands() {
            let row = user.index() * gens;
            for g in 0..gens {
                let gen = GenId::new(g as u32);
                if let Some(s) = profiler.speedup(model, gen, base) {
                    let slot = row + g;
                    if self.fold_stamp[slot] != epoch {
                        self.fold_stamp[slot] = epoch;
                        self.fold_weight[slot] = 0.0;
                        self.fold_sum[slot] = 0.0;
                    }
                    self.fold_weight[slot] += demand as f64;
                    self.fold_sum[slot] += s * demand as f64;
                }
            }
        }
        for u in view.active_users() {
            let i = u.index();
            self.stamp[i] = epoch;
            let row = i * gens;
            self.speedup[row] = 1.0;
            for g in 1..gens {
                let slot = row + g;
                self.speedup[slot] =
                    if self.fold_stamp[slot] == epoch && self.fold_weight[slot] > 0.0 {
                        self.fold_sum[slot] / self.fold_weight[slot]
                    } else {
                        f64::NAN
                    };
            }
        }
    }

    /// Refreshes the online ρ̂ estimates: the worst ratio of time-in-system
    /// to attained service over each user's active jobs, quantum-smoothed
    /// so brand-new jobs start at ρ̂ = 1. `sched_micros` is the driver's
    /// integer-microsecond service ledger (indexed by `JobId::index`).
    pub fn refresh_rho(
        &mut self,
        view: &SimView<'_>,
        sched_micros: &[u64],
        quantum_micros: u64,
        now: SimTime,
    ) {
        self.rho_epoch = self.rho_epoch.wrapping_add(1);
        let epoch = self.rho_epoch;
        let q = quantum_micros;
        for j in view.active_jobs() {
            let attained = sched_micros.get(j.id.index()).copied().unwrap_or(0);
            let elapsed = now.as_micros().saturating_sub(j.arrival.as_micros());
            let r = (elapsed + q) as f64 / (attained + q) as f64;
            let i = j.user.index();
            if self.rho_stamp[i] != epoch {
                self.rho_stamp[i] = epoch;
                self.rho[i] = r;
            } else if r > self.rho[i] {
                self.rho[i] = r;
            }
        }
    }

    /// From-scratch audit oracle: rebuilds the demand / speedup (and, when
    /// `rho_ledger` is given, ρ̂) maps the way the original collectors did —
    /// full index scans into fresh `BTreeMap`s — and compares them against
    /// the dense state *bit-for-bit*. The drivers call this after every
    /// refresh in debug builds, so every test run differential-checks the
    /// incremental path. Returns a description of the first divergence.
    #[doc(hidden)]
    pub fn audit(
        &self,
        view: &SimView<'_>,
        profiler: &Profiler,
        rho_ledger: Option<(&[u64], u64, SimTime)>,
    ) -> Result<(), String> {
        let demand_oracle = oracle_demands(view);
        let mut stamped = 0usize;
        for (i, &s) in self.stamp.iter().enumerate() {
            if s == self.epoch {
                stamped += 1;
                let u = UserId::new(i as u32);
                let want = demand_oracle
                    .get(&u)
                    .ok_or_else(|| format!("user {u}: stamped but absent from oracle"))?;
                if want.to_bits() != self.demand[i].to_bits() {
                    return Err(format!(
                        "user {u}: demand {} != oracle {want}",
                        self.demand[i]
                    ));
                }
            }
        }
        if stamped != demand_oracle.len() {
            return Err(format!(
                "stamped {stamped} users, oracle has {}",
                demand_oracle.len()
            ));
        }
        let speedup_oracle = oracle_user_speedups(profiler, view);
        for (u, row) in &speedup_oracle {
            for (g, want) in row.iter().enumerate() {
                let got = self.speedup(*u, g);
                let same = match (got, want) {
                    (None, None) => true,
                    (Some(a), Some(b)) => a.to_bits() == b.to_bits(),
                    _ => false,
                };
                if !same {
                    return Err(format!(
                        "user {u} gen {g}: speedup {got:?} != oracle {want:?}"
                    ));
                }
            }
        }
        if let Some((sched_micros, q, now)) = rho_ledger {
            let rho_oracle = oracle_rho(view, sched_micros, q, now);
            let mut rho_stamped = 0usize;
            for (i, &s) in self.rho_stamp.iter().enumerate() {
                if s == self.rho_epoch {
                    rho_stamped += 1;
                    let u = UserId::new(i as u32);
                    let want = rho_oracle
                        .get(&u)
                        .ok_or_else(|| format!("user {u}: rho stamped but absent from oracle"))?;
                    if want.to_bits() != self.rho[i].to_bits() {
                        return Err(format!("user {u}: rho {} != oracle {want}", self.rho[i]));
                    }
                }
            }
            if rho_stamped != rho_oracle.len() {
                return Err(format!(
                    "rho stamped {rho_stamped} users, oracle has {}",
                    rho_oracle.len()
                ));
            }
        }
        Ok(())
    }

    /// Builds inputs directly from explicit per-user maps. This is the unit
    /// tests' constructor (the market proptests feed synthetic instances);
    /// production code fills from the cluster index via
    /// [`refresh`](Self::refresh).
    #[doc(hidden)]
    pub fn from_maps(
        num_gens: usize,
        demands: &BTreeMap<UserId, f64>,
        speedups: &BTreeMap<UserId, Vec<Option<f64>>>,
        rho: &BTreeMap<UserId, f64>,
    ) -> Self {
        let num_users = demands
            .keys()
            .chain(speedups.keys())
            .chain(rho.keys())
            .map(|u| u.index() + 1)
            .max()
            .unwrap_or(0);
        let mut inputs = PolicyInputs {
            num_gens,
            tickets: vec![1; num_users],
            epoch: 1,
            stamp: vec![0; num_users],
            demand: vec![0.0; num_users],
            speedup: vec![f64::NAN; num_users * num_gens],
            fold_stamp: Vec::new(),
            fold_weight: Vec::new(),
            fold_sum: Vec::new(),
            rho_epoch: 1,
            rho_stamp: vec![0; num_users],
            rho: vec![1.0; num_users],
        };
        for (u, d) in demands {
            inputs.stamp[u.index()] = 1;
            inputs.demand[u.index()] = *d;
        }
        for (u, row) in speedups {
            inputs.stamp[u.index()] = 1;
            for (g, s) in row.iter().enumerate() {
                inputs.speedup[u.index() * num_gens + g] = s.unwrap_or(f64::NAN);
            }
        }
        for (u, r) in rho {
            inputs.rho_stamp[u.index()] = 1;
            inputs.rho[u.index()] = *r;
        }
        inputs
    }
}

/// From-scratch per-user demand map — the audit oracle's reference
/// implementation (this was the production collector before the dense
/// refresh).
pub(crate) fn oracle_demands(view: &SimView<'_>) -> BTreeMap<UserId, f64> {
    view.user_demands().map(|(u, d)| (u, d as f64)).collect()
}

/// From-scratch per-user, per-generation speedup map: the demand-weighted
/// mean of the profiled speedups of the user's active jobs' models, `None`
/// where no job of the user is profiled on that generation. The audit
/// oracle's reference implementation.
pub(crate) fn oracle_user_speedups(
    profiler: &Profiler,
    view: &SimView<'_>,
) -> BTreeMap<UserId, Vec<Option<f64>>> {
    let base = GenId::new(0);
    let num_gens = view.cluster().catalog.len();
    let mut weights: BTreeMap<(UserId, usize), f64> = BTreeMap::new();
    let mut sums: BTreeMap<(UserId, usize), f64> = BTreeMap::new();
    for (user, model, demand) in view.user_model_demands() {
        for g in 0..num_gens {
            let gen = GenId::new(g as u32);
            if let Some(s) = profiler.speedup(model, gen, base) {
                *weights.entry((user, g)).or_insert(0.0) += demand as f64;
                *sums.entry((user, g)).or_insert(0.0) += s * demand as f64;
            }
        }
    }
    let mut out: BTreeMap<UserId, Vec<Option<f64>>> = BTreeMap::new();
    for u in view.active_users() {
        let mut row = vec![None; num_gens];
        row[0] = Some(1.0);
        for (g, slot) in row.iter_mut().enumerate().skip(1) {
            if let (Some(&w), Some(&s)) = (weights.get(&(u, g)), sums.get(&(u, g))) {
                if w > 0.0 {
                    *slot = Some(s / w);
                }
            }
        }
        out.insert(u, row);
    }
    out
}

/// From-scratch per-user ρ̂ map — the audit oracle's reference
/// implementation of the online finish-time-fairness estimate.
pub(crate) fn oracle_rho(
    view: &SimView<'_>,
    sched_micros: &[u64],
    quantum_micros: u64,
    now: SimTime,
) -> BTreeMap<UserId, f64> {
    let q = quantum_micros;
    let mut rho: BTreeMap<UserId, f64> = BTreeMap::new();
    for j in view.active_jobs() {
        let attained = sched_micros.get(j.id.index()).copied().unwrap_or(0);
        let elapsed = now.as_micros().saturating_sub(j.arrival.as_micros());
        let r = (elapsed + q) as f64 / (attained + q) as f64;
        rho.entry(j.user)
            .and_modify(|m| {
                if r > *m {
                    *m = r;
                }
            })
            .or_insert(r);
    }
    rho
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(i: u32) -> UserId {
        UserId::new(i)
    }

    #[test]
    fn from_maps_round_trips_accessors() {
        let demands = BTreeMap::from([(u(0), 4.0), (u(2), 7.0)]);
        let speedups = BTreeMap::from([
            (u(0), vec![Some(1.0), Some(2.5)]),
            (u(2), vec![Some(1.0), None]),
        ]);
        let rho = BTreeMap::from([(u(2), 3.5)]);
        let inputs = PolicyInputs::from_maps(2, &demands, &speedups, &rho);
        assert_eq!(inputs.demand(u(0)), 4.0);
        assert_eq!(inputs.demand(u(1)), 0.0, "unstamped user has no demand");
        assert_eq!(inputs.demand(u(2)), 7.0);
        assert_eq!(inputs.speedup(u(0), 1), Some(2.5));
        assert_eq!(inputs.speedup(u(2), 1), None, "unprofiled slot is None");
        assert_eq!(inputs.speedup(u(1), 0), None, "unknown user has no row");
        assert_eq!(inputs.rho(u(2)), 3.5);
        assert_eq!(inputs.rho(u(0)), 1.0, "rho defaults to 1.0");
    }

    #[test]
    fn stale_epochs_are_unreachable() {
        let demands = BTreeMap::from([(u(0), 4.0)]);
        let mut inputs = PolicyInputs::from_maps(1, &demands, &BTreeMap::new(), &BTreeMap::new());
        assert_eq!(inputs.demand(u(0)), 4.0);
        // A new epoch invalidates every row without clearing anything.
        inputs.epoch = inputs.epoch.wrapping_add(1);
        assert_eq!(inputs.demand(u(0)), 0.0);
        assert_eq!(inputs.speedup(u(0), 0), None);
    }
}
