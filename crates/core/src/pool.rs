//! A persistent worker pool for per-round planning fan-out.
//!
//! `plan_round` parallelizes per-server sync+plan across workers every
//! quantum. Spawning fresh OS threads each round (`std::thread::scope`)
//! costs more than the planning work itself at benchmark scale — hundreds
//! of microseconds per round just in spawn/join. This pool keeps the
//! workers parked on channels across rounds and hands them borrowed
//! closures per round.
//!
//! The closures borrow round-local state (`SimView`, weight caches, the
//! local schedulers), so they are not `'static`; the lifetime erasure in
//! [`WorkerPool::run`] is sound because `run` does not return until every
//! submitted task has signalled completion — the borrows strictly outlive
//! task execution, exactly as with a scoped spawn.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;

/// A lifetime-erased task. Tasks handed to workers are semantically scoped:
/// [`WorkerPool::run`] joins them all before returning.
type Task = Box<dyn FnOnce() + Send>;

/// Long-lived planning workers, one channel each.
pub(crate) struct WorkerPool {
    task_txs: Vec<Sender<Task>>,
    done_rx: Receiver<bool>,
    handles: Vec<JoinHandle<()>>,
}

impl fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.task_txs.len())
            .finish()
    }
}

impl WorkerPool {
    /// Starts `size` parked worker threads.
    pub fn new(size: usize) -> Self {
        let (done_tx, done_rx) = channel();
        let mut task_txs = Vec::with_capacity(size);
        let mut handles = Vec::with_capacity(size);
        for _ in 0..size {
            let (tx, rx) = channel::<Task>();
            let done = done_tx.clone();
            handles.push(std::thread::spawn(move || {
                for task in rx {
                    // A panicking task must still signal completion, or
                    // `run` would deadlock waiting for its slot.
                    let ok = catch_unwind(AssertUnwindSafe(task)).is_ok();
                    if done.send(ok).is_err() {
                        break;
                    }
                }
            }));
            task_txs.push(tx);
        }
        WorkerPool {
            task_txs,
            done_rx,
            handles,
        }
    }

    /// Number of workers.
    pub fn size(&self) -> usize {
        self.task_txs.len()
    }

    /// Runs `tasks` (at most one per worker), blocking until every task has
    /// completed. Propagates a panic if any task panicked.
    pub fn run<'env>(&self, tasks: Vec<Box<dyn FnOnce() + Send + 'env>>) {
        assert!(
            tasks.len() <= self.task_txs.len(),
            "more tasks than workers"
        );
        let n = tasks.len();
        for (task, tx) in tasks.into_iter().zip(&self.task_txs) {
            // SAFETY: only the lifetime is erased; the fat-pointer layout is
            // identical. The completion loop below blocks until all `n`
            // tasks have run, and a worker drops each task within its
            // `run()` call, so no `'env` borrow escapes this function —
            // the same guarantee `std::thread::scope` provides.
            let task: Task =
                unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Task>(task) };
            tx.send(task).expect("planning worker alive");
        }
        let mut panicked = false;
        for _ in 0..n {
            panicked |= !self.done_rx.recv().expect("planning worker alive");
        }
        if panicked {
            panic!("planning worker panicked");
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Disconnecting the channels ends each worker's receive loop.
        self.task_txs.clear();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn runs_borrowed_tasks_to_completion() {
        let pool = WorkerPool::new(4);
        let mut out = vec![0u32; 4];
        let counter = AtomicU32::new(0);
        {
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = out
                .iter_mut()
                .enumerate()
                .map(|(i, slot)| {
                    let counter = &counter;
                    Box::new(move || {
                        *slot = i as u32 + 1;
                        counter.fetch_add(1, Ordering::SeqCst);
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            pool.run(tasks);
        }
        assert_eq!(out, vec![1, 2, 3, 4]);
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn pool_is_reusable_across_rounds() {
        let pool = WorkerPool::new(2);
        for round in 0..100u32 {
            let mut a = 0u32;
            let mut b = 0u32;
            pool.run(vec![Box::new(|| a = round), Box::new(|| b = round + 1)]);
            assert_eq!((a, b), (round, round + 1));
        }
    }

    #[test]
    fn task_panic_propagates_and_pool_survives() {
        let pool = WorkerPool::new(2);
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(vec![Box::new(|| panic!("boom")), Box::new(|| {})]);
        }));
        assert!(r.is_err());
        // The pool is still usable afterwards.
        let mut x = 0u32;
        pool.run(vec![Box::new(|| x = 7)]);
        assert_eq!(x, 7);
    }
}
