//! Per-server local scheduler.
//!
//! Each server runs an independent split-stride instance over its GPUs. The
//! central scheduler keeps it in sync with the simulator's residency view
//! once per round (jobs appear when placed or after migration, disappear on
//! completion or when migrated away) and feeds it the user weights derived
//! from the post-trade entitlements for the server's generation.

use gfair_sim::SimView;
use gfair_stride::{GangPolicy, SplitStride};
use gfair_types::{JobId, ServerId, UserId};
use std::collections::BTreeSet;

/// The time-slicing scheduler of one server.
#[derive(Debug, Clone)]
pub struct LocalScheduler {
    server: ServerId,
    split: SplitStride<UserId, JobId>,
    /// Scratch buffers reused across rounds by [`sync`](Self::sync): sorted
    /// target residency, current membership, and present users. `sync` runs
    /// once per server per quantum, so retaining capacity here removes three
    /// heap allocations per server from every round.
    desired: Vec<JobId>,
    present: Vec<JobId>,
    user_scratch: Vec<UserId>,
    /// Residency version (see [`SimView::residency_version`]) this scheduler
    /// last fully synchronized against, when that sync is known to have left
    /// membership equal to the server's resident set (no departing jobs were
    /// excluded). `None` forces the next [`sync`](Self::sync) down the full
    /// path.
    synced_version: Option<u64>,
}

impl LocalScheduler {
    /// Creates the local scheduler for `server` with `capacity` GPUs.
    pub fn new(server: ServerId, capacity: u32, policy: GangPolicy) -> Self {
        LocalScheduler {
            server,
            split: SplitStride::new(capacity, policy),
            desired: Vec::new(),
            present: Vec::new(),
            user_scratch: Vec::new(),
            synced_version: None,
        }
    }

    /// The server this scheduler owns.
    pub fn server(&self) -> ServerId {
        self.server
    }

    /// Number of jobs currently registered.
    pub fn num_jobs(&self) -> usize {
        self.split.num_jobs()
    }

    /// Ids of the jobs currently registered, in iteration order of the
    /// underlying split-stride instance. Used by the post-partition
    /// reconciliation to diff the local scheduler's membership against the
    /// cluster's ground-truth residency.
    pub fn jobs(&self) -> impl Iterator<Item = JobId> + '_ {
        self.split.jobs()
    }

    /// Synchronizes membership with the simulator's residency view and
    /// applies per-user `weights`, excluding `departing` jobs (ones the
    /// central scheduler decided to migrate away this round).
    ///
    /// `weights_dirty` tells the scheduler whether any user weight may have
    /// changed since the previous sync. When weights are clean, no job is
    /// departing, and the server's residency version is unchanged, the whole
    /// sync is a no-op by construction — membership and weights would both
    /// be re-derived to exactly their current values — so it returns
    /// immediately. This fast path carries most rounds at scale: only the
    /// few servers an arrival, finish or migration touched re-derive.
    pub fn sync(
        &mut self,
        view: &SimView<'_>,
        departing: &BTreeSet<JobId>,
        mut weight_of: impl FnMut(UserId) -> f64,
        weights_dirty: bool,
    ) {
        let version = view.residency_version(self.server);
        if !weights_dirty && departing.is_empty() && self.synced_version == Some(version) {
            return;
        }
        // Sorted target residency in the reusable scratch buffer: the same
        // iteration order the former BTreeSet gave, without rebuilding a
        // node-based set every round.
        let desired = &mut self.desired;
        desired.clear();
        desired.extend(
            view.resident(self.server)
                .filter(|j| !departing.contains(j)),
        );
        desired.sort_unstable();
        // Drop jobs that left (finished or migrated away).
        let present = &mut self.present;
        present.clear();
        present.extend(self.split.jobs());
        for &j in present.iter() {
            if desired.binary_search(&j).is_err() {
                self.split.remove_job(j);
            }
        }
        // Add newcomers, in id order.
        for &j in desired.iter() {
            if self.split.user_of(j).is_some() {
                continue;
            }
            let info = view.job(j).expect("resident job is known");
            let w = weight_of(info.user);
            self.split.set_user_weight(info.user, w.max(1e-6));
            self.split.add_job(info.user, j, info.gang);
        }
        // Refresh weights of all present users (entitlements may have moved).
        let users = &mut self.user_scratch;
        users.clear();
        users.extend(self.split.users());
        for &u in users.iter() {
            self.split.set_user_weight(u, weight_of(u).max(1e-6));
        }
        // With departing jobs excluded, membership differs from the resident
        // set, so the version cannot vouch for this state next round.
        self.synced_version = departing.is_empty().then_some(version);
    }

    /// Plans one quantum, returning the jobs to run on this server.
    pub fn plan(&mut self) -> Vec<JobId> {
        self.split.plan_round().selected
    }

    /// How many consecutive quanta (up to `k`) this server would reproduce
    /// `expected` — the selection the cached round plan holds for it —
    /// verbatim, assuming residency and weights stay untouched. `0` declines.
    /// Delegates to the underlying split-stride instance, which checks the
    /// scan order differentially per replayed quantum.
    pub fn quiescent_rounds(&self, expected: &[JobId], k: u64) -> u64 {
        self.split.quiescent_rounds(expected, k)
    }

    /// Advances stride state by `j` quanta in one step, exactly as if
    /// [`plan`](Self::plan) had run `j` more times with unchanged inputs.
    pub fn fast_forward(&mut self, j: u64) {
        self.split.fast_forward(j);
    }

    /// The user's effective stride pass on this server (minimum pass among
    /// their jobs here), if they have any.
    pub fn user_pass(&self, user: UserId) -> Option<f64> {
        self.split.user_pass(user)
    }

    /// Calls `f(user, pass)` for every user with jobs on this server, in
    /// user-id order, with the same pass [`user_pass`](Self::user_pass)
    /// reports.
    pub fn for_each_user_pass(&self, f: impl FnMut(UserId, f64)) {
        self.split.for_each_user_pass(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfair_sim::{Action, ClusterScheduler, RoundPlan, SimView, Simulation};
    use gfair_types::{ClusterSpec, JobSpec, ModelProfile, SimConfig, SimTime, UserSpec};
    use std::sync::Arc;

    /// A scheduler wrapping one LocalScheduler, used to exercise sync()
    /// against a real engine view.
    struct OneServer {
        local: LocalScheduler,
        weights: Vec<(UserId, f64)>,
    }

    impl ClusterScheduler for OneServer {
        fn name(&self) -> &'static str {
            "one-server"
        }
        fn on_job_arrival(&mut self, _v: &SimView<'_>, job: JobId) -> Vec<Action> {
            vec![Action::Place {
                job,
                server: ServerId::new(0),
            }]
        }
        fn plan_round(&mut self, view: &SimView<'_>) -> RoundPlan {
            let weights = self.weights.clone();
            self.local.sync(
                view,
                &BTreeSet::new(),
                |u| {
                    weights
                        .iter()
                        .find(|(w, _)| *w == u)
                        .map(|(_, w)| *w)
                        .unwrap_or(1.0)
                },
                true,
            );
            let mut plan = RoundPlan::empty();
            for j in self.local.plan() {
                plan.run_on(ServerId::new(0), j);
            }
            plan
        }
    }

    #[test]
    fn local_scheduler_tracks_residency_and_weights() {
        let model = Arc::new(ModelProfile::with_default_overheads("m", vec![1.0]));
        let users = UserSpec::equal_users(2, 100);
        // Two 1-GPU jobs on a 1-GPU server: weights 3:1 split rounds 3:1.
        let trace = vec![
            JobSpec::new(
                JobId::new(0),
                UserId::new(0),
                Arc::clone(&model),
                1,
                1800.0,
                SimTime::ZERO,
            ),
            JobSpec::new(
                JobId::new(1),
                UserId::new(1),
                Arc::clone(&model),
                1,
                600.0,
                SimTime::ZERO,
            ),
        ];
        let sim = Simulation::new(
            ClusterSpec::homogeneous(1, 1),
            users,
            trace,
            SimConfig::default(),
        )
        .unwrap();
        let mut sched = OneServer {
            local: LocalScheduler::new(ServerId::new(0), 1, GangPolicy::GangAware),
            weights: vec![(UserId::new(0), 300.0), (UserId::new(1), 100.0)],
        };
        let report = sim.run(&mut sched).unwrap();
        // User 0 holds 3x the weight: while both are active user 1 gets 25%
        // of rounds, so its 600 s of work take ~2400 s.
        let f1 = report.jobs[&JobId::new(1)].finish.unwrap().as_secs_f64();
        assert!(
            (f1 - 2400.0).abs() <= 120.0,
            "weighted split off: user1 finished at {f1}"
        );
        // All jobs completed and the local scheduler emptied out.
        assert_eq!(report.finished_jobs(), 2);
        assert_eq!(sched.local.num_jobs(), 0);
    }

    #[test]
    fn departing_jobs_are_excluded_from_plans() {
        // Covered end-to-end by the central scheduler tests; here check the
        // basic set arithmetic via a plain sync call pattern: a job listed
        // as departing never appears in a plan.
        // (Direct construction of SimView is engine-internal, so this is a
        // compile-level guarantee exercised by central.rs tests.)
        let local = LocalScheduler::new(ServerId::new(3), 4, GangPolicy::GangAware);
        assert_eq!(local.server(), ServerId::new(3));
        assert_eq!(local.num_jobs(), 0);
    }
}
