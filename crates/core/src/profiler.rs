//! Transparent throughput profiling.
//!
//! Gandiva_fair never asks users how fast their jobs are: it observes
//! minibatch throughput while jobs run and, when a job has run on more than
//! one GPU generation, derives its speedup. The simulator feeds this module
//! with noisy [`gfair_sim::ProfileReport`]s; estimates are aggregated **per
//! model name** — throughput is a property of the model/config, so sharing
//! estimates across a model's jobs converges much faster than per-job
//! profiling and matches how production schedulers cache profiles.

use gfair_types::GenId;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Running mean of rate observations for one (model, generation) pair.
#[derive(Debug, Clone, Copy, Default)]
struct RateEstimate {
    sum: f64,
    count: u64,
}

impl RateEstimate {
    fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum / self.count as f64)
        }
    }
}

/// Aggregates rate observations into per-model speedup estimates.
#[derive(Debug, Clone)]
pub struct Profiler {
    num_gens: usize,
    min_samples: u64,
    estimates: BTreeMap<Arc<str>, Vec<RateEstimate>>,
}

impl Profiler {
    /// Creates a profiler for a catalog with `num_gens` generations,
    /// treating an estimate as trustworthy after `min_samples` observations.
    ///
    /// # Panics
    ///
    /// Panics if `num_gens` is zero or `min_samples` is zero.
    pub fn new(num_gens: usize, min_samples: u64) -> Self {
        assert!(num_gens > 0, "need at least one generation");
        assert!(min_samples > 0, "need at least one sample");
        Profiler {
            num_gens,
            min_samples,
            estimates: BTreeMap::new(),
        }
    }

    /// Records one rate observation for `model` on `gen`. Returns `true`
    /// exactly when this observation pushes the estimate over the sample
    /// threshold — i.e. the profile was just inferred — so callers can emit
    /// a single convergence notification per (model, generation).
    ///
    /// # Panics
    ///
    /// Panics if `gen` is out of range or `rate` is not positive and finite.
    pub fn record(&mut self, model: &Arc<str>, gen: GenId, rate: f64) -> bool {
        assert!(gen.index() < self.num_gens, "generation out of range");
        assert!(
            rate.is_finite() && rate > 0.0,
            "observed rate must be positive and finite, got {rate}"
        );
        let slots = self
            .estimates
            .entry(Arc::clone(model))
            .or_insert_with(|| vec![RateEstimate::default(); self.num_gens]);
        let e = &mut slots[gen.index()];
        e.sum += rate;
        e.count += 1;
        e.count == self.min_samples
    }

    /// Mean observed rate of `model` on `gen`, if any observation exists.
    pub fn rate(&self, model: &str, gen: GenId) -> Option<f64> {
        self.estimates.get(model)?.get(gen.index())?.mean()
    }

    /// Number of observations for `model` on `gen`.
    pub fn samples(&self, model: &str, gen: GenId) -> u64 {
        self.estimates
            .get(model)
            .and_then(|s| s.get(gen.index()))
            .map(|e| e.count)
            .unwrap_or(0)
    }

    /// True when the (model, generation) estimate has reached the sample
    /// threshold.
    pub fn is_profiled(&self, model: &str, gen: GenId) -> bool {
        self.samples(model, gen) >= self.min_samples
    }

    /// Estimated speedup of `model` on `gen` relative to `base`.
    ///
    /// Returns `None` unless both generations are profiled — the trading
    /// engine never trades on guesses.
    pub fn speedup(&self, model: &str, gen: GenId, base: GenId) -> Option<f64> {
        if !self.is_profiled(model, gen) || !self.is_profiled(model, base) {
            return None;
        }
        Some(self.rate(model, gen)? / self.rate(model, base)?)
    }

    /// Generations on which `model` has not yet reached the sample
    /// threshold, in id order.
    pub fn unprofiled_gens(&self, model: &str) -> Vec<GenId> {
        (0..self.num_gens as u32)
            .map(GenId::new)
            .filter(|&g| !self.is_profiled(model, g))
            .collect()
    }

    /// Number of models with at least one observation.
    pub fn num_models(&self) -> usize {
        self.estimates.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: &str) -> Arc<str> {
        Arc::from(s)
    }

    #[test]
    fn estimates_average_observations() {
        let mut p = Profiler::new(3, 1);
        let m = name("ResNet-50");
        p.record(&m, GenId::new(0), 0.9);
        p.record(&m, GenId::new(0), 1.1);
        assert!((p.rate("ResNet-50", GenId::new(0)).unwrap() - 1.0).abs() < 1e-12);
        assert_eq!(p.samples("ResNet-50", GenId::new(0)), 2);
    }

    #[test]
    fn speedup_requires_both_gens_profiled() {
        let mut p = Profiler::new(3, 1);
        let m = name("GRU");
        p.record(&m, GenId::new(2), 2.0);
        assert_eq!(p.speedup("GRU", GenId::new(2), GenId::new(0)), None);
        p.record(&m, GenId::new(0), 1.0);
        let s = p.speedup("GRU", GenId::new(2), GenId::new(0)).unwrap();
        assert!((s - 2.0).abs() < 1e-12);
    }

    #[test]
    fn min_samples_gate() {
        let mut p = Profiler::new(2, 3);
        let m = name("VAE");
        p.record(&m, GenId::new(0), 1.0);
        p.record(&m, GenId::new(0), 1.0);
        assert!(!p.is_profiled("VAE", GenId::new(0)));
        p.record(&m, GenId::new(0), 1.0);
        assert!(p.is_profiled("VAE", GenId::new(0)));
    }

    #[test]
    fn record_signals_convergence_exactly_once_per_gen() {
        let mut p = Profiler::new(2, 3);
        let m = name("BERT");
        assert!(!p.record(&m, GenId::new(0), 1.0));
        assert!(!p.record(&m, GenId::new(0), 1.0));
        // The min_samples-th observation crosses the threshold...
        assert!(p.record(&m, GenId::new(0), 1.0));
        // ...and further observations refine the estimate silently.
        assert!(!p.record(&m, GenId::new(0), 1.0));
        // Each generation converges independently.
        assert!(!p.record(&m, GenId::new(1), 2.0));
        assert!(!p.record(&m, GenId::new(1), 2.0));
        assert!(p.record(&m, GenId::new(1), 2.0));
    }

    #[test]
    fn unprofiled_gens_shrink_as_data_arrives() {
        let mut p = Profiler::new(3, 1);
        let m = name("LSTM");
        assert_eq!(
            p.unprofiled_gens("LSTM"),
            vec![GenId::new(0), GenId::new(1), GenId::new(2)]
        );
        p.record(&m, GenId::new(1), 1.4);
        assert_eq!(
            p.unprofiled_gens("LSTM"),
            vec![GenId::new(0), GenId::new(2)]
        );
    }

    #[test]
    fn unknown_model_has_no_estimates() {
        let p = Profiler::new(2, 1);
        assert_eq!(p.rate("nope", GenId::new(0)), None);
        assert_eq!(p.samples("nope", GenId::new(1)), 0);
        assert!(!p.is_profiled("nope", GenId::new(0)));
        assert_eq!(p.num_models(), 0);
    }

    #[test]
    fn estimates_are_shared_across_jobs_of_a_model() {
        // Two jobs of the same model contribute to one estimate.
        let mut p = Profiler::new(2, 2);
        let m1 = name("BERT-Base");
        let m2 = name("BERT-Base");
        p.record(&m1, GenId::new(0), 1.0);
        p.record(&m2, GenId::new(0), 1.0);
        assert!(p.is_profiled("BERT-Base", GenId::new(0)));
        assert_eq!(p.num_models(), 1);
    }

    #[test]
    #[should_panic(expected = "generation out of range")]
    fn out_of_range_gen_panics() {
        let mut p = Profiler::new(2, 1);
        p.record(&name("m"), GenId::new(5), 1.0);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn bad_rate_panics() {
        let mut p = Profiler::new(2, 1);
        p.record(&name("m"), GenId::new(0), 0.0);
    }

    #[test]
    fn noisy_observations_converge_to_truth() {
        let mut p = Profiler::new(2, 1);
        let m = name("DCGAN");
        // Symmetric noise around 2.1.
        for i in 0..100 {
            let eps = ((i % 11) as f64 - 5.0) / 100.0;
            p.record(&m, GenId::new(1), 2.1 * (1.0 + eps));
            p.record(&m, GenId::new(0), 1.0 * (1.0 - eps));
        }
        let s = p.speedup("DCGAN", GenId::new(1), GenId::new(0)).unwrap();
        assert!((s - 2.1).abs() < 0.05, "estimate {s}");
    }
}
