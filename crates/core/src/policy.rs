//! The policy boundary: pluggable per-epoch allocation behind a shared
//! round driver.
//!
//! Everything the schedulers in this workspace disagree about fits in one
//! question: *given the active users, their demand, their estimated
//! per-generation speedups and (optionally) their finish-time-fairness ρ,
//! how many GPUs of each generation is each user entitled to right now?*
//! [`AllocPolicy`] is exactly that question; everything else — placement,
//! per-server stride planning, migration-based balancing, degraded-mode
//! handling, fast-forward — is common machinery provided by
//! [`PolicyScheduler`] (the generic driver) on top of the shared
//! `RoundPlanner` and `Placer` internals.
//!
//! ## Determinism obligations
//!
//! An [`AllocPolicy`] implementation must be a pure function of the
//! [`PolicyRound`] inputs plus its own deterministic state: no wall-clock,
//! no ambient randomness, no iteration over unordered containers. The
//! driver guarantees the inputs themselves are deterministic (id-ordered
//! maps, integer-microsecond ρ accounting), so policy output — and with it
//! the whole trace — is byte-identical across planning worker counts and
//! fast-forward settings.
//!
//! ## Fast-forward opt-in
//!
//! [`AllocPolicy::fast_forward_ok`] defaults to `false`: a policy must
//! explicitly declare that replaying a cached plan across quiescent quanta
//! cannot change its future decisions. Opting in is sound iff the policy's
//! allocation depends only on inputs the driver refreshes at epoch
//! boundaries — the driver never fast-forwards across an epoch boundary,
//! a pending job, or a due balancing pass.

use crate::balance::plan_migrations_traced;
use crate::config::GfairConfig;
use crate::entitlement::Entitlements;
use crate::inputs::PolicyInputs;
use crate::placement::Placer;
use crate::planner::RoundPlanner;
use crate::profiler::Profiler;
use crate::trade::{run_market_traced, Trade};
use gfair_obs::{Obs, SharedObs, TraceEvent, UserShare};
use gfair_sim::{Action, ClusterScheduler, ProfileReport, RoundPlan, SimView};
use gfair_types::{JobId, MigrationFailReason, ServerId, SimConfig, SimDuration, SimTime, UserId};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Feeds a profile observation into the estimator, announcing the inferred
/// rate once per (model, generation) when the estimate first crosses the
/// sample threshold.
pub(crate) fn record_profile_report(
    profiler: &mut Profiler,
    obs: &SharedObs,
    view: &SimView<'_>,
    report: &ProfileReport,
) {
    if let Some(info) = view.job(report.job) {
        let converged = profiler.record(&info.model, report.gen, report.rate);
        if converged {
            // The estimate just crossed the sample threshold: announce
            // the inferred rate once per (model, generation).
            obs.emit(TraceEvent::ProfileInferred {
                t: view.now(),
                model: info.model.to_string(),
                gen: report.gen,
                rate: profiler
                    .rate(&info.model, report.gen)
                    .expect("just recorded"),
                samples: profiler.samples(&info.model, report.gen),
            });
        }
    }
}

/// Everything an allocation policy may consult for one epoch decision.
///
/// The `active` slice is id-ordered and the [`PolicyInputs`] accessors are
/// pure lookups, so any iteration a policy performs is deterministic.
pub struct PolicyRound<'a> {
    /// Read-only cluster state (topology, jobs, reachability).
    pub view: &'a SimView<'a>,
    /// Current simulated time.
    pub now: SimTime,
    /// Active users and their configured tickets, in user-id order.
    pub active: &'a [(UserId, u64)],
    /// Dense per-user inputs: demand, per-generation speedup estimates from
    /// the online profiler (`None` where unprofiled — policies should
    /// assume the base rate 1.0), and — for policies that return `true`
    /// from [`AllocPolicy::wants_rho`] — the online finish-time-fairness
    /// estimate ρ̂ (1.0 where not maintained).
    pub inputs: &'a PolicyInputs,
    /// Observability pipeline for policy-side trace events (trades,
    /// auction outcomes).
    pub obs: &'a SharedObs,
}

/// An allocation policy: decides per-(user, generation) GPU entitlements
/// once per epoch. See the module docs for the determinism contract.
pub trait AllocPolicy {
    /// Policy name as reported by the scheduler and the CLI.
    fn name(&self) -> &'static str;

    /// Computes the per-(user, generation) allocation for this epoch.
    ///
    /// The returned entitlements must conserve physical capacity: summed
    /// over users, each generation's allocation must equal the cluster's
    /// *static* GPU count for that generation (the trace auditor checks
    /// round tickets against static supply). Policies that want to steer
    /// work away from unreachable servers do so by *shaping* who gets the
    /// capacity, not by shrinking it.
    fn allocate(&mut self, round: &PolicyRound<'_>) -> Entitlements;

    /// How often the allocation is recomputed on a timer (it is also
    /// recomputed whenever the active-user set changes).
    fn epoch(&self, config: &SimConfig) -> SimDuration;

    /// Whether quiescence fast-forward is sound for this policy: replaying
    /// a cached plan across quanta must not change any future allocation.
    /// Defaults to `false` — policies opt in explicitly (or stay opted
    /// out, which forces the engine to step every quantum).
    fn fast_forward_ok(&self) -> bool {
        false
    }

    /// Whether the driver should maintain online per-user ρ̂ estimates and
    /// serve them via [`PolicyInputs::rho`]. Defaults to `false` (the
    /// accounting costs a per-round sweep over the scheduled jobs).
    fn wants_rho(&self) -> bool {
        false
    }
}

/// The paper's allocation policy: ticket-proportional entitlements per
/// generation, then the big/small trading market on top.
///
/// This is [`crate::GandivaFair`]'s economy behind the [`AllocPolicy`]
/// boundary; the full gfair scheduler composes it with retry backoff and
/// the shared driver machinery.
#[derive(Debug)]
pub struct TicketTrading {
    trading: bool,
    margin: f64,
    trade_log: Vec<(SimTime, Trade)>,
}

impl TicketTrading {
    /// Creates the policy from the gfair toggles (trading on/off, margin).
    pub fn new(cfg: &GfairConfig) -> Self {
        TicketTrading {
            trading: cfg.trading,
            margin: cfg.trade_margin,
            trade_log: Vec::new(),
        }
    }

    /// Trades executed so far, with timestamps.
    pub fn trades(&self) -> &[(SimTime, Trade)] {
        &self.trade_log
    }
}

impl AllocPolicy for TicketTrading {
    fn name(&self) -> &'static str {
        "gfair"
    }

    fn allocate(&mut self, round: &PolicyRound<'_>) -> Entitlements {
        let gpus = round.view.cluster().gpus_per_gen();
        let mut ent = Entitlements::base(&gpus, round.active);
        if self.trading && !round.active.is_empty() {
            let trades = run_market_traced(
                round.obs,
                round.now,
                &mut ent,
                round.inputs,
                round.view.config().price_strategy,
                self.margin,
            );
            self.trade_log
                .extend(trades.into_iter().map(|t| (round.now, t)));
        }
        ent
    }

    fn epoch(&self, config: &SimConfig) -> SimDuration {
        config.trade_interval
    }

    fn fast_forward_ok(&self) -> bool {
        true
    }
}

/// Generic round driver: runs any [`AllocPolicy`] as a full
/// [`ClusterScheduler`].
///
/// The driver owns the machinery every policy shares — placement via
/// the placer, per-server stride planning via the shared planner,
/// migration-based balancing toward the policy's entitlements, pending-job
/// re-placement after outages, epoch timers, optional online ρ̂ accounting,
/// and fast-forward probing — so a policy implementation is nothing but its
/// allocation rule.
///
/// # Examples
///
/// ```no_run
/// use gfair_core::{GfairConfig, PolicyScheduler, TicketTrading};
/// use gfair_sim::Simulation;
/// use gfair_types::{ClusterSpec, SimConfig, UserSpec};
///
/// let cfg = GfairConfig::default();
/// let sim = Simulation::new(
///     ClusterSpec::paper_testbed(),
///     UserSpec::equal_users(4, 100),
///     vec![],
///     SimConfig::default(),
/// )
/// .unwrap();
/// let mut sched = PolicyScheduler::new(TicketTrading::new(&cfg), cfg);
/// let report = sim.run(&mut sched).unwrap();
/// ```
#[derive(Debug)]
pub struct PolicyScheduler<P: AllocPolicy> {
    policy: P,
    cfg: GfairConfig,
    profiler: Option<Profiler>,
    ent: Option<Entitlements>,
    planner: RoundPlanner,
    placer: Placer,
    /// Active-user signature the current entitlements were computed from.
    active_sig: Vec<(UserId, u64)>,
    next_epoch: SimTime,
    next_balance: SimTime,
    /// Quantum length in integer microseconds, cached at init so that
    /// [`ClusterScheduler::commit_fast_forward`] (which has no view) can
    /// account skipped service exactly.
    quantum_micros: u64,
    /// Cumulative scheduled time per job in integer microseconds, indexed
    /// by `JobId::index()`. Integer accounting makes the ρ̂ inputs — and
    /// therefore the allocations — byte-identical with fast-forward on or
    /// off. Maintained only when the policy wants ρ̂.
    sched_micros: Vec<u64>,
    /// Jobs scheduled by the most recent plan, for fast-forward service
    /// accounting (a skipped span replays exactly this run set).
    last_plan_jobs: Vec<JobId>,
    /// Dense per-user policy inputs (demand, speedups, ρ̂), refreshed
    /// incrementally from the cluster-index aggregates each epoch.
    inputs: PolicyInputs,
    /// Observability pipeline; share the simulation's instance via
    /// [`PolicyScheduler::with_obs`] to get one unified trace.
    obs: SharedObs,
}

impl<P: AllocPolicy> PolicyScheduler<P> {
    /// Creates the driver around an allocation policy.
    pub fn new(policy: P, cfg: GfairConfig) -> Self {
        PolicyScheduler {
            policy,
            cfg,
            profiler: None,
            ent: None,
            planner: RoundPlanner::new(),
            placer: Placer::new(),
            active_sig: Vec::new(),
            next_epoch: SimTime::ZERO,
            next_balance: SimTime::ZERO,
            quantum_micros: 0,
            sched_micros: Vec::new(),
            last_plan_jobs: Vec::new(),
            inputs: PolicyInputs::new(),
            obs: Arc::new(Obs::new()),
        }
    }

    /// Attaches a shared observability pipeline. Pass the same instance to
    /// `Simulation::with_obs` so scheduler-side and engine-side events land
    /// in one ordered trace.
    pub fn with_obs(mut self, obs: SharedObs) -> Self {
        self.obs = obs;
        self
    }

    /// The wrapped allocation policy.
    pub fn policy(&self) -> &P {
        &self.policy
    }

    /// The current entitlements (None before the first round).
    pub fn entitlements(&self) -> Option<&Entitlements> {
        self.ent.as_ref()
    }

    /// Lazily builds the profiler, planner and placer from the cluster.
    fn ensure_init(&mut self, view: &SimView<'_>) {
        if self.profiler.is_none() {
            self.profiler = Some(Profiler::new(
                view.cluster().catalog.len(),
                self.cfg.min_profile_samples,
            ));
        }
        self.planner
            .ensure_init(view, self.cfg.gang_policy, self.cfg.planning_workers);
        self.placer.ensure_capacity(view);
        self.inputs.ensure_init(view);
        if self.quantum_micros == 0 {
            self.quantum_micros = view.config().quantum.as_micros();
        }
    }

    /// Recomputes the allocation through the policy and pushes the derived
    /// weights into the planner.
    ///
    /// The dense inputs are refreshed incrementally from the cluster-index
    /// aggregates; in debug builds every refresh is differential-checked
    /// against the from-scratch map builders ([`PolicyInputs::audit`]).
    fn refresh_allocation(&mut self, view: &SimView<'_>, active: Vec<(UserId, u64)>) {
        let now = view.now();
        let profiler = self.profiler.as_ref().expect("initialized");
        self.inputs.refresh(view, profiler);
        if self.policy.wants_rho() {
            // ρ̂ per user: the worst ratio of time-in-system to time-served
            // over the user's active jobs, quantum-smoothed so brand-new
            // jobs start at ρ̂ = 1 instead of ∞. Both sides are integer
            // microseconds, so the estimate is exact and replay-stable.
            self.inputs
                .refresh_rho(view, &self.sched_micros, self.quantum_micros, now);
        }
        #[cfg(debug_assertions)]
        {
            let ledger = self.policy.wants_rho().then_some((
                self.sched_micros.as_slice(),
                self.quantum_micros,
                now,
            ));
            if let Err(e) = self.inputs.audit(view, profiler, ledger) {
                panic!("dense policy inputs diverged from from-scratch oracle: {e}");
            }
        }
        let round = PolicyRound {
            view,
            now,
            active: &active,
            inputs: &self.inputs,
            obs: &self.obs,
        };
        let ent = self.policy.allocate(&round);
        self.planner
            .refresh_weights(view, &ent, self.cfg.min_weight);
        self.ent = Some(ent);
        self.active_sig = active;
    }
}

impl<P: AllocPolicy> ClusterScheduler for PolicyScheduler<P> {
    fn name(&self) -> &'static str {
        self.policy.name()
    }

    fn on_job_arrival(&mut self, view: &SimView<'_>, job: JobId) -> Vec<Action> {
        self.ensure_init(view);
        let info = view.job(job).expect("arriving job is known");
        let want_why = self.obs.why();
        let (target, why) = self.placer.choose_server_explained(
            view,
            self.ent.as_ref(),
            info.user,
            info.gang,
            want_why,
        );
        if let Some(why) = why {
            self.obs.emit(TraceEvent::Decision {
                t: view.now(),
                decision: "placement".to_string(),
                job: Some(job),
                user: Some(info.user),
                chosen: why.chosen,
                tie_break: why.tie_break.to_string(),
                considered: why.considered,
                candidates: why.candidates,
                rejected: why.rejected,
            });
        }
        match target {
            Some(server) => {
                self.placer.note_placement(view, server, info.gang);
                vec![Action::Place { job, server }]
            }
            // Unplaceable gangs are rejected at simulation construction, so
            // this only happens for an empty cluster.
            None => Vec::new(),
        }
    }

    fn on_profile_report(&mut self, view: &SimView<'_>, report: &ProfileReport) -> Vec<Action> {
        self.ensure_init(view);
        let profiler = self.profiler.as_mut().expect("initialized");
        record_profile_report(profiler, &self.obs, view, report);
        Vec::new()
    }

    fn on_migration_failed(
        &mut self,
        _view: &SimView<'_>,
        _job: JobId,
        _to: ServerId,
        _reason: MigrationFailReason,
    ) -> Vec<Action> {
        // No immediate retry: `plan_round` re-places every pending job each
        // round, so a job stranded by a failed move is picked up there. The
        // trait default (re-dispatch through `on_job_arrival`) would queue a
        // second placement that races the round plan's — whichever lands
        // first leaves the other targeting a now-resident job, which the
        // engine rejects as a scheduler bug. Still-resident jobs (checkpoint
        // failure, unreachable target) are re-examined by the next balancing
        // pass.
        Vec::new()
    }

    fn on_partition_heal(&mut self, view: &SimView<'_>, server: ServerId) -> Vec<Action> {
        self.ensure_init(view);
        // Reconcile: clearing the active signature forces an allocation
        // refresh at the next round, and the healed server's residency is
        // re-validated against the local scheduler's last-known membership.
        // The next sync() repairs any drift; the Reconcile event records
        // how much there was.
        self.active_sig.clear();
        let local_jobs = self.planner.jobs_on(server);
        let actual: BTreeSet<JobId> = view.resident(server).collect();
        let drift = local_jobs.symmetric_difference(&actual).count() as u32;
        let users_resynced = self
            .ent
            .as_ref()
            .map(|e| e.users().count() as u32)
            .unwrap_or(0);
        self.obs.emit(TraceEvent::Reconcile {
            t: view.now(),
            server,
            users_resynced,
            jobs_revalidated: actual.len() as u32,
            drift,
        });
        Vec::new()
    }

    fn plan_round(&mut self, view: &SimView<'_>) -> RoundPlan {
        self.ensure_init(view);
        // Queued placements were applied before this callback.
        self.placer.reset();
        let now = view.now();

        // 1. Allocation: refresh on churn or on the epoch timer.
        let active = self.inputs.active_signature(view);
        let epoch_due = now >= self.next_epoch;
        let refreshed = epoch_due || active != self.active_sig || self.ent.is_none();
        if refreshed {
            self.refresh_allocation(view, active);
            if epoch_due {
                self.next_epoch = now + self.policy.epoch(view.config());
            }
        }

        // 2. Balancing: realize the allocation by migration (plus the
        // profiling and load-spreading passes).
        let mut actions = Vec::new();
        if self.cfg.balancing && now >= self.next_balance {
            let ent = self.ent.as_ref().expect("refreshed above");
            let profiler = self.profiler.as_ref().expect("initialized");
            actions = plan_migrations_traced(&self.obs, view, ent, profiler, &self.cfg);
            self.next_balance = now + view.config().balance_interval;
        }

        // 3. Re-place pending jobs (deferred arrivals, outage evictions,
        // stranded restores).
        let retries: Vec<(JobId, UserId, u32)> = view
            .pending_jobs()
            .map(|j| (j.id, j.user, j.gang))
            .collect();
        let want_why = self.obs.why();
        for (job, user, gang) in retries {
            let (target, why) =
                self.placer
                    .choose_server_explained(view, self.ent.as_ref(), user, gang, want_why);
            if let Some(server) = target {
                // Emit only on success: an unplaceable job would otherwise
                // flood the trace with one identical decision per round.
                if let Some(why) = why {
                    self.obs.emit(TraceEvent::Decision {
                        t: now,
                        decision: "retry".to_string(),
                        job: Some(job),
                        user: Some(user),
                        chosen: why.chosen,
                        tie_break: why.tie_break.to_string(),
                        considered: why.considered,
                        candidates: why.candidates,
                        rejected: why.rejected,
                    });
                }
                actions.push(Action::Place { job, server });
            }
        }

        // 4. Sync locals and collect per-server selections. Jobs involved
        // in this round's actions (migrating away or just being placed) are
        // excluded from the run sets.
        let departing: BTreeSet<JobId> = actions
            .iter()
            .map(|a| match a {
                Action::Migrate { job, .. } | Action::Place { job, .. } => *job,
            })
            .collect();
        let run = self.planner.plan_runs(
            view,
            &departing,
            self.cfg.min_weight,
            refreshed,
            self.cfg.lazy_planning,
            &self.obs,
        );

        // 5. Service accounting for ρ̂: every scheduled job accrues one
        // quantum (integer micros, replayed exactly on fast-forward). One
        // resize to the round's max job index, not one per job.
        if self.policy.wants_rho() {
            self.last_plan_jobs.clear();
            let q = self.quantum_micros;
            let max_idx = run
                .values()
                .flat_map(|jobs| jobs.iter())
                .map(|job| job.index())
                .max();
            if let Some(max_idx) = max_idx {
                if self.sched_micros.len() <= max_idx {
                    self.sched_micros.resize(max_idx + 1, 0);
                }
            }
            for jobs in run.values() {
                for &job in jobs {
                    self.sched_micros[job.index()] += q;
                    self.last_plan_jobs.push(job);
                }
            }
        }
        RoundPlan { run, actions }
    }

    fn next_decision_time(&self) -> Option<SimTime> {
        // Epoch timers are the only internal clocks that can change a plan
        // with otherwise-unchanged inputs.
        let mut t = self.next_epoch;
        if self.cfg.balancing {
            t = t.min(self.next_balance);
        }
        Some(t)
    }

    fn probe_fast_forward(&mut self, view: &SimView<'_>, plan: &RoundPlan, k: u64) -> u64 {
        if !self.cfg.fast_forward
            || !self.policy.fast_forward_ok()
            || k == 0
            || self.planner.is_empty()
        {
            return 0;
        }
        // Anything that would steer the next plan_round down a different
        // path declines: a pending job could be placed, an epoch timer
        // could fire. The engine already bounds k by next_decision_time,
        // so these are defensive.
        if view.pending_jobs().next().is_some() {
            return 0;
        }
        let now = view.now();
        if now >= self.next_epoch {
            return 0;
        }
        if self.cfg.balancing && now >= self.next_balance {
            return 0;
        }
        self.planner.probe(&plan.run, k)
    }

    fn commit_fast_forward(&mut self, j: u64) {
        self.planner.commit(j);
        if self.policy.wants_rho() {
            // The skipped span replays the cached plan j more times: each
            // job in it accrues j further quanta of service, keeping ρ̂
            // byte-identical to the naive per-round path.
            let q = self.quantum_micros;
            for &job in &self.last_plan_jobs {
                self.sched_micros[job.index()] += q * j;
            }
        }
    }

    fn user_shares(&self, _view: &SimView<'_>) -> Vec<UserShare> {
        let Some(ent) = &self.ent else {
            return Vec::new();
        };
        // The user's effective priority is the best (lowest) stride pass
        // among their jobs anywhere in the cluster. Lazily-settled locals
        // hold intentionally stale passes between settles, so passes are
        // folded only for traced runs — where planning is always eager and
        // they are exact. (0.0 is the schema's "no pass exposed" value, and
        // auditing keys off tickets alone.)
        let min_pass = if self.obs.tracing() {
            self.planner.fold_min_passes()
        } else {
            BTreeMap::new()
        };
        ent.users()
            .map(|user| UserShare {
                user,
                tickets: ent.gpus_of(user),
                pass: min_pass.get(&user).copied().unwrap_or(0.0),
            })
            .collect()
    }
}
