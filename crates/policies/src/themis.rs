//! Themis-style finish-time fairness.
//!
//! Reimplements the core idea of "Themis: Fair and Efficient GPU Cluster
//! Scheduling" (Mahajan et al., NSDI 2020, arXiv 1907.01484): track each
//! tenant's *finish-time fairness* ρ = T_shared / T_ideal online, and every
//! lease interval run a **partial-allocation auction** restricted to the
//! worst-off (highest-ρ) tenants. The partial-allocation discount — each
//! winner is scaled by the externality they impose on the other winners —
//! makes truthful bidding the dominant strategy in the original mechanism;
//! here it serves as a deterministic weighting that concentrates capacity
//! on the tenants furthest behind without starving anyone (losers keep a
//! vanishing floor weight, and stride renormalization redistributes the
//! remainder work-conservingly).
//!
//! See `POLICIES.md` for the documented divergences from the source paper
//! (user-granularity bids, ρ̂ as an attained-service proxy for T_ideal).

use gfair_core::policy::{AllocPolicy, PolicyRound};
use gfair_core::Entitlements;
use gfair_obs::{Candidate, Rejection, TraceEvent};
use gfair_types::{SimConfig, SimDuration, UserId};

/// Finish-time fairness via a worst-ρ̂ partial-allocation auction.
#[derive(Debug)]
pub struct ThemisFtf {
    lease: SimDuration,
    filter: f64,
    /// Scratch: (user, tickets, ρ̂) triples, reused across leases so the
    /// per-epoch auction allocates nothing after the first.
    scored: Vec<(UserId, u64, f64)>,
    /// Scratch: discounted winner weights, id-sorted.
    weights: Vec<(UserId, f64)>,
    /// Scratch: effective tickets handed to the entitlement computation.
    eff: Vec<(UserId, u64)>,
}

impl ThemisFtf {
    /// Creates the policy from the lease length (auction cadence) and the
    /// fraction of active users admitted to each auction, taken from the
    /// worst-ρ̂ end (clamped to at least one user).
    pub fn new(lease: SimDuration, filter: f64) -> Self {
        ThemisFtf {
            lease,
            filter,
            scored: Vec::new(),
            weights: Vec::new(),
            eff: Vec::new(),
        }
    }
}

/// Auction admission order: worst ρ̂ first, ties toward the lowest user id.
/// User ids are unique, so this is a strict total order — the top-`w` set
/// (and its sorted order) is unique, which is what lets the partial
/// selection below reproduce a full sort's prefix exactly.
fn rank(a: &(UserId, u64, f64), b: &(UserId, u64, f64)) -> std::cmp::Ordering {
    b.2.total_cmp(&a.2).then(a.0.cmp(&b.0))
}

impl AllocPolicy for ThemisFtf {
    fn name(&self) -> &'static str {
        "themis-ftf"
    }

    fn allocate(&mut self, round: &PolicyRound<'_>) -> Entitlements {
        let gpus = round.view.cluster().gpus_per_gen();
        if round.active.is_empty() {
            return Entitlements::base(&gpus, &[]);
        }
        let n = round.active.len();
        let w = ((self.filter * n as f64).ceil() as usize).clamp(1, n);
        // Rank users worst-ρ̂ first; ties break toward the lowest id so the
        // admitted set is deterministic. Deterministic partial selection:
        // `select_nth_unstable_by` puts the top-w set (unique under the
        // strict total order) in the prefix in O(n); only those w are then
        // sorted — same prefix a full sort would produce, without paying
        // O(n log n) for the users the filter rejects anyway.
        self.scored.clear();
        self.scored.extend(
            round
                .active
                .iter()
                .map(|&(u, t)| (u, t, round.inputs.rho(u))),
        );
        if w < n {
            self.scored.select_nth_unstable_by(w - 1, rank);
        }
        self.scored[..w].sort_unstable_by(rank);
        let winners = &self.scored[..w];
        // Partial-allocation discount: winner i's weight is their bid
        // (ρ̂ × tickets — how far behind they are, ticket-scaled) times
        // ((sum − bid_i) / sum)^(w−1), the share of the auction the others
        // could have claimed without them. With one winner the discount
        // degenerates to 1.
        let bid_sum: f64 = winners.iter().map(|&(_, t, r)| r * t as f64).sum();
        self.weights.clear();
        self.weights.extend(winners.iter().map(|&(u, t, r)| {
            let bid = r * t as f64;
            let discount = if w > 1 && bid_sum > 0.0 {
                ((bid_sum - bid) / bid_sum).powi((w - 1) as i32)
            } else {
                1.0
            };
            (u, bid * discount)
        }));
        let max_weight = self
            .weights
            .iter()
            .map(|&(_, x)| x)
            .fold(0.0f64, f64::max)
            .max(1.0);
        self.weights.sort_unstable_by_key(|&(u, _)| u);
        let weights = &self.weights;
        // Effective tickets: winners scaled to a fixed-point range, losers
        // held at the floor of 1 so nobody's stride weight vanishes
        // entirely. Entitlements::base renormalizes per generation, which
        // conserves static capacity by construction.
        self.eff.clear();
        self.eff.extend(round.active.iter().map(|&(u, _)| {
            let t = match weights.binary_search_by_key(&u, |&(w, _)| w) {
                Ok(i) => ((weights[i].1 / max_weight * 1e6).round() as u64).max(1),
                Err(_) => 1,
            };
            (u, t)
        }));
        if round.obs.why() {
            let mut candidates: Vec<Candidate> = winners
                .iter()
                .map(|&(u, _, r)| Candidate {
                    label: format!("user:{}", u.index()),
                    score: r,
                })
                .collect();
            candidates.truncate(8);
            let mut rejected = Vec::new();
            if n > w {
                rejected.push(Rejection {
                    reason: "below_rho_filter".into(),
                    count: (n - w) as u32,
                });
            }
            round.obs.emit(TraceEvent::Decision {
                t: round.now,
                decision: "ftf-auction".to_string(),
                job: None,
                user: None,
                chosen: format!("{w} of {n} users admitted to the auction"),
                tie_break: "highest rho-hat, then lowest user id".to_string(),
                considered: n as u32,
                candidates,
                rejected,
            });
        }
        Entitlements::base(&gpus, &self.eff)
    }

    fn epoch(&self, _config: &SimConfig) -> SimDuration {
        self.lease
    }

    fn fast_forward_ok(&self) -> bool {
        // ρ̂ drifts continuously with wall time, but allocations only read
        // it at lease boundaries and the driver never fast-forwards across
        // one; the integer-microsecond service accounting is replayed
        // exactly on commit, so skipped spans are byte-equivalent.
        true
    }

    fn wants_rho(&self) -> bool {
        true
    }
}
