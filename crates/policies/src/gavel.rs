//! Gavel-style heterogeneity-aware max-min fairness.
//!
//! Reimplements the core idea of "Heterogeneity-Aware Cluster Scheduling
//! Policies for Deep Learning Workloads" (Narayanan et al., OSDI 2020,
//! arXiv 2008.09213): allocate GPU capacity so that the *minimum
//! ticket-normalized effective throughput* across users is maximized, using
//! each user's estimated per-generation speedups. Where Gavel solves an LP
//! per round, this implementation uses a deterministic discrete
//! water-filling solver, so allocations are integral, replayable and
//! byte-stable — a requirement of this workspace's determinism contract
//! that an off-the-shelf LP solver would not meet.
//!
//! ## The batched solver
//!
//! The reference formulation grants one GPU per iteration to the globally
//! poorest user — `O(total GPUs × users × generations)` per epoch, the last
//! per-round cost in the workspace that scaled with the whole cluster.
//! [`water_fill`] keeps those exact semantics (same grant order, bit-stable
//! `tput` accumulation) but runs level-batched: a min-heap keyed on
//! (ticket-normalized throughput, user id) yields the poorest user, who
//! then absorbs a whole run of grants — bounded by their remaining demand,
//! the capacity of their current best generation, and the throughput level
//! at which they would overtake the next-poorest user — before the heap is
//! touched again. Each grant still performs the same
//! `rates[g] / tickets` addition in the same order, so the allocation
//! matrix *and* the float throughputs are byte-identical to the one-at-a-
//! time loop, which is retained as [`water_fill_naive`] and differentially
//! checked in debug builds and under proptest.

use gfair_core::policy::{AllocPolicy, PolicyRound};
use gfair_core::Entitlements;
use gfair_obs::{Candidate, Rejection, TraceEvent};
use gfair_types::{SimConfig, SimDuration, UserId};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

/// One user's input to the water-filling solver.
#[derive(Debug, Clone)]
pub struct WfUser {
    /// The user being allocated.
    pub user: UserId,
    /// Configured tickets (throughput is normalized by this, so a
    /// two-ticket user is "poor" until they receive twice the throughput).
    pub tickets: u64,
    /// Total GPU demand (sum of active gang sizes): the saturation point
    /// beyond which the user receives nothing more.
    pub demand: u32,
    /// Estimated throughput rate per GPU generation relative to the base
    /// generation (1.0 where unprofiled), indexed by `GenId::index()`.
    pub rates: Vec<f64>,
}

/// A water-filling solution: the integral per-user, per-generation grant
/// matrix plus each user's final ticket-normalized effective throughput
/// (row order matches the `users` input).
#[derive(Debug, Clone, PartialEq)]
pub struct WfSolve {
    /// Integral grants: `alloc[user][gen]` GPUs of each generation.
    pub alloc: Vec<Vec<u32>>,
    /// Final accumulated ticket-normalized throughput per user, bit-stable
    /// across solver implementations (the accumulation order is part of the
    /// semantics).
    pub tput: Vec<f64>,
}

/// Heap key for the batched solver: (ticket-normalized throughput, user
/// index) under IEEE total order — exactly the comparison the reference
/// loop's argmin scan performs, with the index making every key distinct.
#[derive(Debug, Clone, Copy, PartialEq)]
struct WfKey(f64, usize);

impl Eq for WfKey {}

impl Ord for WfKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0).then(self.1.cmp(&other.1))
    }
}

impl PartialOrd for WfKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Deterministic discrete water-filling: semantically, repeatedly grant one
/// GPU to the user with the lowest ticket-normalized effective throughput
/// (ties to the lowest user id), who takes it from their highest-rate
/// generation with remaining capacity (ties to the lowest generation id),
/// until every user's demand is met or capacity runs out.
///
/// Runs level-batched (see the module docs): the poorest user is popped
/// from a min-heap once per *run* of grants instead of being re-discovered
/// by a full scan per GPU, so the cost is `O(batches × log users)` plus one
/// flop per grant rather than `O(total GPUs × users × generations)`. The
/// grant order — and therefore both the allocation matrix and the
/// bit-stable `tput` accumulation — is identical to the one-at-a-time
/// reference loop ([`water_fill_naive`]); debug builds assert this on every
/// call. `rates` must not contain NaN (profiler speedups never are).
///
/// Returns the integral grant matrix. The greedy is max-min fair in the
/// discrete sense: a granted GPU can never be re-assigned to an unsaturated
/// user without taking it from someone whose (last-grant-adjusted)
/// throughput is already no higher — the water-filling property test
/// asserts exactly this.
pub fn water_fill(capacity: &[u32], users: &[WfUser]) -> Vec<Vec<u32>> {
    water_fill_solve(capacity, users).alloc
}

/// [`water_fill`] returning the full [`WfSolve`] (grants plus final
/// throughputs) — the differential tests compare both fields against the
/// reference solver bit-for-bit.
pub fn water_fill_solve(capacity: &[u32], users: &[WfUser]) -> WfSolve {
    let num_gens = capacity.len();
    let mut cap = capacity.to_vec();
    let mut alloc = vec![vec![0u32; num_gens]; users.len()];
    let mut got = vec![0u32; users.len()];
    // Ticket-normalized effective throughput accumulated per user. Each
    // grant adds the same `rates[g] / tickets` term in the same order as
    // the reference loop, so the float results are bit-stable.
    let mut tput = vec![0.0f64; users.len()];
    // Per-user generation preference: highest rate first, ties to the
    // lowest generation id — the order the reference loop's strict-`>`
    // capacity scan realizes. Capacity only ever decreases, so a cursor
    // that advances past exhausted generations never has to back up.
    let pref: Vec<Vec<u32>> = users
        .iter()
        .map(|u| {
            debug_assert!(u.rates.iter().all(|r| !r.is_nan()), "NaN water-fill rate");
            let mut order: Vec<u32> = (0..num_gens as u32).collect();
            order.sort_by(|&a, &b| {
                u.rates[b as usize]
                    .total_cmp(&u.rates[a as usize])
                    .then(a.cmp(&b))
            });
            order
        })
        .collect();
    let mut cursor = vec![0usize; users.len()];
    // Min-heap over (tput, user). Keys are never stale: only the popped
    // user's throughput changes while they hold the floor.
    let mut heap: BinaryHeap<Reverse<WfKey>> = users
        .iter()
        .enumerate()
        .filter(|(_, u)| u.demand > 0)
        .map(|(i, _)| Reverse(WfKey(0.0, i)))
        .collect();
    'outer: while let Some(Reverse(WfKey(_, i))) = heap.pop() {
        // The level the next-poorest user sits at: this user keeps
        // absorbing grants while strictly below it (the reference argmin
        // would keep re-selecting them).
        let next = heap.peek().map(|&Reverse(k)| k);
        let u = &users[i];
        loop {
            if got[i] >= u.demand {
                break; // saturated: the user leaves the fill for good
            }
            // Best remaining generation for this user.
            while cursor[i] < num_gens && cap[pref[i][cursor[i]] as usize] == 0 {
                cursor[i] += 1;
            }
            if cursor[i] == num_gens {
                break 'outer; // cluster capacity exhausted
            }
            let g = pref[i][cursor[i]] as usize;
            cap[g] -= 1;
            alloc[i][g] += 1;
            got[i] += 1;
            tput[i] += u.rates[g] / u.tickets as f64;
            if let Some(next) = next {
                if WfKey(tput[i], i) >= next {
                    // No longer the poorest: back into the heap; the batch
                    // ends exactly where the reference loop would have
                    // switched users.
                    heap.push(Reverse(WfKey(tput[i], i)));
                    break;
                }
            }
        }
    }
    let solved = WfSolve { alloc, tput };
    #[cfg(debug_assertions)]
    {
        let oracle = water_fill_naive(capacity, users);
        debug_assert!(
            solved.alloc == oracle.alloc
                && solved.tput.len() == oracle.tput.len()
                && solved
                    .tput
                    .iter()
                    .zip(&oracle.tput)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
            "batched water-fill diverged from the reference loop"
        );
    }
    solved
}

/// The one-GPU-at-a-time reference water-filling loop, retained as the
/// differential oracle for the batched solver: full argmin scan over users
/// per grant, full capacity scan per pick. `O(total GPUs × users ×
/// generations)` — use [`water_fill`] everywhere except tests.
pub fn water_fill_naive(capacity: &[u32], users: &[WfUser]) -> WfSolve {
    let total_cap: u64 = capacity.iter().map(|&c| c as u64).sum();
    let mut cap = capacity.to_vec();
    let mut alloc = vec![vec![0u32; capacity.len()]; users.len()];
    let mut got = vec![0u32; users.len()];
    let mut tput = vec![0.0f64; users.len()];
    // Fixed iteration bound: every pass either grants exactly one GPU or
    // terminates the loop.
    for _ in 0..total_cap {
        let mut pick: Option<usize> = None;
        for (i, u) in users.iter().enumerate() {
            if got[i] >= u.demand {
                continue;
            }
            match pick {
                None => pick = Some(i),
                Some(p) => {
                    if tput[i].total_cmp(&tput[p]).is_lt() {
                        pick = Some(i);
                    }
                }
            }
        }
        let Some(i) = pick else {
            break; // every user saturated
        };
        let mut best: Option<usize> = None;
        for (g, &c) in cap.iter().enumerate() {
            if c == 0 {
                continue;
            }
            match best {
                None => best = Some(g),
                Some(b) => {
                    if users[i].rates[g] > users[i].rates[b] {
                        best = Some(g);
                    }
                }
            }
        }
        let Some(g) = best else {
            break; // capacity exhausted
        };
        cap[g] -= 1;
        alloc[i][g] += 1;
        got[i] += 1;
        tput[i] += users[i].rates[g] / users[i].tickets as f64;
    }
    WfSolve { alloc, tput }
}

/// Heterogeneity-aware max-min fairness via water-filling over estimated
/// per-generation throughput.
///
/// Degraded-mode handling: the solver only fills *reachable* capacity
/// (partitioned or failed servers cannot receive newly steered work), then
/// pads each generation's unfilled remainder back ticket-proportionally so
/// the entitlements conserve the cluster's static supply — the padding is
/// accounting-only (stride weights are relative per generation) and keeps
/// the trace auditor's ticket-conservation check meaningful.
#[derive(Debug, Default)]
pub struct GavelHetero {
    _private: (),
}

impl GavelHetero {
    /// Creates the policy (it has no knobs beyond the shared config).
    pub fn new() -> Self {
        GavelHetero::default()
    }
}

impl AllocPolicy for GavelHetero {
    fn name(&self) -> &'static str {
        "gavel-hetero"
    }

    fn allocate(&mut self, round: &PolicyRound<'_>) -> Entitlements {
        let view = round.view;
        let num_gens = view.cluster().catalog.len();
        let mut cap = vec![0u32; num_gens];
        for s in view.reachable_servers() {
            cap[s.gen.index()] += s.num_gpus;
        }
        let users: Vec<WfUser> = round
            .active
            .iter()
            .map(|&(user, tickets)| WfUser {
                user,
                tickets,
                demand: round.inputs.demand(user).round() as u32,
                rates: (0..num_gens)
                    .map(|g| round.inputs.speedup(user, g).unwrap_or(1.0))
                    .collect(),
            })
            .collect();
        let alloc = water_fill(&cap, &users);
        let mut rows: BTreeMap<UserId, Vec<f64>> = users
            .iter()
            .zip(&alloc)
            .map(|(u, row)| (u.user, row.iter().map(|&x| x as f64).collect()))
            .collect();
        // Conservation padding: capacity the solver could not place —
        // unreachable servers plus demand shortfall — is handed back
        // ticket-proportionally so per-generation totals equal the static
        // supply the auditor checks against.
        let static_gpus = view.cluster().gpus_per_gen();
        let total_tickets: u64 = round.active.iter().map(|&(_, t)| t).sum();
        if total_tickets > 0 {
            for (&gen, &gpus) in &static_gpus {
                let g = gen.index();
                let assigned: u64 = alloc.iter().map(|row| row[g] as u64).sum();
                let leftover = gpus as f64 - assigned as f64;
                if leftover > 0.0 {
                    for u in &users {
                        rows.get_mut(&u.user).expect("row per user")[g] +=
                            leftover * u.tickets as f64 / total_tickets as f64;
                    }
                }
            }
        }
        if round.obs.why() && !users.is_empty() {
            let granted: u64 = alloc.iter().flatten().map(|&x| x as u64).sum();
            let reachable: u64 = cap.iter().map(|&c| c as u64).sum();
            let static_total: u64 = static_gpus.values().map(|&c| c as u64).sum();
            // Final normalized throughputs, recomputed from the grants in
            // id order for the provenance row.
            let mut candidates: Vec<Candidate> = users
                .iter()
                .zip(&alloc)
                .map(|(u, row)| Candidate {
                    label: format!("user:{}", u.user.index()),
                    score: row
                        .iter()
                        .enumerate()
                        .map(|(g, &x)| x as f64 * u.rates[g] / u.tickets as f64)
                        .sum(),
                })
                .collect();
            candidates.truncate(8);
            let mut rejected = Vec::new();
            if static_total > reachable {
                rejected.push(Rejection {
                    reason: "unreachable_capacity".into(),
                    count: (static_total - reachable) as u32,
                });
            }
            round.obs.emit(TraceEvent::Decision {
                t: round.now,
                decision: "water-fill".to_string(),
                job: None,
                user: None,
                chosen: format!("{granted} GPUs granted across {} users", users.len()),
                tie_break: "lowest normalized throughput, then lowest user id".to_string(),
                considered: users.len() as u32,
                candidates,
                rejected,
            });
        }
        Entitlements::from_shares(num_gens, rows)
    }

    fn epoch(&self, config: &SimConfig) -> SimDuration {
        // Re-solve on the same cadence the gfair market refreshes, so
        // head-to-head runs recompute allocations equally often.
        config.trade_interval
    }

    fn fast_forward_ok(&self) -> bool {
        // The allocation depends only on the active set, demands and
        // profiled speedups — all of which change only through events that
        // already interrupt a fast-forward span.
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(user: u32, tickets: u64, demand: u32, rates: Vec<f64>) -> WfUser {
        WfUser {
            user: UserId::new(user),
            tickets,
            demand,
            rates,
        }
    }

    #[test]
    fn equal_users_split_capacity() {
        let alloc = water_fill(&[4], &[u(0, 1, 10, vec![1.0]), u(1, 1, 10, vec![1.0])]);
        assert_eq!(alloc, vec![vec![2], vec![2]]);
    }

    #[test]
    fn fast_gen_goes_to_whoever_is_poorest() {
        // One fast generation (2x) and one slow; both users identical.
        // Whoever is behind takes the fast GPUs first, and the final
        // normalized throughputs stay within one grant of each other.
        let users = [u(0, 1, 10, vec![1.0, 2.0]), u(1, 1, 10, vec![1.0, 2.0])];
        let alloc = water_fill(&[4, 2], &users);
        let tput: Vec<f64> = alloc
            .iter()
            .zip(&users)
            .map(|(row, u)| {
                row.iter()
                    .enumerate()
                    .map(|(g, &x)| x as f64 * u.rates[g])
                    .sum()
            })
            .collect();
        assert!((tput[0] - tput[1]).abs() <= 2.0, "tputs {tput:?}");
        let total: u32 = alloc.iter().flatten().sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn demand_saturates_and_leftover_flows_on() {
        // User 0 wants only 1 GPU; user 1 soaks up the rest.
        let alloc = water_fill(&[5], &[u(0, 1, 1, vec![1.0]), u(1, 1, 10, vec![1.0])]);
        assert_eq!(alloc[0][0], 1);
        assert_eq!(alloc[1][0], 4);
    }

    #[test]
    fn tickets_weight_the_fill() {
        // A 3-ticket user's throughput is normalized by 3, so they stay
        // "poor" longer and end up with ~3x the GPUs.
        let alloc = water_fill(&[8], &[u(0, 3, 100, vec![1.0]), u(1, 1, 100, vec![1.0])]);
        assert_eq!(alloc[0][0], 6);
        assert_eq!(alloc[1][0], 2);
    }

    #[test]
    fn zero_capacity_and_zero_users_are_fine() {
        assert_eq!(
            water_fill(&[0, 0], &[u(0, 1, 5, vec![1.0, 1.0])]),
            vec![vec![0, 0]]
        );
        assert!(water_fill(&[4], &[]).is_empty());
    }
}
