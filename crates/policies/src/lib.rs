//! The policy zoo: alternative allocation policies behind the shared
//! [`AllocPolicy`](gfair_core::AllocPolicy) boundary.
//!
//! The `gfair-core` crate owns the boundary and the paper's own policy
//! (ticket-proportional entitlements plus the trading market); this crate
//! holds the head-to-head competitors and the one constructor —
//! [`build_policy`] — that maps a [`PolicyId`] to a ready-to-run
//! [`ClusterScheduler`]:
//!
//! * [`GavelHetero`] — Gavel-style heterogeneity-aware max-min fairness via
//!   deterministic discrete water-filling ([`water_fill`]).
//! * [`ThemisFtf`] — Themis-style finish-time fairness: online ρ̂ tracking
//!   with a partial-allocation auction among the worst-off users.
//!
//! Every policy here satisfies the determinism obligations documented on
//! [`gfair_core::policy`]: byte-identical traces across planning worker
//! counts and fast-forward settings (asserted by
//! `tests/policy_determinism.rs` at the repo root). `POLICIES.md` documents
//! each policy's model, guarantees, knobs and divergences from its source
//! paper; its table is cross-checked against [`REGISTRY`] by a test in this
//! crate.

#![warn(missing_docs)]

mod gavel;
mod themis;

pub use gavel::{water_fill, water_fill_naive, water_fill_solve, GavelHetero, WfSolve, WfUser};
pub use themis::ThemisFtf;

use gfair_core::{GandivaFair, GfairConfig, PolicyId, PolicyScheduler};
use gfair_obs::SharedObs;
use gfair_sim::ClusterScheduler;

/// One row of the policy catalogue.
#[derive(Debug, Clone, Copy)]
pub struct PolicyInfo {
    /// The selectable id (CLI name via `id.name()`).
    pub id: PolicyId,
    /// One-line summary, shown by `--help` and mirrored in `POLICIES.md`.
    pub summary: &'static str,
}

/// The policy catalogue, in CLI-listing order. Kept in sync with
/// [`PolicyId::ALL`] and the `POLICIES.md` table by tests.
pub const REGISTRY: [PolicyInfo; 3] = [
    PolicyInfo {
        id: PolicyId::Gfair,
        summary: "ticket-proportional entitlements + big/small trading market (the paper)",
    },
    PolicyInfo {
        id: PolicyId::GavelHetero,
        summary: "heterogeneity-aware max-min fairness via deterministic water-filling",
    },
    PolicyInfo {
        id: PolicyId::ThemisFtf,
        summary: "finish-time fairness: worst-rho partial-allocation auction per lease",
    },
];

/// Builds the scheduler selected by `cfg.policy`, attached to the given
/// observability pipeline. Pass the same `obs` to `Simulation::with_obs`
/// so scheduler-side and engine-side events land in one ordered trace.
pub fn build_policy(cfg: GfairConfig, obs: SharedObs) -> Box<dyn ClusterScheduler> {
    match cfg.policy {
        PolicyId::Gfair => Box::new(GandivaFair::new(cfg).with_obs(obs)),
        PolicyId::GavelHetero => {
            Box::new(PolicyScheduler::new(GavelHetero::new(), cfg).with_obs(obs))
        }
        PolicyId::ThemisFtf => Box::new(
            PolicyScheduler::new(ThemisFtf::new(cfg.themis_lease, cfg.themis_filter), cfg)
                .with_obs(obs),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_every_policy_id() {
        assert_eq!(REGISTRY.len(), PolicyId::ALL.len());
        for (info, id) in REGISTRY.iter().zip(PolicyId::ALL) {
            assert_eq!(info.id, id, "registry order must match PolicyId::ALL");
        }
    }

    #[test]
    fn build_policy_reports_the_selected_name() {
        for id in PolicyId::ALL {
            let cfg = GfairConfig::default().with_policy(id);
            let sched = build_policy(cfg, std::sync::Arc::new(gfair_obs::Obs::new()));
            // The gfair policy id maps to the full GandivaFair scheduler,
            // which keeps its historical report name.
            let expected = match id {
                PolicyId::Gfair => "gandiva-fair",
                _ => id.name(),
            };
            assert_eq!(sched.name(), expected);
        }
    }

    #[test]
    fn policies_doc_table_matches_registry() {
        // Same pattern as the FaultKind table test: POLICIES.md must carry
        // one summary-table row per registered policy, so the guide cannot
        // silently drift from the code.
        let doc = include_str!("../../../POLICIES.md");
        let start = doc
            .find("## Policy table")
            .expect("POLICIES.md must have a '## Policy table' section");
        let section = &doc[start..];
        let end = section[3..]
            .find("\n## ")
            .map(|i| i + 3)
            .unwrap_or(section.len());
        let rows: Vec<&str> = section[..end]
            .lines()
            .filter(|l| l.starts_with("| `"))
            .collect();
        for info in REGISTRY {
            let cell = format!("| `{}` |", info.id.name());
            assert!(
                rows.iter().any(|r| r.starts_with(&cell)),
                "POLICIES.md policy table is missing a row for {}",
                info.id.name()
            );
        }
        assert_eq!(
            rows.len(),
            REGISTRY.len(),
            "POLICIES.md policy table has extra rows"
        );
    }
}
