//! Differential properties of the Gavel water-filling solver: for random
//! capacities, demands, tickets and rate matrices, the greedy's output is
//! feasible, work-conserving and max-min fair in the discrete sense, and
//! the level-batched solver is byte-identical to the one-GPU-at-a-time
//! reference loop it replaced.

use gfair_policies::{water_fill, water_fill_naive, water_fill_solve, WfUser};
use gfair_types::UserId;
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn random_instance(seed: u64, num_gens: usize, num_users: usize) -> (Vec<u32>, Vec<WfUser>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let capacity: Vec<u32> = (0..num_gens).map(|_| rng.gen_range(0u32..12)).collect();
    let users = (0..num_users)
        .map(|i| WfUser {
            user: UserId::new(i as u32),
            tickets: rng.gen_range(1u64..5),
            demand: rng.gen_range(0u32..20),
            rates: (0..num_gens)
                .map(|_| rng.gen_range(1u32..50) as f64 / 10.0)
                .collect(),
        })
        .collect();
    (capacity, users)
}

/// Larger instances with deliberately coarse rates: equal rates (and equal
/// tickets) force ties everywhere, which degenerates the batched solver to
/// one-grant batches — the worst case for order-equivalence with the naive
/// loop.
fn tie_heavy_instance(seed: u64, num_gens: usize, num_users: usize) -> (Vec<u32>, Vec<WfUser>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let capacity: Vec<u32> = (0..num_gens).map(|_| rng.gen_range(0u32..64)).collect();
    let users = (0..num_users)
        .map(|i| WfUser {
            user: UserId::new(i as u32),
            tickets: rng.gen_range(1u64..3),
            demand: rng.gen_range(0u32..100),
            rates: (0..num_gens)
                .map(|_| rng.gen_range(1u32..4) as f64)
                .collect(),
        })
        .collect();
    (capacity, users)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Feasibility and work conservation: the grant matrix respects
    /// per-generation capacity and per-user demand, and grants exactly
    /// min(total capacity, total demand) GPUs (rates are strictly positive,
    /// so nothing is left on the table while anyone is unsaturated).
    #[test]
    fn water_fill_is_feasible_and_work_conserving(
        seed in 0u64..10_000,
        num_gens in 1usize..4,
        num_users in 1usize..7,
    ) {
        let (capacity, users) = random_instance(seed, num_gens, num_users);
        let alloc = water_fill(&capacity, &users);
        prop_assert_eq!(alloc.len(), users.len());
        for (g, &cap) in capacity.iter().enumerate() {
            let granted: u32 = alloc.iter().map(|row| row[g]).sum();
            prop_assert!(granted <= cap, "gen {g}: granted {granted} > cap {cap}");
        }
        let mut total_granted = 0u64;
        for (row, u) in alloc.iter().zip(&users) {
            let got: u32 = row.iter().sum();
            prop_assert!(got <= u.demand, "user {} got {got} > demand {}", u.user, u.demand);
            total_granted += got as u64;
        }
        let total_cap: u64 = capacity.iter().map(|&c| c as u64).sum();
        let total_demand: u64 = users.iter().map(|u| u.demand as u64).sum();
        prop_assert_eq!(total_granted, total_cap.min(total_demand));
    }

    /// Discrete max-min fairness: no granted GPU can be handed to an
    /// unsaturated user without taking it from someone whose
    /// ticket-normalized throughput, net of their *cheapest held* grant, is
    /// already no higher. Formally, for every unsaturated user `u` and
    /// every user `v` holding at least one GPU:
    /// `tput(v) - min_{g: alloc[v][g] > 0} rate[v][g]/tickets(v) <= tput(u)`.
    ///
    /// (Proof sketch for the greedy: at `v`'s final grant, `v` was the
    /// argmin among unsaturated users — including `u` — and `u`'s
    /// throughput never decreases afterwards.)
    #[test]
    fn water_fill_is_max_min(
        seed in 0u64..10_000,
        num_gens in 1usize..4,
        num_users in 2usize..7,
    ) {
        let (capacity, users) = random_instance(seed, num_gens, num_users);
        let alloc = water_fill(&capacity, &users);
        let tput: Vec<f64> = alloc
            .iter()
            .zip(&users)
            .map(|(row, u)| {
                row.iter()
                    .enumerate()
                    .map(|(g, &x)| x as f64 * u.rates[g] / u.tickets as f64)
                    .sum()
            })
            .collect();
        for (i, u) in users.iter().enumerate() {
            let got: u32 = alloc[i].iter().sum();
            if got >= u.demand {
                continue; // saturated users have no claim
            }
            for (v, row) in alloc.iter().enumerate() {
                let min_held: Option<f64> = row
                    .iter()
                    .enumerate()
                    .filter(|&(_, &x)| x > 0)
                    .map(|(g, _)| users[v].rates[g] / users[v].tickets as f64)
                    .min_by(|a, b| a.total_cmp(b));
                if let Some(m) = min_held {
                    prop_assert!(
                        tput[v] - m <= tput[i] + 1e-9,
                        "user {} (tput {}) could yield a grant to unsaturated \
                         user {} (tput {}) and still be no worse off",
                        users[v].user, tput[v], u.user, tput[i]
                    );
                }
            }
        }
    }

    /// Determinism: the solver is a pure function of its inputs.
    #[test]
    fn water_fill_is_deterministic(
        seed in 0u64..10_000,
        num_gens in 1usize..4,
        num_users in 1usize..7,
    ) {
        let (capacity, users) = random_instance(seed, num_gens, num_users);
        prop_assert_eq!(water_fill(&capacity, &users), water_fill(&capacity, &users));
    }

    /// Differential oracle: the level-batched solver reproduces the
    /// one-GPU-at-a-time reference loop exactly — the same allocation
    /// matrix AND bit-identical `tput` floats (the accumulation order is
    /// part of the byte-determinism contract, so approximate equality is
    /// not good enough). Runs both on fine-rate and tie-heavy instances;
    /// the latter degenerates batches to single grants.
    #[test]
    fn batched_water_fill_matches_naive_oracle(
        seed in 0u64..10_000,
        num_gens in 1usize..5,
        num_users in 1usize..17,
        ties in proptest::bool::ANY,
    ) {
        let (capacity, users) = if ties {
            tie_heavy_instance(seed, num_gens, num_users)
        } else {
            random_instance(seed, num_gens, num_users)
        };
        let batched = water_fill_solve(&capacity, &users);
        let naive = water_fill_naive(&capacity, &users);
        prop_assert_eq!(&batched.alloc, &naive.alloc, "allocation matrices differ");
        prop_assert_eq!(batched.tput.len(), naive.tput.len());
        for (i, (a, b)) in batched.tput.iter().zip(&naive.tput).enumerate() {
            prop_assert_eq!(
                a.to_bits(), b.to_bits(),
                "user {} tput not bit-identical: batched {} vs naive {}", i, a, b
            );
        }
    }

    /// Batching never weakens the max-min transfer property: the batched
    /// solver's output (including its returned throughputs) satisfies the
    /// same discrete max-min criterion the reference greedy guarantees —
    /// no granted GPU can move to an unsaturated user without leaving its
    /// holder no better off.
    #[test]
    fn batching_preserves_max_min_transfer(
        seed in 0u64..10_000,
        num_gens in 1usize..4,
        num_users in 2usize..10,
        ties in proptest::bool::ANY,
    ) {
        let (capacity, users) = if ties {
            tie_heavy_instance(seed, num_gens, num_users)
        } else {
            random_instance(seed, num_gens, num_users)
        };
        let solved = water_fill_solve(&capacity, &users);
        for (i, u) in users.iter().enumerate() {
            let got: u32 = solved.alloc[i].iter().sum();
            if got >= u.demand {
                continue; // saturated users have no claim
            }
            for (v, row) in solved.alloc.iter().enumerate() {
                let min_held: Option<f64> = row
                    .iter()
                    .enumerate()
                    .filter(|&(_, &x)| x > 0)
                    .map(|(g, _)| users[v].rates[g] / users[v].tickets as f64)
                    .min_by(|a, b| a.total_cmp(b));
                if let Some(m) = min_held {
                    prop_assert!(
                        solved.tput[v] - m <= solved.tput[i] + 1e-9,
                        "user {} (tput {}) could yield a grant to unsaturated \
                         user {} (tput {}) and still be no worse off",
                        users[v].user, solved.tput[v], u.user, solved.tput[i]
                    );
                }
            }
        }
    }
}
