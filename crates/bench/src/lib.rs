//! Shared plumbing for the experiment binaries.
//!
//! Each `exp_*` binary in `src/bin/` regenerates one table or figure of the
//! reconstructed evaluation (see DESIGN.md for the index and EXPERIMENTS.md
//! for recorded outputs). All binaries accept `--seed <n>` and print
//! deterministic ASCII tables.

use gfair_core::{GfairConfig, PolicyId};
use gfair_metrics::Table;
use gfair_obs::{Obs, SharedObs};
use gfair_policies::build_policy;
use gfair_sim::Simulation;
use gfair_types::{ClusterSpec, GenCatalog, JobSpec, ServerId, SimConfig, SimTime, UserSpec};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// Parses `--seed <n>` from argv; defaults to 42.
pub fn seed_arg() -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(42)
}

/// Parses a `--horizon-hours <n>` override; defaults to `default_hours`.
pub fn horizon_arg(default_hours: u64) -> SimTime {
    let args: Vec<String> = std::env::args().collect();
    let hours = args
        .iter()
        .position(|a| a == "--horizon-hours")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default_hours);
    SimTime::from_secs(hours * 3600)
}

/// The paper-scale 200-GPU heterogeneous testbed.
pub fn testbed() -> ClusterSpec {
    ClusterSpec::paper_testbed()
}

/// A K80-heavy two-generation cluster where V100s are scarce — the trading
/// experiments' setting.
pub fn trading_cluster() -> ClusterSpec {
    ClusterSpec::build(
        GenCatalog::k80_p100_v100(),
        &[("K80", 10, 8), ("V100", 3, 4)],
    )
}

/// Default simulator config for experiments (the paper's minute quantum).
pub fn sim_config(seed: u64) -> SimConfig {
    SimConfig::default().with_seed(seed)
}

/// Attaches a default-tier JSONL trace sink to the simulation when
/// `GFAIR_TRACE_DIR` is set, writing `<dir>/<binary>_<n>.jsonl` (`n`
/// counts simulations within the process, so a scheduler-comparison loop
/// gets one trace per configuration). `scripts/run_experiments.sh` sets
/// the variable and replays each experiment's flagship trace through
/// `gfair-trace fairness`. A no-op without the variable — experiments pay
/// nothing for observability they didn't ask for.
pub fn exp_trace(sim: Simulation) -> Simulation {
    static NEXT: AtomicU32 = AtomicU32::new(0);
    let Some(dir) = std::env::var_os("GFAIR_TRACE_DIR") else {
        return sim;
    };
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let exe = std::env::current_exe()
        .ok()
        .and_then(|p| p.file_stem().map(|s| s.to_string_lossy().into_owned()))
        .unwrap_or_else(|| "exp".to_string());
    let path = std::path::Path::new(&dir).join(format!("{exe}_{n:02}.jsonl"));
    if let Err(e) = sim.obs().jsonl(&path) {
        eprintln!("exp_trace: cannot open {}: {e}", path.display());
    }
    sim
}

/// One optional fault for a [`policy_faceoff`] run: fail a server at an
/// hour, recover it at a later hour.
pub type FaceoffFault = (ServerId, u64, u64);

/// Runs every policy in [`PolicyId::ALL`] on the *same* cluster, trace,
/// seed and (optional) fault schedule, and renders the head-to-head
/// comparison table the P-family experiments share. All fairness columns
/// come from the trace-driven fairness ledger (`ObsSummary::ledger`), not
/// the report: cumulative Jain over entitlement-normalized service, Gini
/// over the ledger's per-user received totals, worst finish-time-fairness
/// ρ over finished jobs, and cluster GPU-hours integrated from per-round
/// received GPU-rounds.
pub fn policy_faceoff(
    cluster: &ClusterSpec,
    users: &[UserSpec],
    jobs: &[JobSpec],
    seed: u64,
    horizon: SimTime,
    fault: Option<FaceoffFault>,
) -> Table {
    let mut table = Table::new(vec![
        "policy",
        "jain",
        "gini",
        "worst rho",
        "gpu-hours",
        "finished",
        "util",
    ]);
    for policy in PolicyId::ALL {
        let obs: SharedObs = Arc::new(Obs::new());
        let mut sim = Simulation::new(
            cluster.clone(),
            users.to_vec(),
            jobs.to_vec(),
            sim_config(seed),
        )
        .expect("valid setup")
        .with_obs(Arc::clone(&obs));
        if let Some((server, down_h, up_h)) = fault {
            sim = sim
                .with_server_failure(server, SimTime::from_secs(down_h * 3600))
                .with_server_recovery(server, SimTime::from_secs(up_h * 3600));
        }
        let sim = exp_trace(sim);
        let mut sched = build_policy(GfairConfig::default().with_policy(policy), Arc::clone(&obs));
        let report = sim.run_until(sched.as_mut(), horizon).expect("valid run");
        let ledger = obs.summary().ledger;
        // Ledger rows carry GPU-rounds; one round is one quantum.
        let quantum_hours = sim_config(seed).quantum.as_secs_f64() / 3600.0;
        let gpu_hours: f64 = ledger
            .users
            .iter()
            .map(|row| row.received * quantum_hours)
            .sum();
        let worst_rho = ledger
            .users
            .iter()
            .map(|row| row.rho_max)
            .fold(ledger.rho.max, f64::max);
        // Run-level Gini over what each user received in total (the
        // ledger's own `gini` field is the *latest round's* spread, which
        // degenerates once the trace drains).
        let received: Vec<f64> = ledger.users.iter().map(|row| row.received).collect();
        let gini = gfair_metrics::fairness::gini(&received);
        table.row(vec![
            policy.name().to_string(),
            format!("{:.3}", ledger.jain),
            format!("{gini:.3}"),
            format!("{worst_rho:.2}"),
            format!("{gpu_hours:.1}"),
            format!("{}/{}", report.finished_jobs(), report.jobs.len()),
            format!("{:.1}%", report.utilization() * 100.0),
        ]);
    }
    table
}

/// Prints the standard experiment header.
pub fn banner(id: &str, claim: &str) {
    println!("== {id} ==");
    println!("claim: {claim}");
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testbed_is_paper_scale() {
        assert_eq!(testbed().total_gpus(), 200);
    }

    #[test]
    fn default_seed_is_42() {
        assert_eq!(seed_arg(), 42);
    }

    #[test]
    fn trading_cluster_has_scarce_fast_gpus() {
        let c = trading_cluster();
        let per_gen = c.gpus_per_gen();
        let k80 = per_gen[&gfair_types::GenId::new(0)];
        let v100 = per_gen[&gfair_types::GenId::new(2)];
        assert!(k80 > 5 * v100, "V100s must be scarce: {k80} vs {v100}");
    }
}
