//! Shared plumbing for the experiment binaries.
//!
//! Each `exp_*` binary in `src/bin/` regenerates one table or figure of the
//! reconstructed evaluation (see DESIGN.md for the index and EXPERIMENTS.md
//! for recorded outputs). All binaries accept `--seed <n>` and print
//! deterministic ASCII tables.

use gfair_sim::Simulation;
use gfair_types::{ClusterSpec, GenCatalog, SimConfig, SimTime};
use std::sync::atomic::{AtomicU32, Ordering};

/// Parses `--seed <n>` from argv; defaults to 42.
pub fn seed_arg() -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(42)
}

/// Parses a `--horizon-hours <n>` override; defaults to `default_hours`.
pub fn horizon_arg(default_hours: u64) -> SimTime {
    let args: Vec<String> = std::env::args().collect();
    let hours = args
        .iter()
        .position(|a| a == "--horizon-hours")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default_hours);
    SimTime::from_secs(hours * 3600)
}

/// The paper-scale 200-GPU heterogeneous testbed.
pub fn testbed() -> ClusterSpec {
    ClusterSpec::paper_testbed()
}

/// A K80-heavy two-generation cluster where V100s are scarce — the trading
/// experiments' setting.
pub fn trading_cluster() -> ClusterSpec {
    ClusterSpec::build(
        GenCatalog::k80_p100_v100(),
        &[("K80", 10, 8), ("V100", 3, 4)],
    )
}

/// Default simulator config for experiments (the paper's minute quantum).
pub fn sim_config(seed: u64) -> SimConfig {
    SimConfig::default().with_seed(seed)
}

/// Attaches a default-tier JSONL trace sink to the simulation when
/// `GFAIR_TRACE_DIR` is set, writing `<dir>/<binary>_<n>.jsonl` (`n`
/// counts simulations within the process, so a scheduler-comparison loop
/// gets one trace per configuration). `scripts/run_experiments.sh` sets
/// the variable and replays each experiment's flagship trace through
/// `gfair-trace fairness`. A no-op without the variable — experiments pay
/// nothing for observability they didn't ask for.
pub fn exp_trace(sim: Simulation) -> Simulation {
    static NEXT: AtomicU32 = AtomicU32::new(0);
    let Some(dir) = std::env::var_os("GFAIR_TRACE_DIR") else {
        return sim;
    };
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let exe = std::env::current_exe()
        .ok()
        .and_then(|p| p.file_stem().map(|s| s.to_string_lossy().into_owned()))
        .unwrap_or_else(|| "exp".to_string());
    let path = std::path::Path::new(&dir).join(format!("{exe}_{n:02}.jsonl"));
    if let Err(e) = sim.obs().jsonl(&path) {
        eprintln!("exp_trace: cannot open {}: {e}", path.display());
    }
    sim
}

/// Prints the standard experiment header.
pub fn banner(id: &str, claim: &str) {
    println!("== {id} ==");
    println!("claim: {claim}");
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testbed_is_paper_scale() {
        assert_eq!(testbed().total_gpus(), 200);
    }

    #[test]
    fn default_seed_is_42() {
        assert_eq!(seed_arg(), 42);
    }

    #[test]
    fn trading_cluster_has_scarce_fast_gpus() {
        let c = trading_cluster();
        let per_gen = c.gpus_per_gen();
        let k80 = per_gen[&gfair_types::GenId::new(0)];
        let v100 = per_gen[&gfair_types::GenId::new(2)];
        assert!(k80 > 5 * v100, "V100s must be scarce: {k80} vs {v100}");
    }
}
