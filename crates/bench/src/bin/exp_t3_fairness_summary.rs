//! Experiment T3 `fairness_summary` — fairness indices across schedulers.
//!
//! Same trace as F4 but with *asymmetric job counts* (one user floods),
//! which is where user-level fairness separates the schedulers: job-level
//! time slicing rewards flooding; Gandiva_fair and the quota schedulers do
//! not. Reports Jain index and max-min ratio on entitlement-normalized
//! service.
//!
//! Run: `cargo run -p gfair-bench --release --bin exp_t3_fairness_summary [--seed N]`

use gfair_baselines::{Drf, Fifo, GandivaLike, StaticPartition};
use gfair_bench::{banner, exp_trace, horizon_arg, seed_arg, sim_config, testbed};
use gfair_core::{GandivaFair, GfairConfig};
use gfair_metrics::fairness::{jain_index, max_min_ratio, normalized_shares};
use gfair_metrics::Table;
use gfair_sim::{ClusterScheduler, Simulation};
use gfair_types::{JobSpec, SimTime, UserSpec};
use gfair_workloads::philly::uniform_batch;
use gfair_workloads::zoo_by_name;

/// 4 users, equal tickets; user 0 floods with 4x the jobs of the others.
fn trace() -> (Vec<UserSpec>, Vec<JobSpec>) {
    let users = UserSpec::equal_users(4, 100);
    let model = zoo_by_name("ResNet-50").expect("zoo model");
    let mut jobs = Vec::new();
    // Every user holds enough jobs (60 > 50-GPU entitlement) to consume a
    // full fair share, so the capped max-min ideal is exactly 0.25 each.
    let counts = [160u32, 60, 60, 60];
    let mut next = 0u32;
    for (u, &count) in counts.iter().enumerate() {
        jobs.extend(uniform_batch(
            next,
            users[u].id,
            &model,
            count,
            1,
            50.0 * 3600.0,
            SimTime::ZERO,
        ));
        next += count;
    }
    (users, jobs)
}

fn main() {
    let seed = seed_arg();
    banner(
        "T3 fairness_summary",
        "with one user flooding 4x the jobs, only user-level schedulers keep normalized service flat (Jain ~ 1)",
    );
    println!("200-GPU testbed, 4 equal-ticket users, user0 floods (160 vs 60 jobs), 6 h\n");

    let (users, jobs) = trace();
    let scheds: Vec<Box<dyn ClusterScheduler>> = vec![
        Box::new(GandivaFair::new(GfairConfig::default())),
        Box::new(GandivaLike::new()),
        Box::new(StaticPartition::new(&testbed(), &users)),
        Box::new(Drf::new()),
        Box::new(Fifo::new()),
    ];
    let mut table = Table::new(vec![
        "scheduler",
        "u0 share",
        "u1 share",
        "u2 share",
        "u3 share",
        "jain",
        "min/max",
        "util",
    ]);
    for mut sched in scheds {
        let sim = exp_trace(
            Simulation::new(testbed(), users.clone(), jobs.clone(), sim_config(seed))
                .expect("valid setup"),
        );
        let report = sim
            .run_until(sched.as_mut(), horizon_arg(6))
            .expect("valid run");
        let received: Vec<f64> = users.iter().map(|u| report.gpu_secs_of(u.id)).collect();
        let total: f64 = received.iter().sum();
        let norm = normalized_shares(&received, &vec![1.0; users.len()]);
        let mut row = vec![report.scheduler.clone()];
        row.extend(received.iter().map(|r| format!("{:.3}", r / total)));
        row.push(format!("{:.3}", jain_index(&norm)));
        row.push(format!("{:.3}", max_min_ratio(&norm)));
        row.push(format!("{:.1}%", report.utilization() * 100.0));
        table.row(row);
    }
    println!("{}", table.render());
    println!("(ideal fair share = 0.250 per user regardless of job count)");
}
