//! Ablation F8 `quantum_sweep` — picking the time-slicing quantum.
//!
//! Gandiva-style suspend/resume costs a few seconds per switch; the quantum
//! trades that overhead against scheduling granularity. With a 6 s switch
//! cost, this sweep measures, for quanta from 30 s to 10 min:
//!
//! * effective throughput (training progress / GPU occupancy) of a
//!   saturating long-job workload, and
//! * the mean JCT of a stream of short (5-minute) jobs sharing the server —
//!   long quanta make short jobs wait out whole rounds.
//!
//! The paper's minute-granularity choice sits at the knee: >90% effective
//! throughput with near-minimal short-job latency.
//!
//! Run: `cargo run -p gfair-bench --release --bin exp_f8_quantum_sweep [--seed N]`

use gfair_bench::{banner, exp_trace, seed_arg};
use gfair_core::{GandivaFair, GfairConfig};
use gfair_metrics::Table;
use gfair_sim::Simulation;
use gfair_types::{ClusterSpec, SimConfig, SimDuration, SimTime, UserId, UserSpec};
use gfair_workloads::philly::uniform_batch;
use gfair_workloads::zoo_by_name;

fn main() {
    let seed = seed_arg();
    banner(
        "F8 quantum_sweep",
        "longer quanta amortize the suspend/resume cost but slow share re-convergence; the paper's ~1 min quantum sits at the knee",
    );
    println!(
        "8 GPUs; user0: 8 saturating long jobs; user1: a 5-min job every 10 min; 6 s switch cost\n"
    );

    let mut table = Table::new(vec![
        "quantum",
        "occupancy",
        "effective",
        "efficiency",
        "short-job mean JCT",
    ]);
    for quantum_secs in [30u64, 60, 120, 300, 600] {
        let model = zoo_by_name("ResNet-50").expect("zoo model");
        let mut trace = uniform_batch(
            0,
            UserId::new(0),
            &model,
            8,
            1,
            200.0 * 3600.0,
            SimTime::ZERO,
        );
        for k in 0..30u32 {
            trace.extend(uniform_batch(
                100 + k,
                UserId::new(1),
                &model,
                1,
                1,
                300.0,
                // Offset from round boundaries so the queueing delay to the
                // next quantum edge is actually exercised.
                SimTime::from_secs(600 * (k as u64 + 1) + 17),
            ));
        }
        let mut cfg = SimConfig::default()
            .with_seed(seed)
            .with_quantum(SimDuration::from_secs(quantum_secs))
            .with_switch_overhead(SimDuration::from_secs(6));
        // Keep periodic services legal for sub-minute and long quanta.
        cfg.balance_interval = cfg.quantum.max(SimDuration::from_mins(5));
        cfg.trade_interval = cfg.quantum.max(SimDuration::from_mins(10));
        cfg.profile_stint = cfg.quantum.max(SimDuration::from_mins(3));
        cfg.report_window = cfg.quantum.max(SimDuration::from_mins(5));
        let cluster = ClusterSpec::homogeneous(1, 8);
        let users = UserSpec::equal_users(2, 100);
        let sim = exp_trace(Simulation::new(cluster, users, trace, cfg).expect("valid setup"));
        let mut sched = GandivaFair::new(GfairConfig::default());
        let report = sim
            .run_until(&mut sched, SimTime::from_secs(6 * 3600))
            .expect("valid run");

        let occupancy = report.utilization();
        let effective = report.total_base_secs() / report.gpu_secs_capacity;
        // Mean JCT of user1's short jobs (ids 100..130).
        let short_jcts: Vec<_> = report
            .jobs
            .values()
            .filter(|j| j.user == UserId::new(1))
            .filter_map(|j| j.jct())
            .collect();
        let mean_jct = if short_jcts.is_empty() {
            f64::NAN
        } else {
            short_jcts.iter().map(|d| d.as_secs_f64()).sum::<f64>() / short_jcts.len() as f64
        };
        table.row(vec![
            format!("{quantum_secs} s"),
            format!("{:.1}%", occupancy * 100.0),
            format!("{:.1}%", effective * 100.0),
            format!("{:.1}%", 100.0 * effective / occupancy.max(1e-9)),
            format!("{:.1} min", mean_jct / 60.0),
        ]);
    }
    println!("{}", table.render());
    println!(
        "(effective = training progress; efficiency = effective/occupancy — the switch-cost loss;"
    );
    println!(
        " long quanta also strand GPUs when short jobs finish mid-round, hence lower occupancy)"
    );
}
