//! Ablation A3 `lottery_variance` — why stride and not lottery?
//!
//! Lottery scheduling is proportional in expectation, but a user's share in
//! any short window fluctuates; stride pins it deterministically. This
//! experiment runs the same two-user contention workload under Gandiva_fair
//! (stride) and the user-fair gang lottery, then reports each user's mean
//! absolute deviation from the 50% fair share across 15-minute buckets.
//!
//! Run: `cargo run -p gfair-bench --release --bin exp_a3_lottery_variance [--seed N]`

use gfair_baselines::LotteryGang;
use gfair_bench::{banner, exp_trace, seed_arg, sim_config};
use gfair_core::{GandivaFair, GfairConfig};
use gfair_metrics::Table;
use gfair_sim::{ClusterScheduler, SimReport, Simulation};
use gfair_types::{ClusterSpec, SimTime, UserId, UserSpec};
use gfair_workloads::philly::uniform_batch;
use gfair_workloads::zoo_by_name;

fn run(sched: &mut dyn ClusterScheduler, seed: u64) -> SimReport {
    let cluster = ClusterSpec::homogeneous(2, 8);
    let users = UserSpec::equal_users(2, 100);
    let model = zoo_by_name("ResNet-50").expect("zoo model");
    let mut trace = uniform_batch(
        0,
        UserId::new(0),
        &model,
        20,
        1,
        200.0 * 3600.0,
        SimTime::ZERO,
    );
    trace.extend(uniform_batch(
        100,
        UserId::new(1),
        &model,
        20,
        1,
        200.0 * 3600.0,
        SimTime::ZERO,
    ));
    let sim =
        exp_trace(Simulation::new(cluster, users, trace, sim_config(seed)).expect("valid setup"));
    sim.run_until(sched, SimTime::from_secs(12 * 3600))
        .expect("valid run")
}

/// Mean absolute deviation of user 0's share from 0.5, over 15-minute
/// buckets (3 windows each), plus the worst bucket.
fn share_noise(report: &SimReport) -> (f64, f64) {
    let mut devs = Vec::new();
    for chunk in report.timeseries.chunks(3) {
        let mine: f64 = chunk
            .iter()
            .map(|w| w.user_gpu_secs.get(&UserId::new(0)).copied().unwrap_or(0.0))
            .sum();
        let total: f64 = chunk.iter().map(|w| w.used_gpu_secs).sum();
        if total > 0.0 {
            devs.push((mine / total - 0.5).abs());
        }
    }
    let mean = devs.iter().sum::<f64>() / devs.len().max(1) as f64;
    let worst = devs.iter().cloned().fold(0.0, f64::max);
    (mean, worst)
}

fn main() {
    let seed = seed_arg();
    banner(
        "A3 lottery_variance",
        "stride pins short-window shares at the entitlement; lottery wanders around it — the reason the paper builds on stride",
    );
    println!("16 GPUs, 2 equal users x 20 one-GPU jobs, 12 h; share deviation from 0.5 per 15-min bucket\n");

    let mut table = Table::new(vec!["scheduler", "mean |share-0.5|", "worst bucket"]);
    let mut gf = GandivaFair::new(GfairConfig::default());
    let r = run(&mut gf, seed);
    let (mean, worst) = share_noise(&r);
    table.row(vec![
        "gandiva-fair (stride)".into(),
        format!("{mean:.4}"),
        format!("{worst:.4}"),
    ]);
    let mut lg = LotteryGang::new(seed);
    let r = run(&mut lg, seed);
    let (mean, worst) = share_noise(&r);
    table.row(vec![
        "lottery-gang".into(),
        format!("{mean:.4}"),
        format!("{worst:.4}"),
    ]);
    println!("{}", table.render());
}
