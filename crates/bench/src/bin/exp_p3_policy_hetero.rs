//! Experiment P3 `policy_hetero` — the policy zoo where heterogeneity
//! matters most.
//!
//! The trading cluster (80 K80s, 12 scarce V100s) with mixed model classes
//! is where the policies' heterogeneity handling separates: `gfair` trades
//! fast-GPU entitlements to the users who benefit, `gavel-hetero` steers
//! fast GPUs via profiled speedups inside the water-fill, and `themis-ftf`
//! ignores heterogeneity except through its effect on finish times.
//!
//! Run: `cargo run -p gfair-bench --release --bin exp_p3_policy_hetero
//! [--seed N] [--horizon-hours H]`

use gfair_bench::{banner, horizon_arg, policy_faceoff, seed_arg, trading_cluster};
use gfair_types::UserSpec;
use gfair_workloads::{PhillyParams, TraceBuilder};

fn main() {
    let seed = seed_arg();
    banner(
        "P3 policy_hetero",
        "with scarce fast GPUs, heterogeneity-aware policies (gfair trading, gavel water-filling) convert speedup estimates into extra effective GPU-hours",
    );
    println!("92-GPU trading cluster (80 K80 + 12 V100), 6 equal-ticket users, Philly trace (120 jobs)\n");

    let users = UserSpec::equal_users(6, 100);
    let mut params = PhillyParams::default();
    params.num_jobs = 120;
    params.jobs_per_hour = 90.0;
    params.median_service_mins = 30.0;
    let jobs = TraceBuilder::new(params, seed).build(&users);

    let table = policy_faceoff(
        &trading_cluster(),
        &users,
        &jobs,
        seed,
        horizon_arg(6),
        None,
    );
    println!("{}", table.render());
    println!("(all columns except finished/util come from the fairness ledger)");
}
