//! Experiment F11 `partition` — degraded-mode scheduling across a network
//! partition (extension).
//!
//! Not a figure from the paper's evaluation. A partition differs from the
//! F9 server failure in the one way that matters: the server is *alive but
//! unreachable* — its residents keep running on the last stride weights the
//! central scheduler delivered, while placement and balancing route around
//! it. On heal the scheduler reconciles (re-syncs entitlements, re-validates
//! residency) and the auditor checks that tickets were conserved across the
//! heal. The claim pinned here is that degradation is graceful: little
//! service is actually lost, shares re-converge after the heal, and exactly
//! one reconcile with zero residency drift is needed.
//!
//! Scenario: the 200-GPU testbed with one K80 server partitioned for two
//! hours in the middle of an 8-hour, 6-user run, vs the same run unfaulted.
//!
//! Run: `cargo run -p gfair-bench --release --bin exp_f11_partition [--seed N]`

use gfair_bench::{banner, exp_trace, seed_arg, sim_config, testbed};
use gfair_core::{GandivaFair, GfairConfig};
use gfair_faults::FaultPlan;
use gfair_metrics::fairness::{jain_index, normalized_shares};
use gfair_metrics::Table;
use gfair_obs::{Obs, SharedObs};
use gfair_sim::{SimReport, Simulation};
use gfair_types::{ServerId, SimTime, UserSpec};
use gfair_workloads::{PhillyParams, TraceBuilder};
use std::sync::Arc;

fn run(partition: bool, seed: u64) -> SimReport {
    let users = UserSpec::equal_users(6, 100);
    let mut params = PhillyParams::default();
    params.num_jobs = 300;
    params.jobs_per_hour = 100.0;
    params.median_service_mins = 120.0;
    let trace = TraceBuilder::new(params, seed).build(&users);
    let obs: SharedObs = Arc::new(Obs::new());
    let mut sim = exp_trace(
        Simulation::new(testbed(), users, trace, sim_config(seed))
            .expect("valid setup")
            .with_obs(Arc::clone(&obs)),
    );
    if partition {
        let plan = FaultPlan::none().with_partition(
            ServerId::new(0),
            SimTime::from_secs(3 * 3600),
            SimTime::from_secs(5 * 3600),
        );
        sim = sim.with_faults(plan);
    }
    let mut sched = GandivaFair::new(GfairConfig::default()).with_obs(Arc::clone(&obs));
    sim.run_until(&mut sched, SimTime::from_secs(8 * 3600))
        .expect("valid run")
}

fn counter(report: &SimReport, name: &str) -> u64 {
    report
        .obs
        .as_ref()
        .and_then(|s| s.counters.get(name).copied())
        .unwrap_or(0)
}

fn main() {
    let seed = seed_arg();
    banner(
        "F11 partition (extension)",
        "a partitioned server degrades gracefully on stale weights; on heal one reconcile re-syncs state and shares re-converge",
    );
    println!(
        "200-GPU testbed; server 0 unreachable 03:00-05:00; 6 users, 300 jobs, 8 h, seed {seed}\n"
    );

    let users = UserSpec::equal_users(6, 100);
    let mut table = Table::new(vec![
        "run",
        "util",
        "finished",
        "jain(norm)",
        "migrations",
        "reconciles",
        "drift",
    ]);
    for (name, partition) in [("no partition", false), ("with partition", true)] {
        let report = run(partition, seed);
        let received: Vec<f64> = users.iter().map(|u| report.gpu_secs_of(u.id)).collect();
        let jain = jain_index(&normalized_shares(&received, &vec![1.0; users.len()]));
        table.row(vec![
            name.to_string(),
            format!("{:.1}%", report.utilization() * 100.0),
            report.finished_jobs().to_string(),
            format!("{jain:.3}"),
            report.migrations.to_string(),
            counter(&report, "reconciles").to_string(),
            counter(&report, "reconcile_drift").to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("(the partitioned server keeps serving its residents throughout, so utilization barely moves;");
    println!(" 'drift' is the residency mismatch the post-heal reconcile had to repair)");
}
