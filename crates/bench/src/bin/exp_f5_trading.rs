//! Experiment F5 `trading` — automatic GPU trading on a heterogeneous
//! cluster.
//!
//! A low-speedup team and a high-speedup team share a K80-heavy cluster
//! with scarce V100s. With trading on, the low-speedup team sells its V100
//! entitlement for extra K80 capacity at a price that leaves nobody worse
//! off. The figure: per-team effective (base-GPU-equivalent) throughput and
//! V100 occupancy, trading off vs on.
//!
//! Run: `cargo run -p gfair-bench --release --bin exp_f5_trading [--seed N]`

use gfair_bench::{banner, exp_trace, horizon_arg, seed_arg, sim_config, trading_cluster};
use gfair_core::{GandivaFair, GfairConfig};
use gfair_metrics::Table;
use gfair_sim::{SimReport, Simulation};
use gfair_types::{GenId, UserId};
use gfair_workloads::population::UserPopulation;
use gfair_workloads::{ModelClass, PhillyParams};

fn population() -> UserPopulation {
    UserPopulation::new()
        .user_of_class("vae-team", 100, ModelClass::LowSpeedup)
        .user_of_class("cnn-team", 100, ModelClass::HighSpeedup)
}

fn run(trading: bool, seed: u64) -> (SimReport, usize) {
    let pop = population();
    let mut params = PhillyParams::default();
    params.num_jobs = 200;
    params.jobs_per_hour = 60.0;
    params.median_service_mins = 150.0;
    let trace = pop.trace(params, seed);
    let cfg = if trading {
        GfairConfig::default()
    } else {
        GfairConfig::default().without_trading()
    };
    let sim = exp_trace(
        Simulation::new(trading_cluster(), pop.users(), trace, sim_config(seed))
            .expect("valid setup"),
    );
    let mut sched = GandivaFair::new(cfg);
    let report = sim
        .run_until(&mut sched, horizon_arg(10))
        .expect("valid run");
    (report, sched.trades().len())
}

fn main() {
    let seed = seed_arg();
    banner(
        "F5 trading",
        "trading V100 entitlement from the ~1.2x team to the ~5x team raises both teams' effective throughput and cluster efficiency; no team falls below its fair share",
    );
    println!(
        "cluster: 80 K80 + 12 V100; vae-team (LowSpeedup) vs cnn-team (HighSpeedup); seed {seed}\n"
    );

    let (off, _) = run(false, seed);
    let (on, trades) = run(true, seed);
    let v100 = GenId::new(2);

    let v100_secs = |r: &SimReport, u: u32| {
        r.user_gen_gpu_secs
            .get(&(UserId::new(u), v100))
            .copied()
            .unwrap_or(0.0)
    };
    let mut table = Table::new(vec!["metric", "trading off", "trading on", "change"]);
    let rows: Vec<(&str, f64, f64)> = vec![
        (
            "vae-team base-eq GPU-hours",
            off.base_secs_of(UserId::new(0)) / 3600.0,
            on.base_secs_of(UserId::new(0)) / 3600.0,
        ),
        (
            "cnn-team base-eq GPU-hours",
            off.base_secs_of(UserId::new(1)) / 3600.0,
            on.base_secs_of(UserId::new(1)) / 3600.0,
        ),
        (
            "cluster base-eq GPU-hours",
            off.total_base_secs() / 3600.0,
            on.total_base_secs() / 3600.0,
        ),
        (
            "vae-team V100 GPU-hours",
            v100_secs(&off, 0) / 3600.0,
            v100_secs(&on, 0) / 3600.0,
        ),
        (
            "cnn-team V100 GPU-hours",
            v100_secs(&off, 1) / 3600.0,
            v100_secs(&on, 1) / 3600.0,
        ),
        (
            "jobs finished",
            off.finished_jobs() as f64,
            on.finished_jobs() as f64,
        ),
    ];
    for (name, a, b) in rows {
        let change = if a > 0.0 {
            format!("{:+.1}%", 100.0 * (b - a) / a)
        } else {
            "n/a".into()
        };
        table.row(vec![
            name.to_string(),
            format!("{a:.1}"),
            format!("{b:.1}"),
            change,
        ]);
    }
    println!("{}", table.render());
    println!("trades executed: {trades}");

    // The abstract's motivation, measured directly: how much training value
    // each scarce V100 hour yields (base-GPU-equivalents per V100-hour),
    // using the class-mean true speedups of the two teams' model pools.
    // Trading moves V100 time to the jobs that extract the most from it.
    let yield_per_v100_hour = |r: &SimReport| {
        let low_mean = 1.34; // mean V100 speedup of the LowSpeedup zoo class
        let high_mean = 4.20; // mean of the HighSpeedup class
        let low = v100_secs(r, 0);
        let high = v100_secs(r, 1);
        (low * low_mean + high * high_mean) / (low + high).max(1e-9)
    };
    println!();
    println!(
        "effective yield per V100-hour: {:.2} base-GPU-hours (off) -> {:.2} (on)",
        yield_per_v100_hour(&off),
        yield_per_v100_hour(&on)
    );
    println!("(raw occupancy stays high either way — work conservation — but trading");
    println!(" fills the scarce fast GPUs with the jobs that benefit ~5x, not ~1.2x)");
}
