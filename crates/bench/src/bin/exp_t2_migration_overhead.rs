//! Experiment T2 `migration_overhead` — cost of suspend/checkpoint/restore.
//!
//! Part 1: the per-model migration outage table (checkpoint + restore).
//! Part 2: throughput impact — a single long job is force-migrated every K
//! rounds; the figure is the fraction of ideal progress retained as
//! migration frequency rises. The paper's claim in shape: sub-minute
//! migration costs are negligible at realistic (many-minute) migration
//! intervals.
//!
//! Run: `cargo run -p gfair-bench --bin exp_t2_migration_overhead`

use gfair_bench::{banner, exp_trace, sim_config};
use gfair_metrics::Table;
use gfair_sim::{Action, ClusterScheduler, RoundPlan, SimView, Simulation};
use gfair_types::{ClusterSpec, JobId, JobSpec, JobState, ServerId, SimTime, UserId, UserSpec};
use gfair_workloads::zoo;
use std::sync::Arc;

/// Ping-pongs job 0 between servers 0 and 1 every `every` rounds.
struct PingPong {
    every: u64,
    rounds: u64,
    at: ServerId,
}

impl ClusterScheduler for PingPong {
    fn name(&self) -> &'static str {
        "ping-pong"
    }
    fn on_job_arrival(&mut self, _v: &SimView<'_>, job: JobId) -> Vec<Action> {
        vec![Action::Place {
            job,
            server: ServerId::new(0),
        }]
    }
    fn plan_round(&mut self, view: &SimView<'_>) -> RoundPlan {
        self.rounds += 1;
        let mut plan = RoundPlan::empty();
        if self.every > 0 && self.rounds.is_multiple_of(self.every) {
            let to = ServerId::new(1 - self.at.raw());
            if view
                .job(JobId::new(0))
                .map(|j| j.state == JobState::Resident)
                .unwrap_or(false)
            {
                self.at = to;
                plan.actions.push(Action::Migrate {
                    job: JobId::new(0),
                    to,
                });
                return plan;
            }
        }
        for server in &view.cluster().servers {
            for job in view.resident(server.id) {
                plan.run_on(server.id, job);
            }
        }
        plan
    }
}

fn main() {
    banner(
        "T2 migration_overhead",
        "checkpoint/restore outages are sub-minute per model and negligible at realistic migration intervals",
    );

    // Part 1: the per-model outage table.
    let mut table = Table::new(vec!["model", "checkpoint(s)", "restore(s)", "outage(s)"]);
    for e in zoo() {
        table.row(vec![
            e.model.name.clone(),
            format!("{:.0}", e.model.checkpoint.as_secs_f64()),
            format!("{:.0}", e.model.restore.as_secs_f64()),
            format!("{:.0}", e.model.migration_cost().as_secs_f64()),
        ]);
    }
    println!("{}", table.render());

    // Part 2: throughput retained vs forced migration interval.
    let model = Arc::new(gfair_types::ModelProfile::with_default_overheads(
        "probe",
        vec![1.0],
    )); // 60 s outage per move
    let horizon = SimTime::from_secs(4 * 3600);
    let mut sweep = Table::new(vec!["migrate every", "migrations", "progress vs ideal"]);
    for every in [0u64, 60, 30, 15, 10, 5] {
        let trace = vec![JobSpec::new(
            JobId::new(0),
            UserId::new(0),
            Arc::clone(&model),
            1,
            1_000_000.0,
            SimTime::ZERO,
        )];
        let sim = exp_trace(
            Simulation::new(
                ClusterSpec::homogeneous(2, 1),
                UserSpec::equal_users(1, 100),
                trace,
                sim_config(1),
            )
            .expect("valid setup"),
        );
        let mut sched = PingPong {
            every,
            rounds: 0,
            at: ServerId::new(0),
        };
        let report = sim.run_until(&mut sched, horizon).expect("valid run");
        let ideal = horizon.as_secs_f64();
        let label = if every == 0 {
            "never".to_string()
        } else {
            format!("{every} min")
        };
        sweep.row(vec![
            label,
            report.migrations.to_string(),
            format!("{:.1}%", 100.0 * report.gpu_secs_used / ideal),
        ]);
    }
    println!("{}", sweep.render());
    println!("(60 s quantum; each migration costs the probe model 60 s of outage)");
}
