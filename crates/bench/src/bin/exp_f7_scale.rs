//! Experiment F7 `scale` — does the scheduler hold up beyond the testbed?
//!
//! Scales the cluster from 200 to 2000 GPUs with load and user count scaled
//! proportionally. Reports wall-clock scheduling cost per simulated round
//! (the central scheduler's decision latency) alongside fairness and
//! utilization — fairness must not degrade with scale, and per-round
//! decision time must stay far below the 60 s quantum.
//!
//! Run: `cargo run -p gfair-bench --release --bin exp_f7_scale [--seed N]`

use gfair_bench::{banner, exp_trace, seed_arg, sim_config};
use gfair_core::{GandivaFair, GfairConfig};
use gfair_metrics::fairness::{jain_index, normalized_shares};
use gfair_metrics::Table;
use gfair_sim::Simulation;
use gfair_types::{ClusterSpec, GenCatalog, SimTime, UserSpec};
use gfair_workloads::{PhillyParams, TraceBuilder};
use std::time::Instant;

fn cluster_of(scale: u32) -> ClusterSpec {
    ClusterSpec::build(
        GenCatalog::k80_p100_v100(),
        &[
            ("K80", 16 * scale, 8),
            ("P100", 12 * scale, 4),
            ("V100", 6 * scale, 4),
        ],
    )
}

fn main() {
    let seed = seed_arg();
    banner(
        "F7 scale",
        "decision latency stays orders of magnitude below the quantum and fairness holds as the cluster grows 10x",
    );

    let mut table = Table::new(vec![
        "GPUs",
        "servers",
        "users",
        "jobs",
        "sim rounds",
        "ms/round",
        "util",
        "jain(norm)",
    ]);
    for scale in [1u32, 2, 5, 10] {
        let cluster = cluster_of(scale);
        let gpus = cluster.total_gpus();
        let servers = cluster.servers.len();
        let n_users = 4 * scale;
        let users = UserSpec::equal_users(n_users, 100);
        let mut params = PhillyParams::default();
        params.num_jobs = 150 * scale as usize;
        params.jobs_per_hour = 60.0 * scale as f64;
        params.median_service_mins = 120.0;
        let trace = TraceBuilder::new(params, seed).build(&users);
        let sim = exp_trace(
            Simulation::new(cluster, users.clone(), trace, sim_config(seed)).expect("valid setup"),
        );
        let mut sched = GandivaFair::new(GfairConfig::default());
        let start = Instant::now();
        let report = sim
            .run_until(&mut sched, SimTime::from_secs(6 * 3600))
            .expect("valid run");
        let elapsed = start.elapsed();
        let received: Vec<f64> = users.iter().map(|u| report.gpu_secs_of(u.id)).collect();
        let jain = jain_index(&normalized_shares(&received, &vec![1.0; users.len()]));
        table.row(vec![
            gpus.to_string(),
            servers.to_string(),
            n_users.to_string(),
            (150 * scale).to_string(),
            report.rounds.to_string(),
            format!("{:.2}", elapsed.as_millis() as f64 / report.rounds as f64),
            format!("{:.1}%", report.utilization() * 100.0),
            format!("{jain:.3}"),
        ]);
    }
    println!("{}", table.render());
    println!("(ms/round is wall-clock cost of one 60 s scheduling quantum, whole engine included)");
}
