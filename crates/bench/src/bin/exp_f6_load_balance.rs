//! Experiment F6 `load_balance` — migration keeps draining servers busy.
//!
//! Time slicing is per server, so load imbalance directly costs utilization
//! and fairness. Continuous arrivals self-balance through placement; the
//! hard case — and this experiment — is **burst-then-drain**: a burst of
//! jobs with heavy-tailed durations arrives at t=0, then servers drain
//! unevenly as short jobs finish. Without migration, emptied servers idle
//! while crowded ones stay oversubscribed; the balancer moves jobs (big
//! ones first) into the gaps.
//!
//! Figure: utilization, per-server service imbalance (CoV), mean JCT and
//! fairness, with the balancer off vs on.
//!
//! Run: `cargo run -p gfair-bench --release --bin exp_f6_load_balance [--seed N]`

use gfair_bench::{banner, exp_trace, horizon_arg, seed_arg, sim_config};
use gfair_core::{GandivaFair, GfairConfig};
use gfair_metrics::fairness::{jain_index, normalized_shares};
use gfair_metrics::{JctStats, Table};
use gfair_sim::{SimReport, Simulation};
use gfair_types::{ClusterSpec, UserSpec};
use gfair_workloads::{PhillyParams, TraceBuilder};

fn run(balancing: bool, seed: u64) -> SimReport {
    let cluster = ClusterSpec::homogeneous(16, 4); // 64 GPUs
    let users = UserSpec::equal_users(4, 100);
    let mut params = PhillyParams::default();
    params.num_jobs = 120;
    // A near-instant burst: everything lands in the first few minutes.
    params.jobs_per_hour = 5000.0;
    params.median_service_mins = 60.0;
    params.service_sigma = 1.6; // heavy tail: minutes to a day
    params.gang_weights = [0.4, 0.2, 0.4, 0.0];
    let trace = TraceBuilder::new(params, seed).build(&users);
    let cfg = if balancing {
        GfairConfig::default()
    } else {
        GfairConfig::default().without_balancing()
    };
    let sim =
        exp_trace(Simulation::new(cluster, users, trace, sim_config(seed)).expect("valid setup"));
    let mut sched = GandivaFair::new(cfg);
    sim.run_until(&mut sched, horizon_arg(12))
        .expect("valid run")
}

/// Coefficient of variation of per-server dispensed GPU-seconds.
fn server_cov(report: &SimReport, servers: usize) -> f64 {
    let per: Vec<f64> = (0..servers as u32)
        .map(|s| {
            report
                .server_gpu_secs
                .get(&gfair_types::ServerId::new(s))
                .copied()
                .unwrap_or(0.0)
        })
        .collect();
    let mean = per.iter().sum::<f64>() / per.len() as f64;
    if mean <= 0.0 {
        return 0.0;
    }
    let var = per.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / per.len() as f64;
    var.sqrt() / mean
}

fn main() {
    let seed = seed_arg();
    banner(
        "F6 load_balance",
        "after a burst, servers drain unevenly; migration refills them, raising utilization and evening out per-server service",
    );
    println!("16 servers x 4 GPUs, 4 users, 120-job burst at t~0, heavy-tailed durations, 12 h\n");

    let users = UserSpec::equal_users(4, 100);
    let mut table = Table::new(vec![
        "variant",
        "util",
        "server CoV",
        "finished",
        "mean JCT(min)",
        "jain(norm)",
        "migrations",
    ]);
    for (name, balancing) in [("no balancing", false), ("with balancing", true)] {
        let report = run(balancing, seed);
        let received: Vec<f64> = users.iter().map(|u| report.gpu_secs_of(u.id)).collect();
        let jain = jain_index(&normalized_shares(&received, &vec![1.0; users.len()]));
        let jct = JctStats::from_durations(&report.jcts());
        table.row(vec![
            name.to_string(),
            format!("{:.1}%", report.utilization() * 100.0),
            format!("{:.3}", server_cov(&report, 16)),
            report.finished_jobs().to_string(),
            jct.map(|j| format!("{:.0}", j.mean_secs / 60.0))
                .unwrap_or("-".into()),
            format!("{jain:.3}"),
            report.migrations.to_string(),
        ]);
    }
    println!("{}", table.render());
}
