//! Experiment F10 `migration_faults` — bounded retry under checkpoint and
//! restore failures (extension).
//!
//! Not a figure from the paper's evaluation: the paper's testbed had working
//! checkpoint/restore, but any production deployment sees both fail. The
//! claim pinned here is that the retry path (exponential backoff, bounded by
//! `max_migration_retries`) keeps the schedule intact: jobs still finish,
//! fairness holds, and abandonment stays rare even at failure rates far
//! above anything a real cluster should sustain.
//!
//! Scenario: the 200-GPU testbed under a 6-user Philly-like trace, sweeping
//! the per-attempt checkpoint+restore failure rate 0% → 20%, with retries on
//! (default config) and off (`max_migration_retries = 0`).
//!
//! Run: `cargo run -p gfair-bench --release --bin exp_f10_migration_faults [--seed N]`

use gfair_bench::{banner, exp_trace, seed_arg, sim_config, testbed};
use gfair_core::{GandivaFair, GfairConfig};
use gfair_faults::FaultPlan;
use gfair_metrics::fairness::{jain_index, normalized_shares};
use gfair_metrics::Table;
use gfair_obs::{Obs, SharedObs};
use gfair_sim::{SimReport, Simulation};
use gfair_types::{SimDuration, SimTime, UserSpec};
use gfair_workloads::{PhillyParams, TraceBuilder};
use std::sync::Arc;

fn run(fail_rate: f64, retries: u32, seed: u64) -> (SimReport, u64) {
    let users = UserSpec::equal_users(6, 100);
    let mut params = PhillyParams::default();
    params.num_jobs = 300;
    params.jobs_per_hour = 100.0;
    params.median_service_mins = 120.0;
    let trace = TraceBuilder::new(params, seed).build(&users);
    let obs: SharedObs = Arc::new(Obs::new());
    let mut sim = exp_trace(
        Simulation::new(testbed(), users, trace, sim_config(seed))
            .expect("valid setup")
            .with_obs(Arc::clone(&obs)),
    );
    if fail_rate > 0.0 {
        let plan = FaultPlan::none()
            .with_seed(seed)
            .with_migration_fail_rates(fail_rate / 2.0, fail_rate / 2.0);
        sim = sim.with_faults(plan);
    }
    let cfg = GfairConfig::default().with_migration_retry(retries, SimDuration::from_secs(60));
    let mut sched = GandivaFair::new(cfg).with_obs(Arc::clone(&obs));
    let report = sim
        .run_until(&mut sched, SimTime::from_secs(8 * 3600))
        .expect("valid run");
    let abandoned = report
        .obs
        .as_ref()
        .and_then(|s| s.counters.get("migration_retries_abandoned").copied())
        .unwrap_or(0);
    (report, abandoned)
}

fn main() {
    let seed = seed_arg();
    banner(
        "F10 migration_faults (extension)",
        "bounded retry with backoff absorbs checkpoint/restore failures: jobs still finish, fairness holds, abandonment stays rare",
    );
    println!("200-GPU testbed; 6 users, 300 jobs, 8 h, seed {seed}; rate split evenly between checkpoint and restore\n");

    let users = UserSpec::equal_users(6, 100);
    let mut table = Table::new(vec![
        "fail rate",
        "retries",
        "finished",
        "jain(norm)",
        "migrations",
        "mig failures",
        "abandoned",
    ]);
    for rate_pct in [0u32, 5, 10, 20] {
        for retries in [3u32, 0] {
            if rate_pct == 0 && retries == 0 {
                continue; // no faults to retry: identical to the row above
            }
            let (report, abandoned) = run(rate_pct as f64 / 100.0, retries, seed);
            let received: Vec<f64> = users.iter().map(|u| report.gpu_secs_of(u.id)).collect();
            let jain = jain_index(&normalized_shares(&received, &vec![1.0; users.len()]));
            table.row(vec![
                format!("{rate_pct}%"),
                if retries == 0 { "off" } else { "3" }.to_string(),
                report.finished_jobs().to_string(),
                format!("{jain:.3}"),
                report.migrations.to_string(),
                report.migration_failures.to_string(),
                abandoned.to_string(),
            ]);
        }
    }
    println!("{}", table.render());
    println!("(a failed attempt is retried after 60 s, 120 s, 240 s; 'abandoned' counts jobs whose retries ran out)");
}
