//! End-to-end simulator throughput benchmark: the tracked perf baseline.
//!
//! Runs the full Gandiva_fair stack over long Philly-style traces at five
//! cluster scales (32 / 200 / 1000 / 5000 / 50000 GPUs) plus a one-million-
//! job trace on the 5000-GPU cluster, and reports, per scale:
//!
//! * **simulated GPU-hours per wall-clock second** — how much cluster time
//!   the simulator chews through per real second (the headline number), and
//! * **rounds per wall-clock second** — scheduler decision throughput.
//!
//! Results are written as JSON (default `BENCH_sim.json` in the repo root)
//! so the perf trajectory is tracked in-tree; `scripts/bench.sh` regenerates
//! the artifact and CI runs the `--quick` variant as a smoke test.
//!
//! `--no-fast-forward` disables the engine's quiescence fast-forward (the
//! naive quantum-by-quantum baseline). `--verify` runs every scale twice —
//! fully optimized (fast-forward + lazy settling) vs fully naive (both
//! off), with and without a fault plan — and fails unless the serialized
//! `SimReport`s are byte-identical; CI runs this as the equivalence gate.
//!
//! `--obs-overhead` runs one scale in both modes — tracing disabled vs the
//! default-tier JSONL sink (the `gfair simulate --trace` configuration) —
//! and fails if traced throughput drops below 75% of untraced; CI runs this
//! as the observability-overhead smoke. Both arms run with lazy plan
//! settling disabled: tracing forces eager planning anyway, so leaving lazy
//! on for the untraced arm would charge the planner speedup to the tracing
//! budget and the gate would measure the wrong thing. The budget is a
//! *ratio*, so it is restated whenever the untraced loop gets much faster
//! (it was 90% before the scaling work sped the denominator ~1.3×); the
//! absolute per-event serialization cost is what it polices. The
//! full-provenance tier (`--trace-full`) is deliberately outside the
//! budget: per-placement candidate scoring is pay-on-demand by design.
//!
//! `--best-of N` runs each scale N times and keeps the fastest run ("best"
//! is the right estimator for a cost floor: noise only ever slows a run
//! down). `--check-against PATH` compares each measured row's per-GPU
//! throughput (`gpu_hours_per_wall_sec`) to the same `(scale, policy)` row
//! in a previously committed report and fails if any regresses by more than
//! 10%; CI runs `--best-of 3 --check-against BENCH_sim.json --only 5000gpu`
//! as the scaling-regression gate.
//!
//! `--policy NAME` restricts every mode to one allocation policy (any
//! `PolicyId` name: `gfair`, `gavel-hetero`, `themis-ftf`). Without it, the
//! measurement run benches `gfair` at every scale plus the other registry
//! policies at the 5000- and 50000-GPU scales (so `BENCH_sim.json` tracks a
//! per-policy scaling row for each competitor), and `--verify` checks the
//! same set — every policy must be byte-identical between optimized and
//! naive engine configurations, clean and fault-injected.
//!
//! Usage: `bench_sim [--quick] [--no-fast-forward] [--verify]
//!                   [--obs-overhead] [--only SCALE] [--policy NAME]
//!                   [--out PATH] [--seed N] [--best-of N]
//!                   [--check-against PATH]`

use gfair_core::{GfairConfig, PolicyId};
use gfair_faults::FaultPlan;
use gfair_policies::build_policy;
use gfair_sim::Simulation;
use gfair_types::{ClusterSpec, GenCatalog, ServerId, SimConfig, SimDuration, SimTime, UserSpec};
use gfair_workloads::{PhillyParams, TraceBuilder};
use serde::Deserialize;
use serde::Serialize;
use std::time::Instant;

/// One benchmark configuration (a cluster scale plus its trace shape).
struct Scale {
    name: &'static str,
    cluster: fn() -> ClusterSpec,
    users: u32,
    num_jobs: usize,
    jobs_per_hour: f64,
    horizon_hours: u64,
}

/// The full-size ladder. Trace lengths are chosen so the cluster runs at
/// moderate utilization for many hours: most jobs finish long before the
/// horizon, which is exactly the regime where any per-round cost that scales
/// with *all jobs ever submitted* (rather than live jobs) dominates.
fn scales(quick: bool) -> Vec<Scale> {
    if quick {
        vec![
            Scale {
                name: "32gpu",
                cluster: || ClusterSpec::homogeneous(4, 8),
                users: 8,
                num_jobs: 300,
                jobs_per_hour: 100.0,
                horizon_hours: 5,
            },
            Scale {
                name: "200gpu-long",
                cluster: ClusterSpec::paper_testbed,
                users: 16,
                num_jobs: 1500,
                jobs_per_hour: 400.0,
                horizon_hours: 6,
            },
            Scale {
                name: "1000gpu",
                cluster: cluster_1000,
                users: 32,
                num_jobs: 2000,
                jobs_per_hour: 2000.0,
                horizon_hours: 3,
            },
        ]
    } else {
        vec![
            Scale {
                name: "32gpu",
                cluster: || ClusterSpec::homogeneous(4, 8),
                users: 8,
                num_jobs: 4000,
                jobs_per_hour: 64.0,
                horizon_hours: 66,
            },
            Scale {
                name: "200gpu-long",
                cluster: ClusterSpec::paper_testbed,
                users: 16,
                num_jobs: 20000,
                jobs_per_hour: 400.0,
                horizon_hours: 52,
            },
            Scale {
                name: "1000gpu",
                cluster: cluster_1000,
                users: 32,
                num_jobs: 20000,
                jobs_per_hour: 2000.0,
                horizon_hours: 12,
            },
            Scale {
                name: "5000gpu",
                cluster: cluster_5000,
                users: 64,
                num_jobs: 30000,
                jobs_per_hour: 8000.0,
                horizon_hours: 6,
            },
            Scale {
                name: "50000gpu",
                cluster: cluster_50000,
                users: 128,
                num_jobs: 160000,
                jobs_per_hour: 80000.0,
                horizon_hours: 2,
            },
            // Job-count stress rather than cluster-size stress: a million
            // jobs through the 5000-GPU cluster at moderate utilization, so
            // any per-round cost keyed to *jobs ever submitted* (rather
            // than live jobs) shows up as a cliff here first.
            Scale {
                name: "1m-jobs",
                cluster: cluster_5000,
                users: 64,
                num_jobs: 1_000_000,
                jobs_per_hour: 9000.0,
                horizon_hours: 120,
            },
        ]
    }
}

/// A 1000-GPU heterogeneous cluster with the paper's generation mix.
fn cluster_1000() -> ClusterSpec {
    ClusterSpec::build(
        GenCatalog::k80_p100_v100(),
        &[("K80", 63, 8), ("P100", 31, 8), ("V100", 31, 8)],
    )
}

/// A 5000-GPU cluster: the 1000-GPU generation mix scaled five-fold.
fn cluster_5000() -> ClusterSpec {
    ClusterSpec::build(
        GenCatalog::k80_p100_v100(),
        &[("K80", 313, 8), ("P100", 156, 8), ("V100", 156, 8)],
    )
}

/// A 50000-GPU cluster: the same generation mix at datacenter scale (6250
/// eight-GPU servers).
fn cluster_50000() -> ClusterSpec {
    ClusterSpec::build(
        GenCatalog::k80_p100_v100(),
        &[("K80", 3125, 8), ("P100", 1563, 8), ("V100", 1562, 8)],
    )
}

/// The fault plan the `--verify` gate injects: migration checkpoint/restore
/// failures plus a partition and a flapping server, all on servers that
/// exist at every scale (the smallest has four).
fn verify_faults(seed: u64) -> FaultPlan {
    FaultPlan::none()
        .with_seed(seed)
        .with_migration_fail_rates(0.05, 0.05)
        .with_partition(
            ServerId::new(2),
            SimTime::from_secs(3600),
            SimTime::from_secs(2 * 3600),
        )
        .with_flap(
            ServerId::new(3),
            SimTime::from_secs(2 * 3600),
            SimDuration::from_mins(10),
            SimDuration::from_mins(20),
            2,
        )
}

/// The scales at which every registry policy (not just `gfair`) gets its
/// own benchmark row and verify pass: the two sizes where solver scaling
/// differences actually show, so the artifact tracks each competitor's
/// large-cluster trajectory without tripling the whole ladder's runtime.
const PER_POLICY_SCALES: [&str; 2] = ["5000gpu", "50000gpu"];

/// The policies to run at one scale: the explicit `--policy` selection if
/// given, otherwise `gfair` everywhere plus the other registry policies at
/// the [`PER_POLICY_SCALES`] sizes.
fn policies_for_scale(scale: &str, selected: Option<PolicyId>) -> Vec<PolicyId> {
    match selected {
        Some(p) => vec![p],
        None if PER_POLICY_SCALES.contains(&scale) => PolicyId::ALL.to_vec(),
        None => vec![PolicyId::Gfair],
    }
}

/// Serde default for [`ScaleResult::policy`]: reports written before the
/// field existed were all single-policy `gfair` runs. (Only referenced from
/// the `Deserialize` derive, which the dead-code lint does not traverse.)
#[allow(dead_code)]
fn gfair_policy_name() -> String {
    PolicyId::Gfair.name().to_string()
}

/// Per-scale benchmark result, serialized into `BENCH_sim.json`.
#[derive(Serialize, Deserialize)]
struct ScaleResult {
    name: String,
    #[serde(default = "gfair_policy_name")]
    policy: String,
    gpus: u32,
    trace_jobs: usize,
    horizon_hours: u64,
    rounds: u64,
    finished_jobs: usize,
    wall_secs: f64,
    sim_gpu_hours: f64,
    gpu_hours_per_wall_sec: f64,
    rounds_per_sec: f64,
}

/// The artifact root.
#[derive(Serialize, Deserialize)]
struct BenchReport {
    schema: String,
    mode: String,
    seed: u64,
    fast_forward: bool,
    scales: Vec<ScaleResult>,
}

/// Runs one scale and returns the timing result plus the serialized
/// `SimReport` (the verify gate compares the latter byte-for-byte). When
/// `trace_out` is set, every trace event is streamed to that JSONL path
/// (the obs-overhead gate compares throughput with and without this).
fn run_scale(
    s: &Scale,
    policy: PolicyId,
    seed: u64,
    fast_forward: bool,
    lazy_planning: bool,
    faults: Option<FaultPlan>,
    trace_out: Option<&str>,
) -> (ScaleResult, String) {
    let cluster = (s.cluster)();
    let gpus = cluster.total_gpus();
    let users = UserSpec::equal_users(s.users, 100);
    let mut params = PhillyParams::default();
    params.num_jobs = s.num_jobs;
    params.jobs_per_hour = s.jobs_per_hour;
    params.median_service_mins = 8.0;
    params.service_clamp_mins = (2.0, 45.0);
    params.gang_weights = [0.6, 0.2, 0.15, 0.05];
    let trace = TraceBuilder::new(params, seed).build(&users);
    let mut sim = Simulation::new(cluster, users, trace, SimConfig::default().with_seed(seed))
        .expect("valid benchmark setup");
    if let Some(plan) = faults {
        sim = sim.with_faults(plan);
    }
    let mut cfg = GfairConfig::default().with_policy(policy);
    if !fast_forward {
        cfg = cfg.without_fast_forward();
    }
    if !lazy_planning {
        cfg = cfg.without_lazy_planning();
    }
    let obs_handle = sim.obs();
    if let Some(path) = trace_out {
        obs_handle.jsonl(path).expect("writable trace path");
    }
    // Share the sim's pipeline with the scheduler (the CLI does the same):
    // scheduler-side events land in the same trace, and the scheduler's
    // decision provenance sees the sink via `Obs::tracing`.
    let mut sched = build_policy(cfg, std::sync::Arc::clone(&obs_handle));
    let start = Instant::now();
    let report = sim
        .run_until(sched.as_mut(), SimTime::from_secs(s.horizon_hours * 3600))
        .expect("valid benchmark run");
    for p in obs_handle.phase_stats() {
        eprintln!(
            "    phase {:?}: n={} p50={:.1}us p99={:.1}us total={:.3}s",
            p.phase,
            p.count,
            p.p50_us,
            p.p99_us,
            p.total_ms / 1e3
        );
    }
    let wall_secs = start.elapsed().as_secs_f64();
    let sim_gpu_hours = report.gpu_secs_used / 3600.0;
    let result = ScaleResult {
        name: s.name.to_string(),
        policy: policy.name().to_string(),
        gpus,
        trace_jobs: s.num_jobs,
        horizon_hours: s.horizon_hours,
        rounds: report.rounds,
        finished_jobs: report.finished_jobs(),
        wall_secs,
        sim_gpu_hours,
        gpu_hours_per_wall_sec: sim_gpu_hours / wall_secs,
        rounds_per_sec: report.rounds as f64 / wall_secs,
    };
    let json = serde_json::to_string(&report).expect("serializable report");
    (result, json)
}

/// The equivalence gate: every scale (or just `only`) and every policy that
/// scale benches (or just `policy`), faultless and fault-injected, must
/// produce byte-identical `SimReport`s between the fully-optimized
/// configuration (fast-forward + lazy settling, the default) and the
/// fully-naive one (both off, every quantum stepped and every server
/// re-planned). One comparison gates both mechanisms: if either ever
/// diverged, the pair would mismatch. Returns the number of mismatching
/// configurations.
fn run_verify(quick: bool, seed: u64, only: Option<&str>, policy: Option<PolicyId>) -> u32 {
    let mut failures = 0u32;
    for s in scales(quick)
        .into_iter()
        .filter(|s| only.is_none_or(|o| o == s.name))
    {
        for p in policies_for_scale(s.name, policy) {
            for (label, faults) in [("clean", None), ("faulted", Some(verify_faults(seed)))] {
                let (on, on_json) = run_scale(&s, p, seed, true, true, faults.clone(), None);
                let (off, off_json) = run_scale(&s, p, seed, false, false, faults, None);
                let ok = on_json == off_json;
                eprintln!(
                    "  {} [{p}/{label}] ff-on {:.2}s / ff-off {:.2}s / {} rounds: {}",
                    s.name,
                    on.wall_secs,
                    off.wall_secs,
                    on.rounds,
                    if ok { "identical" } else { "MISMATCH" }
                );
                if !ok {
                    failures += 1;
                }
            }
        }
    }
    failures
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let fast_forward = !args.iter().any(|a| a == "--no-fast-forward");
    let verify = args.iter().any(|a| a == "--verify");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_sim.json".to_string());
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(42);
    let only: Option<String> = args
        .iter()
        .position(|a| a == "--only")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let best_of: usize = args
        .iter()
        .position(|a| a == "--best-of")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
        .max(1);
    let check_against: Option<String> = args
        .iter()
        .position(|a| a == "--check-against")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let policy: Option<PolicyId> = match args
        .iter()
        .position(|a| a == "--policy")
        .and_then(|i| args.get(i + 1))
    {
        Some(name) => match PolicyId::parse(name) {
            Some(p) => Some(p),
            None => {
                eprintln!("bench_sim: unknown policy `{name}`");
                std::process::exit(2);
            }
        },
        None => None,
    };

    if verify {
        eprintln!(
            "bench_sim: verify mode={} seed={seed}",
            if quick { "quick" } else { "full" }
        );
        let failures = run_verify(quick, seed, only.as_deref(), policy);
        if failures > 0 {
            eprintln!("bench_sim: {failures} optimized-vs-naive equivalence failure(s)");
            std::process::exit(1);
        }
        eprintln!("bench_sim: optimized and naive reports byte-identical at every scale");
        return;
    }

    if args.iter().any(|a| a == "--obs-overhead") {
        let scale_name = only.as_deref().unwrap_or("1000gpu");
        let list = scales(quick);
        let Some(s) = list.iter().find(|s| s.name == scale_name) else {
            eprintln!("bench_sim: unknown scale `{scale_name}` for --obs-overhead");
            std::process::exit(2);
        };
        eprintln!(
            "bench_sim: obs-overhead gate on {} (tracing off vs on)",
            s.name
        );
        // Best-of-three per mode: single runs on a small box jitter by more
        // than the margin this gate polices, and "best" is the right
        // estimator for a cost floor (noise only ever slows a run down).
        let trace_path = std::env::temp_dir().join(format!("bench_obs_overhead_{seed}.jsonl"));
        let mut off_best = 0.0_f64;
        let mut on_best = 0.0_f64;
        let mut trace_bytes = 0;
        let p = policy.unwrap_or(PolicyId::Gfair);
        for _ in 0..3 {
            // Lazy settling off on BOTH arms: tracing disables it anyway,
            // so only an eager/eager pair isolates the tracing cost.
            let (off, _) = run_scale(s, p, seed, true, false, None, None);
            off_best = off_best.max(off.gpu_hours_per_wall_sec);
            let (on, _) = run_scale(s, p, seed, true, false, None, trace_path.to_str());
            on_best = on_best.max(on.gpu_hours_per_wall_sec);
            trace_bytes = std::fs::metadata(&trace_path).map(|m| m.len()).unwrap_or(0);
            let _ = std::fs::remove_file(&trace_path);
        }
        let (off, on) = (off_best, on_best);
        let ratio = on / off;
        eprintln!(
            "  tracing off {off:.1} GPU-h/s, on {on:.1} GPU-h/s ({:.1}% of untraced, {:.1} MiB trace)",
            ratio * 100.0,
            trace_bytes as f64 / (1024.0 * 1024.0)
        );
        if ratio < 0.75 {
            eprintln!("bench_sim: tracing-enabled throughput regressed more than 25%");
            std::process::exit(1);
        }
        eprintln!("bench_sim: tracing overhead within the 25% budget");
        return;
    }

    let mode = if quick { "quick" } else { "full" };
    eprintln!("bench_sim: mode={mode} seed={seed} fast_forward={fast_forward} out={out}");
    let mut results = Vec::new();
    for s in scales(quick)
        .into_iter()
        .filter(|s| only.as_deref().is_none_or(|o| o == s.name))
    {
        for p in policies_for_scale(s.name, policy) {
            eprintln!(
                "  {} [{p}] ({} jobs, {}h horizon) ...",
                s.name, s.num_jobs, s.horizon_hours
            );
            let mut best: Option<ScaleResult> = None;
            for _ in 0..best_of {
                let (r, _) = run_scale(&s, p, seed, fast_forward, true, None, None);
                eprintln!(
                    "    {:.1} sim GPU-hours in {:.2}s wall = {:.1} GPU-h/s, {:.0} rounds/s",
                    r.sim_gpu_hours, r.wall_secs, r.gpu_hours_per_wall_sec, r.rounds_per_sec
                );
                if best
                    .as_ref()
                    .is_none_or(|b| r.gpu_hours_per_wall_sec > b.gpu_hours_per_wall_sec)
                {
                    best = Some(r);
                }
            }
            results.push(best.expect("best_of >= 1"));
        }
    }
    if let Some(path) = &check_against {
        let baseline: BenchReport = serde_json::from_str(
            &std::fs::read_to_string(path).expect("readable --check-against baseline"),
        )
        .expect("parseable --check-against baseline");
        let mut regressions = 0u32;
        for r in &results {
            let Some(b) = baseline
                .scales
                .iter()
                .find(|b| b.name == r.name && b.policy == r.policy)
            else {
                eprintln!(
                    "  {} [{}]: no baseline row in {path}, skipping",
                    r.name, r.policy
                );
                continue;
            };
            let ratio = r.gpu_hours_per_wall_sec / b.gpu_hours_per_wall_sec;
            let ok = ratio >= 0.9;
            eprintln!(
                "  {} [{}]: {:.1} GPU-h/s vs baseline {:.1} ({:.1}%): {}",
                r.name,
                r.policy,
                r.gpu_hours_per_wall_sec,
                b.gpu_hours_per_wall_sec,
                ratio * 100.0,
                if ok { "ok" } else { "REGRESSED >10%" }
            );
            if !ok {
                regressions += 1;
            }
        }
        if regressions > 0 {
            eprintln!("bench_sim: {regressions} scale(s) regressed >10% vs {path}");
            std::process::exit(1);
        }
    }
    let report = BenchReport {
        schema: "gfair-bench-sim/v1".to_string(),
        mode: mode.to_string(),
        seed,
        fast_forward,
        scales: results,
    };
    let json = serde_json::to_string_pretty(&report).expect("serializable");
    std::fs::write(&out, json + "\n").expect("writable output path");
    eprintln!("bench_sim: wrote {out}");
}
