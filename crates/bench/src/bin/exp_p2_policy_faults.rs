//! Experiment P2 `policy_faults` — the policy zoo head-to-head under
//! degraded mode.
//!
//! A heavier trace than P1, and a *V100* server — the scarce fast
//! generation — fails at hour 2 and recovers at hour 5. Every policy must
//! honor reachability (PR 3's fault model): `gavel-hetero` water-fills
//! only reachable capacity, `gfair` and `themis-ftf` keep entitlements on
//! static supply while the planner's stale-weight snapshots park
//! unreachable servers. The ledger columns show how much fairness each
//! policy gives up during the outage window.
//!
//! Run: `cargo run -p gfair-bench --release --bin exp_p2_policy_faults
//! [--seed N] [--horizon-hours H]`

use gfair_bench::{banner, horizon_arg, policy_faceoff, seed_arg, testbed};
use gfair_types::{ServerId, UserSpec};
use gfair_workloads::{PhillyParams, TraceBuilder};

fn main() {
    let seed = seed_arg();
    banner(
        "P2 policy_faults",
        "with a V100 server down for hours 2-5, every policy degrades gracefully; fairness dips are bounded and recover after heal",
    );
    println!(
        "200-GPU testbed, 6 equal-ticket users, Philly trace (250 jobs), V100 server 30 down 2h-5h\n"
    );

    let users = UserSpec::equal_users(6, 100);
    let mut params = PhillyParams::default();
    params.num_jobs = 250;
    params.jobs_per_hour = 150.0;
    params.median_service_mins = 60.0;
    let jobs = TraceBuilder::new(params, seed).build(&users);

    let table = policy_faceoff(
        &testbed(),
        &users,
        &jobs,
        seed,
        horizon_arg(8),
        Some((ServerId::new(30), 2, 5)),
    );
    println!("{}", table.render());
    println!("(all columns except finished/util come from the fairness ledger)");
}
