//! Ablation A2 `split_stride` — user-level vs job-level fairness.
//!
//! One user submits 6 jobs, another 1, equal tickets, one server. Split
//! stride (user-level currency) keeps the 1-job user at 50%; the job-level
//! ablation (each job its own first-class client) hands the flooder 6/7 of
//! the server.
//!
//! Run: `cargo run -p gfair-bench --bin exp_a2_split_stride`

use gfair_bench::banner;
use gfair_metrics::Table;
use gfair_stride::{GangPolicy, GangScheduler, SplitStride};
use std::collections::BTreeMap;

const ROUNDS: usize = 7_000;
const CAPACITY: u32 = 4;

/// Returns per-user GPU-time shares under split stride.
fn split_shares() -> BTreeMap<u32, f64> {
    let mut s = SplitStride::new(CAPACITY, GangPolicy::GangAware);
    s.set_user_weight(0u32, 100.0);
    s.set_user_weight(1u32, 100.0);
    for j in 0..6 {
        s.add_job(0, j, 1);
    }
    s.add_job(1, 100, 1);
    let mut acc: BTreeMap<u32, f64> = BTreeMap::new();
    for _ in 0..ROUNDS {
        for j in s.plan_round().selected {
            *acc.entry(s.user_of(j).unwrap()).or_insert(0.0) += 1.0;
        }
    }
    normalize(acc)
}

/// Returns per-user GPU-time shares when every job is a first-class stride
/// client (no user level).
fn flat_shares() -> BTreeMap<u32, f64> {
    let mut g = GangScheduler::new(CAPACITY, GangPolicy::GangAware);
    for j in 0..6u32 {
        g.join(j, 100.0, 1); // user 0's jobs
    }
    g.join(100, 100.0, 1); // user 1's job
    let mut acc: BTreeMap<u32, f64> = BTreeMap::new();
    for _ in 0..ROUNDS {
        for j in g.plan_round().selected {
            let user = if j < 100 { 0 } else { 1 };
            *acc.entry(user).or_insert(0.0) += 1.0;
        }
    }
    normalize(acc)
}

fn normalize(acc: BTreeMap<u32, f64>) -> BTreeMap<u32, f64> {
    let total: f64 = acc.values().sum();
    acc.into_iter().map(|(k, v)| (k, v / total)).collect()
}

fn main() {
    banner(
        "A2 split_stride",
        "the two-level ticket currency makes user share invariant to job count; flat job-level stride rewards flooding",
    );
    println!("1 server x {CAPACITY} GPUs; user0 submits 6 jobs, user1 submits 1; equal tickets\n");

    let split = split_shares();
    let flat = flat_shares();
    let mut table = Table::new(vec!["scheme", "user0 (6 jobs)", "user1 (1 job)"]);
    table.row(vec![
        "split stride (user-level)".into(),
        format!("{:.3}", split[&0]),
        format!("{:.3}", split[&1]),
    ]);
    table.row(vec![
        "flat stride (job-level)".into(),
        format!("{:.3}", flat[&0]),
        format!("{:.3}", flat[&1]),
    ]);
    println!("{}", table.render());
    println!(
        "user1's feasible fair share is min(1 GPU, 2 GPUs) / 4 = 0.25 of the server;\n\
         split stride delivers it (surplus redistributes to user0); flat stride gives ~1/7."
    );
}
