//! Experiment F4 `efficiency` — macro comparison on the 200-GPU testbed.
//!
//! A heavy Philly-like multi-user trace on the paper-scale heterogeneous
//! cluster, under five schedulers. The paper's claim to reproduce in shape:
//! Gandiva_fair matches the efficiency of the efficiency-only scheduler
//! (utilization, JCT, completed jobs) while static partitioning — the other
//! way to be fair — pays a large JCT/completion penalty.
//!
//! Run: `cargo run -p gfair-bench --release --bin exp_f4_efficiency [--seed N]`

use gfair_baselines::{Drf, Fifo, GandivaLike, StaticPartition};
use gfair_bench::{banner, exp_trace, horizon_arg, seed_arg, sim_config, testbed};
use gfair_core::{GandivaFair, GfairConfig};
use gfair_metrics::fairness::{jain_index, normalized_shares};
use gfair_metrics::{JctStats, Table};
use gfair_sim::{ClusterScheduler, SimReport, Simulation};
use gfair_types::UserSpec;
use gfair_workloads::{PhillyParams, TraceBuilder};

fn params() -> PhillyParams {
    let mut p = PhillyParams::default();
    p.num_jobs = 400;
    p.jobs_per_hour = 120.0;
    p.median_service_mins = 120.0;
    p
}

fn run(sched: &mut dyn ClusterScheduler, seed: u64) -> SimReport {
    let users = UserSpec::equal_users(8, 100);
    let trace = TraceBuilder::new(params(), seed).build(&users);
    let sim =
        exp_trace(Simulation::new(testbed(), users, trace, sim_config(seed)).expect("valid setup"));
    sim.run_until(sched, horizon_arg(12)).expect("valid run")
}

fn main() {
    let seed = seed_arg();
    banner(
        "F4 efficiency",
        "Gandiva_fair ~= efficiency-only scheduler on JCT/utilization; static partitioning pays a heavy efficiency price for its fairness",
    );
    println!(
        "200-GPU testbed (128 K80 / 48 P100 / 24 V100), 8 users, 400 jobs, 12 h horizon, seed {seed}\n"
    );

    let users = UserSpec::equal_users(8, 100);
    let scheds: Vec<Box<dyn ClusterScheduler>> = vec![
        Box::new(GandivaFair::new(GfairConfig::default())),
        Box::new(GandivaLike::new()),
        Box::new(StaticPartition::new(&testbed(), &users)),
        Box::new(Drf::new()),
        Box::new(Fifo::new()),
    ];
    let mut table = Table::new(vec![
        "scheduler",
        "util",
        "finished",
        "mean JCT(min)",
        "p50",
        "p95",
        "jain(norm)",
        "migrations",
    ]);
    for mut sched in scheds {
        let report = run(sched.as_mut(), seed);
        let received: Vec<f64> = users.iter().map(|u| report.gpu_secs_of(u.id)).collect();
        let jain = jain_index(&normalized_shares(&received, &vec![1.0; users.len()]));
        let jct = JctStats::from_durations(&report.jcts());
        let fmt_min = |v: f64| format!("{:.0}", v / 60.0);
        table.row(vec![
            report.scheduler.clone(),
            format!("{:.1}%", report.utilization() * 100.0),
            report.finished_jobs().to_string(),
            jct.map(|j| fmt_min(j.mean_secs)).unwrap_or("-".into()),
            jct.map(|j| fmt_min(j.p50_secs)).unwrap_or("-".into()),
            jct.map(|j| fmt_min(j.p95_secs)).unwrap_or("-".into()),
            format!("{jain:.3}"),
            report.migrations.to_string(),
        ]);
    }
    println!("{}", table.render());
}
