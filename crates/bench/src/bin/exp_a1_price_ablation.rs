//! Ablation A1 `price_ablation` — trade pricing strategies.
//!
//! The F5 workload under the two pricing rules:
//!
//! * MaxSpeedup (paper-style, conservative): price = buyer's speedup; the
//!   buyer is indifferent in valuation, the seller takes the entire gain.
//! * Midpoint: gains are split between both parties.
//!
//! Cluster efficiency is the same under both (the same fast GPUs move to
//! the same jobs); the split of the surplus differs.
//!
//! Run: `cargo run -p gfair-bench --release --bin exp_a1_price_ablation [--seed N]`

use gfair_bench::{banner, exp_trace, horizon_arg, seed_arg, sim_config, trading_cluster};
use gfair_core::{GandivaFair, GfairConfig};
use gfair_metrics::Table;
use gfair_sim::{SimReport, Simulation};
use gfair_types::{PriceStrategy, UserId};
use gfair_workloads::population::UserPopulation;
use gfair_workloads::{ModelClass, PhillyParams};

fn run(strategy: Option<PriceStrategy>, seed: u64) -> (SimReport, f64) {
    let pop = UserPopulation::new()
        .user_of_class("vae-team", 100, ModelClass::LowSpeedup)
        .user_of_class("cnn-team", 100, ModelClass::HighSpeedup);
    let mut params = PhillyParams::default();
    params.num_jobs = 200;
    params.jobs_per_hour = 60.0;
    params.median_service_mins = 150.0;
    let trace = pop.trace(params, seed);
    let mut sim_cfg = sim_config(seed);
    let cfg = match strategy {
        Some(s) => {
            sim_cfg = sim_cfg.with_price_strategy(s);
            GfairConfig::default()
        }
        None => GfairConfig::default().without_trading(),
    };
    let sim = exp_trace(
        Simulation::new(trading_cluster(), pop.users(), trace, sim_cfg).expect("valid setup"),
    );
    let mut sched = GandivaFair::new(cfg);
    let report = sim
        .run_until(&mut sched, horizon_arg(10))
        .expect("valid run");
    let mean_price = if sched.trades().is_empty() {
        0.0
    } else {
        sched.trades().iter().map(|(_, t)| t.price).sum::<f64>() / sched.trades().len() as f64
    };
    (report, mean_price)
}

fn main() {
    let seed = seed_arg();
    banner(
        "A1 price_ablation",
        "both pricing rules move fast GPUs to the high-speedup team; the price decides how the surplus is split (realized totals vary slightly with migration dynamics)",
    );

    let variants: Vec<(&str, Option<PriceStrategy>)> = vec![
        ("no trading", None),
        ("max-speedup", Some(PriceStrategy::MaxSpeedup)),
        ("midpoint", Some(PriceStrategy::Midpoint)),
    ];
    let mut table = Table::new(vec![
        "pricing",
        "mean price",
        "vae-team base-eq h",
        "cnn-team base-eq h",
        "cluster base-eq h",
    ]);
    for (name, strategy) in variants {
        let (report, price) = run(strategy, seed);
        table.row(vec![
            name.to_string(),
            if price > 0.0 {
                format!("{price:.2}")
            } else {
                "-".into()
            },
            format!("{:.1}", report.base_secs_of(UserId::new(0)) / 3600.0),
            format!("{:.1}", report.base_secs_of(UserId::new(1)) / 3600.0),
            format!("{:.1}", report.total_base_secs() / 3600.0),
        ]);
    }
    println!("{}", table.render());
    println!("(midpoint shifts part of the surplus from the seller to the buyer)");
}
