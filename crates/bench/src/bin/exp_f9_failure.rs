//! Experiment F9 `failure` — resilience to server failures (extension).
//!
//! Not a figure from the paper's evaluation, but a property any production
//! deployment of it needs: when servers fail, evicted jobs must be re-placed
//! and fairness must hold on the surviving capacity; on recovery the
//! balancer must re-spread.
//!
//! Scenario: the 200-GPU testbed loses 4 of its K80 servers (32 GPUs, 16%
//! of capacity) for two hours in the middle of an 8-hour multi-user run.
//! Reported: utilization relative to *surviving* capacity, fairness across
//! users, evictions handled, completions vs the failure-free run.
//!
//! Run: `cargo run -p gfair-bench --release --bin exp_f9_failure [--seed N]`

use gfair_bench::{banner, exp_trace, seed_arg, sim_config, testbed};
use gfair_core::{GandivaFair, GfairConfig};
use gfair_metrics::fairness::{jain_index, normalized_shares};
use gfair_metrics::Table;
use gfair_sim::{SimReport, Simulation};
use gfair_types::{ServerId, SimTime, UserSpec};
use gfair_workloads::{PhillyParams, TraceBuilder};

fn run(inject: bool, seed: u64) -> SimReport {
    let users = UserSpec::equal_users(6, 100);
    let mut params = PhillyParams::default();
    params.num_jobs = 300;
    params.jobs_per_hour = 100.0;
    params.median_service_mins = 120.0;
    let trace = TraceBuilder::new(params, seed).build(&users);
    let mut sim =
        exp_trace(Simulation::new(testbed(), users, trace, sim_config(seed)).expect("valid setup"));
    if inject {
        for k in 0..4u32 {
            sim = sim
                .with_server_failure(ServerId::new(k), SimTime::from_secs(3 * 3600))
                .with_server_recovery(ServerId::new(k), SimTime::from_secs(5 * 3600));
        }
    }
    let mut sched = GandivaFair::new(GfairConfig::default());
    sim.run_until(&mut sched, SimTime::from_secs(8 * 3600))
        .expect("valid run")
}

fn main() {
    let seed = seed_arg();
    banner(
        "F9 failure (extension)",
        "losing 16% of capacity for 2 h evicts and re-places jobs without breaking fairness; recovery restores throughput",
    );
    println!(
        "200-GPU testbed; 4 K80 servers down 03:00-05:00; 6 users, 300 jobs, 8 h, seed {seed}\n"
    );

    let users = UserSpec::equal_users(6, 100);
    let mut table = Table::new(vec![
        "run",
        "util(nominal)",
        "finished",
        "jain(norm)",
        "migrations",
        "stale actions",
    ]);
    for (name, inject) in [("no failures", false), ("with failures", true)] {
        let report = run(inject, seed);
        let received: Vec<f64> = users.iter().map(|u| report.gpu_secs_of(u.id)).collect();
        let jain = jain_index(&normalized_shares(&received, &vec![1.0; users.len()]));
        table.row(vec![
            name.to_string(),
            format!("{:.1}%", report.utilization() * 100.0),
            report.finished_jobs().to_string(),
            format!("{jain:.3}"),
            report.migrations.to_string(),
            report.stale_migrations.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("(utilization is vs nominal capacity; the failure window removes 16% of it)");
}
