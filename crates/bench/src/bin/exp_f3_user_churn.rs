//! Experiment F3 `user_churn` — cluster-wide fairness under churn.
//!
//! Three equal-ticket users join/leave a 32-GPU cluster at staggered times.
//! The figure: each user's share of dispensed GPU time per 15-minute bucket
//! must track the fair split of the *currently active* set (1 -> 1/2 ->
//! 1/3 -> 1/2), with utilization pinned at 100% throughout (work
//! conservation).
//!
//! Run: `cargo run -p gfair-bench --bin exp_f3_user_churn [--seed N]`

use gfair_bench::{banner, exp_trace, seed_arg, sim_config};
use gfair_core::{GandivaFair, GfairConfig};
use gfair_metrics::Table;
use gfair_sim::Simulation;
use gfair_types::{ClusterSpec, SimTime, UserId, UserSpec};
use gfair_workloads::philly::uniform_batch;
use gfair_workloads::zoo_by_name;

fn main() {
    let seed = seed_arg();
    banner(
        "F3 user_churn",
        "cluster-wide shares re-converge to the active-user fair split on arrival/departure; utilization stays at 100%",
    );

    let cluster = ClusterSpec::homogeneous(4, 8);
    let users = UserSpec::equal_users(3, 100);
    let model = zoo_by_name("ResNet-50").expect("zoo model");
    let mut trace = Vec::new();
    trace.extend(uniform_batch(
        0,
        UserId::new(0),
        &model,
        40,
        1,
        4.0 * 3600.0,
        SimTime::ZERO,
    ));
    trace.extend(uniform_batch(
        100,
        UserId::new(1),
        &model,
        40,
        1,
        2.5 * 3600.0,
        SimTime::from_secs(3600),
    ));
    trace.extend(uniform_batch(
        200,
        UserId::new(2),
        &model,
        40,
        1,
        20.0 * 60.0,
        SimTime::from_secs(2 * 3600),
    ));

    let sim =
        exp_trace(Simulation::new(cluster, users, trace, sim_config(seed)).expect("valid setup"));
    let mut sched = GandivaFair::new(GfairConfig::default());
    let report = sim
        .run_until(&mut sched, SimTime::from_secs(5 * 3600))
        .expect("valid run");

    let mut table = Table::new(vec!["bucket", "user0", "user1", "user2", "util"]);
    for chunk in report.timeseries.chunks(3) {
        let per_user: Vec<f64> = (0..3u32)
            .map(|u| {
                chunk
                    .iter()
                    .map(|w| w.user_gpu_secs.get(&UserId::new(u)).copied().unwrap_or(0.0))
                    .sum()
            })
            .collect();
        let dispensed: f64 = per_user.iter().sum();
        let capacity: f64 = chunk.iter().map(|w| w.capacity_gpu_secs).sum();
        if dispensed <= 0.0 {
            continue;
        }
        table.row(vec![
            chunk[0].start.to_string(),
            format!("{:.3}", per_user[0] / dispensed),
            format!("{:.3}", per_user[1] / dispensed),
            format!("{:.3}", per_user[2] / dispensed),
            format!("{:.0}%", 100.0 * dispensed / capacity),
        ]);
    }
    println!("{}", table.render());
    println!("expected share steps: 1.000 -> 0.500/0.500 -> 0.333 each -> 0.500/0.500");
    println!("overall utilization: {:.1}%", report.utilization() * 100.0);
}
