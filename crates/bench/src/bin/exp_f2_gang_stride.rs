//! Experiment F2 `gang_stride` — gang-aware stride on one server.
//!
//! One 8-GPU server, five jobs with gangs {8, 4, 4, 2, 2} and equal
//! tickets, under three policies:
//!
//! * gang-aware stride (the paper's algorithm): ticket-proportional
//!   GPU-time *and* high utilization;
//! * job-level stride (naive): wide gangs hoard GPU-time;
//! * strict no-backfill stride: fair ordering but idle GPUs.
//!
//! Run: `cargo run -p gfair-bench --bin exp_f2_gang_stride`

use gfair_bench::banner;
use gfair_metrics::{jain_index, Table};
use gfair_stride::{GangPolicy, GangScheduler};
use std::collections::BTreeMap;

const GANGS: [(u32, u32); 5] = [(0, 8), (1, 4), (2, 4), (3, 2), (4, 2)];
const ROUNDS: usize = 5_000;
const CAPACITY: u32 = 8;

fn run(policy: GangPolicy) -> (BTreeMap<u32, f64>, f64) {
    let mut g = GangScheduler::new(CAPACITY, policy);
    for (id, width) in GANGS {
        g.join(id, 100.0, width);
    }
    let mut gpu_time: BTreeMap<u32, f64> = BTreeMap::new();
    let mut used = 0u64;
    for _ in 0..ROUNDS {
        let out = g.plan_round();
        used += out.gpus_used as u64;
        for k in out.selected {
            *gpu_time.entry(k).or_insert(0.0) += g.width_of(k).unwrap() as f64;
        }
    }
    let util = used as f64 / (ROUNDS as f64 * CAPACITY as f64);
    (gpu_time, util)
}

fn main() {
    banner(
        "F2 gang_stride",
        "gang-aware stride gives ticket-proportional GPU-time to mixed-width gangs while staying work-conserving; naive variants fail one way or the other",
    );
    println!(
        "1 server x {CAPACITY} GPUs; jobs (id, gang): {GANGS:?}; equal tickets; {ROUNDS} rounds\n"
    );

    let policies = [
        ("gang-aware", GangPolicy::GangAware),
        ("job-level", GangPolicy::JobLevelStride),
        ("strict", GangPolicy::StrictNoBackfill),
    ];
    let mut table = Table::new(vec![
        "policy", "J0(g8)", "J1(g4)", "J2(g4)", "J3(g2)", "J4(g2)", "jain", "util",
    ]);
    for (name, policy) in policies {
        let (gpu_time, util) = run(policy);
        let total: f64 = gpu_time.values().sum();
        let shares: Vec<f64> = (0..5)
            .map(|i| gpu_time.get(&i).copied().unwrap_or(0.0) / total)
            .collect();
        let mut row = vec![name.to_string()];
        row.extend(shares.iter().map(|s| format!("{s:.3}")));
        row.push(format!("{:.3}", jain_index(&shares)));
        row.push(format!("{:.1}%", util * 100.0));
        table.row(row);
    }
    println!("{}", table.render());
    println!("(shares are fractions of dispensed GPU-time; ideal fair = 0.200 each)");
}
