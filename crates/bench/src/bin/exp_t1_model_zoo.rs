//! Experiment T1 `model_zoo` — variable marginal utility (paper Fig. 1 /
//! model table).
//!
//! For each zoo model: the ground-truth speedups and the speedups the
//! Gandiva_fair profiler *recovers* from noisy observations after running
//! the job on every generation, demonstrating that transparent profiling is
//! accurate enough to drive trading.
//!
//! Run: `cargo run -p gfair-bench --bin exp_t1_model_zoo [--seed N]`

use gfair_bench::{banner, exp_trace, seed_arg, sim_config};
use gfair_core::{GandivaFair, GfairConfig};
use gfair_metrics::Table;
use gfair_sim::Simulation;
use gfair_types::{ClusterSpec, GenCatalog, GenId, JobId, JobSpec, SimTime, UserId, UserSpec};
use gfair_workloads::zoo;
use std::sync::Arc;

fn main() {
    let seed = seed_arg();
    banner(
        "T1 model_zoo",
        "V100-over-K80 speedup varies ~1.2x-5x across DLT models; the profiler recovers it from noisy observations",
    );

    // One long job per model on a small cluster with every generation; the
    // profiler's migration pass carries each job across generations.
    let cluster = ClusterSpec::build(
        GenCatalog::k80_p100_v100(),
        &[("K80", 4, 4), ("P100", 3, 4), ("V100", 3, 4)],
    );
    let entries = zoo();
    let users = UserSpec::equal_users(1, 100);
    let trace: Vec<JobSpec> = entries
        .iter()
        .enumerate()
        .map(|(i, e)| {
            JobSpec::new(
                JobId::new(i as u32),
                UserId::new(0),
                Arc::clone(&e.model),
                1,
                1_000_000.0,
                SimTime::ZERO,
            )
        })
        .collect();
    let sim =
        exp_trace(Simulation::new(cluster, users, trace, sim_config(seed)).expect("valid setup"));
    let mut sched = GandivaFair::new(GfairConfig::default());
    let _ = sim
        .run_until(&mut sched, SimTime::from_secs(12 * 3600))
        .expect("valid run");
    let profiler = sched.profiler().expect("profiler ran");

    let (p100, v100) = (GenId::new(1), GenId::new(2));
    let base = GenId::new(0);
    let mut table = Table::new(vec![
        "model",
        "class",
        "true P100x",
        "est P100x",
        "true V100x",
        "est V100x",
    ]);
    for e in &entries {
        let est = |g| {
            profiler
                .speedup(&e.model.name, g, base)
                .map(|s| format!("{s:.2}"))
                .unwrap_or_else(|| "-".into())
        };
        table.row(vec![
            e.model.name.clone(),
            format!("{:?}", e.class),
            format!("{:.2}", e.model.speedup(p100)),
            est(p100),
            format!("{:.2}", e.model.speedup(v100)),
            est(v100),
        ]);
    }
    println!("{}", table.render());

    let spread_lo = entries
        .iter()
        .map(|e| e.model.speedup(v100))
        .fold(f64::INFINITY, f64::min);
    let spread_hi = entries
        .iter()
        .map(|e| e.model.speedup(v100))
        .fold(0.0f64, f64::max);
    println!("V100/K80 speedup spread: {spread_lo:.2}x - {spread_hi:.2}x (paper: ~1.2x - ~5x)");
}
