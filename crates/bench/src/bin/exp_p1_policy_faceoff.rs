//! Experiment P1 `policy_faceoff` — the policy zoo head-to-head on a clean
//! cluster.
//!
//! All three allocation policies (`gfair`, `gavel-hetero`, `themis-ftf`;
//! see POLICIES.md) run the *same* Philly-like trace on the paper's 200-GPU
//! heterogeneous testbed with no faults. The fairness columns come from the
//! trace-driven fairness ledger, so every policy is scored by the same
//! instrument: cumulative Jain, instantaneous Gini, worst finish-time ρ,
//! and integrated cluster GPU-hours.
//!
//! Run: `cargo run -p gfair-bench --release --bin exp_p1_policy_faceoff
//! [--seed N] [--horizon-hours H]`

use gfair_bench::{banner, horizon_arg, policy_faceoff, seed_arg, testbed};
use gfair_types::UserSpec;
use gfair_workloads::{PhillyParams, TraceBuilder};

fn main() {
    let seed = seed_arg();
    banner(
        "P1 policy_faceoff",
        "on a clean heterogeneous cluster, all three policies keep Jain high; they differ in worst-case rho and GPU-hours",
    );
    println!("200-GPU testbed, 6 equal-ticket users, Philly trace (150 jobs), no faults\n");

    let users = UserSpec::equal_users(6, 100);
    let mut params = PhillyParams::default();
    params.num_jobs = 150;
    params.jobs_per_hour = 120.0;
    params.median_service_mins = 30.0;
    let jobs = TraceBuilder::new(params, seed).build(&users);

    let table = policy_faceoff(&testbed(), &users, &jobs, seed, horizon_arg(8), None);
    println!("{}", table.render());
    println!("(all columns except finished/util come from the fairness ledger)");
}
