//! Criterion benchmark for the whole pipeline: simulated cluster-hours per
//! wall-clock second under the full Gandiva_fair scheduler.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gfair_core::{GandivaFair, GfairConfig};
use gfair_sim::Simulation;
use gfair_types::{ClusterSpec, SimConfig, SimTime, UserSpec};
use gfair_workloads::{PhillyParams, TraceBuilder};

fn bench_sim_hour(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_one_hour");
    group.sample_size(10);
    for gpus in [32u32, 200] {
        let id = format!("{gpus}gpus");
        group.bench_with_input(BenchmarkId::from_parameter(id), &gpus, |b, &gpus| {
            b.iter(|| {
                let cluster = if gpus == 200 {
                    ClusterSpec::paper_testbed()
                } else {
                    ClusterSpec::homogeneous(gpus / 8, 8)
                };
                let users = UserSpec::equal_users(4, 100);
                let mut params = PhillyParams::default();
                params.num_jobs = 60;
                params.jobs_per_hour = 120.0;
                let trace = TraceBuilder::new(params, 3).build(&users);
                let sim =
                    Simulation::new(cluster, users, trace, SimConfig::default()).expect("valid");
                let mut sched = GandivaFair::new(GfairConfig::default());
                sim.run_until(&mut sched, SimTime::from_secs(3600))
                    .expect("valid run")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sim_hour);
criterion_main!(benches);
