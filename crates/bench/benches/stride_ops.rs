//! Criterion micro-benchmarks for the scheduling primitives: classic stride
//! pick+charge, gang-aware round planning, and split-stride round planning.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gfair_stride::{GangPolicy, GangScheduler, SplitStride, StrideScheduler};

fn bench_classic_stride(c: &mut Criterion) {
    let mut group = c.benchmark_group("classic_stride_pick_run");
    for n in [10usize, 100, 1000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut s = StrideScheduler::new();
            for i in 0..n as u32 {
                s.join(i, 50.0 + (i % 7) as f64 * 10.0);
            }
            b.iter(|| {
                let k = s.pick().expect("non-empty");
                s.run(k, 1.0);
                k
            });
        });
    }
    group.finish();
}

fn bench_gang_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("gang_plan_round");
    for (gpus, jobs) in [(8u32, 16usize), (8, 64), (64, 256)] {
        let id = format!("{gpus}gpus_{jobs}jobs");
        group.bench_with_input(
            BenchmarkId::from_parameter(id),
            &(gpus, jobs),
            |b, &(gpus, jobs)| {
                let mut g = GangScheduler::new(gpus, GangPolicy::GangAware);
                for i in 0..jobs as u32 {
                    let width = [1u32, 1, 2, 4][i as usize % 4].min(gpus);
                    g.join(i, 100.0, width);
                }
                b.iter(|| g.plan_round());
            },
        );
    }
    group.finish();
}

fn bench_split_stride_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("split_stride_plan_round");
    for (users, jobs_per_user) in [(4usize, 4usize), (16, 8)] {
        let id = format!("{users}users_x{jobs_per_user}");
        group.bench_with_input(
            BenchmarkId::from_parameter(id),
            &(users, jobs_per_user),
            |b, &(users, jobs_per_user)| {
                let mut s = SplitStride::new(8, GangPolicy::GangAware);
                let mut next_job = 0u32;
                for u in 0..users as u32 {
                    s.set_user_weight(u, 100.0);
                    for _ in 0..jobs_per_user {
                        s.add_job(u, next_job, 1);
                        next_job += 1;
                    }
                }
                b.iter(|| s.plan_round());
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_classic_stride,
    bench_gang_round,
    bench_split_stride_round
);
criterion_main!(benches);
