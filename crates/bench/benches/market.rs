//! Criterion micro-benchmark for the trading market: matching cost as the
//! user population grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gfair_core::{run_market, Entitlements, PolicyInputs};
use gfair_types::{GenId, PriceStrategy, UserId};
use std::collections::BTreeMap;

fn market_inputs(users: usize) -> (Entitlements, PolicyInputs) {
    let gpus = BTreeMap::from([
        (GenId::new(0), 1024u32),
        (GenId::new(1), 256),
        (GenId::new(2), 128),
    ]);
    let active: Vec<(UserId, u64)> = (0..users as u32).map(|u| (UserId::new(u), 100)).collect();
    let ent = Entitlements::base(&gpus, &active);
    let speedups: BTreeMap<UserId, Vec<Option<f64>>> = (0..users as u32)
        .map(|u| {
            // Spread speedups across the 1.1-5.0 range deterministically.
            let s = 1.1 + 3.9 * (u as f64 / users.max(2) as f64);
            (
                UserId::new(u),
                vec![Some(1.0), Some(1.0 + s * 0.4), Some(s)],
            )
        })
        .collect();
    let demand: BTreeMap<UserId, f64> = (0..users as u32).map(|u| (UserId::new(u), 64.0)).collect();
    let inputs = PolicyInputs::from_maps(3, &demand, &speedups, &BTreeMap::new());
    (ent, inputs)
}

fn bench_market(c: &mut Criterion) {
    let mut group = c.benchmark_group("run_market");
    for users in [10usize, 100, 1000] {
        group.bench_with_input(BenchmarkId::from_parameter(users), &users, |b, &users| {
            let (ent, inputs) = market_inputs(users);
            b.iter(|| {
                let mut e = ent.clone();
                run_market(&mut e, &inputs, PriceStrategy::MaxSpeedup, 0.2)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_market);
criterion_main!(benches);
