//! The online invariant auditor.
//!
//! Consumes the trace-event stream *during* the run and independently
//! re-derives the properties the scheduler claims to enforce. It keeps its
//! own residency and capacity state built purely from events — it never
//! peeks at engine internals — so a bug anywhere in the decision path
//! (scheduler, engine bookkeeping, or event emission) surfaces as a
//! violation instead of silently skewing results.
//!
//! ## Invariants
//!
//! Fatal (abort the run):
//! * **Gang atomicity** — a `GangPacked` grant's `width` equals the job's
//!   declared gang size; partial gangs are never acceptable.
//! * **No GPU overcommit** — per round, the gang widths granted on a server
//!   sum to at most its GPU count.
//! * **Residency** — a job runs only on the server it is resident on, and a
//!   job is granted GPUs at most once per round.
//! * **Ticket conservation** — when the scheduler reports per-user tickets
//!   (post-trade entitlements), they sum to the cluster's physical GPU
//!   supply: trading may move entitlement between users and generations but
//!   can never mint or destroy it.
//! * **Migration lifecycle** — across a failed migration no job is lost or
//!   duplicated: every `Migration` resolves to exactly one `Placement` or
//!   `MigrationFailed`, a failed job is either still resident or back in
//!   the queue, and an in-flight job can neither start a second migration
//!   nor finish.
//! * **Heal conservation** — ticket conservation specifically re-checked at
//!   the first planned round after a partition heals (stale partition-era
//!   entitlements must not leak into the healed economy). Reported as its
//!   own violation kind so fault experiments can tell the phases apart.
//!
//! Warn-only (counted, not fatal):
//! * **Work conservation** — a round that grants no GPUs while resident
//!   jobs exist. The deliberately naive `StrictNoBackfill` gang policy can
//!   do this legitimately, so it warns rather than aborts.

use crate::event::TraceEvent;
use gfair_types::{JobId, ServerId};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;

/// How many of the current round's events are attached to a violation.
const CONTEXT_CAP: usize = 256;

/// Relative tolerance for floating-point conservation checks.
const TICKET_TOL: f64 = 1e-6;

/// The specific invariant an offending event broke.
#[derive(Debug, Clone, PartialEq)]
pub enum ViolationKind {
    /// A gang was granted fewer (or more) GPUs than its declared size.
    PartialGang {
        /// Offending job.
        job: JobId,
        /// GPUs granted.
        width: u32,
        /// GPUs the gang requires.
        gang: u32,
    },
    /// A server's granted widths exceed its GPU count.
    Overcommit {
        /// Offending server.
        server: ServerId,
        /// Sum of granted widths.
        requested: u32,
        /// GPUs installed.
        gpus: u32,
    },
    /// A job was granted GPUs on a server it is not resident on.
    NotResident {
        /// Offending job.
        job: JobId,
        /// Server that granted it GPUs.
        server: ServerId,
    },
    /// A job was granted GPUs more than once in one round.
    DuplicateJob {
        /// Offending job.
        job: JobId,
    },
    /// GPUs were granted on a server that is down.
    PackedOnDownServer {
        /// Offending server.
        server: ServerId,
    },
    /// An event referenced a job that never arrived.
    UnknownJob {
        /// Offending job.
        job: JobId,
    },
    /// Per-user tickets do not sum to the cluster's GPU supply.
    TicketConservation {
        /// Expected total (physical GPUs).
        expected: f64,
        /// Actual sum of reported user tickets.
        actual: f64,
    },
    /// A job was lost or duplicated across a migration or migration
    /// failure.
    MigrationLifecycle {
        /// Offending job.
        job: JobId,
    },
    /// Ticket conservation failed at the first round after a partition
    /// healed.
    HealConservation {
        /// Expected total (physical GPUs).
        expected: f64,
        /// Actual sum of reported user tickets.
        actual: f64,
    },
}

/// One detected invariant violation, with the offending round's trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// The round in which the violation occurred (0 before the first round).
    pub round: u64,
    /// What was violated.
    pub kind: ViolationKind,
    /// Human-readable description.
    pub message: String,
    /// JSONL lines of the offending round's events, oldest first.
    pub context: Vec<String>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "invariant violated in round {}: {}",
            self.round, self.message
        )?;
        writeln!(f, "offending round trace ({} events):", self.context.len())?;
        for line in &self.context {
            writeln!(f, "  {line}")?;
        }
        Ok(())
    }
}

/// Online checker over the trace-event stream.
///
/// The per-job and per-server tables are dense vectors indexed by
/// `JobId::index()` / `ServerId::index()` rather than maps: the auditor
/// sits on the `emit` hot path and re-checks every `GangPacked` grant, and
/// ids in this workspace are dense by construction, so a handful of tree
/// lookups per grant would dominate clean runs.
#[derive(Debug, Default)]
pub struct Auditor {
    /// GPU count per server, learned from `ServerUp` events; indexed by
    /// `ServerId::index()`.
    capacity: Vec<u32>,
    /// Whether each server is currently online.
    up: Vec<bool>,
    /// Declared gang size per arrived job (0 = job unknown), indexed by
    /// `JobId::index()`.
    gang_of: Vec<u32>,
    /// Server each job is resident on, if any; indexed by `JobId::index()`.
    residency: Vec<Option<ServerId>>,
    /// Number of `Some` entries in `residency`.
    resident_count: usize,
    /// Migrations that have started but not yet resolved to a `Placement`
    /// or a `MigrationFailed`, keyed by job → (source, destination).
    in_flight: BTreeMap<JobId, (ServerId, ServerId)>,
    /// A partition healed since the last planned round; the next ticket
    /// conservation check reports as [`ViolationKind::HealConservation`].
    heal_pending: bool,
    /// GPUs granted per server in the round being assembled, indexed by
    /// `ServerId::index()`; reset at each round boundary.
    packed: Vec<u32>,
    /// Round-stamp per job marking a grant in the round being assembled
    /// (stamp == `round_serial`); stamping replaces a per-round set clear.
    packed_stamp: Vec<u64>,
    /// Serial of the round being assembled; bumped at each round boundary
    /// so stale `packed_stamp` entries expire without being cleared.
    round_serial: u64,
    /// Events since the last round boundary (violation context). Kept as
    /// events and rendered to JSONL only when a violation actually fires:
    /// serializing every event eagerly would put a `format!` on the hot
    /// path of clean runs, which are the overwhelmingly common case.
    round_events: VecDeque<TraceEvent>,
    current_round: u64,
    violations: Vec<Violation>,
    /// Index of the next violation [`Auditor::take_fatal`] will hand out.
    next_fatal: usize,
    warnings: u64,
}

impl Auditor {
    /// Creates an auditor with no knowledge of the cluster; capacities are
    /// learned from the event stream's `ServerUp` events.
    pub fn new() -> Self {
        Auditor::default()
    }

    /// Total physical GPUs learned from the stream.
    pub fn cluster_gpus(&self) -> u32 {
        self.capacity.iter().sum()
    }

    /// Grows `v` so index `i` exists, then hands out the slot.
    fn slot<T: Default + Clone>(v: &mut Vec<T>, i: usize) -> &mut T {
        if v.len() <= i {
            v.resize(i + 1, T::default());
        }
        &mut v[i]
    }

    /// Server `job` is resident on, if any.
    fn resident_on(&self, job: JobId) -> Option<ServerId> {
        self.residency.get(job.index()).copied().flatten()
    }

    /// Clears `job`'s residency, keeping `resident_count` consistent.
    fn unplace(&mut self, job: JobId) {
        if let Some(slot) = self.residency.get_mut(job.index()) {
            if slot.take().is_some() {
                self.resident_count -= 1;
            }
        }
    }

    /// All violations detected so far.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Warn-level findings so far.
    pub fn warnings(&self) -> u64 {
        self.warnings
    }

    /// Migrations currently in flight (started, not yet landed or failed).
    /// Zero at the end of a clean run: every migration resolved to exactly
    /// one `Placement` or `MigrationFailed`.
    pub fn open_migrations(&self) -> usize {
        self.in_flight.len()
    }

    /// Hands out the next not-yet-taken violation, if any. The engine polls
    /// this after each round to abort the run.
    pub fn take_fatal(&mut self) -> Option<Violation> {
        let v = self.violations.get(self.next_fatal).cloned();
        if v.is_some() {
            self.next_fatal += 1;
        }
        v
    }

    fn fail(&mut self, kind: ViolationKind, message: String) {
        self.violations.push(Violation {
            round: self.current_round,
            kind,
            message,
            context: self
                .round_events
                .iter()
                .map(TraceEvent::to_json_line)
                .collect(),
        });
    }

    /// Feeds one event through every applicable check.
    pub fn process(&mut self, event: &TraceEvent) {
        if self.round_events.len() == CONTEXT_CAP {
            self.round_events.pop_front();
        }
        self.round_events.push_back(event.clone());

        match event {
            TraceEvent::ServerUp { server, gpus, .. } => {
                *Self::slot(&mut self.capacity, server.index()) = *gpus;
                *Self::slot(&mut self.up, server.index()) = true;
            }
            TraceEvent::ServerDown { server, .. } => {
                *Self::slot(&mut self.up, server.index()) = false;
                // The failure evicts every resident job.
                for slot in self.residency.iter_mut() {
                    if *slot == Some(*server) {
                        *slot = None;
                        self.resident_count -= 1;
                    }
                }
            }
            TraceEvent::JobArrive { job, gang, .. } => {
                *Self::slot(&mut self.gang_of, job.index()) = *gang;
            }
            TraceEvent::JobFinish { job, .. } => {
                if self.in_flight.remove(job).is_some() {
                    self.fail(
                        ViolationKind::MigrationLifecycle { job: *job },
                        format!("job {job} finished while its migration was still in flight"),
                    );
                }
                self.unplace(*job);
                *Self::slot(&mut self.gang_of, job.index()) = 0;
            }
            TraceEvent::Placement { job, server, .. } => {
                if let Some((_, to)) = self.in_flight.remove(job) {
                    if to != *server {
                        self.fail(
                            ViolationKind::MigrationLifecycle { job: *job },
                            format!(
                                "job {job} landed on server {server} but its migration targeted {to}"
                            ),
                        );
                    }
                }
                let slot = Self::slot(&mut self.residency, job.index());
                if slot.is_none() {
                    self.resident_count += 1;
                }
                *slot = Some(*server);
            }
            TraceEvent::Migration { job, from, to, .. } => {
                // In flight: not resident anywhere until it lands (a
                // `Placement` event at the destination) or fails (a
                // `MigrationFailed` event).
                if self.in_flight.insert(*job, (*from, *to)).is_some() {
                    self.fail(
                        ViolationKind::MigrationLifecycle { job: *job },
                        format!("job {job} started a second migration while one was in flight"),
                    );
                }
                self.unplace(*job);
            }
            TraceEvent::MigrationFailed { job, reason, .. } => {
                let was_in_flight = self.in_flight.remove(job).is_some();
                // A failed migration must leave the job accounted for; what
                // that means depends on the failure stage.
                match reason {
                    gfair_types::MigrationFailReason::Checkpoint => {
                        // The checkpoint failed on the source, so the job
                        // never left: it must still be resident there.
                        let known = self.gang_of.get(job.index()).copied().unwrap_or(0) != 0;
                        if self.resident_on(*job).is_none() && known {
                            self.fail(
                                ViolationKind::MigrationLifecycle { job: *job },
                                format!(
                                    "job {job} lost across a checkpoint failure: it should have stayed resident at its source"
                                ),
                            );
                        }
                    }
                    gfair_types::MigrationFailReason::Restore => {
                        // A restore can only fail after the transfer
                        // started, i.e. for an in-flight job.
                        if !was_in_flight {
                            self.fail(
                                ViolationKind::MigrationLifecycle { job: *job },
                                format!(
                                    "restore failure reported for job {job}, which was not in flight"
                                ),
                            );
                        }
                    }
                    gfair_types::MigrationFailReason::TargetDown
                    | gfair_types::MigrationFailReason::Unreachable => {
                        // Either a mid-flight strand (resolves the in-flight
                        // record) or an undeliverable decision that left the
                        // job untouched (resident or pending); both are
                        // consistent.
                    }
                }
            }
            TraceEvent::PartitionStart { .. } | TraceEvent::Reconcile { .. } => {}
            TraceEvent::PartitionEnd { .. } => {
                self.heal_pending = true;
            }
            TraceEvent::GangPacked {
                round,
                server,
                job,
                width,
                ..
            } => {
                self.current_round = *round;
                let declared = match self.gang_of.get(job.index()).copied() {
                    Some(g) if g != 0 => g,
                    _ => {
                        self.fail(
                            ViolationKind::UnknownJob { job: *job },
                            format!("job {job} was granted GPUs but never arrived"),
                        );
                        *width
                    }
                };
                if *width != declared {
                    self.fail(
                        ViolationKind::PartialGang {
                            job: *job,
                            width: *width,
                            gang: declared,
                        },
                        format!(
                            "gang atomicity: job {job} granted {width} GPUs but its gang needs {declared}"
                        ),
                    );
                }
                // Stamps carry `round_serial + 1` so the vector's default of
                // zero can never read as "granted in serial 0".
                let stamp = self.round_serial + 1;
                let slot = Self::slot(&mut self.packed_stamp, job.index());
                let duplicate = *slot == stamp;
                *slot = stamp;
                if duplicate {
                    self.fail(
                        ViolationKind::DuplicateJob { job: *job },
                        format!("job {job} granted GPUs twice in round {round}"),
                    );
                }
                if self.resident_on(*job) != Some(*server) {
                    self.fail(
                        ViolationKind::NotResident {
                            job: *job,
                            server: *server,
                        },
                        format!("job {job} ran on server {server} where it is not resident"),
                    );
                }
                if !self.up.get(server.index()).copied().unwrap_or(false) {
                    self.fail(
                        ViolationKind::PackedOnDownServer { server: *server },
                        format!("server {server} is down but was granted work"),
                    );
                }
                let used = Self::slot(&mut self.packed, server.index());
                *used += *width;
                let requested = *used;
                let gpus = self.capacity.get(server.index()).copied().unwrap_or(0);
                if requested > gpus {
                    self.fail(
                        ViolationKind::Overcommit {
                            server: *server,
                            requested,
                            gpus,
                        },
                        format!(
                            "overcommit: server {server} granted {requested} GPUs but has {gpus}"
                        ),
                    );
                }
            }
            TraceEvent::RoundPlanned {
                round,
                gpus_used,
                tickets_total,
                users,
                ..
            } => {
                self.current_round = *round;
                if !users.is_empty() {
                    let actual: f64 = users.iter().map(|u| u.tickets).sum();
                    let expected = *tickets_total;
                    let tol = TICKET_TOL * expected.abs().max(1.0);
                    if (actual - expected).abs() > tol {
                        if self.heal_pending {
                            self.fail(
                                ViolationKind::HealConservation { expected, actual },
                                format!(
                                    "heal conservation: first round after a partition heal has user entitlements summing to {actual} but the cluster supplies {expected} GPUs"
                                ),
                            );
                        } else {
                            self.fail(
                                ViolationKind::TicketConservation { expected, actual },
                                format!(
                                    "ticket conservation: user entitlements sum to {actual} but the cluster supplies {expected} GPUs"
                                ),
                            );
                        }
                    }
                    // The scheduler reported a full economy this round; any
                    // pending heal check has now been performed.
                    self.heal_pending = false;
                }
                if *gpus_used == 0 && self.resident_count > 0 {
                    self.warnings += 1;
                }
                // Round boundary: bump the serial (expiring the per-round
                // grant stamps in place) and reset the rest.
                self.round_serial += 1;
                self.packed.fill(0);
                self.round_events.clear();
            }
            TraceEvent::RoundsSkipped {
                first_round,
                rounds,
                gpus_used,
                ..
            } => {
                // A replayed span: the plan re-ran unchanged, and it was
                // validated in full (residency, overcommit, gang atomicity,
                // conservation) in the round that produced it. Re-deriving
                // those checks per replayed round would only re-confirm the
                // same facts, so the span advances round accounting and the
                // warn-only work-conservation count; full checks resume at
                // the span boundary with the next planned round.
                self.current_round = first_round + rounds.saturating_sub(1);
                if *gpus_used == 0 && self.resident_count > 0 {
                    self.warnings += *rounds;
                }
                self.round_serial += 1;
                self.packed.fill(0);
                self.round_events.clear();
            }
            TraceEvent::Decision { .. }
            | TraceEvent::TradeExecuted { .. }
            | TraceEvent::ProfileInferred { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfair_types::{GenId, SimTime, UserId};

    fn t0() -> SimTime {
        SimTime::ZERO
    }

    fn setup() -> Auditor {
        let mut a = Auditor::new();
        a.process(&TraceEvent::ServerUp {
            t: t0(),
            server: ServerId::new(0),
            gen: GenId::new(0),
            gpus: 4,
        });
        a.process(&TraceEvent::JobArrive {
            t: t0(),
            job: JobId::new(1),
            user: UserId::new(0),
            gang: 4,
            service_secs: 100.0,
        });
        a.process(&TraceEvent::Placement {
            t: t0(),
            job: JobId::new(1),
            server: ServerId::new(0),
            gang: 4,
        });
        a
    }

    fn packed(job: u32, width: u32, gang: u32) -> TraceEvent {
        TraceEvent::GangPacked {
            t: t0(),
            round: 1,
            server: ServerId::new(0),
            job: JobId::new(job),
            user: UserId::new(0),
            width,
            gang,
        }
    }

    #[test]
    fn healthy_round_has_no_violations() {
        let mut a = setup();
        a.process(&packed(1, 4, 4));
        a.process(&TraceEvent::RoundPlanned {
            t: t0(),
            round: 1,
            scheduled: 1,
            gpus_used: 4,
            gpus_up: 4,
            pending: 0,
            tickets_total: 4.0,
            users: vec![],
            user_gpus: vec![],
        });
        assert!(a.violations().is_empty());
        assert_eq!(a.warnings(), 0);
        assert!(a.take_fatal().is_none());
    }

    #[test]
    fn partial_gang_is_detected_with_round_context() {
        let mut a = setup();
        a.process(&packed(1, 2, 4));
        let v = a.take_fatal().expect("violation");
        assert_eq!(
            v.kind,
            ViolationKind::PartialGang {
                job: JobId::new(1),
                width: 2,
                gang: 4
            }
        );
        assert_eq!(v.round, 1);
        assert!(!v.context.is_empty(), "offending round trace attached");
        assert!(v.to_string().contains("gang atomicity"));
        // The same violation is not handed out twice.
        assert!(a.take_fatal().is_none());
    }

    #[test]
    fn overcommit_is_detected() {
        let mut a = setup();
        a.process(&TraceEvent::JobArrive {
            t: t0(),
            job: JobId::new(2),
            user: UserId::new(1),
            gang: 2,
            service_secs: 50.0,
        });
        a.process(&TraceEvent::Placement {
            t: t0(),
            job: JobId::new(2),
            server: ServerId::new(0),
            gang: 2,
        });
        a.process(&packed(1, 4, 4));
        a.process(&packed(2, 2, 2));
        let v = a.take_fatal().expect("violation");
        assert_eq!(
            v.kind,
            ViolationKind::Overcommit {
                server: ServerId::new(0),
                requested: 6,
                gpus: 4
            }
        );
    }

    #[test]
    fn non_resident_job_is_detected() {
        let mut a = setup();
        // Job 1 migrates away and has not landed.
        a.process(&TraceEvent::Migration {
            t: t0(),
            job: JobId::new(1),
            from: ServerId::new(0),
            to: ServerId::new(1),
            outage_secs: 30.0,
        });
        a.process(&packed(1, 4, 4));
        let v = a.take_fatal().expect("violation");
        assert!(matches!(v.kind, ViolationKind::NotResident { .. }));
    }

    #[test]
    fn duplicate_grant_is_detected() {
        let mut a = setup();
        a.process(&packed(1, 4, 4));
        a.process(&packed(1, 4, 4));
        let v = a.take_fatal().expect("violation");
        assert!(matches!(v.kind, ViolationKind::DuplicateJob { .. }));
    }

    #[test]
    fn ticket_conservation_is_checked() {
        use crate::event::UserShare;
        let mut a = setup();
        a.process(&TraceEvent::RoundPlanned {
            t: t0(),
            round: 1,
            scheduled: 0,
            gpus_used: 4,
            gpus_up: 4,
            pending: 0,
            tickets_total: 4.0,
            users: vec![
                UserShare {
                    user: UserId::new(0),
                    tickets: 3.0,
                    pass: 0.0,
                },
                UserShare {
                    user: UserId::new(1),
                    tickets: 2.0,
                    pass: 0.0,
                },
            ],
            user_gpus: vec![],
        });
        let v = a.take_fatal().expect("violation");
        assert_eq!(
            v.kind,
            ViolationKind::TicketConservation {
                expected: 4.0,
                actual: 5.0
            }
        );
    }

    #[test]
    fn conserving_tickets_pass_within_tolerance() {
        use crate::event::UserShare;
        let mut a = setup();
        a.process(&TraceEvent::RoundPlanned {
            t: t0(),
            round: 1,
            scheduled: 0,
            gpus_used: 4,
            gpus_up: 4,
            pending: 0,
            tickets_total: 4.0,
            users: vec![
                UserShare {
                    user: UserId::new(0),
                    tickets: 1.0 + 1e-9,
                    pass: 0.0,
                },
                UserShare {
                    user: UserId::new(1),
                    tickets: 3.0 - 1e-9,
                    pass: 0.0,
                },
            ],
            user_gpus: vec![],
        });
        assert!(a.violations().is_empty());
    }

    #[test]
    fn idle_round_with_resident_jobs_warns() {
        let mut a = setup();
        a.process(&TraceEvent::RoundPlanned {
            t: t0(),
            round: 1,
            scheduled: 0,
            gpus_used: 0,
            gpus_up: 4,
            pending: 0,
            tickets_total: 4.0,
            users: vec![],
            user_gpus: vec![],
        });
        assert!(a.violations().is_empty(), "work conservation is warn-only");
        assert_eq!(a.warnings(), 1);
    }

    #[test]
    fn down_server_eviction_clears_residency() {
        let mut a = setup();
        a.process(&TraceEvent::ServerDown {
            t: t0(),
            server: ServerId::new(0),
            evicted: 1,
        });
        a.process(&packed(1, 4, 4));
        // Both not-resident and down-server fire.
        let kinds: Vec<_> = a.violations().iter().map(|v| &v.kind).collect();
        assert!(kinds
            .iter()
            .any(|k| matches!(k, ViolationKind::NotResident { .. })));
        assert!(kinds
            .iter()
            .any(|k| matches!(k, ViolationKind::PackedOnDownServer { .. })));
    }

    #[test]
    fn unknown_job_is_detected() {
        let mut a = Auditor::new();
        a.process(&TraceEvent::ServerUp {
            t: t0(),
            server: ServerId::new(0),
            gen: GenId::new(0),
            gpus: 8,
        });
        a.process(&packed(99, 1, 1));
        let v = a.take_fatal().expect("violation");
        assert!(matches!(v.kind, ViolationKind::UnknownJob { .. }));
    }

    fn migration(job: u32, from: u32, to: u32) -> TraceEvent {
        TraceEvent::Migration {
            t: t0(),
            job: JobId::new(job),
            from: ServerId::new(from),
            to: ServerId::new(to),
            outage_secs: 30.0,
        }
    }

    fn failed(
        job: u32,
        from: u32,
        to: u32,
        reason: gfair_types::MigrationFailReason,
    ) -> TraceEvent {
        TraceEvent::MigrationFailed {
            t: t0(),
            job: JobId::new(job),
            from: ServerId::new(from),
            to: ServerId::new(to),
            reason,
            attempt: 1,
        }
    }

    #[test]
    fn failed_migration_of_in_flight_job_is_clean() {
        use gfair_types::MigrationFailReason;
        let mut a = setup();
        a.process(&migration(1, 0, 1));
        a.process(&failed(1, 0, 1, MigrationFailReason::Restore));
        assert!(a.violations().is_empty());
        // The job can be re-placed afterwards without complaint.
        a.process(&TraceEvent::Placement {
            t: t0(),
            job: JobId::new(1),
            server: ServerId::new(0),
            gang: 4,
        });
        assert!(a.violations().is_empty());
    }

    #[test]
    fn checkpoint_failure_of_resident_job_is_clean() {
        use gfair_types::MigrationFailReason;
        let mut a = setup();
        // No Migration event: the checkpoint failed, the job never left.
        a.process(&failed(1, 0, 1, MigrationFailReason::Checkpoint));
        assert!(a.violations().is_empty());
    }

    #[test]
    fn lost_job_across_failed_migration_is_detected() {
        use gfair_types::MigrationFailReason;
        let mut a = setup();
        a.process(&migration(1, 0, 1));
        // A buggy engine reports the restore failure twice: the second
        // report finds the job not in flight — it was silently dropped.
        a.process(&failed(1, 0, 1, MigrationFailReason::Restore));
        assert!(a.violations().is_empty());
        a.process(&failed(1, 0, 1, MigrationFailReason::Restore));
        let v = a.take_fatal().expect("violation");
        assert_eq!(
            v.kind,
            ViolationKind::MigrationLifecycle { job: JobId::new(1) }
        );
        assert!(v.message.contains("not in flight"));
        assert_eq!(a.open_migrations(), 0);
    }

    #[test]
    fn checkpoint_failure_of_missing_job_is_detected() {
        use gfair_types::MigrationFailReason;
        let mut a = setup();
        // Take the job off its server (in flight), then claim a checkpoint
        // failure: a checkpoint failure means it never left, contradiction.
        a.process(&migration(1, 0, 1));
        a.process(&failed(1, 0, 1, MigrationFailReason::Checkpoint));
        let v = a.take_fatal().expect("violation");
        assert!(matches!(v.kind, ViolationKind::MigrationLifecycle { .. }));
        assert!(v.message.contains("checkpoint"));
    }

    #[test]
    fn undeliverable_decisions_for_pending_jobs_are_clean() {
        use gfair_types::MigrationFailReason;
        let mut a = Auditor::new();
        a.process(&TraceEvent::ServerUp {
            t: t0(),
            server: ServerId::new(0),
            gen: GenId::new(0),
            gpus: 4,
        });
        a.process(&TraceEvent::JobArrive {
            t: t0(),
            job: JobId::new(1),
            user: UserId::new(0),
            gang: 4,
            service_secs: 100.0,
        });
        // A queued placement raced a server failure: the job is pending,
        // was never in flight, and that is fine.
        a.process(&failed(1, 0, 0, MigrationFailReason::TargetDown));
        a.process(&failed(1, 0, 0, MigrationFailReason::Unreachable));
        assert!(a.violations().is_empty());
    }

    #[test]
    fn duplicated_migration_and_wrong_landing_are_detected() {
        let mut a = setup();
        a.process(&migration(1, 0, 1));
        a.process(&migration(1, 0, 2));
        let v = a.take_fatal().expect("violation");
        assert!(matches!(v.kind, ViolationKind::MigrationLifecycle { .. }));
        assert!(v.message.contains("second migration"));
        // The surviving in-flight record targets server 2; landing on 3 is
        // a lifecycle violation too.
        a.process(&TraceEvent::Placement {
            t: t0(),
            job: JobId::new(1),
            server: ServerId::new(3),
            gang: 4,
        });
        let v = a.take_fatal().expect("violation");
        assert!(matches!(v.kind, ViolationKind::MigrationLifecycle { .. }));
        assert!(v.message.contains("targeted"));
    }

    #[test]
    fn finish_while_in_flight_is_detected() {
        let mut a = setup();
        a.process(&migration(1, 0, 1));
        a.process(&TraceEvent::JobFinish {
            t: t0(),
            job: JobId::new(1),
            user: UserId::new(0),
        });
        let v = a.take_fatal().expect("violation");
        assert!(matches!(v.kind, ViolationKind::MigrationLifecycle { .. }));
        assert!(v.message.contains("finished"));
    }

    #[test]
    fn heal_conservation_has_its_own_kind() {
        use crate::event::UserShare;
        let mut a = setup();
        a.process(&TraceEvent::PartitionStart {
            t: t0(),
            server: ServerId::new(0),
        });
        a.process(&TraceEvent::PartitionEnd {
            t: t0(),
            server: ServerId::new(0),
        });
        a.process(&TraceEvent::RoundPlanned {
            t: t0(),
            round: 1,
            scheduled: 0,
            gpus_used: 4,
            gpus_up: 4,
            pending: 0,
            tickets_total: 4.0,
            users: vec![UserShare {
                user: UserId::new(0),
                tickets: 5.0,
                pass: 0.0,
            }],
            user_gpus: vec![],
        });
        let v = a.take_fatal().expect("violation");
        assert_eq!(
            v.kind,
            ViolationKind::HealConservation {
                expected: 4.0,
                actual: 5.0
            }
        );
        // The flag clears after the first reported round: a later mismatch
        // is ordinary ticket conservation again.
        a.process(&TraceEvent::RoundPlanned {
            t: t0(),
            round: 2,
            scheduled: 0,
            gpus_used: 4,
            gpus_up: 4,
            pending: 0,
            tickets_total: 4.0,
            users: vec![UserShare {
                user: UserId::new(0),
                tickets: 5.0,
                pass: 0.0,
            }],
            user_gpus: vec![],
        });
        let v = a.take_fatal().expect("violation");
        assert!(matches!(v.kind, ViolationKind::TicketConservation { .. }));
    }

    #[test]
    fn replayed_span_skips_rechecks_and_counts_idle_warnings() {
        let mut a = setup();
        a.process(&packed(1, 4, 4));
        a.process(&TraceEvent::RoundPlanned {
            t: t0(),
            round: 1,
            scheduled: 1,
            gpus_used: 4,
            gpus_up: 4,
            pending: 0,
            tickets_total: 4.0,
            users: vec![],
            user_gpus: vec![],
        });
        // A busy replayed span: no violations, no warnings, round advances
        // to the span end.
        a.process(&TraceEvent::RoundsSkipped {
            t: t0(),
            first_round: 2,
            rounds: 10,
            scheduled: 1,
            gpus_used: 4,
            gpus_up: 4,
            pending: 0,
            tickets_total: 4.0,
            widths: vec![4],
            users: vec![],
            user_gpus: vec![],
        });
        assert!(a.violations().is_empty());
        assert_eq!(a.warnings(), 0);
        // An idle replayed span with resident jobs warns once per collapsed
        // round, exactly as naive stepping would.
        a.process(&TraceEvent::RoundsSkipped {
            t: t0(),
            first_round: 12,
            rounds: 3,
            scheduled: 0,
            gpus_used: 0,
            gpus_up: 4,
            pending: 0,
            tickets_total: 4.0,
            widths: vec![],
            users: vec![],
            user_gpus: vec![],
        });
        assert_eq!(a.warnings(), 3);
        // The span is a round boundary: per-round packing state was reset,
        // so the next planned round re-grants without duplicate complaints,
        // and violations land in post-span rounds.
        a.process(&packed(1, 4, 4));
        assert!(a.violations().is_empty());
        let v_round = {
            a.process(&packed(1, 4, 4)); // duplicate in round 1 (packed() uses round 1)
            a.violations().last().unwrap().round
        };
        assert_eq!(v_round, 1, "round number comes from the GangPacked event");
    }

    #[test]
    fn per_round_state_resets_at_round_boundary() {
        let mut a = setup();
        a.process(&packed(1, 4, 4));
        a.process(&TraceEvent::RoundPlanned {
            t: t0(),
            round: 1,
            scheduled: 1,
            gpus_used: 4,
            gpus_up: 4,
            pending: 0,
            tickets_total: 4.0,
            users: vec![],
            user_gpus: vec![],
        });
        // Same grant next round: no duplicate, no overcommit.
        a.process(&packed(1, 4, 4));
        assert!(a.violations().is_empty());
    }
}
