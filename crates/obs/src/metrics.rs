//! The metrics registry: counters, gauges, and histograms.
//!
//! All metric updates are driven by the trace-event stream (see
//! [`crate::Obs::emit`]), so the registry and a trace of the same run can
//! never disagree. Everything here is a function of simulated events only —
//! no wall clocks — which keeps [`ObsSummary`] deterministic and safe to
//! embed in `SimReport` (runs with equal seeds still compare equal).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A monotonically increasing event count.
pub type Counter = u64;

/// Deterministic quantile sketch: a decimating reservoir that keeps at most
/// `MAX_SAMPLES` values by dropping every other retained sample (and
/// doubling its keep-stride) when full. No randomness, so same input
/// sequence ⇒ same summary.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    samples: Vec<f64>,
    stride: u64,
    seen: u64,
    max: f64,
    sum: f64,
}

const MAX_SAMPLES: usize = 4096;

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            samples: Vec::new(),
            stride: 1,
            seen: 0,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        self.sum += value;
        if value > self.max {
            self.max = value;
        }
        if self.seen.is_multiple_of(self.stride) {
            if self.samples.len() == MAX_SAMPLES {
                // Decimate: keep every other sample, double the stride.
                let kept: Vec<f64> = self.samples.iter().copied().step_by(2).collect();
                self.samples = kept;
                self.stride *= 2;
            }
            if self.seen.is_multiple_of(self.stride) {
                self.samples.push(value);
            }
        }
        self.seen += 1;
    }

    /// Total observations recorded (not just retained).
    pub fn count(&self) -> u64 {
        self.seen
    }

    /// The `q`-quantile (0.0–1.0) over the retained sample, or None when
    /// empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let idx = ((sorted.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        Some(sorted[idx])
    }

    /// Largest observation, or None when empty.
    pub fn max(&self) -> Option<f64> {
        if self.seen == 0 {
            None
        } else {
            Some(self.max)
        }
    }

    /// Mean of all observations, or None when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.seen == 0 {
            None
        } else {
            Some(self.sum / self.seen as f64)
        }
    }
}

/// Fixed-bucket histogram: a static list of bucket upper bounds and one
/// counter per bucket (plus an overflow bucket). `observe` touches no heap —
/// the counters are allocated once at construction — so it is safe on the
/// scheduler's hot path where the decimating [`Histogram`] would reallocate.
///
/// Quantiles are bucket-bound estimates: the reported value is the upper
/// bound of the bucket where the cumulative count crosses the quantile,
/// clamped to the exact observed maximum.
#[derive(Debug, Clone, PartialEq)]
pub struct FixedHistogram {
    bounds: &'static [f64],
    counts: Vec<u64>,
    seen: u64,
    sum: f64,
    max: f64,
    min: f64,
}

impl FixedHistogram {
    /// Creates a histogram over the given ascending bucket upper bounds.
    /// Values above the last bound land in an implicit overflow bucket.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly ascending.
    pub fn new(bounds: &'static [f64]) -> Self {
        assert!(
            !bounds.is_empty(),
            "fixed histogram needs at least one bucket"
        );
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "bucket bounds must be strictly ascending"
        );
        FixedHistogram {
            bounds,
            counts: vec![0; bounds.len() + 1],
            seen: 0,
            sum: 0.0,
            max: f64::NEG_INFINITY,
            min: f64::INFINITY,
        }
    }

    /// Records one observation. Non-finite values are dropped. No allocation.
    pub fn observe(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        self.seen += 1;
        self.sum += value;
        if value > self.max {
            self.max = value;
        }
        if value < self.min {
            self.min = value;
        }
        let idx = self
            .bounds
            .partition_point(|&b| b < value)
            .min(self.bounds.len());
        self.counts[idx] += 1;
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.seen
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of all observations, or None when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.seen == 0 {
            None
        } else {
            Some(self.sum / self.seen as f64)
        }
    }

    /// Largest observation, or None when empty.
    pub fn max(&self) -> Option<f64> {
        if self.seen == 0 {
            None
        } else {
            Some(self.max)
        }
    }

    /// Smallest observation, or None when empty.
    pub fn min(&self) -> Option<f64> {
        if self.seen == 0 {
            None
        } else {
            Some(self.min)
        }
    }

    /// Bucket-bound estimate of the `q`-quantile (0.0–1.0), or None when
    /// empty. Observations in the overflow bucket report the exact maximum.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.seen == 0 {
            return None;
        }
        let rank = ((self.seen as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                let est = if i < self.bounds.len() {
                    self.bounds[i]
                } else {
                    self.max
                };
                return Some(est.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }
}

/// Serializable summary of one histogram.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSummary {
    /// Metric name.
    pub name: String,
    /// Total observations.
    pub count: u64,
    /// Mean observation.
    pub mean: f64,
    /// Median.
    pub p50: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Largest observation.
    pub max: f64,
}

/// Map from `&'static str` metric names to values, tuned for the emit hot
/// path. Metric names are string literals, so an entry's (address, length)
/// pair is stable for the program's lifetime; a linear probe compares
/// addresses before falling back to contents, which resolves repeat lookups
/// over the few dozen live metrics without walking a tree of string
/// comparisons. Two distinct literals with equal text still share one entry
/// via the content fallback.
#[derive(Debug, Clone, Default)]
struct NameMap<T> {
    entries: Vec<(&'static str, T)>,
}

impl<T: Default> NameMap<T> {
    /// The value slot for `name`, created on first use.
    fn slot(&mut self, name: &'static str) -> &mut T {
        let pos = self.entries.iter().position(|(k, _)| {
            (std::ptr::eq(k.as_ptr(), name.as_ptr()) && k.len() == name.len()) || *k == name
        });
        let i = match pos {
            Some(i) => i,
            None => {
                self.entries.push((name, T::default()));
                self.entries.len() - 1
            }
        };
        &mut self.entries[i].1
    }

    /// The value under `name`, if present.
    fn get(&self, name: &str) -> Option<&T> {
        self.entries
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v)
    }

    /// All (name, value) pairs in name order (sorted on demand; emits never
    /// pay for the ordering, only snapshots do).
    fn sorted(&self) -> Vec<(&'static str, &T)> {
        let mut all: Vec<_> = self.entries.iter().map(|(k, v)| (*k, v)).collect();
        all.sort_by_key(|(k, _)| *k);
        all
    }
}

/// Counters, gauges, and histograms for one run.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: NameMap<Counter>,
    gauges: NameMap<f64>,
    histograms: NameMap<Histogram>,
}

impl MetricsRegistry {
    /// Increments a counter by `by`.
    pub fn inc(&mut self, name: &'static str, by: u64) {
        *self.counters.slot(name) += by;
    }

    /// Sets a gauge to `value`.
    pub fn set_gauge(&mut self, name: &'static str, value: f64) {
        *self.gauges.slot(name) = value;
    }

    /// Adds `delta` to a gauge (creating it at 0.0).
    pub fn add_gauge(&mut self, name: &'static str, delta: f64) {
        *self.gauges.slot(name) += delta;
    }

    /// Records one histogram observation.
    pub fn observe(&mut self, name: &'static str, value: f64) {
        self.histograms.slot(name).observe(value);
    }

    /// Current value of a counter (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of a gauge, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Snapshot of every metric.
    pub fn snapshot(
        &self,
    ) -> (
        BTreeMap<String, u64>,
        BTreeMap<String, f64>,
        Vec<HistogramSummary>,
    ) {
        let counters = self
            .counters
            .sorted()
            .into_iter()
            .map(|(k, &v)| (k.to_string(), v))
            .collect();
        let gauges = self
            .gauges
            .sorted()
            .into_iter()
            .map(|(k, &v)| (k.to_string(), v))
            .collect();
        let histograms = self
            .histograms
            .sorted()
            .into_iter()
            .filter(|(_, h)| h.count() > 0)
            .map(|(k, h)| HistogramSummary {
                name: k.to_string(),
                count: h.count(),
                mean: h.mean().unwrap_or(0.0),
                p50: h.quantile(0.5).unwrap_or(0.0),
                p99: h.quantile(0.99).unwrap_or(0.0),
                max: h.max().unwrap_or(0.0),
            })
            .collect();
        (counters, gauges, histograms)
    }
}

/// Deterministic observability snapshot embedded in `SimReport`.
///
/// Contains only quantities derived from simulated events; wall-clock span
/// timings live in [`crate::PhaseStats`] and are reported separately (they
/// would break report determinism).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObsSummary {
    /// Total trace events emitted.
    pub events: u64,
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram summaries, by name.
    pub histograms: Vec<HistogramSummary>,
    /// The fairness ledger's deserved-vs-received accounting.
    pub ledger: crate::ledger::LedgerSummary,
    /// Fatal invariant violations detected by the auditor (0 on any healthy
    /// run — a violation aborts the simulation).
    pub violations: u64,
    /// Warn-level audit findings (e.g. idle GPUs with runnable jobs under a
    /// deliberately non-work-conserving gang policy).
    pub warnings: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_accumulate() {
        let mut m = MetricsRegistry::default();
        m.inc("rounds", 1);
        m.inc("rounds", 2);
        m.set_gauge("queue_depth", 4.0);
        m.add_gauge("trade_gpu_volume", 1.5);
        m.add_gauge("trade_gpu_volume", 2.5);
        assert_eq!(m.counter("rounds"), 3);
        assert_eq!(m.counter("absent"), 0);
        assert_eq!(m.gauge("queue_depth"), Some(4.0));
        assert_eq!(m.gauge("trade_gpu_volume"), Some(4.0));
    }

    #[test]
    fn histogram_quantiles_track_data() {
        let mut h = Histogram::default();
        for i in 1..=100 {
            h.observe(i as f64);
        }
        assert_eq!(h.count(), 100);
        let p50 = h.quantile(0.5).unwrap();
        assert!((45.0..=55.0).contains(&p50), "p50 {p50}");
        assert_eq!(h.max(), Some(100.0));
        assert!((h.mean().unwrap() - 50.5).abs() < 1e-9);
    }

    #[test]
    fn histogram_decimates_but_keeps_count_and_max() {
        let mut h = Histogram::default();
        let n = 3 * MAX_SAMPLES as u64;
        for i in 0..n {
            h.observe(i as f64);
        }
        assert_eq!(h.count(), n);
        assert_eq!(h.max(), Some((n - 1) as f64));
        assert!(h.samples.len() <= MAX_SAMPLES);
        // Quantiles remain sane after decimation.
        let p50 = h.quantile(0.5).unwrap();
        let mid = n as f64 / 2.0;
        assert!((p50 - mid).abs() / mid < 0.1, "p50 {p50} vs mid {mid}");
    }

    #[test]
    fn histogram_is_deterministic() {
        let run = || {
            let mut h = Histogram::default();
            for i in 0..10_000u64 {
                h.observe((i % 97) as f64);
            }
            (h.quantile(0.5), h.quantile(0.99), h.count())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn snapshot_skips_empty_histograms() {
        let mut m = MetricsRegistry::default();
        m.observe("used", 1.0);
        let (_, _, hists) = m.snapshot();
        assert_eq!(hists.len(), 1);
        assert_eq!(hists[0].name, "used");
        assert_eq!(hists[0].count, 1);
    }

    #[test]
    fn non_finite_observations_are_dropped() {
        let mut h = Histogram::default();
        h.observe(f64::NAN);
        h.observe(f64::INFINITY);
        assert_eq!(h.count(), 0);
        assert_eq!(h.max(), None);
    }

    const TEST_BOUNDS: [f64; 4] = [1.0, 10.0, 100.0, 1000.0];

    #[test]
    fn fixed_histogram_buckets_and_stats() {
        let mut h = FixedHistogram::new(&TEST_BOUNDS);
        for v in [0.5, 5.0, 50.0, 500.0, 5000.0] {
            h.observe(v);
        }
        h.observe(f64::NAN);
        assert_eq!(h.count(), 5);
        assert_eq!(h.max(), Some(5000.0));
        assert_eq!(h.min(), Some(0.5));
        assert!((h.mean().unwrap() - 1111.1).abs() < 1e-9);
        // p50 of 5 observations is the 3rd: bucket (10, 100] → bound 100.
        assert_eq!(h.quantile(0.5), Some(100.0));
        // p99 lands in the overflow bucket → the exact max.
        assert_eq!(h.quantile(0.99), Some(5000.0));
    }

    #[test]
    fn fixed_histogram_quantile_clamps_to_observed_range() {
        let mut h = FixedHistogram::new(&TEST_BOUNDS);
        h.observe(3.0);
        h.observe(4.0);
        // Both fall in bucket (1, 10]; the bound estimate 10.0 is clamped to
        // the observed max.
        assert_eq!(h.quantile(0.5), Some(4.0));
        assert_eq!(h.quantile(0.0), Some(4.0));
        assert_eq!(FixedHistogram::new(&TEST_BOUNDS).quantile(0.5), None);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn fixed_histogram_rejects_unsorted_bounds() {
        static BAD: [f64; 2] = [2.0, 1.0];
        let _ = FixedHistogram::new(&BAD);
    }
}
