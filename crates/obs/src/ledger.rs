//! The fairness ledger: per-round, per-user deserved-vs-received accounting.
//!
//! Every scheduling round, each user *deserves* a GPU-share equal to their
//! ticket entitlement (for Gandiva_fair: the post-trade, generation-summed
//! GPU entitlement carried by [`RoundPlanned`](crate::TraceEvent::RoundPlanned)
//! user shares) and *receives* the GPUs the gang packer actually granted.
//! The ledger integrates both over the run and derives:
//!
//! - **cumulative Jain's index** over entitlement-normalized service
//!   (`received / deserved` per user),
//! - **instantaneous Gini** over the latest round's per-user received GPUs,
//! - an online **finish-time-fairness ρ** estimate per job
//!   (Themis, arXiv 1907.01484): `(finish − arrival) / service_secs`, the
//!   ratio of observed turnaround to the job's ideal isolated runtime on the
//!   base generation. ρ ≈ 1 means the job ran as if it had its entitlement
//!   to itself; large ρ means it queued or was starved.
//!
//! # Determinism under fast-forward
//!
//! The ledger is a pure function of the trace-event stream, and it must
//! produce *byte-identical* sums whether a quiescent span arrives as `n`
//! per-round `RoundPlanned` summaries (the naive path) or as one
//! [`RoundsSkipped`](crate::TraceEvent::RoundsSkipped) record (the
//! fast-forward path). Accrual is therefore segment-coalesced: consecutive
//! rounds with the same (tickets, received) key extend an open segment's
//! round count, and a segment is settled with one multiply per user
//! (`tickets × rounds`, `gpus × rounds`) when the key changes. Both paths
//! see the same key sequence, so they settle at the same boundaries with the
//! same floating-point operations. Stride `pass` values advance every round
//! and are deliberately excluded from the key.

use crate::event::TraceEvent;
use crate::metrics::FixedHistogram;
use serde::{Deserialize, Serialize};

/// Bucket upper bounds for the ρ histogram. ρ clusters around 1.0 for fair
/// runs; the tail buckets catch starved jobs.
const RHO_BOUNDS: [f64; 16] = [
    0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 2.0, 2.5, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 32.0, 64.0,
];

/// Per-user totals in a [`LedgerSummary`], ascending by user id.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LedgerUserRow {
    /// The user's index.
    pub user: u32,
    /// Ticket-weighted GPU-rounds the user was entitled to.
    pub deserved: f64,
    /// GPU-rounds the gang packer actually granted.
    pub received: f64,
    /// Jobs of this user that finished.
    pub finished: u64,
    /// Mean finish-time-fairness ρ over finished jobs (0.0 when none).
    pub rho_mean: f64,
    /// Worst (largest) ρ over finished jobs (0.0 when none).
    pub rho_max: f64,
}

/// Distribution of finish-time-fairness ρ over all finished jobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RhoSummary {
    /// Finished jobs with a defined ρ.
    pub count: u64,
    /// Mean ρ.
    pub mean: f64,
    /// Median ρ (fixed-bucket estimate).
    pub p50: f64,
    /// 99th-percentile ρ (fixed-bucket estimate).
    pub p99: f64,
    /// Largest ρ.
    pub max: f64,
}

impl Default for RhoSummary {
    fn default() -> Self {
        RhoSummary {
            count: 0,
            mean: 0.0,
            p50: 0.0,
            p99: 0.0,
            max: 0.0,
        }
    }
}

/// Deterministic snapshot of the fairness ledger, embedded in
/// [`ObsSummary`](crate::ObsSummary).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LedgerSummary {
    /// Scheduling rounds accounted (including fast-forwarded spans).
    pub rounds: u64,
    /// Cumulative Jain index over per-user `received / deserved`. Falls back
    /// to raw received GPU-rounds for schedulers without a ticket economy.
    /// 1.0 when no user has received anything yet.
    pub jain: f64,
    /// Gini coefficient of the latest round's per-user received GPUs
    /// (0.0 = perfectly equal, → 1.0 = one user holds everything).
    pub gini: f64,
    /// Distribution of finish-time fairness over finished jobs.
    pub rho: RhoSummary,
    /// Per-user totals, ascending by user id.
    pub users: Vec<LedgerUserRow>,
}

impl Default for LedgerSummary {
    fn default() -> Self {
        LedgerSummary {
            rounds: 0,
            jain: 1.0,
            gini: 0.0,
            rho: RhoSummary::default(),
            users: Vec::new(),
        }
    }
}

/// Streaming deserved-vs-received accounting over a trace-event stream.
///
/// Feed every event to [`ingest`](FairnessLedger::ingest) in emission order;
/// [`summary`](FairnessLedger::summary) is cheap and can be taken at any
/// point. The same implementation backs the live [`Obs`](crate::Obs)
/// pipeline and offline JSONL replay in `gfair-trace`, so the two can never
/// disagree about what a trace means.
#[derive(Debug, Clone)]
pub struct FairnessLedger {
    // Per-job facts captured at arrival, dense by job index.
    job_user: Vec<u32>,
    job_arrival_us: Vec<u64>,
    job_service_secs: Vec<f64>,
    // Settled per-user totals, dense by user index.
    deserved: Vec<f64>,
    received: Vec<f64>,
    rho_sum: Vec<f64>,
    rho_max: Vec<f64>,
    finished: Vec<u64>,
    rho_hist: FixedHistogram,
    rounds: u64,
    // Open segment: consecutive rounds sharing one (tickets, gpus) key.
    seg_tickets: Vec<(u32, f64)>,
    seg_gpus: Vec<(u32, u32)>,
    seg_count: u64,
}

impl Default for FairnessLedger {
    fn default() -> Self {
        FairnessLedger {
            job_user: Vec::new(),
            job_arrival_us: Vec::new(),
            job_service_secs: Vec::new(),
            deserved: Vec::new(),
            received: Vec::new(),
            rho_sum: Vec::new(),
            rho_max: Vec::new(),
            finished: Vec::new(),
            rho_hist: FixedHistogram::new(&RHO_BOUNDS),
            rounds: 0,
            seg_tickets: Vec::new(),
            seg_gpus: Vec::new(),
            seg_count: 0,
        }
    }
}

fn grow_to<T: Clone + Default>(v: &mut Vec<T>, index: usize) {
    if v.len() <= index {
        v.resize(index + 1, T::default());
    }
}

impl FairnessLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        FairnessLedger::default()
    }

    /// Feeds one trace event, in emission order.
    pub fn ingest(&mut self, event: &TraceEvent) {
        match event {
            TraceEvent::JobArrive {
                t,
                job,
                user,
                service_secs,
                ..
            } => {
                let j = job.index();
                grow_to(&mut self.job_user, j);
                grow_to(&mut self.job_arrival_us, j);
                grow_to(&mut self.job_service_secs, j);
                self.job_user[j] = user.index() as u32;
                self.job_arrival_us[j] = t.as_micros();
                self.job_service_secs[j] = *service_secs;
            }
            TraceEvent::JobFinish { t, job, user } => {
                let j = job.index();
                let service = self.job_service_secs.get(j).copied().unwrap_or(0.0);
                if service > 0.0 {
                    let arrival = self.job_arrival_us.get(j).copied().unwrap_or(0);
                    let turnaround = (t.as_micros().saturating_sub(arrival)) as f64 / 1e6;
                    let rho = turnaround / service;
                    let u = user.index();
                    grow_to(&mut self.rho_sum, u);
                    grow_to(&mut self.rho_max, u);
                    grow_to(&mut self.finished, u);
                    self.rho_sum[u] += rho;
                    if rho > self.rho_max[u] {
                        self.rho_max[u] = rho;
                    }
                    self.finished[u] += 1;
                    self.rho_hist.observe(rho);
                }
            }
            TraceEvent::RoundPlanned {
                users, user_gpus, ..
            } => {
                // Received share comes from the round's per-user aggregate,
                // not the per-gang `GangPacked` stream: the ledger replays
                // identically from traces that filter the gang firehose out.
                let mut tickets: Vec<(u32, f64)> = users
                    .iter()
                    .map(|s| (s.user.index() as u32, s.tickets))
                    .collect();
                tickets.sort_unstable_by_key(|&(u, _)| u);
                let mut grants: Vec<(u32, u32)> = user_gpus
                    .iter()
                    .map(|g| (g.user.index() as u32, g.gpus))
                    .collect();
                grants.sort_unstable_by_key(|&(u, _)| u);
                self.extend_segment(tickets, grants, 1);
            }
            TraceEvent::RoundsSkipped {
                rounds,
                users,
                user_gpus,
                ..
            } => {
                let mut tickets: Vec<(u32, f64)> = users
                    .iter()
                    .map(|s| (s.user.index() as u32, s.tickets))
                    .collect();
                tickets.sort_unstable_by_key(|&(u, _)| u);
                let mut grants: Vec<(u32, u32)> = user_gpus
                    .iter()
                    .map(|g| (g.user.index() as u32, g.gpus))
                    .collect();
                grants.sort_unstable_by_key(|&(u, _)| u);
                self.extend_segment(tickets, grants, *rounds);
            }
            _ => {}
        }
    }

    /// Extends the open segment by `n` rounds of the given key, settling the
    /// previous segment first if the key changed.
    fn extend_segment(&mut self, tickets: Vec<(u32, f64)>, gpus: Vec<(u32, u32)>, n: u64) {
        if self.seg_count > 0 && self.seg_tickets == tickets && self.seg_gpus == gpus {
            self.seg_count += n;
        } else {
            self.settle();
            self.seg_tickets = tickets;
            self.seg_gpus = gpus;
            self.seg_count = n;
        }
        self.rounds += n;
    }

    /// Settles the open segment into the per-user totals: one multiply per
    /// user, at the same boundaries on the naive and fast-forward paths.
    fn settle(&mut self) {
        if self.seg_count == 0 {
            return;
        }
        let n = self.seg_count as f64;
        for &(u, t) in &self.seg_tickets {
            let u = u as usize;
            grow_to(&mut self.deserved, u);
            self.deserved[u] += t * n;
        }
        for &(u, g) in &self.seg_gpus {
            let u = u as usize;
            grow_to(&mut self.received, u);
            // Exact: both factors are integers and the product stays far
            // below 2^53.
            self.received[u] += (u64::from(g) * self.seg_count) as f64;
        }
        self.seg_count = 0;
    }

    /// Deserved/received totals for one user, including the open segment.
    fn totals_for(&self, u: usize) -> (f64, f64) {
        let mut deserved = self.deserved.get(u).copied().unwrap_or(0.0);
        let mut received = self.received.get(u).copied().unwrap_or(0.0);
        if self.seg_count > 0 {
            let n = self.seg_count as f64;
            if let Ok(i) = self
                .seg_tickets
                .binary_search_by_key(&(u as u32), |&(x, _)| x)
            {
                deserved += self.seg_tickets[i].1 * n;
            }
            if let Ok(i) = self.seg_gpus.binary_search_by_key(&(u as u32), |&(x, _)| x) {
                received += (u64::from(self.seg_gpus[i].1) * self.seg_count) as f64;
            }
        }
        (deserved, received)
    }

    /// Snapshot of the ledger. Does not mutate accrual state, so it can be
    /// taken mid-run (the open segment is folded in arithmetically).
    pub fn summary(&self) -> LedgerSummary {
        let n_users = self
            .deserved
            .len()
            .max(self.received.len())
            .max(self.finished.len())
            .max(self.seg_tickets.last().map_or(0, |&(u, _)| u as usize + 1))
            .max(self.seg_gpus.last().map_or(0, |&(u, _)| u as usize + 1));
        let mut users = Vec::new();
        for u in 0..n_users {
            let (deserved, received) = self.totals_for(u);
            let finished = self.finished.get(u).copied().unwrap_or(0);
            if deserved == 0.0 && received == 0.0 && finished == 0 {
                continue;
            }
            users.push(LedgerUserRow {
                user: u as u32,
                deserved,
                received,
                finished,
                rho_mean: if finished > 0 {
                    self.rho_sum[u] / finished as f64
                } else {
                    0.0
                },
                rho_max: self.rho_max.get(u).copied().unwrap_or(0.0),
            });
        }
        // Jain over entitlement-normalized service; raw received for
        // schedulers that expose no tickets (baselines).
        let normalized: Vec<f64> = if users.iter().any(|r| r.deserved > 0.0) {
            users
                .iter()
                .filter(|r| r.deserved > 0.0)
                .map(|r| r.received / r.deserved)
                .collect()
        } else {
            users.iter().map(|r| r.received).collect()
        };
        // Instantaneous Gini over the latest round's grants: every user the
        // open segment knows about, zero-filled for ticket-holders who
        // received nothing.
        let mut latest: Vec<f64> = Vec::with_capacity(self.seg_tickets.len());
        for &(u, _) in &self.seg_tickets {
            let g = self
                .seg_gpus
                .binary_search_by_key(&u, |&(x, _)| x)
                .map_or(0u32, |i| self.seg_gpus[i].1);
            latest.push(f64::from(g));
        }
        if self.seg_tickets.is_empty() {
            latest.extend(self.seg_gpus.iter().map(|&(_, g)| f64::from(g)));
        }
        LedgerSummary {
            rounds: self.rounds,
            jain: jain(&normalized),
            gini: gini(&latest),
            rho: RhoSummary {
                count: self.rho_hist.count(),
                mean: self.rho_hist.mean().unwrap_or(0.0),
                p50: self.rho_hist.quantile(0.5).unwrap_or(0.0),
                p99: self.rho_hist.quantile(0.99).unwrap_or(0.0),
                max: self.rho_hist.max().unwrap_or(0.0),
            },
            users,
        }
    }
}

/// Jain's fairness index; 1.0 for empty or all-zero input. (Local copy:
/// `gfair-metrics` sits above the sim crate in the dependency graph, so the
/// obs crate cannot use it without a cycle.)
fn jain(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    let sum: f64 = values.iter().sum();
    let sum_sq: f64 = values.iter().map(|v| v * v).sum();
    if sum_sq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (values.len() as f64 * sum_sq)
}

/// Gini coefficient of non-negative values; 0.0 for empty or all-zero input.
fn gini(values: &[f64]) -> f64 {
    let sum: f64 = values.iter().sum();
    if values.len() < 2 || sum <= 0.0 {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let n = sorted.len() as f64;
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, &x)| (i as f64 + 1.0) * x)
        .sum();
    (2.0 * weighted) / (n * sum) - (n + 1.0) / n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{UserGrant, UserShare};
    use gfair_types::{JobId, ServerId, SimTime, UserId};

    fn share(user: u32, tickets: f64, pass: f64) -> UserShare {
        UserShare {
            user: UserId::new(user),
            tickets,
            pass,
        }
    }

    fn packed(round: u64, user: u32, width: u32) -> TraceEvent {
        TraceEvent::GangPacked {
            t: SimTime::from_secs(round * 60),
            round,
            server: ServerId::new(0),
            job: JobId::new(user),
            user: UserId::new(user),
            width,
            gang: width,
        }
    }

    fn grant(user: u32, gpus: u32) -> UserGrant {
        UserGrant {
            user: UserId::new(user),
            gpus,
        }
    }

    fn planned(round: u64, users: Vec<UserShare>, user_gpus: Vec<UserGrant>) -> TraceEvent {
        TraceEvent::RoundPlanned {
            t: SimTime::from_secs(round * 60),
            round,
            scheduled: 2,
            gpus_used: 6,
            gpus_up: 8,
            pending: 0,
            tickets_total: 8.0,
            users,
            user_gpus,
        }
    }

    #[test]
    fn accrues_deserved_and_received_per_round() {
        let mut l = FairnessLedger::new();
        for r in 1..=3u64 {
            // The per-gang stream must not double-count: received comes from
            // the round summary's aggregate alone.
            l.ingest(&packed(r, 0, 4));
            l.ingest(&packed(r, 1, 2));
            // Pass values advance each round; the key must ignore them.
            l.ingest(&planned(
                r,
                vec![share(0, 5.0, r as f64), share(1, 3.0, r as f64 * 2.0)],
                vec![grant(0, 4), grant(1, 2)],
            ));
        }
        let s = l.summary();
        assert_eq!(s.rounds, 3);
        assert_eq!(s.users.len(), 2);
        assert_eq!(s.users[0].deserved, 15.0);
        assert_eq!(s.users[0].received, 12.0);
        assert_eq!(s.users[1].deserved, 9.0);
        assert_eq!(s.users[1].received, 6.0);
        assert!(s.jain > 0.99, "jain {}", s.jain);
    }

    #[test]
    fn rounds_skipped_matches_naive_rounds_exactly() {
        // The core determinism contract: n identical per-round blocks and
        // one RoundsSkipped(n) must produce byte-identical summaries.
        let users = || vec![share(0, 5.5, 0.0), share(1, 2.5, 0.0)];
        let mut naive = FairnessLedger::new();
        // A leading differently-keyed round so settles happen mid-stream.
        naive.ingest(&planned(1, users(), vec![grant(0, 8)]));
        for r in 2..=8u64 {
            naive.ingest(&planned(r, users(), vec![grant(0, 4), grant(1, 2)]));
        }
        let mut fast = FairnessLedger::new();
        fast.ingest(&planned(1, users(), vec![grant(0, 8)]));
        // The establishing round runs naively, the remaining six are skipped.
        fast.ingest(&planned(2, users(), vec![grant(0, 4), grant(1, 2)]));
        fast.ingest(&TraceEvent::RoundsSkipped {
            t: SimTime::from_secs(180),
            first_round: 3,
            rounds: 6,
            scheduled: 2,
            gpus_used: 6,
            gpus_up: 8,
            pending: 0,
            tickets_total: 8.0,
            widths: vec![4, 2],
            users: users(),
            user_gpus: vec![
                UserGrant {
                    user: UserId::new(0),
                    gpus: 4,
                },
                UserGrant {
                    user: UserId::new(1),
                    gpus: 2,
                },
            ],
        });
        let (a, b) = (naive.summary(), fast.summary());
        assert_eq!(a, b);
        assert_eq!(a.rounds, 8);
        // Byte-identical when serialized, the property --verify checks.
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }

    #[test]
    fn rho_tracks_finish_time_fairness() {
        let mut l = FairnessLedger::new();
        l.ingest(&TraceEvent::JobArrive {
            t: SimTime::ZERO,
            job: JobId::new(0),
            user: UserId::new(0),
            gang: 1,
            service_secs: 100.0,
        });
        l.ingest(&TraceEvent::JobFinish {
            t: SimTime::from_secs(250),
            job: JobId::new(0),
            user: UserId::new(0),
        });
        let s = l.summary();
        assert_eq!(s.rho.count, 1);
        assert!((s.rho.mean - 2.5).abs() < 1e-9);
        assert!((s.rho.max - 2.5).abs() < 1e-9);
        assert_eq!(s.users.len(), 1);
        assert_eq!(s.users[0].finished, 1);
        assert!((s.users[0].rho_mean - 2.5).abs() < 1e-9);
    }

    #[test]
    fn jain_falls_back_to_raw_received_without_tickets() {
        let mut l = FairnessLedger::new();
        l.ingest(&planned(1, vec![], vec![grant(0, 6), grant(1, 2)]));
        let s = l.summary();
        // x = [6, 2]: jain = 64 / (2 * 40) = 0.8.
        assert!((s.jain - 0.8).abs() < 1e-9, "jain {}", s.jain);
    }

    #[test]
    fn gini_reflects_latest_round_spread() {
        let mut l = FairnessLedger::new();
        let both = || vec![share(0, 4.0, 0.0), share(1, 4.0, 0.0)];
        l.ingest(&planned(1, both(), vec![grant(0, 4), grant(1, 4)]));
        assert_eq!(l.summary().gini, 0.0);
        // Next round: user 0 hoards everything.
        l.ingest(&planned(2, both(), vec![grant(0, 8)]));
        let g = l.summary().gini;
        assert!((g - 0.5).abs() < 1e-9, "gini {g}");
    }

    #[test]
    fn summary_is_stable_across_snapshots() {
        let mut l = FairnessLedger::new();
        l.ingest(&planned(1, vec![share(0, 4.0, 1.0)], vec![grant(0, 4)]));
        let first = l.summary();
        // Taking a summary must not disturb accrual state.
        assert_eq!(first, l.summary());
    }

    #[test]
    fn gini_helper_known_values() {
        assert_eq!(gini(&[]), 0.0);
        assert_eq!(gini(&[5.0]), 0.0);
        assert_eq!(gini(&[3.0, 3.0, 3.0]), 0.0);
        // One of two holds everything: G = 0.5.
        assert!((gini(&[0.0, 8.0]) - 0.5).abs() < 1e-9);
        // All-zero input.
        assert_eq!(gini(&[0.0, 0.0]), 0.0);
    }
}
