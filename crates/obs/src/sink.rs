//! Trace sinks: where emitted events go.
//!
//! A [`Tracer`] receives every [`TraceEvent`] in emission order. Two sinks
//! ship with the crate: [`JsonlSink`] appends one JSON line per event to a
//! file (the `gfair simulate --trace` backend), and [`RingSink`] keeps the
//! last N events in memory for tests and for attaching an offending round's
//! context to auditor violations.

use crate::event::TraceEvent;
use std::collections::VecDeque;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

/// Consumes trace events in emission order.
pub trait Tracer: Send {
    /// Receives one event. Sinks must not reorder or drop events silently
    /// (bounded sinks like the ring buffer document their retention).
    fn record(&mut self, event: &TraceEvent);

    /// Flushes any buffered output. Called at end of run.
    fn flush(&mut self) {}
}

/// Appends events to a file as JSON Lines.
///
/// By default the per-gang `GangPacked` firehose is filtered out: it is
/// O(running jobs) per round (roughly three quarters of all events and
/// bytes at cluster scale), and everything downstream — the fairness
/// ledger, `gfair-trace why`/`fairness`/`diff` — works from the per-round
/// `RoundPlanned` aggregates instead. The in-process pipeline (auditor,
/// metrics, ledger) always sees every event regardless of sink filtering.
/// Use [`JsonlSink::full_fidelity`] to write the per-gang stream too.
///
/// Each line is built in a reused buffer and pushed through a 4 MiB
/// [`BufWriter`], so the steady-state cost per event is one serialization
/// and a buffered copy — no allocation.
#[derive(Debug)]
pub struct JsonlSink {
    out: BufWriter<File>,
    line: String,
    gang_packed: bool,
}

impl JsonlSink {
    /// Creates (truncating) the trace file at `path`, with the default
    /// event filter (no `GangPacked`).
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating the file.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Ok(JsonlSink {
            out: BufWriter::with_capacity(4 << 20, File::create(path)?),
            line: String::with_capacity(256),
            gang_packed: false,
        })
    }

    /// Creates (truncating) the trace file at `path`, writing every event
    /// including the per-gang `GangPacked` stream.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating the file.
    pub fn full_fidelity(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let mut sink = JsonlSink::create(path)?;
        sink.gang_packed = true;
        Ok(sink)
    }
}

impl Tracer for JsonlSink {
    fn record(&mut self, event: &TraceEvent) {
        if !self.gang_packed && matches!(event, TraceEvent::GangPacked { .. }) {
            return;
        }
        self.line.clear();
        event.write_json_line(&mut self.line);
        self.line.push('\n');
        // A full disk mid-run surfaces at flush; per-event error plumbing
        // would force Result through every scheduler hot path.
        let _ = self.out.write_all(self.line.as_bytes());
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

/// Shared handle to the events retained by a [`RingSink`].
#[derive(Debug, Clone)]
pub struct RingHandle {
    buf: Arc<Mutex<VecDeque<TraceEvent>>>,
}

impl RingHandle {
    /// Snapshot of the retained events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.buf
            .lock()
            .expect("ring lock")
            .iter()
            .cloned()
            .collect()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.buf.lock().expect("ring lock").len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Keeps the most recent `capacity` events in memory.
#[derive(Debug)]
pub struct RingSink {
    buf: Arc<Mutex<VecDeque<TraceEvent>>>,
    capacity: usize,
}

impl RingSink {
    /// Creates a ring retaining the last `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        RingSink {
            buf: Arc::new(Mutex::new(VecDeque::with_capacity(capacity))),
            capacity,
        }
    }

    /// A handle for reading retained events after the sink is installed.
    pub fn handle(&self) -> RingHandle {
        RingHandle {
            buf: Arc::clone(&self.buf),
        }
    }
}

impl Tracer for RingSink {
    fn record(&mut self, event: &TraceEvent) {
        let mut buf = self.buf.lock().expect("ring lock");
        if buf.len() == self.capacity {
            buf.pop_front();
        }
        buf.push_back(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfair_types::{JobId, SimTime, UserId};

    fn finish(n: u32) -> TraceEvent {
        TraceEvent::JobFinish {
            t: SimTime::from_secs(n as u64),
            job: JobId::new(n),
            user: UserId::new(0),
        }
    }

    #[test]
    fn ring_keeps_only_the_tail() {
        let mut sink = RingSink::new(3);
        let handle = sink.handle();
        for n in 0..5 {
            sink.record(&finish(n));
        }
        let kept = handle.events();
        assert_eq!(kept.len(), 3);
        assert_eq!(kept[0], finish(2));
        assert_eq!(kept[2], finish(4));
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let path =
            std::env::temp_dir().join(format!("gfair-obs-sink-{}.jsonl", std::process::id()));
        {
            let mut sink = JsonlSink::create(&path).unwrap();
            sink.record(&finish(1));
            sink.record(&finish(2));
            sink.flush();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"kind\":\"job_finish\""));
        assert!(lines[1].contains("\"job\":2"));
    }
}
