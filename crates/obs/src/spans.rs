//! Self-profiling spans for the scheduler's hot phases.
//!
//! Wall-clock timings of the four expensive phases — round planning, gang
//! packing, trade matching, migration search — aggregated into p50/p99
//! summaries. Timings are *never* written into trace events or `SimReport`
//! (they vary run to run and would break determinism guarantees); they are
//! surfaced through [`PhaseStats`] for `--obs-summary` and the benchmark
//! trajectories.

use crate::metrics::FixedHistogram;
use std::time::Duration;

/// Bucket upper bounds (microseconds) for phase spans: roughly geometric
/// from 1 µs to 1 s. Fixed buckets keep `observe` allocation-free on the
/// hot path; span quantiles are bucket-bound estimates, which is plenty for
/// wall-clock profiling (timings never enter reports).
const SPAN_US_BOUNDS: [f64; 19] = [
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1e3, 2e3, 5e3, 1e4, 2e4, 5e4, 1e5, 2e5,
    5e5, 1e6,
];

/// The instrumented scheduler phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// The engine's whole `plan_round` call into the scheduler.
    RoundPlanning,
    /// Per-server gang-aware stride selection (inside Gandiva_fair).
    GangPacking,
    /// The entitlement trading market.
    TradeMatching,
    /// Migration planning (profiling / realization / spreading passes).
    MigrationSearch,
}

/// All phases, in display order.
pub const PHASES: [Phase; 4] = [
    Phase::RoundPlanning,
    Phase::GangPacking,
    Phase::TradeMatching,
    Phase::MigrationSearch,
];

impl Phase {
    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            Phase::RoundPlanning => "round_planning",
            Phase::GangPacking => "gang_packing",
            Phase::TradeMatching => "trade_matching",
            Phase::MigrationSearch => "migration_search",
        }
    }

    fn index(self) -> usize {
        match self {
            Phase::RoundPlanning => 0,
            Phase::GangPacking => 1,
            Phase::TradeMatching => 2,
            Phase::MigrationSearch => 3,
        }
    }
}

/// Wall-clock summary of one phase.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseStats {
    /// The phase.
    pub phase: Phase,
    /// Spans recorded.
    pub count: u64,
    /// Total wall-clock time in milliseconds.
    pub total_ms: f64,
    /// Median span in microseconds.
    pub p50_us: f64,
    /// 99th-percentile span in microseconds.
    pub p99_us: f64,
    /// Longest span in microseconds.
    pub max_us: f64,
}

/// Per-phase span aggregation.
#[derive(Debug, Clone)]
pub struct SpanStats {
    phases: [FixedHistogram; 4],
}

impl Default for SpanStats {
    fn default() -> Self {
        SpanStats {
            phases: std::array::from_fn(|_| FixedHistogram::new(&SPAN_US_BOUNDS)),
        }
    }
}

impl SpanStats {
    /// Records one span of `phase`.
    pub fn observe(&mut self, phase: Phase, dur: Duration) {
        self.phases[phase.index()].observe(dur.as_secs_f64() * 1e6);
    }

    /// Summaries for every phase with at least one span, in display order.
    pub fn stats(&self) -> Vec<PhaseStats> {
        PHASES
            .iter()
            .filter_map(|&phase| {
                let h = &self.phases[phase.index()];
                if h.count() == 0 {
                    return None;
                }
                Some(PhaseStats {
                    phase,
                    count: h.count(),
                    total_ms: h.sum() / 1e3,
                    p50_us: h.quantile(0.5).unwrap_or(0.0),
                    p99_us: h.quantile(0.99).unwrap_or(0.0),
                    max_us: h.max().unwrap_or(0.0),
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_aggregate_per_phase() {
        let mut s = SpanStats::default();
        for us in [100u64, 200, 300] {
            s.observe(Phase::RoundPlanning, Duration::from_micros(us));
        }
        s.observe(Phase::TradeMatching, Duration::from_micros(50));
        let stats = s.stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].phase, Phase::RoundPlanning);
        assert_eq!(stats[0].count, 3);
        assert!((stats[0].p50_us - 200.0).abs() < 1.0);
        assert!((stats[0].max_us - 300.0).abs() < 1.0);
        assert_eq!(stats[1].phase, Phase::TradeMatching);
        assert_eq!(stats[1].count, 1);
    }

    #[test]
    fn silent_phases_are_omitted() {
        let s = SpanStats::default();
        assert!(s.stats().is_empty());
    }

    #[test]
    fn phase_names_are_stable() {
        let names: Vec<&str> = PHASES.iter().map(|p| p.name()).collect();
        assert_eq!(
            names,
            vec![
                "round_planning",
                "gang_packing",
                "trade_matching",
                "migration_search"
            ]
        );
    }
}
