//! The structured trace-event model.
//!
//! Every scheduler decision the engine applies is narrated as a
//! [`TraceEvent`] and pushed through the installed [`crate::Tracer`] sinks
//! and the [`crate::Auditor`]. Events carry *simulated* time only — never
//! wall-clock readings — so two runs with the same seed serialize to
//! byte-identical JSONL.
//!
//! The JSONL encoding is hand-rolled rather than derived: field order is
//! frozen (stable across compiler and shim versions), floats use Rust's
//! shortest round-trip formatting, and the `kind` discriminator always comes
//! first so line-oriented tools can dispatch without a full parse.

use gfair_types::{GenId, JobId, MigrationFailReason, ServerId, SimTime, UserId};
use std::fmt::Write as _;

/// One user's scheduling state inside a [`TraceEvent::RoundPlanned`] event.
#[derive(Debug, Clone, PartialEq)]
pub struct UserShare {
    /// The user.
    pub user: UserId,
    /// Tickets backing the user this round (for Gandiva_fair: the user's
    /// post-trade GPU entitlement summed over generations).
    pub tickets: f64,
    /// The user's minimum stride pass value across local schedulers (0.0
    /// when the scheduler does not expose passes).
    pub pass: f64,
}

/// A structured record of one scheduler decision or cluster incident.
///
/// The `t` field is simulated time. `ServerUp` is also emitted once per
/// server at simulation start so a trace is self-describing: the auditor
/// reconstructs cluster capacity from the stream alone.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A server came online (or was online at simulation start).
    ServerUp {
        /// Simulated time.
        t: SimTime,
        /// The server.
        server: ServerId,
        /// The server's GPU generation.
        gen: GenId,
        /// GPUs installed.
        gpus: u32,
    },
    /// A server failed; resident jobs were evicted.
    ServerDown {
        /// Simulated time.
        t: SimTime,
        /// The server.
        server: ServerId,
        /// Number of jobs evicted by the failure.
        evicted: u32,
    },
    /// A job entered the system.
    JobArrive {
        /// Simulated time.
        t: SimTime,
        /// The job.
        job: JobId,
        /// Its owner.
        user: UserId,
        /// Gang size (GPUs required, all-or-nothing).
        gang: u32,
        /// Service demand in base-generation GPU-seconds.
        service_secs: f64,
    },
    /// A job completed its service demand.
    JobFinish {
        /// Simulated time.
        t: SimTime,
        /// The job.
        job: JobId,
        /// Its owner.
        user: UserId,
    },
    /// A job became resident on a server (initial placement or migration
    /// landing).
    Placement {
        /// Simulated time.
        t: SimTime,
        /// The job.
        job: JobId,
        /// Where it now resides.
        server: ServerId,
        /// Gang size.
        gang: u32,
    },
    /// A job started a checkpoint/restore move between servers.
    Migration {
        /// Simulated time.
        t: SimTime,
        /// The job.
        job: JobId,
        /// Source server.
        from: ServerId,
        /// Destination server.
        to: ServerId,
        /// Checkpoint/restore outage in seconds.
        outage_secs: f64,
    },
    /// A migration (or undeliverable placement decision) failed; the job is
    /// either still at its source (`checkpoint`), re-queued (`restore`,
    /// `target_down`), or untouched because the decision never reached the
    /// server (`unreachable`).
    MigrationFailed {
        /// Simulated time.
        t: SimTime,
        /// The job.
        job: JobId,
        /// Where the job was when the attempt started (equal to `to` for
        /// failed initial placements, which have no source).
        from: ServerId,
        /// The intended destination.
        to: ServerId,
        /// What went wrong.
        reason: MigrationFailReason,
        /// Which attempt this was (1 = the job's first migration ever).
        attempt: u32,
    },
    /// The central scheduler lost contact with a server's local scheduler.
    /// The server keeps running its last-received stride state.
    PartitionStart {
        /// Simulated time.
        t: SimTime,
        /// The unreachable server.
        server: ServerId,
    },
    /// Connectivity to a partitioned server was restored.
    PartitionEnd {
        /// Simulated time.
        t: SimTime,
        /// The healed server.
        server: ServerId,
    },
    /// After a partition healed, the central scheduler re-synced state with
    /// the server's local scheduler.
    Reconcile {
        /// Simulated time.
        t: SimTime,
        /// The healed server.
        server: ServerId,
        /// Users whose entitlements were re-synced cluster-wide.
        users_resynced: u32,
        /// Jobs found resident on the server and re-validated.
        jobs_revalidated: u32,
        /// Jobs whose residency diverged from the central scheduler's
        /// last-known view during the partition.
        drift: u32,
    },
    /// One job was granted its gang on a server for the coming quantum.
    ///
    /// `width` is the allocation actually granted and `gang` the job's
    /// declared requirement; the auditor flags any mismatch (partial gang).
    GangPacked {
        /// Simulated time.
        t: SimTime,
        /// Scheduling round number (1-based).
        round: u64,
        /// The server.
        server: ServerId,
        /// The job.
        job: JobId,
        /// The job's owner.
        user: UserId,
        /// GPUs granted this quantum.
        width: u32,
        /// GPUs the job's gang requires.
        gang: u32,
    },
    /// Summary of one scheduling round, emitted after its `GangPacked`
    /// events.
    RoundPlanned {
        /// Simulated time.
        t: SimTime,
        /// Scheduling round number (1-based).
        round: u64,
        /// Jobs granted GPUs this quantum.
        scheduled: u32,
        /// GPUs in use this quantum.
        gpus_used: u32,
        /// GPUs currently online.
        gpus_up: u32,
        /// Jobs waiting for a placement.
        pending: u32,
        /// Cluster-wide ticket supply (total physical GPUs, the quantity
        /// per-user entitlements must sum to under ticket conservation).
        tickets_total: f64,
        /// Per-user pass/tickets, when the scheduler exposes them (empty
        /// for baselines without a ticket economy).
        users: Vec<UserShare>,
    },
    /// A span of quiescent rounds the engine replayed in one step (the
    /// fast-forward path): the cached plan re-ran unchanged for `rounds`
    /// consecutive quanta. Stands in for the per-round
    /// `GangPacked`/`RoundPlanned` blocks the naive path would have emitted,
    /// carrying enough detail to replay their metrics exactly.
    RoundsSkipped {
        /// Simulated time of the first replayed round.
        t: SimTime,
        /// Round number of the first replayed round (1-based).
        first_round: u64,
        /// Number of rounds collapsed into this record.
        rounds: u64,
        /// Jobs granted GPUs in each replayed round.
        scheduled: u32,
        /// GPUs in use in each replayed round.
        gpus_used: u32,
        /// GPUs online across the span.
        gpus_up: u32,
        /// Jobs waiting for a placement across the span.
        pending: u32,
        /// Cluster-wide ticket supply (total physical GPUs).
        tickets_total: f64,
        /// Granted gang widths in plan iteration order, one per scheduled
        /// job and identical in every replayed round.
        widths: Vec<u32>,
    },
    /// The trading market matched a seller and a buyer.
    TradeExecuted {
        /// Simulated time.
        t: SimTime,
        /// User selling fast-GPU entitlement.
        seller: UserId,
        /// User buying fast-GPU entitlement.
        buyer: UserId,
        /// The fast generation traded.
        gen: GenId,
        /// Fast GPUs moved from seller to buyer.
        fast_gpus: f64,
        /// Base GPUs moved from buyer to seller in payment.
        base_gpus: f64,
        /// Price in base GPUs per fast GPU.
        price: f64,
    },
    /// A (model, generation) throughput estimate crossed the sample
    /// threshold and is now trusted by the trading market.
    ProfileInferred {
        /// Simulated time.
        t: SimTime,
        /// Model name.
        model: String,
        /// The generation profiled.
        gen: GenId,
        /// Mean observed rate on that generation.
        rate: f64,
        /// Observations aggregated so far.
        samples: u64,
    },
}

impl TraceEvent {
    /// The event's `kind` discriminator as it appears in JSONL.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::ServerUp { .. } => "server_up",
            TraceEvent::ServerDown { .. } => "server_down",
            TraceEvent::JobArrive { .. } => "job_arrive",
            TraceEvent::JobFinish { .. } => "job_finish",
            TraceEvent::Placement { .. } => "placement",
            TraceEvent::Migration { .. } => "migration",
            TraceEvent::MigrationFailed { .. } => "migration_failed",
            TraceEvent::PartitionStart { .. } => "partition_start",
            TraceEvent::PartitionEnd { .. } => "partition_end",
            TraceEvent::Reconcile { .. } => "reconcile",
            TraceEvent::GangPacked { .. } => "gang_packed",
            TraceEvent::RoundPlanned { .. } => "round_planned",
            TraceEvent::RoundsSkipped { .. } => "rounds_skipped",
            TraceEvent::TradeExecuted { .. } => "trade_executed",
            TraceEvent::ProfileInferred { .. } => "profile_inferred",
        }
    }

    /// The event's simulated time.
    pub fn time(&self) -> SimTime {
        match self {
            TraceEvent::ServerUp { t, .. }
            | TraceEvent::ServerDown { t, .. }
            | TraceEvent::JobArrive { t, .. }
            | TraceEvent::JobFinish { t, .. }
            | TraceEvent::Placement { t, .. }
            | TraceEvent::Migration { t, .. }
            | TraceEvent::MigrationFailed { t, .. }
            | TraceEvent::PartitionStart { t, .. }
            | TraceEvent::PartitionEnd { t, .. }
            | TraceEvent::Reconcile { t, .. }
            | TraceEvent::GangPacked { t, .. }
            | TraceEvent::RoundPlanned { t, .. }
            | TraceEvent::RoundsSkipped { t, .. }
            | TraceEvent::TradeExecuted { t, .. }
            | TraceEvent::ProfileInferred { t, .. } => *t,
        }
    }

    /// Renders the event as one JSON line (no trailing newline).
    ///
    /// Times serialize as integer microseconds (`t_us`) so encoding never
    /// loses precision; every id is a bare integer.
    pub fn to_json_line(&self) -> String {
        let mut s = String::with_capacity(128);
        let t = self.time().as_micros();
        let _ = write!(s, "{{\"kind\":\"{}\",\"t_us\":{t}", self.kind());
        match self {
            TraceEvent::ServerUp {
                server, gen, gpus, ..
            } => {
                let _ = write!(
                    s,
                    ",\"server\":{},\"gen\":{},\"gpus\":{gpus}",
                    server.index(),
                    gen.index()
                );
            }
            TraceEvent::ServerDown {
                server, evicted, ..
            } => {
                let _ = write!(s, ",\"server\":{},\"evicted\":{evicted}", server.index());
            }
            TraceEvent::JobArrive {
                job,
                user,
                gang,
                service_secs,
                ..
            } => {
                let _ = write!(
                    s,
                    ",\"job\":{},\"user\":{},\"gang\":{gang},\"service_secs\":{}",
                    job.index(),
                    user.index(),
                    fmt_f64(*service_secs)
                );
            }
            TraceEvent::JobFinish { job, user, .. } => {
                let _ = write!(s, ",\"job\":{},\"user\":{}", job.index(), user.index());
            }
            TraceEvent::Placement {
                job, server, gang, ..
            } => {
                let _ = write!(
                    s,
                    ",\"job\":{},\"server\":{},\"gang\":{gang}",
                    job.index(),
                    server.index()
                );
            }
            TraceEvent::Migration {
                job,
                from,
                to,
                outage_secs,
                ..
            } => {
                let _ = write!(
                    s,
                    ",\"job\":{},\"from\":{},\"to\":{},\"outage_secs\":{}",
                    job.index(),
                    from.index(),
                    to.index(),
                    fmt_f64(*outage_secs)
                );
            }
            TraceEvent::MigrationFailed {
                job,
                from,
                to,
                reason,
                attempt,
                ..
            } => {
                let _ = write!(
                    s,
                    ",\"job\":{},\"from\":{},\"to\":{},\"reason\":\"{}\",\"attempt\":{attempt}",
                    job.index(),
                    from.index(),
                    to.index(),
                    reason.as_str()
                );
            }
            TraceEvent::PartitionStart { server, .. } | TraceEvent::PartitionEnd { server, .. } => {
                let _ = write!(s, ",\"server\":{}", server.index());
            }
            TraceEvent::Reconcile {
                server,
                users_resynced,
                jobs_revalidated,
                drift,
                ..
            } => {
                let _ = write!(
                    s,
                    ",\"server\":{},\"users_resynced\":{users_resynced},\"jobs_revalidated\":{jobs_revalidated},\"drift\":{drift}",
                    server.index()
                );
            }
            TraceEvent::GangPacked {
                round,
                server,
                job,
                user,
                width,
                gang,
                ..
            } => {
                let _ = write!(
                    s,
                    ",\"round\":{round},\"server\":{},\"job\":{},\"user\":{},\"width\":{width},\"gang\":{gang}",
                    server.index(),
                    job.index(),
                    user.index()
                );
            }
            TraceEvent::RoundPlanned {
                round,
                scheduled,
                gpus_used,
                gpus_up,
                pending,
                tickets_total,
                users,
                ..
            } => {
                let _ = write!(
                    s,
                    ",\"round\":{round},\"scheduled\":{scheduled},\"gpus_used\":{gpus_used},\"gpus_up\":{gpus_up},\"pending\":{pending},\"tickets_total\":{},\"users\":[",
                    fmt_f64(*tickets_total)
                );
                for (i, u) in users.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    let _ = write!(
                        s,
                        "{{\"user\":{},\"tickets\":{},\"pass\":{}}}",
                        u.user.index(),
                        fmt_f64(u.tickets),
                        fmt_f64(u.pass)
                    );
                }
                s.push(']');
            }
            TraceEvent::RoundsSkipped {
                first_round,
                rounds,
                scheduled,
                gpus_used,
                gpus_up,
                pending,
                tickets_total,
                widths,
                ..
            } => {
                let _ = write!(
                    s,
                    ",\"first_round\":{first_round},\"rounds\":{rounds},\"scheduled\":{scheduled},\"gpus_used\":{gpus_used},\"gpus_up\":{gpus_up},\"pending\":{pending},\"tickets_total\":{},\"widths\":[",
                    fmt_f64(*tickets_total)
                );
                for (i, w) in widths.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    let _ = write!(s, "{w}");
                }
                s.push(']');
            }
            TraceEvent::TradeExecuted {
                seller,
                buyer,
                gen,
                fast_gpus,
                base_gpus,
                price,
                ..
            } => {
                let _ = write!(
                    s,
                    ",\"seller\":{},\"buyer\":{},\"gen\":{},\"fast_gpus\":{},\"base_gpus\":{},\"price\":{}",
                    seller.index(),
                    buyer.index(),
                    gen.index(),
                    fmt_f64(*fast_gpus),
                    fmt_f64(*base_gpus),
                    fmt_f64(*price)
                );
            }
            TraceEvent::ProfileInferred {
                model,
                gen,
                rate,
                samples,
                ..
            } => {
                let _ = write!(
                    s,
                    ",\"model\":\"{}\",\"gen\":{},\"rate\":{},\"samples\":{samples}",
                    escape_json(model),
                    gen.index(),
                    fmt_f64(*rate)
                );
            }
        }
        s.push('}');
        s
    }
}

/// Formats a float so the JSON value stays a float (integral values get a
/// `.0`), using Rust's shortest round-trip representation otherwise.
fn fmt_f64(x: f64) -> String {
    if !x.is_finite() {
        // Traces never carry non-finite values; clamp rather than emit
        // invalid JSON if an upstream bug produces one.
        return "null".to_string();
    }
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{x:.1}")
    } else {
        format!("{x}")
    }
}

/// Escapes a string for embedding in a JSON string literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_strings_are_stable() {
        let ev = TraceEvent::JobArrive {
            t: SimTime::from_secs(1),
            job: JobId::new(7),
            user: UserId::new(2),
            gang: 4,
            service_secs: 3600.0,
        };
        assert_eq!(ev.kind(), "job_arrive");
        assert_eq!(ev.time(), SimTime::from_secs(1));
    }

    #[test]
    fn json_lines_have_kind_first_and_integer_times() {
        let ev = TraceEvent::Migration {
            t: SimTime::from_secs(60),
            job: JobId::new(3),
            from: ServerId::new(0),
            to: ServerId::new(5),
            outage_secs: 42.5,
        };
        let line = ev.to_json_line();
        assert!(line.starts_with("{\"kind\":\"migration\",\"t_us\":60000000,"));
        assert!(line.contains("\"outage_secs\":42.5"));
        assert!(line.ends_with('}'));
    }

    #[test]
    fn round_planned_renders_user_list() {
        let ev = TraceEvent::RoundPlanned {
            t: SimTime::ZERO,
            round: 9,
            scheduled: 2,
            gpus_used: 6,
            gpus_up: 8,
            pending: 1,
            tickets_total: 8.0,
            users: vec![
                UserShare {
                    user: UserId::new(0),
                    tickets: 5.0,
                    pass: 1.25,
                },
                UserShare {
                    user: UserId::new(1),
                    tickets: 3.0,
                    pass: 2.5,
                },
            ],
        };
        let line = ev.to_json_line();
        assert!(line.contains("\"users\":[{\"user\":0,\"tickets\":5.0,\"pass\":1.25},"));
        assert!(line.contains("{\"user\":1,\"tickets\":3.0,\"pass\":2.5}]"));
    }

    #[test]
    fn model_names_are_escaped() {
        let ev = TraceEvent::ProfileInferred {
            t: SimTime::ZERO,
            model: "we\"ird\\name".to_string(),
            gen: GenId::new(1),
            rate: 2.0,
            samples: 3,
        };
        let line = ev.to_json_line();
        assert!(line.contains("\"model\":\"we\\\"ird\\\\name\""));
    }

    #[test]
    fn fault_events_render_stable_lines() {
        let ev = TraceEvent::MigrationFailed {
            t: SimTime::from_secs(10),
            job: JobId::new(4),
            from: ServerId::new(1),
            to: ServerId::new(2),
            reason: MigrationFailReason::Restore,
            attempt: 2,
        };
        assert_eq!(
            ev.to_json_line(),
            "{\"kind\":\"migration_failed\",\"t_us\":10000000,\"job\":4,\"from\":1,\"to\":2,\"reason\":\"restore\",\"attempt\":2}"
        );
        let ev = TraceEvent::PartitionStart {
            t: SimTime::from_secs(5),
            server: ServerId::new(3),
        };
        assert_eq!(
            ev.to_json_line(),
            "{\"kind\":\"partition_start\",\"t_us\":5000000,\"server\":3}"
        );
        let ev = TraceEvent::Reconcile {
            t: SimTime::from_secs(6),
            server: ServerId::new(3),
            users_resynced: 4,
            jobs_revalidated: 7,
            drift: 1,
        };
        assert_eq!(
            ev.to_json_line(),
            "{\"kind\":\"reconcile\",\"t_us\":6000000,\"server\":3,\"users_resynced\":4,\"jobs_revalidated\":7,\"drift\":1}"
        );
        assert_eq!(
            TraceEvent::PartitionEnd {
                t: SimTime::ZERO,
                server: ServerId::new(0)
            }
            .kind(),
            "partition_end"
        );
    }

    #[test]
    fn rounds_skipped_renders_stable_line() {
        let ev = TraceEvent::RoundsSkipped {
            t: SimTime::from_secs(120),
            first_round: 3,
            rounds: 5,
            scheduled: 2,
            gpus_used: 6,
            gpus_up: 8,
            pending: 1,
            tickets_total: 8.0,
            widths: vec![4, 2],
        };
        assert_eq!(ev.kind(), "rounds_skipped");
        assert_eq!(ev.time(), SimTime::from_secs(120));
        assert_eq!(
            ev.to_json_line(),
            "{\"kind\":\"rounds_skipped\",\"t_us\":120000000,\"first_round\":3,\"rounds\":5,\"scheduled\":2,\"gpus_used\":6,\"gpus_up\":8,\"pending\":1,\"tickets_total\":8.0,\"widths\":[4,2]}"
        );
    }

    #[test]
    fn floats_keep_json_float_shape() {
        assert_eq!(fmt_f64(2.0), "2.0");
        assert_eq!(fmt_f64(0.1), "0.1");
        assert_eq!(fmt_f64(-3.0), "-3.0");
        assert_eq!(fmt_f64(f64::NAN), "null");
    }
}
