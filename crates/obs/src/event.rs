//! The structured trace-event model.
//!
//! Every scheduler decision the engine applies is narrated as a
//! [`TraceEvent`] and pushed through the installed [`crate::Tracer`] sinks
//! and the [`crate::Auditor`]. Events carry *simulated* time only — never
//! wall-clock readings — so two runs with the same seed serialize to
//! byte-identical JSONL.
//!
//! The JSONL encoding is hand-rolled rather than derived: field order is
//! frozen (stable across compiler and shim versions), floats use Rust's
//! shortest round-trip formatting, and the `kind` discriminator always comes
//! first so line-oriented tools can dispatch without a full parse.

use gfair_types::{GenId, JobId, MigrationFailReason, ServerId, SimTime, UserId};
use serde_json::JsonValue;
use std::fmt::Write as _;

/// One user's scheduling state inside a [`TraceEvent::RoundPlanned`] event.
#[derive(Debug, Clone, PartialEq)]
pub struct UserShare {
    /// The user.
    pub user: UserId,
    /// Tickets backing the user this round (for Gandiva_fair: the user's
    /// post-trade GPU entitlement summed over generations).
    pub tickets: f64,
    /// The user's minimum stride pass value across local schedulers (0.0
    /// when the scheduler does not expose passes).
    pub pass: f64,
}

/// One user's granted GPUs inside a [`TraceEvent::RoundsSkipped`] span.
#[derive(Debug, Clone, PartialEq)]
pub struct UserGrant {
    /// The user.
    pub user: UserId,
    /// GPUs granted to the user's jobs in each replayed round.
    pub gpus: u32,
}

/// One alternative a scheduler decision evaluated, inside a
/// [`TraceEvent::Decision`] event. Lower scores are better (scores are
/// projected loads, slacks, or prices depending on the decision site).
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// Human-readable label, e.g. `server:12` or `gen:1`.
    pub label: String,
    /// The candidate's score under the decision's objective.
    pub score: f64,
}

/// A group of alternatives a decision ruled out, with the shared reason.
#[derive(Debug, Clone, PartialEq)]
pub struct Rejection {
    /// Why the alternatives were not eligible, e.g. `unreachable` or
    /// `does_not_fit`. A `Cow` so the (fixed) vocabulary of reason strings
    /// can be borrowed `'static` literals — hot rejection paths then never
    /// allocate — while deserialized traces still own their strings.
    pub reason: std::borrow::Cow<'static, str>,
    /// How many alternatives were rejected for this reason.
    pub count: u32,
}

/// A structured record of one scheduler decision or cluster incident.
///
/// The `t` field is simulated time. `ServerUp` is also emitted once per
/// server at simulation start so a trace is self-describing: the auditor
/// reconstructs cluster capacity from the stream alone.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A server came online (or was online at simulation start).
    ServerUp {
        /// Simulated time.
        t: SimTime,
        /// The server.
        server: ServerId,
        /// The server's GPU generation.
        gen: GenId,
        /// GPUs installed.
        gpus: u32,
    },
    /// A server failed; resident jobs were evicted.
    ServerDown {
        /// Simulated time.
        t: SimTime,
        /// The server.
        server: ServerId,
        /// Number of jobs evicted by the failure.
        evicted: u32,
    },
    /// A job entered the system.
    JobArrive {
        /// Simulated time.
        t: SimTime,
        /// The job.
        job: JobId,
        /// Its owner.
        user: UserId,
        /// Gang size (GPUs required, all-or-nothing).
        gang: u32,
        /// Service demand in base-generation GPU-seconds.
        service_secs: f64,
    },
    /// A job completed its service demand.
    JobFinish {
        /// Simulated time.
        t: SimTime,
        /// The job.
        job: JobId,
        /// Its owner.
        user: UserId,
    },
    /// A job became resident on a server (initial placement or migration
    /// landing).
    Placement {
        /// Simulated time.
        t: SimTime,
        /// The job.
        job: JobId,
        /// Where it now resides.
        server: ServerId,
        /// Gang size.
        gang: u32,
    },
    /// A job started a checkpoint/restore move between servers.
    Migration {
        /// Simulated time.
        t: SimTime,
        /// The job.
        job: JobId,
        /// Source server.
        from: ServerId,
        /// Destination server.
        to: ServerId,
        /// Checkpoint/restore outage in seconds.
        outage_secs: f64,
    },
    /// A migration (or undeliverable placement decision) failed; the job is
    /// either still at its source (`checkpoint`), re-queued (`restore`,
    /// `target_down`), or untouched because the decision never reached the
    /// server (`unreachable`).
    MigrationFailed {
        /// Simulated time.
        t: SimTime,
        /// The job.
        job: JobId,
        /// Where the job was when the attempt started (equal to `to` for
        /// failed initial placements, which have no source).
        from: ServerId,
        /// The intended destination.
        to: ServerId,
        /// What went wrong.
        reason: MigrationFailReason,
        /// Which attempt this was (1 = the job's first migration ever).
        attempt: u32,
    },
    /// The central scheduler lost contact with a server's local scheduler.
    /// The server keeps running its last-received stride state.
    PartitionStart {
        /// Simulated time.
        t: SimTime,
        /// The unreachable server.
        server: ServerId,
    },
    /// Connectivity to a partitioned server was restored.
    PartitionEnd {
        /// Simulated time.
        t: SimTime,
        /// The healed server.
        server: ServerId,
    },
    /// After a partition healed, the central scheduler re-synced state with
    /// the server's local scheduler.
    Reconcile {
        /// Simulated time.
        t: SimTime,
        /// The healed server.
        server: ServerId,
        /// Users whose entitlements were re-synced cluster-wide.
        users_resynced: u32,
        /// Jobs found resident on the server and re-validated.
        jobs_revalidated: u32,
        /// Jobs whose residency diverged from the central scheduler's
        /// last-known view during the partition.
        drift: u32,
    },
    /// One job was granted its gang on a server for the coming quantum.
    ///
    /// `width` is the allocation actually granted and `gang` the job's
    /// declared requirement; the auditor flags any mismatch (partial gang).
    GangPacked {
        /// Simulated time.
        t: SimTime,
        /// Scheduling round number (1-based).
        round: u64,
        /// The server.
        server: ServerId,
        /// The job.
        job: JobId,
        /// The job's owner.
        user: UserId,
        /// GPUs granted this quantum.
        width: u32,
        /// GPUs the job's gang requires.
        gang: u32,
    },
    /// Summary of one scheduling round, emitted after its `GangPacked`
    /// events.
    RoundPlanned {
        /// Simulated time.
        t: SimTime,
        /// Scheduling round number (1-based).
        round: u64,
        /// Jobs granted GPUs this quantum.
        scheduled: u32,
        /// GPUs in use this quantum.
        gpus_used: u32,
        /// GPUs currently online.
        gpus_up: u32,
        /// Jobs waiting for a placement.
        pending: u32,
        /// Cluster-wide ticket supply (total physical GPUs, the quantity
        /// per-user entitlements must sum to under ticket conservation).
        tickets_total: f64,
        /// Per-user pass/tickets, when the scheduler exposes them (empty
        /// for baselines without a ticket economy).
        users: Vec<UserShare>,
        /// GPUs granted per user this round, ascending by user. The
        /// fairness ledger accrues received share from this aggregate, so
        /// traces stay replayable even when the per-gang `GangPacked`
        /// stream is filtered out of the sink.
        user_gpus: Vec<UserGrant>,
    },
    /// A span of quiescent rounds the engine replayed in one step (the
    /// fast-forward path): the cached plan re-ran unchanged for `rounds`
    /// consecutive quanta. Stands in for the per-round
    /// `GangPacked`/`RoundPlanned` blocks the naive path would have emitted,
    /// carrying enough detail to replay their metrics exactly.
    RoundsSkipped {
        /// Simulated time of the first replayed round.
        t: SimTime,
        /// Round number of the first replayed round (1-based).
        first_round: u64,
        /// Number of rounds collapsed into this record.
        rounds: u64,
        /// Jobs granted GPUs in each replayed round.
        scheduled: u32,
        /// GPUs in use in each replayed round.
        gpus_used: u32,
        /// GPUs online across the span.
        gpus_up: u32,
        /// Jobs waiting for a placement across the span.
        pending: u32,
        /// Cluster-wide ticket supply (total physical GPUs).
        tickets_total: f64,
        /// Granted gang widths in plan iteration order, one per scheduled
        /// job and identical in every replayed round.
        widths: Vec<u32>,
        /// Per-user tickets and stride passes at the start of the span (the
        /// same shape `RoundPlanned` carries; entitlements cannot change
        /// inside a quiescent span).
        users: Vec<UserShare>,
        /// GPUs granted per user in each replayed round, ascending by user.
        user_gpus: Vec<UserGrant>,
    },
    /// Structured provenance for one scheduler decision: what was chosen,
    /// what else was considered, which rule broke ties, and why the
    /// alternatives lost. Emitted by the central scheduler (placements,
    /// retries), the trade matcher, the migration planner, and the engine's
    /// failure path (evictions).
    Decision {
        /// Simulated time.
        t: SimTime,
        /// Decision site: `placement`, `retry`, `migration`, `trade`, or
        /// `eviction`.
        decision: String,
        /// The job the decision concerns, if any.
        job: Option<JobId>,
        /// The user the decision concerns, if any.
        user: Option<UserId>,
        /// The selected alternative (e.g. `server:12`), or `none` when the
        /// decision could not be satisfied.
        chosen: String,
        /// The rule that broke ties among equally-scored candidates.
        tie_break: String,
        /// Total alternatives evaluated (may exceed `candidates.len()`,
        /// which is bounded).
        considered: u32,
        /// The best-scoring alternatives evaluated, winner first.
        candidates: Vec<Candidate>,
        /// Alternatives ruled out, grouped by reason.
        rejected: Vec<Rejection>,
    },
    /// The trading market matched a seller and a buyer.
    TradeExecuted {
        /// Simulated time.
        t: SimTime,
        /// User selling fast-GPU entitlement.
        seller: UserId,
        /// User buying fast-GPU entitlement.
        buyer: UserId,
        /// The fast generation traded.
        gen: GenId,
        /// Fast GPUs moved from seller to buyer.
        fast_gpus: f64,
        /// Base GPUs moved from buyer to seller in payment.
        base_gpus: f64,
        /// Price in base GPUs per fast GPU.
        price: f64,
    },
    /// A (model, generation) throughput estimate crossed the sample
    /// threshold and is now trusted by the trading market.
    ProfileInferred {
        /// Simulated time.
        t: SimTime,
        /// Model name.
        model: String,
        /// The generation profiled.
        gen: GenId,
        /// Mean observed rate on that generation.
        rate: f64,
        /// Observations aggregated so far.
        samples: u64,
    },
}

impl TraceEvent {
    /// Every `kind` discriminator, in variant declaration order. The
    /// DESIGN.md event table and the golden-trace fixture are cross-checked
    /// against this list by tests, so adding a variant without documenting
    /// it fails the suite.
    pub const KINDS: [&'static str; 16] = [
        "server_up",
        "server_down",
        "job_arrive",
        "job_finish",
        "placement",
        "migration",
        "migration_failed",
        "partition_start",
        "partition_end",
        "reconcile",
        "gang_packed",
        "round_planned",
        "rounds_skipped",
        "decision",
        "trade_executed",
        "profile_inferred",
    ];

    /// The event's `kind` discriminator as it appears in JSONL.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::ServerUp { .. } => "server_up",
            TraceEvent::ServerDown { .. } => "server_down",
            TraceEvent::JobArrive { .. } => "job_arrive",
            TraceEvent::JobFinish { .. } => "job_finish",
            TraceEvent::Placement { .. } => "placement",
            TraceEvent::Migration { .. } => "migration",
            TraceEvent::MigrationFailed { .. } => "migration_failed",
            TraceEvent::PartitionStart { .. } => "partition_start",
            TraceEvent::PartitionEnd { .. } => "partition_end",
            TraceEvent::Reconcile { .. } => "reconcile",
            TraceEvent::GangPacked { .. } => "gang_packed",
            TraceEvent::RoundPlanned { .. } => "round_planned",
            TraceEvent::RoundsSkipped { .. } => "rounds_skipped",
            TraceEvent::Decision { .. } => "decision",
            TraceEvent::TradeExecuted { .. } => "trade_executed",
            TraceEvent::ProfileInferred { .. } => "profile_inferred",
        }
    }

    /// The event's simulated time.
    pub fn time(&self) -> SimTime {
        match self {
            TraceEvent::ServerUp { t, .. }
            | TraceEvent::ServerDown { t, .. }
            | TraceEvent::JobArrive { t, .. }
            | TraceEvent::JobFinish { t, .. }
            | TraceEvent::Placement { t, .. }
            | TraceEvent::Migration { t, .. }
            | TraceEvent::MigrationFailed { t, .. }
            | TraceEvent::PartitionStart { t, .. }
            | TraceEvent::PartitionEnd { t, .. }
            | TraceEvent::Reconcile { t, .. }
            | TraceEvent::GangPacked { t, .. }
            | TraceEvent::RoundPlanned { t, .. }
            | TraceEvent::RoundsSkipped { t, .. }
            | TraceEvent::Decision { t, .. }
            | TraceEvent::TradeExecuted { t, .. }
            | TraceEvent::ProfileInferred { t, .. } => *t,
        }
    }

    /// Renders the event as one JSON line (no trailing newline).
    ///
    /// Times serialize as integer microseconds (`t_us`) so encoding never
    /// loses precision; every id is a bare integer.
    pub fn to_json_line(&self) -> String {
        let mut s = String::with_capacity(128);
        self.write_json_line(&mut s);
        s
    }

    /// Appends the event's JSON line (no trailing newline) to `s`.
    ///
    /// This is the zero-allocation path sinks use with a reused buffer:
    /// high-frequency variants format integers with a hand-rolled itoa instead of
    /// the `core::fmt` machinery, which matters at hundreds of thousands of
    /// events per simulated hour.
    pub fn write_json_line(&self, s: &mut String) {
        s.push_str("{\"kind\":\"");
        s.push_str(self.kind());
        s.push_str("\",\"t_us\":");
        push_u64(s, self.time().as_micros());
        match self {
            TraceEvent::ServerUp {
                server, gen, gpus, ..
            } => {
                let _ = write!(
                    s,
                    ",\"server\":{},\"gen\":{},\"gpus\":{gpus}",
                    server.index(),
                    gen.index()
                );
            }
            TraceEvent::ServerDown {
                server, evicted, ..
            } => {
                let _ = write!(s, ",\"server\":{},\"evicted\":{evicted}", server.index());
            }
            TraceEvent::JobArrive {
                job,
                user,
                gang,
                service_secs,
                ..
            } => {
                s.push_str(",\"job\":");
                push_u64(s, job.index() as u64);
                s.push_str(",\"user\":");
                push_u64(s, user.index() as u64);
                s.push_str(",\"gang\":");
                push_u64(s, u64::from(*gang));
                s.push_str(",\"service_secs\":");
                push_f64(s, *service_secs);
            }
            TraceEvent::JobFinish { job, user, .. } => {
                s.push_str(",\"job\":");
                push_u64(s, job.index() as u64);
                s.push_str(",\"user\":");
                push_u64(s, user.index() as u64);
            }
            TraceEvent::Placement {
                job, server, gang, ..
            } => {
                s.push_str(",\"job\":");
                push_u64(s, job.index() as u64);
                s.push_str(",\"server\":");
                push_u64(s, server.index() as u64);
                s.push_str(",\"gang\":");
                push_u64(s, u64::from(*gang));
            }
            TraceEvent::Migration {
                job,
                from,
                to,
                outage_secs,
                ..
            } => {
                s.push_str(",\"job\":");
                push_u64(s, job.index() as u64);
                s.push_str(",\"from\":");
                push_u64(s, from.index() as u64);
                s.push_str(",\"to\":");
                push_u64(s, to.index() as u64);
                s.push_str(",\"outage_secs\":");
                push_f64(s, *outage_secs);
            }
            TraceEvent::MigrationFailed {
                job,
                from,
                to,
                reason,
                attempt,
                ..
            } => {
                let _ = write!(
                    s,
                    ",\"job\":{},\"from\":{},\"to\":{},\"reason\":\"{}\",\"attempt\":{attempt}",
                    job.index(),
                    from.index(),
                    to.index(),
                    reason.as_str()
                );
            }
            TraceEvent::PartitionStart { server, .. } | TraceEvent::PartitionEnd { server, .. } => {
                let _ = write!(s, ",\"server\":{}", server.index());
            }
            TraceEvent::Reconcile {
                server,
                users_resynced,
                jobs_revalidated,
                drift,
                ..
            } => {
                let _ = write!(
                    s,
                    ",\"server\":{},\"users_resynced\":{users_resynced},\"jobs_revalidated\":{jobs_revalidated},\"drift\":{drift}",
                    server.index()
                );
            }
            TraceEvent::GangPacked {
                round,
                server,
                job,
                user,
                width,
                gang,
                ..
            } => {
                s.push_str(",\"round\":");
                push_u64(s, *round);
                s.push_str(",\"server\":");
                push_u64(s, server.index() as u64);
                s.push_str(",\"job\":");
                push_u64(s, job.index() as u64);
                s.push_str(",\"user\":");
                push_u64(s, user.index() as u64);
                s.push_str(",\"width\":");
                push_u64(s, u64::from(*width));
                s.push_str(",\"gang\":");
                push_u64(s, u64::from(*gang));
            }
            TraceEvent::RoundPlanned {
                round,
                scheduled,
                gpus_used,
                gpus_up,
                pending,
                tickets_total,
                users,
                user_gpus,
                ..
            } => {
                s.push_str(",\"round\":");
                push_u64(s, *round);
                s.push_str(",\"scheduled\":");
                push_u64(s, u64::from(*scheduled));
                s.push_str(",\"gpus_used\":");
                push_u64(s, u64::from(*gpus_used));
                s.push_str(",\"gpus_up\":");
                push_u64(s, u64::from(*gpus_up));
                s.push_str(",\"pending\":");
                push_u64(s, u64::from(*pending));
                s.push_str(",\"tickets_total\":");
                push_f64(s, *tickets_total);
                s.push_str(",\"users\":[");
                push_user_shares(s, users);
                s.push_str("],\"user_gpus\":[");
                push_user_grants(s, user_gpus);
                s.push(']');
            }
            TraceEvent::RoundsSkipped {
                first_round,
                rounds,
                scheduled,
                gpus_used,
                gpus_up,
                pending,
                tickets_total,
                widths,
                users,
                user_gpus,
                ..
            } => {
                s.push_str(",\"first_round\":");
                push_u64(s, *first_round);
                s.push_str(",\"rounds\":");
                push_u64(s, *rounds);
                s.push_str(",\"scheduled\":");
                push_u64(s, u64::from(*scheduled));
                s.push_str(",\"gpus_used\":");
                push_u64(s, u64::from(*gpus_used));
                s.push_str(",\"gpus_up\":");
                push_u64(s, u64::from(*gpus_up));
                s.push_str(",\"pending\":");
                push_u64(s, u64::from(*pending));
                s.push_str(",\"tickets_total\":");
                push_f64(s, *tickets_total);
                s.push_str(",\"widths\":[");
                for (i, w) in widths.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    push_u64(s, u64::from(*w));
                }
                s.push_str("],\"users\":[");
                push_user_shares(s, users);
                s.push_str("],\"user_gpus\":[");
                push_user_grants(s, user_gpus);
                s.push(']');
            }
            TraceEvent::Decision {
                decision,
                job,
                user,
                chosen,
                tie_break,
                considered,
                candidates,
                rejected,
                ..
            } => {
                s.push_str(",\"decision\":\"");
                push_escaped(s, decision);
                s.push_str("\",\"job\":");
                match job {
                    Some(j) => push_u64(s, j.index() as u64),
                    None => s.push_str("null"),
                }
                s.push_str(",\"user\":");
                match user {
                    Some(u) => push_u64(s, u.index() as u64),
                    None => s.push_str("null"),
                }
                s.push_str(",\"chosen\":\"");
                push_escaped(s, chosen);
                s.push_str("\",\"tie_break\":\"");
                push_escaped(s, tie_break);
                s.push_str("\",\"considered\":");
                push_u64(s, u64::from(*considered));
                s.push_str(",\"candidates\":[");
                for (i, c) in candidates.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    s.push_str("{\"label\":\"");
                    push_escaped(s, &c.label);
                    s.push_str("\",\"score\":");
                    push_f64(s, c.score);
                    s.push('}');
                }
                s.push_str("],\"rejected\":[");
                for (i, r) in rejected.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    s.push_str("{\"reason\":\"");
                    push_escaped(s, &r.reason);
                    s.push_str("\",\"count\":");
                    push_u64(s, u64::from(r.count));
                    s.push('}');
                }
                s.push(']');
            }
            TraceEvent::TradeExecuted {
                seller,
                buyer,
                gen,
                fast_gpus,
                base_gpus,
                price,
                ..
            } => {
                let _ = write!(
                    s,
                    ",\"seller\":{},\"buyer\":{},\"gen\":{},\"fast_gpus\":{},\"base_gpus\":{},\"price\":{}",
                    seller.index(),
                    buyer.index(),
                    gen.index(),
                    fmt_f64(*fast_gpus),
                    fmt_f64(*base_gpus),
                    fmt_f64(*price)
                );
            }
            TraceEvent::ProfileInferred {
                model,
                gen,
                rate,
                samples,
                ..
            } => {
                let _ = write!(
                    s,
                    ",\"model\":\"{}\",\"gen\":{},\"rate\":{},\"samples\":{samples}",
                    escape_json(model),
                    gen.index(),
                    fmt_f64(*rate)
                );
            }
        }
        s.push('}');
    }

    /// Parses one JSONL trace line back into an event — the inverse of
    /// [`to_json_line`](Self::to_json_line). This is the contract
    /// `gfair-trace` and the golden-trace schema test are built on: renaming
    /// or dropping a field fails here with a message naming the event kind
    /// and the missing field.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem found: invalid JSON, an
    /// unknown `kind`, or a missing/mistyped field.
    pub fn from_json_line(line: &str) -> Result<TraceEvent, String> {
        let v = serde_json::parse(line).map_err(|e| format!("invalid JSON: {e}"))?;
        let kind = field(&v, "<event>", "kind")?
            .as_str()
            .ok_or_else(|| "field `kind` must be a string".to_string())?
            .to_string();
        let k = kind.as_str();
        let t = SimTime::from_micros(get_u64(&v, k, "t_us")?);
        match k {
            "server_up" => Ok(TraceEvent::ServerUp {
                t,
                server: ServerId::new(get_u32(&v, k, "server")?),
                gen: GenId::new(get_u32(&v, k, "gen")?),
                gpus: get_u32(&v, k, "gpus")?,
            }),
            "server_down" => Ok(TraceEvent::ServerDown {
                t,
                server: ServerId::new(get_u32(&v, k, "server")?),
                evicted: get_u32(&v, k, "evicted")?,
            }),
            "job_arrive" => Ok(TraceEvent::JobArrive {
                t,
                job: JobId::new(get_u32(&v, k, "job")?),
                user: UserId::new(get_u32(&v, k, "user")?),
                gang: get_u32(&v, k, "gang")?,
                service_secs: get_f64(&v, k, "service_secs")?,
            }),
            "job_finish" => Ok(TraceEvent::JobFinish {
                t,
                job: JobId::new(get_u32(&v, k, "job")?),
                user: UserId::new(get_u32(&v, k, "user")?),
            }),
            "placement" => Ok(TraceEvent::Placement {
                t,
                job: JobId::new(get_u32(&v, k, "job")?),
                server: ServerId::new(get_u32(&v, k, "server")?),
                gang: get_u32(&v, k, "gang")?,
            }),
            "migration" => Ok(TraceEvent::Migration {
                t,
                job: JobId::new(get_u32(&v, k, "job")?),
                from: ServerId::new(get_u32(&v, k, "from")?),
                to: ServerId::new(get_u32(&v, k, "to")?),
                outage_secs: get_f64(&v, k, "outage_secs")?,
            }),
            "migration_failed" => {
                let reason_str = get_str(&v, k, "reason")?;
                let reason = MigrationFailReason::parse(&reason_str).ok_or_else(|| {
                    format!("{k}: unknown migration failure reason `{reason_str}`")
                })?;
                Ok(TraceEvent::MigrationFailed {
                    t,
                    job: JobId::new(get_u32(&v, k, "job")?),
                    from: ServerId::new(get_u32(&v, k, "from")?),
                    to: ServerId::new(get_u32(&v, k, "to")?),
                    reason,
                    attempt: get_u32(&v, k, "attempt")?,
                })
            }
            "partition_start" => Ok(TraceEvent::PartitionStart {
                t,
                server: ServerId::new(get_u32(&v, k, "server")?),
            }),
            "partition_end" => Ok(TraceEvent::PartitionEnd {
                t,
                server: ServerId::new(get_u32(&v, k, "server")?),
            }),
            "reconcile" => Ok(TraceEvent::Reconcile {
                t,
                server: ServerId::new(get_u32(&v, k, "server")?),
                users_resynced: get_u32(&v, k, "users_resynced")?,
                jobs_revalidated: get_u32(&v, k, "jobs_revalidated")?,
                drift: get_u32(&v, k, "drift")?,
            }),
            "gang_packed" => Ok(TraceEvent::GangPacked {
                t,
                round: get_u64(&v, k, "round")?,
                server: ServerId::new(get_u32(&v, k, "server")?),
                job: JobId::new(get_u32(&v, k, "job")?),
                user: UserId::new(get_u32(&v, k, "user")?),
                width: get_u32(&v, k, "width")?,
                gang: get_u32(&v, k, "gang")?,
            }),
            "round_planned" => Ok(TraceEvent::RoundPlanned {
                t,
                round: get_u64(&v, k, "round")?,
                scheduled: get_u32(&v, k, "scheduled")?,
                gpus_used: get_u32(&v, k, "gpus_used")?,
                gpus_up: get_u32(&v, k, "gpus_up")?,
                pending: get_u32(&v, k, "pending")?,
                tickets_total: get_f64(&v, k, "tickets_total")?,
                users: get_user_shares(&v, k)?,
                user_gpus: get_user_gpus(&v, k)?,
            }),
            "rounds_skipped" => {
                let widths = field(&v, k, "widths")?
                    .as_array()
                    .ok_or_else(|| format!("{k}: field `widths` must be an array"))?
                    .iter()
                    .map(|w| {
                        w.as_u64()
                            .map(|w| w as u32)
                            .ok_or_else(|| format!("{k}: widths entries must be integers"))
                    })
                    .collect::<Result<Vec<u32>, String>>()?;
                Ok(TraceEvent::RoundsSkipped {
                    t,
                    first_round: get_u64(&v, k, "first_round")?,
                    rounds: get_u64(&v, k, "rounds")?,
                    scheduled: get_u32(&v, k, "scheduled")?,
                    gpus_used: get_u32(&v, k, "gpus_used")?,
                    gpus_up: get_u32(&v, k, "gpus_up")?,
                    pending: get_u32(&v, k, "pending")?,
                    tickets_total: get_f64(&v, k, "tickets_total")?,
                    widths,
                    users: get_user_shares(&v, k)?,
                    user_gpus: get_user_gpus(&v, k)?,
                })
            }
            "decision" => {
                let candidates = field(&v, k, "candidates")?
                    .as_array()
                    .ok_or_else(|| format!("{k}: field `candidates` must be an array"))?
                    .iter()
                    .map(|c| {
                        Ok(Candidate {
                            label: get_str(c, k, "label")?,
                            score: get_f64(c, k, "score")?,
                        })
                    })
                    .collect::<Result<Vec<Candidate>, String>>()?;
                let rejected = field(&v, k, "rejected")?
                    .as_array()
                    .ok_or_else(|| format!("{k}: field `rejected` must be an array"))?
                    .iter()
                    .map(|r| {
                        Ok(Rejection {
                            reason: get_str(r, k, "reason")?.into(),
                            count: get_u32(r, k, "count")?,
                        })
                    })
                    .collect::<Result<Vec<Rejection>, String>>()?;
                Ok(TraceEvent::Decision {
                    t,
                    decision: get_str(&v, k, "decision")?,
                    job: get_opt_u32(&v, k, "job")?.map(JobId::new),
                    user: get_opt_u32(&v, k, "user")?.map(UserId::new),
                    chosen: get_str(&v, k, "chosen")?,
                    tie_break: get_str(&v, k, "tie_break")?,
                    considered: get_u32(&v, k, "considered")?,
                    candidates,
                    rejected,
                })
            }
            "trade_executed" => Ok(TraceEvent::TradeExecuted {
                t,
                seller: UserId::new(get_u32(&v, k, "seller")?),
                buyer: UserId::new(get_u32(&v, k, "buyer")?),
                gen: GenId::new(get_u32(&v, k, "gen")?),
                fast_gpus: get_f64(&v, k, "fast_gpus")?,
                base_gpus: get_f64(&v, k, "base_gpus")?,
                price: get_f64(&v, k, "price")?,
            }),
            "profile_inferred" => Ok(TraceEvent::ProfileInferred {
                t,
                model: get_str(&v, k, "model")?,
                gen: GenId::new(get_u32(&v, k, "gen")?),
                rate: get_f64(&v, k, "rate")?,
                samples: get_u64(&v, k, "samples")?,
            }),
            other => Err(format!(
                "unknown event kind `{other}` (known kinds: {})",
                TraceEvent::KINDS.join(", ")
            )),
        }
    }
}

// --- from_json_line field accessors -----------------------------------------
//
// Every accessor names the event kind and the field in its error so schema
// drift (a renamed or dropped field) fails tests and tooling with an
// actionable message instead of a silent misparse.

fn field<'v>(v: &'v JsonValue, kind: &str, name: &str) -> Result<&'v JsonValue, String> {
    v.get(name)
        .ok_or_else(|| format!("{kind}: missing field `{name}`"))
}

fn get_u64(v: &JsonValue, kind: &str, name: &str) -> Result<u64, String> {
    field(v, kind, name)?
        .as_u64()
        .ok_or_else(|| format!("{kind}: field `{name}` must be a non-negative integer"))
}

fn get_u32(v: &JsonValue, kind: &str, name: &str) -> Result<u32, String> {
    Ok(get_u64(v, kind, name)? as u32)
}

fn get_opt_u32(v: &JsonValue, kind: &str, name: &str) -> Result<Option<u32>, String> {
    match field(v, kind, name)? {
        JsonValue::Null => Ok(None),
        val => val
            .as_u64()
            .map(|x| Some(x as u32))
            .ok_or_else(|| format!("{kind}: field `{name}` must be an integer or null")),
    }
}

fn get_f64(v: &JsonValue, kind: &str, name: &str) -> Result<f64, String> {
    field(v, kind, name)?
        .as_f64()
        .ok_or_else(|| format!("{kind}: field `{name}` must be a number"))
}

fn get_str(v: &JsonValue, kind: &str, name: &str) -> Result<String, String> {
    field(v, kind, name)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| format!("{kind}: field `{name}` must be a string"))
}

fn get_user_shares(v: &JsonValue, kind: &str) -> Result<Vec<UserShare>, String> {
    field(v, kind, "users")?
        .as_array()
        .ok_or_else(|| format!("{kind}: field `users` must be an array"))?
        .iter()
        .map(|u| {
            Ok(UserShare {
                user: UserId::new(get_u32(u, kind, "user")?),
                tickets: get_f64(u, kind, "tickets")?,
                pass: get_f64(u, kind, "pass")?,
            })
        })
        .collect()
}

fn get_user_gpus(v: &JsonValue, kind: &str) -> Result<Vec<UserGrant>, String> {
    field(v, kind, "user_gpus")?
        .as_array()
        .ok_or_else(|| format!("{kind}: field `user_gpus` must be an array"))?
        .iter()
        .map(|g| {
            Ok(UserGrant {
                user: UserId::new(get_u32(g, kind, "user")?),
                gpus: get_u32(g, kind, "gpus")?,
            })
        })
        .collect()
}

/// Appends a decimal integer without going through `core::fmt` — the
/// serialization hot path for id- and count-heavy event variants.
fn push_u64(s: &mut String, mut v: u64) {
    let mut buf = [0u8; 20];
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    s.push_str(std::str::from_utf8(&buf[i..]).expect("digits are ASCII"));
}

/// Formats a float so the JSON value stays a float (integral values get a
/// `.0`), using Rust's shortest round-trip representation otherwise.
/// Appends a `users` array body (no brackets) of [`UserShare`] objects.
fn push_user_shares(s: &mut String, users: &[UserShare]) {
    for (i, u) in users.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("{\"user\":");
        push_u64(s, u.user.index() as u64);
        s.push_str(",\"tickets\":");
        push_f64(s, u.tickets);
        s.push_str(",\"pass\":");
        push_f64(s, u.pass);
        s.push('}');
    }
}

/// Appends a `user_gpus` array body (no brackets) of [`UserGrant`] objects.
fn push_user_grants(s: &mut String, grants: &[UserGrant]) {
    for (i, g) in grants.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("{\"user\":");
        push_u64(s, g.user.index() as u64);
        s.push_str(",\"gpus\":");
        push_u64(s, u64::from(g.gpus));
        s.push('}');
    }
}

/// Appends the trace representation of `x`: integers as `N.0` via
/// [`push_u64`], fractions at six decimals with trailing zeros trimmed.
///
/// Six decimals is microsecond resolution on second-scale durations and
/// far below scheduling significance for loads, passes, and prices. The
/// bounded precision is what makes this cheap: shortest-representation
/// formatting (`{x}`) falls back to an arbitrary-precision search on
/// values like stride-pass accumulators (`64.00000000000003`), which at
/// one `RoundPlanned` per round times every user is the single hottest
/// formatting site in a trace.
fn push_f64(s: &mut String, x: f64) {
    if !x.is_finite() {
        // Traces never carry non-finite values; clamp rather than emit
        // invalid JSON if an upstream bug produces one.
        s.push_str("null");
        return;
    }
    if x == x.trunc() && x.abs() < 1e15 {
        if x.is_sign_negative() && x != 0.0 {
            s.push('-');
        }
        push_u64(s, x.abs() as u64);
        s.push_str(".0");
        return;
    }
    let ax = x.abs();
    if ax < 9e12 {
        // Fixed-point in integer arithmetic: scale to micro-units once and
        // split digits, avoiding the float formatter entirely.
        let scaled = (ax * 1e6).round() as u64;
        if x.is_sign_negative() && scaled > 0 {
            s.push('-');
        }
        push_u64(s, scaled / 1_000_000);
        s.push('.');
        let mut frac = scaled % 1_000_000;
        if frac == 0 {
            s.push('0');
            return;
        }
        let mut digits = [b'0'; 6];
        for d in digits.iter_mut().rev() {
            *d = b'0' + (frac % 10) as u8;
            frac /= 10;
        }
        let mut end = digits.len();
        while end > 1 && digits[end - 1] == b'0' {
            end -= 1;
        }
        s.push_str(std::str::from_utf8(&digits[..end]).expect("ascii digits"));
        return;
    }
    // Magnitudes past micro-unit range: six decimals are noise anyway.
    let _ = write!(s, "{x:.6}");
    while s.ends_with('0') {
        s.pop();
    }
    if s.ends_with('.') {
        s.push('0');
    }
}

fn fmt_f64(x: f64) -> String {
    let mut s = String::with_capacity(24);
    push_f64(&mut s, x);
    s
}

/// Escapes a string for embedding in a JSON string literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    push_escaped(&mut out, s);
    out
}

/// Appends `input` to `out` with JSON string escaping, allocation-free for
/// the overwhelmingly common clean case.
fn push_escaped(out: &mut String, input: &str) {
    if !input.bytes().any(|b| b == b'"' || b == b'\\' || b < 0x20) {
        out.push_str(input);
        return;
    }
    for c in input.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_strings_are_stable() {
        let ev = TraceEvent::JobArrive {
            t: SimTime::from_secs(1),
            job: JobId::new(7),
            user: UserId::new(2),
            gang: 4,
            service_secs: 3600.0,
        };
        assert_eq!(ev.kind(), "job_arrive");
        assert_eq!(ev.time(), SimTime::from_secs(1));
    }

    #[test]
    fn json_lines_have_kind_first_and_integer_times() {
        let ev = TraceEvent::Migration {
            t: SimTime::from_secs(60),
            job: JobId::new(3),
            from: ServerId::new(0),
            to: ServerId::new(5),
            outage_secs: 42.5,
        };
        let line = ev.to_json_line();
        assert!(line.starts_with("{\"kind\":\"migration\",\"t_us\":60000000,"));
        assert!(line.contains("\"outage_secs\":42.5"));
        assert!(line.ends_with('}'));
    }

    #[test]
    fn round_planned_renders_user_list() {
        let ev = TraceEvent::RoundPlanned {
            t: SimTime::ZERO,
            round: 9,
            scheduled: 2,
            gpus_used: 6,
            gpus_up: 8,
            pending: 1,
            tickets_total: 8.0,
            users: vec![
                UserShare {
                    user: UserId::new(0),
                    tickets: 5.0,
                    pass: 1.25,
                },
                UserShare {
                    user: UserId::new(1),
                    tickets: 3.0,
                    pass: 2.5,
                },
            ],
            user_gpus: vec![],
        };
        let line = ev.to_json_line();
        assert!(line.contains("\"users\":[{\"user\":0,\"tickets\":5.0,\"pass\":1.25},"));
        assert!(line.contains("{\"user\":1,\"tickets\":3.0,\"pass\":2.5}]"));
    }

    #[test]
    fn model_names_are_escaped() {
        let ev = TraceEvent::ProfileInferred {
            t: SimTime::ZERO,
            model: "we\"ird\\name".to_string(),
            gen: GenId::new(1),
            rate: 2.0,
            samples: 3,
        };
        let line = ev.to_json_line();
        assert!(line.contains("\"model\":\"we\\\"ird\\\\name\""));
    }

    #[test]
    fn fault_events_render_stable_lines() {
        let ev = TraceEvent::MigrationFailed {
            t: SimTime::from_secs(10),
            job: JobId::new(4),
            from: ServerId::new(1),
            to: ServerId::new(2),
            reason: MigrationFailReason::Restore,
            attempt: 2,
        };
        assert_eq!(
            ev.to_json_line(),
            "{\"kind\":\"migration_failed\",\"t_us\":10000000,\"job\":4,\"from\":1,\"to\":2,\"reason\":\"restore\",\"attempt\":2}"
        );
        let ev = TraceEvent::PartitionStart {
            t: SimTime::from_secs(5),
            server: ServerId::new(3),
        };
        assert_eq!(
            ev.to_json_line(),
            "{\"kind\":\"partition_start\",\"t_us\":5000000,\"server\":3}"
        );
        let ev = TraceEvent::Reconcile {
            t: SimTime::from_secs(6),
            server: ServerId::new(3),
            users_resynced: 4,
            jobs_revalidated: 7,
            drift: 1,
        };
        assert_eq!(
            ev.to_json_line(),
            "{\"kind\":\"reconcile\",\"t_us\":6000000,\"server\":3,\"users_resynced\":4,\"jobs_revalidated\":7,\"drift\":1}"
        );
        assert_eq!(
            TraceEvent::PartitionEnd {
                t: SimTime::ZERO,
                server: ServerId::new(0)
            }
            .kind(),
            "partition_end"
        );
    }

    #[test]
    fn rounds_skipped_renders_stable_line() {
        let ev = TraceEvent::RoundsSkipped {
            t: SimTime::from_secs(120),
            first_round: 3,
            rounds: 5,
            scheduled: 2,
            gpus_used: 6,
            gpus_up: 8,
            pending: 1,
            tickets_total: 8.0,
            widths: vec![4, 2],
            users: vec![UserShare {
                user: UserId::new(0),
                tickets: 8.0,
                pass: 1.5,
            }],
            user_gpus: vec![UserGrant {
                user: UserId::new(0),
                gpus: 6,
            }],
        };
        assert_eq!(ev.kind(), "rounds_skipped");
        assert_eq!(ev.time(), SimTime::from_secs(120));
        assert_eq!(
            ev.to_json_line(),
            "{\"kind\":\"rounds_skipped\",\"t_us\":120000000,\"first_round\":3,\"rounds\":5,\"scheduled\":2,\"gpus_used\":6,\"gpus_up\":8,\"pending\":1,\"tickets_total\":8.0,\"widths\":[4,2],\"users\":[{\"user\":0,\"tickets\":8.0,\"pass\":1.5}],\"user_gpus\":[{\"user\":0,\"gpus\":6}]}"
        );
    }

    #[test]
    fn decision_renders_stable_line() {
        let ev = TraceEvent::Decision {
            t: SimTime::from_secs(30),
            decision: "placement".to_string(),
            job: Some(JobId::new(7)),
            user: Some(UserId::new(1)),
            chosen: "server:12".to_string(),
            tie_break: "lowest server id".to_string(),
            considered: 5,
            candidates: vec![
                Candidate {
                    label: "server:12".to_string(),
                    score: 0.25,
                },
                Candidate {
                    label: "server:3".to_string(),
                    score: 0.5,
                },
            ],
            rejected: vec![Rejection {
                reason: "does_not_fit".into(),
                count: 2,
            }],
        };
        assert_eq!(ev.kind(), "decision");
        assert_eq!(
            ev.to_json_line(),
            "{\"kind\":\"decision\",\"t_us\":30000000,\"decision\":\"placement\",\"job\":7,\"user\":1,\"chosen\":\"server:12\",\"tie_break\":\"lowest server id\",\"considered\":5,\"candidates\":[{\"label\":\"server:12\",\"score\":0.25},{\"label\":\"server:3\",\"score\":0.5}],\"rejected\":[{\"reason\":\"does_not_fit\",\"count\":2}]}"
        );
        // Absent job/user serialize as null and parse back to None.
        let ev = TraceEvent::Decision {
            t: SimTime::ZERO,
            decision: "eviction".to_string(),
            job: None,
            user: None,
            chosen: "none".to_string(),
            tie_break: "none".to_string(),
            considered: 0,
            candidates: vec![],
            rejected: vec![],
        };
        let line = ev.to_json_line();
        assert!(line.contains("\"job\":null,\"user\":null"));
        assert_eq!(TraceEvent::from_json_line(&line).unwrap(), ev);
    }

    /// One exemplar of every variant, used by the round-trip test below and
    /// kept in `KINDS` order.
    fn exemplars() -> Vec<TraceEvent> {
        let t = SimTime::from_secs(9);
        vec![
            TraceEvent::ServerUp {
                t,
                server: ServerId::new(1),
                gen: GenId::new(2),
                gpus: 8,
            },
            TraceEvent::ServerDown {
                t,
                server: ServerId::new(1),
                evicted: 3,
            },
            TraceEvent::JobArrive {
                t,
                job: JobId::new(4),
                user: UserId::new(2),
                gang: 2,
                service_secs: 1800.5,
            },
            TraceEvent::JobFinish {
                t,
                job: JobId::new(4),
                user: UserId::new(2),
            },
            TraceEvent::Placement {
                t,
                job: JobId::new(4),
                server: ServerId::new(1),
                gang: 2,
            },
            TraceEvent::Migration {
                t,
                job: JobId::new(4),
                from: ServerId::new(1),
                to: ServerId::new(2),
                outage_secs: 30.0,
            },
            TraceEvent::MigrationFailed {
                t,
                job: JobId::new(4),
                from: ServerId::new(1),
                to: ServerId::new(2),
                reason: MigrationFailReason::TargetDown,
                attempt: 2,
            },
            TraceEvent::PartitionStart {
                t,
                server: ServerId::new(3),
            },
            TraceEvent::PartitionEnd {
                t,
                server: ServerId::new(3),
            },
            TraceEvent::Reconcile {
                t,
                server: ServerId::new(3),
                users_resynced: 2,
                jobs_revalidated: 5,
                drift: 1,
            },
            TraceEvent::GangPacked {
                t,
                round: 12,
                server: ServerId::new(1),
                job: JobId::new(4),
                user: UserId::new(2),
                width: 2,
                gang: 2,
            },
            TraceEvent::RoundPlanned {
                t,
                round: 12,
                scheduled: 1,
                gpus_used: 2,
                gpus_up: 8,
                pending: 0,
                tickets_total: 8.0,
                users: vec![UserShare {
                    user: UserId::new(2),
                    tickets: 8.0,
                    pass: 3.25,
                }],
                user_gpus: vec![],
            },
            TraceEvent::RoundsSkipped {
                t,
                first_round: 13,
                rounds: 4,
                scheduled: 1,
                gpus_used: 2,
                gpus_up: 8,
                pending: 0,
                tickets_total: 8.0,
                widths: vec![2],
                users: vec![UserShare {
                    user: UserId::new(2),
                    tickets: 8.0,
                    pass: 3.25,
                }],
                user_gpus: vec![UserGrant {
                    user: UserId::new(2),
                    gpus: 2,
                }],
            },
            TraceEvent::Decision {
                t,
                decision: "migration".to_string(),
                job: Some(JobId::new(4)),
                user: Some(UserId::new(2)),
                chosen: "server:2".to_string(),
                tie_break: "least load, lowest server id".to_string(),
                considered: 3,
                candidates: vec![Candidate {
                    label: "server:2".to_string(),
                    score: 0.125,
                }],
                rejected: vec![Rejection {
                    reason: "unreachable".into(),
                    count: 1,
                }],
            },
            TraceEvent::TradeExecuted {
                t,
                seller: UserId::new(0),
                buyer: UserId::new(2),
                gen: GenId::new(1),
                fast_gpus: 1.5,
                base_gpus: 3.0,
                price: 2.0,
            },
            TraceEvent::ProfileInferred {
                t,
                model: "resnet50".to_string(),
                gen: GenId::new(1),
                rate: 2.25,
                samples: 6,
            },
        ]
    }

    #[test]
    fn every_variant_round_trips_through_jsonl() {
        let all = exemplars();
        assert_eq!(all.len(), TraceEvent::KINDS.len());
        for (ev, &kind) in all.iter().zip(TraceEvent::KINDS.iter()) {
            assert_eq!(ev.kind(), kind, "exemplar order must match KINDS");
            let line = ev.to_json_line();
            let back = TraceEvent::from_json_line(&line)
                .unwrap_or_else(|e| panic!("{kind} failed to parse: {e}\nline: {line}"));
            assert_eq!(&back, ev, "{kind} did not round-trip");
            // And the re-rendered line is byte-identical.
            assert_eq!(back.to_json_line(), line, "{kind} re-render differs");
        }
    }

    #[test]
    fn from_json_line_reports_schema_drift_clearly() {
        // Unknown kind.
        let err = TraceEvent::from_json_line("{\"kind\":\"teleport\",\"t_us\":0}").unwrap_err();
        assert!(err.contains("unknown event kind `teleport`"), "{err}");
        // A dropped field names the kind and the field.
        let err = TraceEvent::from_json_line("{\"kind\":\"job_finish\",\"t_us\":0,\"job\":1}")
            .unwrap_err();
        assert!(
            err.contains("job_finish") && err.contains("`user`"),
            "unhelpful error: {err}"
        );
        // A mistyped field is caught too.
        let err = TraceEvent::from_json_line(
            "{\"kind\":\"job_finish\",\"t_us\":0,\"job\":\"one\",\"user\":0}",
        )
        .unwrap_err();
        assert!(
            err.contains("`job`") && err.contains("integer"),
            "unhelpful error: {err}"
        );
        // Garbage is invalid JSON.
        assert!(TraceEvent::from_json_line("not json").is_err());
    }

    #[test]
    fn floats_keep_json_float_shape() {
        assert_eq!(fmt_f64(2.0), "2.0");
        assert_eq!(fmt_f64(0.1), "0.1");
        assert_eq!(fmt_f64(-3.0), "-3.0");
        assert_eq!(fmt_f64(f64::NAN), "null");
    }
}
