//! # gfair-obs — observability for the Gandiva_fair reproduction
//!
//! Zero-dependency structured tracing, metrics, self-profiling, and an
//! online invariant auditor for the scheduler stack. One [`Obs`] instance
//! accompanies a simulation run; every scheduler decision is emitted as a
//! [`TraceEvent`] through [`Obs::emit`], which fans the event out to:
//!
//! 1. **Sinks** ([`Tracer`]) — a JSONL file ([`JsonlSink`], backing
//!    `gfair simulate --trace`) and/or an in-memory ring ([`RingSink`]) for
//!    tests. Traces are byte-deterministic: same seed ⇒ identical file.
//! 2. **Metrics** ([`MetricsRegistry`]) — counters/gauges/histograms
//!    derived from the events themselves, snapshotted into the
//!    deterministic [`ObsSummary`] embedded in `SimReport`.
//! 3. **The auditor** ([`Auditor`]) — re-derives cluster state from the
//!    stream and checks gang atomicity, GPU overcommit, residency, ticket
//!    conservation, migration lifecycle (no job lost or duplicated across
//!    a failed migration), conservation across partition heals, and work
//!    conservation online. The engine polls
//!    [`Obs::take_fatal`] each round and aborts the run on a violation,
//!    printing the offending round's trace.
//!
//! Wall-clock self-profiling ([`Obs::time`], [`PhaseStats`]) is kept apart
//! from all of the above: timings never enter the trace or the report, so
//! determinism guarantees survive instrumentation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod audit;
mod event;
mod ledger;
mod metrics;
mod sink;
mod spans;

pub use audit::{Auditor, Violation, ViolationKind};
pub use event::{Candidate, Rejection, TraceEvent, UserGrant, UserShare};
pub use ledger::{FairnessLedger, LedgerSummary, LedgerUserRow, RhoSummary};
pub use metrics::{FixedHistogram, Histogram, HistogramSummary, MetricsRegistry, ObsSummary};
pub use sink::{JsonlSink, RingHandle, RingSink, Tracer};
pub use spans::{Phase, PhaseStats, SpanStats, PHASES};

use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Shared observability handle, cloned into the engine and scheduler.
pub type SharedObs = Arc<Obs>;

#[derive(Default)]
struct ObsInner {
    sinks: Vec<Box<dyn Tracer>>,
    metrics: MetricsRegistry,
    auditor: Auditor,
    ledger: FairnessLedger,
    spans: SpanStats,
    events: u64,
}

/// One run's observability pipeline: sinks + metrics + auditor + spans.
///
/// Interior-mutable behind a mutex so the engine and the scheduler can share
/// one instance through [`SharedObs`]. The auditor is always on.
#[derive(Default)]
pub struct Obs {
    inner: Mutex<ObsInner>,
    /// Lock-free mirror of `!inner.sinks.is_empty()`, so hot paths can ask
    /// [`Obs::tracing`] without taking the mutex.
    has_sink: AtomicBool,
    /// Opt-in full-provenance tier; see [`Obs::why`].
    want_why: AtomicBool,
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.lock();
        f.debug_struct("Obs")
            .field("events", &inner.events)
            .field("sinks", &inner.sinks.len())
            .field("violations", &inner.auditor.violations().len())
            .finish_non_exhaustive()
    }
}

impl Obs {
    /// Creates an observability pipeline with no sinks (events still feed
    /// metrics and the auditor).
    pub fn new() -> Self {
        Obs::default()
    }

    /// Installs a trace sink; every subsequent event is forwarded to it.
    pub fn add_sink(&self, sink: Box<dyn Tracer>) {
        self.lock().sinks.push(sink);
        self.has_sink.store(true, Ordering::Relaxed);
    }

    /// Whether any trace sink is attached.
    ///
    /// Decision-provenance emitters check this before *building* their
    /// allocation-heavy [`TraceEvent::Decision`] events: provenance is a
    /// trace-only product, so untraced runs skip the cost entirely (and
    /// their `decisions*` counters stay at zero). Everything else — trace
    /// events proper, metrics, the auditor, the fairness ledger — is fed
    /// unconditionally, so attaching a sink never changes scheduling and
    /// never changes any other `SimReport` field.
    pub fn tracing(&self) -> bool {
        self.has_sink.load(Ordering::Relaxed)
    }

    /// Whether per-placement decision provenance is wanted (the
    /// full-provenance tier).
    ///
    /// Tracing has two tiers. The default tier ([`Obs::tracing`]) is a
    /// flight recorder: arrivals, finishes, placements, migrations, round
    /// summaries, plus decision provenance for the *rare* events — trades,
    /// balancer migrations, evictions. The full tier adds a
    /// [`TraceEvent::Decision`] with the scored candidate set for every
    /// placement and retry, which at cluster scale means one provenance
    /// construction per scheduled job — too hot for always-on use. Enable
    /// it with [`Obs::enable_why`] (the CLI's `--trace-full`) when a trace
    /// must answer `gfair-trace why --job` for placements.
    pub fn why(&self) -> bool {
        self.has_sink.load(Ordering::Relaxed) && self.want_why.load(Ordering::Relaxed)
    }

    /// Opts this pipeline into the full-provenance tier; see [`Obs::why`].
    pub fn enable_why(&self) {
        self.want_why.store(true, Ordering::Relaxed);
    }

    /// Convenience: install a [`JsonlSink`] writing to `path`.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating the file.
    pub fn jsonl(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        self.add_sink(Box::new(JsonlSink::create(path)?));
        Ok(())
    }

    /// Convenience: install a full-fidelity [`JsonlSink`] (per-gang stream
    /// included) and enable the full-provenance tier ([`Obs::enable_why`]).
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating the file.
    pub fn jsonl_full(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        self.add_sink(Box::new(JsonlSink::full_fidelity(path)?));
        self.enable_why();
        Ok(())
    }

    /// Convenience: install a [`RingSink`] and return its read handle.
    pub fn ring(&self, capacity: usize) -> RingHandle {
        let sink = RingSink::new(capacity);
        let handle = sink.handle();
        self.add_sink(Box::new(sink));
        handle
    }

    /// Emits one event: updates metrics, feeds the auditor, forwards to
    /// every sink.
    pub fn emit(&self, event: TraceEvent) {
        let mut inner = self.lock();
        // A RoundsSkipped record stands in for an entire span of per-round
        // events; count what the naive path would have emitted (`scheduled`
        // GangPacked plus one RoundPlanned per round) so the summary's event
        // count stays byte-identical between the two paths.
        if let TraceEvent::RoundsSkipped {
            rounds, scheduled, ..
        } = &event
        {
            inner.events += rounds * (u64::from(*scheduled) + 1);
        } else {
            inner.events += 1;
        }
        update_metrics(&mut inner.metrics, &event);
        inner.ledger.ingest(&event);
        inner.auditor.process(&event);
        for sink in &mut inner.sinks {
            sink.record(&event);
        }
    }

    /// Increments a counter directly, for sim-driven quantities that have
    /// no corresponding trace event (e.g. stale migrations the engine
    /// skips). Still deterministic — callers are driven by simulated state.
    pub fn inc(&self, name: &'static str, by: u64) {
        self.lock().metrics.inc(name, by);
    }

    /// Times `f` as one span of `phase`. The lock is *not* held while `f`
    /// runs, so `f` may emit events through this same handle.
    pub fn time<R>(&self, phase: Phase, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let out = f();
        self.observe_phase(phase, start.elapsed());
        out
    }

    /// Records an externally measured span of `phase`.
    pub fn observe_phase(&self, phase: Phase, dur: Duration) {
        self.lock().spans.observe(phase, dur);
    }

    /// Next not-yet-taken auditor violation, if any. The engine polls this
    /// after each round and turns it into a run-aborting error.
    pub fn take_fatal(&self) -> Option<Violation> {
        self.lock().auditor.take_fatal()
    }

    /// Every auditor violation detected so far.
    pub fn violations(&self) -> Vec<Violation> {
        self.lock().auditor.violations().to_vec()
    }

    /// Warn-level audit findings so far.
    pub fn warnings(&self) -> u64 {
        self.lock().auditor.warnings()
    }

    /// Current value of a counter (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.lock().metrics.counter(name)
    }

    /// Deterministic snapshot for embedding in `SimReport`.
    pub fn summary(&self) -> ObsSummary {
        let inner = self.lock();
        let (counters, gauges, histograms) = inner.metrics.snapshot();
        ObsSummary {
            events: inner.events,
            counters,
            gauges,
            histograms,
            ledger: inner.ledger.summary(),
            violations: inner.auditor.violations().len() as u64,
            warnings: inner.auditor.warnings(),
        }
    }

    /// Snapshot of the fairness ledger alone (also embedded in
    /// [`Obs::summary`]).
    pub fn ledger(&self) -> LedgerSummary {
        self.lock().ledger.summary()
    }

    /// Wall-clock p50/p99 per instrumented phase (phases with ≥1 span).
    pub fn phase_stats(&self) -> Vec<PhaseStats> {
        self.lock().spans.stats()
    }

    /// Flushes every sink. Call at end of run.
    pub fn flush(&self) {
        for sink in &mut self.lock().sinks {
            sink.flush();
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ObsInner> {
        self.inner.lock().expect("obs lock poisoned")
    }
}

/// Derives metric updates from one event. Keeping this a pure function of
/// the stream means a trace and its run's metrics can never disagree.
fn update_metrics(m: &mut MetricsRegistry, event: &TraceEvent) {
    match event {
        TraceEvent::ServerUp { .. } => m.inc("server_up_events", 1),
        TraceEvent::ServerDown { evicted, .. } => {
            m.inc("server_failures", 1);
            m.inc("jobs_evicted", u64::from(*evicted));
        }
        TraceEvent::JobArrive { .. } => m.inc("jobs_arrived", 1),
        TraceEvent::JobFinish { .. } => m.inc("jobs_finished", 1),
        TraceEvent::Placement { .. } => m.inc("placements", 1),
        TraceEvent::Migration { outage_secs, .. } => {
            m.inc("migrations", 1);
            m.observe("migration_outage_secs", *outage_secs);
        }
        TraceEvent::MigrationFailed { .. } => m.inc("migration_failures", 1),
        TraceEvent::PartitionStart { .. } => m.inc("partitions", 1),
        TraceEvent::PartitionEnd { .. } => m.inc("partition_heals", 1),
        TraceEvent::Reconcile { drift, .. } => {
            m.inc("reconciles", 1);
            m.inc("reconcile_drift", u64::from(*drift));
        }
        TraceEvent::GangPacked { width, .. } => {
            m.inc("gangs_packed", 1);
            m.observe("gang_width", f64::from(*width));
        }
        TraceEvent::RoundPlanned {
            scheduled,
            gpus_used,
            gpus_up,
            pending,
            ..
        } => {
            m.inc("rounds", 1);
            m.set_gauge("queue_depth", f64::from(*pending));
            m.observe("round_jobs_scheduled", f64::from(*scheduled));
            m.observe("round_gpus_used", f64::from(*gpus_used));
            if *gpus_up > 0 {
                m.observe(
                    "round_utilization",
                    f64::from(*gpus_used) / f64::from(*gpus_up),
                );
            }
        }
        TraceEvent::RoundsSkipped {
            rounds,
            scheduled,
            gpus_used,
            gpus_up,
            pending,
            widths,
            ..
        } => {
            // Replay the exact per-round metric updates of the collapsed
            // span. Histogram decimation is observation-order sensitive, so
            // a single interpolated update would change the summary; the
            // replay keeps it byte-identical to naive stepping.
            for _ in 0..*rounds {
                for w in widths {
                    m.inc("gangs_packed", 1);
                    m.observe("gang_width", f64::from(*w));
                }
                m.inc("rounds", 1);
                m.set_gauge("queue_depth", f64::from(*pending));
                m.observe("round_jobs_scheduled", f64::from(*scheduled));
                m.observe("round_gpus_used", f64::from(*gpus_used));
                if *gpus_up > 0 {
                    m.observe(
                        "round_utilization",
                        f64::from(*gpus_used) / f64::from(*gpus_up),
                    );
                }
            }
        }
        TraceEvent::Decision { decision, .. } => {
            m.inc("decisions", 1);
            // Per-site counters keyed on the stable decision vocabulary.
            let per_site = match decision.as_str() {
                "placement" => "decisions_placement",
                "retry" => "decisions_retry",
                "migration" => "decisions_migration",
                "trade" => "decisions_trade",
                "eviction" => "decisions_eviction",
                _ => "decisions_other",
            };
            m.inc(per_site, 1);
        }
        TraceEvent::TradeExecuted {
            fast_gpus, price, ..
        } => {
            m.inc("trades", 1);
            m.add_gauge("trade_gpu_volume", *fast_gpus);
            m.observe("trade_price", *price);
        }
        TraceEvent::ProfileInferred { rate, .. } => {
            m.inc("profiles_inferred", 1);
            m.observe("profiled_rate", *rate);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfair_types::{GenId, JobId, ServerId, SimTime, UserId};

    fn sample_run(obs: &Obs) {
        obs.emit(TraceEvent::ServerUp {
            t: SimTime::ZERO,
            server: ServerId::new(0),
            gen: GenId::new(0),
            gpus: 2,
        });
        obs.emit(TraceEvent::JobArrive {
            t: SimTime::ZERO,
            job: JobId::new(1),
            user: UserId::new(0),
            gang: 2,
            service_secs: 60.0,
        });
        obs.emit(TraceEvent::Placement {
            t: SimTime::ZERO,
            job: JobId::new(1),
            server: ServerId::new(0),
            gang: 2,
        });
        obs.emit(TraceEvent::GangPacked {
            t: SimTime::ZERO,
            round: 1,
            server: ServerId::new(0),
            job: JobId::new(1),
            user: UserId::new(0),
            width: 2,
            gang: 2,
        });
        obs.emit(TraceEvent::RoundPlanned {
            t: SimTime::ZERO,
            round: 1,
            scheduled: 1,
            gpus_used: 2,
            gpus_up: 2,
            pending: 0,
            tickets_total: 2.0,
            users: vec![],
            user_gpus: vec![],
        });
    }

    #[test]
    fn emit_feeds_metrics_auditor_and_sinks() {
        let obs = Obs::new();
        let ring = obs.ring(16);
        sample_run(&obs);
        assert_eq!(ring.len(), 5);
        let s = obs.summary();
        assert_eq!(s.events, 5);
        assert_eq!(s.counters["rounds"], 1);
        assert_eq!(s.counters["gangs_packed"], 1);
        assert_eq!(s.violations, 0);
        assert!(obs.take_fatal().is_none());
    }

    #[test]
    fn fatal_violation_is_surfaced_once() {
        let obs = Obs::new();
        sample_run(&obs);
        obs.emit(TraceEvent::GangPacked {
            t: SimTime::ZERO,
            round: 2,
            server: ServerId::new(0),
            job: JobId::new(1),
            user: UserId::new(0),
            width: 1, // partial gang
            gang: 2,
        });
        let v = obs.take_fatal().expect("violation");
        assert!(matches!(v.kind, ViolationKind::PartialGang { .. }));
        assert!(obs.take_fatal().is_none());
        assert_eq!(obs.summary().violations, 1);
    }

    #[test]
    fn time_records_phase_spans_without_deadlock() {
        let obs = Obs::new();
        let out = obs.time(Phase::RoundPlanning, || {
            // Emitting inside a timed span must not deadlock.
            sample_run(&obs);
            42
        });
        assert_eq!(out, 42);
        let stats = obs.phase_stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].phase, Phase::RoundPlanning);
        assert_eq!(stats[0].count, 1);
    }

    #[test]
    fn direct_counters_land_in_summary() {
        let obs = Obs::new();
        obs.inc("stale_migrations", 3);
        assert_eq!(obs.counter("stale_migrations"), 3);
        assert_eq!(obs.summary().counters["stale_migrations"], 3);
    }

    #[test]
    fn rounds_skipped_summary_matches_naive_stepping() {
        // One batched record must produce the byte-identical summary that
        // per-round emission would have: same event count, same counters,
        // same histogram shapes (decimation is order-sensitive).
        let span_rounds = 7u64;
        let naive = Obs::new();
        sample_run(&naive);
        for r in 0..span_rounds {
            // Clean replays of sample_run's round: job 1 (gang 2) on server 0.
            naive.emit(TraceEvent::GangPacked {
                t: SimTime::from_secs(60 * (r + 1)),
                round: 2 + r,
                server: ServerId::new(0),
                job: JobId::new(1),
                user: UserId::new(0),
                width: 2,
                gang: 2,
            });
            naive.emit(TraceEvent::RoundPlanned {
                t: SimTime::from_secs(60 * (r + 1)),
                round: 2 + r,
                scheduled: 1,
                gpus_used: 2,
                gpus_up: 2,
                pending: 0,
                tickets_total: 2.0,
                users: vec![],
                user_gpus: vec![UserGrant {
                    user: UserId::new(0),
                    gpus: 2,
                }],
            });
        }
        let batched = Obs::new();
        sample_run(&batched);
        batched.emit(TraceEvent::RoundsSkipped {
            t: SimTime::from_secs(60),
            first_round: 2,
            rounds: span_rounds,
            scheduled: 1,
            gpus_used: 2,
            gpus_up: 2,
            pending: 0,
            tickets_total: 2.0,
            widths: vec![2],
            users: vec![],
            user_gpus: vec![UserGrant {
                user: UserId::new(0),
                gpus: 2,
            }],
        });
        let (a, b) = (naive.summary(), batched.summary());
        assert_eq!(a.events, b.events);
        assert_eq!(a.counters, b.counters);
        assert_eq!(a.gauges, b.gauges);
        assert_eq!(a.histograms, b.histograms);
        assert_eq!(a.ledger, b.ledger);
        assert_eq!(a, b);
    }

    #[test]
    fn summary_is_deterministic_for_same_events() {
        let run = || {
            let obs = Obs::new();
            sample_run(&obs);
            obs.summary()
        };
        assert_eq!(run(), run());
    }
}
