//! Golden-trace schema stability: the checked-in fixture freezes the JSONL
//! wire format.
//!
//! `golden_trace.jsonl` holds one representative line per [`TraceEvent`]
//! kind. The tests parse every fixture line and re-serialize it, asserting
//! byte identity both ways. Renaming or dropping a field, changing the
//! field order, or changing a number format breaks one of these tests with
//! an error naming the kind and field — that is the point: the fixture is a
//! contract with every external consumer of `gfair simulate --trace` output
//! (first among them `gfair-trace`), so schema changes must be deliberate.
//!
//! To regenerate after an *intentional* schema change, run:
//! `GOLDEN_REGEN=1 cargo test -p gfair-obs --test golden_trace`
//! and commit the diff.

use gfair_obs::{Candidate, Rejection, TraceEvent, UserGrant, UserShare};
use gfair_types::{GenId, JobId, MigrationFailReason, ServerId, SimTime, UserId};

const FIXTURE: &str = include_str!("golden_trace.jsonl");
const FIXTURE_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden_trace.jsonl");

/// One representative event per kind, in [`TraceEvent::KINDS`] order.
/// Values exercise the interesting format cases: fractional and
/// integer-valued floats, escapes-free strings, empty and populated arrays,
/// `null`able ids.
fn golden_events() -> Vec<TraceEvent> {
    let t = SimTime::from_secs(3600);
    vec![
        TraceEvent::ServerUp {
            t,
            server: ServerId::new(3),
            gen: GenId::new(1),
            gpus: 8,
        },
        TraceEvent::ServerDown {
            t,
            server: ServerId::new(3),
            evicted: 2,
        },
        TraceEvent::JobArrive {
            t,
            job: JobId::new(17),
            user: UserId::new(4),
            gang: 2,
            service_secs: 5400.25,
        },
        TraceEvent::JobFinish {
            t,
            job: JobId::new(17),
            user: UserId::new(4),
        },
        TraceEvent::Placement {
            t,
            job: JobId::new(17),
            server: ServerId::new(3),
            gang: 2,
        },
        TraceEvent::Migration {
            t,
            job: JobId::new(17),
            from: ServerId::new(3),
            to: ServerId::new(9),
            outage_secs: 30.5,
        },
        TraceEvent::MigrationFailed {
            t,
            job: JobId::new(17),
            from: ServerId::new(3),
            to: ServerId::new(9),
            reason: MigrationFailReason::Restore,
            attempt: 2,
        },
        TraceEvent::PartitionStart {
            t,
            server: ServerId::new(5),
        },
        TraceEvent::PartitionEnd {
            t,
            server: ServerId::new(5),
        },
        TraceEvent::Reconcile {
            t,
            server: ServerId::new(5),
            users_resynced: 4,
            jobs_revalidated: 11,
            drift: 1,
        },
        TraceEvent::GangPacked {
            t,
            round: 120,
            server: ServerId::new(3),
            job: JobId::new(17),
            user: UserId::new(4),
            width: 2,
            gang: 2,
        },
        TraceEvent::RoundPlanned {
            t,
            round: 120,
            scheduled: 40,
            gpus_used: 96,
            gpus_up: 100,
            pending: 3,
            tickets_total: 100.0,
            users: vec![
                UserShare {
                    user: UserId::new(0),
                    tickets: 50.0,
                    pass: 12.5,
                },
                UserShare {
                    user: UserId::new(4),
                    tickets: 50.0,
                    pass: 12.75,
                },
            ],
            user_gpus: vec![
                UserGrant {
                    user: UserId::new(0),
                    gpus: 48,
                },
                UserGrant {
                    user: UserId::new(4),
                    gpus: 48,
                },
            ],
        },
        TraceEvent::RoundsSkipped {
            t,
            first_round: 121,
            rounds: 30,
            scheduled: 40,
            gpus_used: 96,
            gpus_up: 100,
            pending: 3,
            tickets_total: 100.0,
            widths: vec![2, 1, 1],
            users: vec![UserShare {
                user: UserId::new(0),
                tickets: 100.0,
                pass: 13.0,
            }],
            user_gpus: vec![UserGrant {
                user: UserId::new(0),
                gpus: 4,
            }],
        },
        TraceEvent::Decision {
            t,
            decision: "placement".to_string(),
            job: Some(JobId::new(17)),
            user: Some(UserId::new(4)),
            chosen: "server:3".to_string(),
            tie_break: "least projected load, then lowest server id".to_string(),
            considered: 12,
            candidates: vec![
                Candidate {
                    label: "server:3".to_string(),
                    score: 0.25,
                },
                Candidate {
                    label: "server:9".to_string(),
                    score: 0.5,
                },
            ],
            rejected: vec![Rejection {
                reason: "gang_too_wide_for_server".into(),
                count: 4,
            }],
        },
        TraceEvent::TradeExecuted {
            t,
            seller: UserId::new(0),
            buyer: UserId::new(4),
            gen: GenId::new(2),
            fast_gpus: 2.0,
            base_gpus: 5.0,
            price: 2.5,
        },
        TraceEvent::ProfileInferred {
            t,
            model: "resnet50".to_string(),
            gen: GenId::new(2),
            rate: 1.8125,
            samples: 32,
        },
    ]
}

/// Optionally rewrites the fixture, then returns it. Regeneration is
/// explicit (`GOLDEN_REGEN=1`) so an accidental schema change cannot
/// silently re-freeze itself.
fn fixture() -> String {
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        let mut out = String::new();
        for e in golden_events() {
            out.push_str(&e.to_json_line());
            out.push('\n');
        }
        std::fs::write(FIXTURE_PATH, &out).expect("rewrite golden fixture");
        out
    } else {
        FIXTURE.to_string()
    }
}

#[test]
fn fixture_covers_every_event_kind_in_order() {
    let kinds: Vec<&str> = fixture()
        .lines()
        .map(|l| {
            TraceEvent::from_json_line(l)
                .expect("fixture line parses")
                .kind()
        })
        .collect();
    assert_eq!(
        kinds,
        TraceEvent::KINDS,
        "fixture must hold exactly one line per kind, in KINDS order"
    );
}

#[test]
fn serializing_golden_events_reproduces_the_fixture_bytes() {
    let expected = fixture();
    let mut got = String::new();
    for e in golden_events() {
        got.push_str(&e.to_json_line());
        got.push('\n');
    }
    assert_eq!(
        got, expected,
        "serialized events diverge from the checked-in fixture; if the \
         schema change is intentional, regenerate with GOLDEN_REGEN=1 and \
         note it in DESIGN.md"
    );
}

#[test]
fn fixture_round_trips_through_parse_and_reserialize() {
    for line in fixture().lines() {
        let event = TraceEvent::from_json_line(line)
            .unwrap_or_else(|e| panic!("fixture line no longer parses: {e}\n  line: {line}"));
        assert_eq!(
            event.to_json_line(),
            line,
            "parse→serialize must reproduce the exact fixture line"
        );
    }
}

#[test]
fn dropping_a_field_fails_with_an_error_naming_kind_and_field() {
    // Simulate a consumer reading a trace written by a future gfair that
    // renamed `gang` — the parse error must say what is missing and where.
    let line = r#"{"kind":"placement","t_us":1,"job":1,"server":0,"gangs":2}"#;
    let err = TraceEvent::from_json_line(line).expect_err("missing field must fail");
    assert!(
        err.contains("placement") && err.contains("gang"),
        "error should name the kind and the missing field, got: {err}"
    );
}
