//! `gfair-trace`: query, aggregate, and diff gfair JSONL trace files.
//!
//! ```text
//! gfair-trace why --job 1234 trace.jsonl
//! gfair-trace fairness [--user 3] [--plot-ascii] trace.jsonl
//! gfair-trace diff a.jsonl b.jsonl
//! gfair-trace kinds trace.jsonl
//! ```

use gfair_tracetool::{diff_traces, fairness_report, kind_counts, load_events, why_job};
use gfair_types::{JobId, UserId};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
gfair-trace: query gfair JSONL traces

USAGE:
  gfair-trace why --job <id> <trace.jsonl>
      Reconstruct one job's life: arrival, every decision that touched it
      (candidates, scores, tie-break), placements, migrations, finish.

  gfair-trace fairness [--user <id>] [--plot-ascii] <trace.jsonl>
      Replay the trace through the fairness ledger: deserved vs. received
      shares, Jain, Gini, finish-time-fairness rho.

  gfair-trace diff <a.jsonl> <b.jsonl>
      Per-kind event counts, first divergent event, fairness side by side.

  gfair-trace kinds <trace.jsonl>
      Event counts per kind.
";

fn fail(msg: &str) -> ExitCode {
    eprintln!("gfair-trace: {msg}");
    eprintln!("{USAGE}");
    ExitCode::FAILURE
}

fn parse_id(flag: &str, value: Option<String>) -> Result<u32, String> {
    let v = value.ok_or_else(|| format!("{flag} needs a value"))?;
    v.parse::<u32>()
        .map_err(|_| format!("{flag} expects a numeric id, got `{v}`"))
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(command) = args.next() else {
        return fail("missing command");
    };
    let mut job: Option<u32> = None;
    let mut user: Option<u32> = None;
    let mut plot = false;
    let mut paths: Vec<PathBuf> = Vec::new();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--job" => match parse_id("--job", args.next()) {
                Ok(v) => job = Some(v),
                Err(e) => return fail(&e),
            },
            "--user" => match parse_id("--user", args.next()) {
                Ok(v) => user = Some(v),
                Err(e) => return fail(&e),
            },
            "--plot-ascii" => plot = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with("--") => {
                return fail(&format!("unknown flag `{other}`"));
            }
            path => paths.push(PathBuf::from(path)),
        }
    }

    let load = |path: &PathBuf| load_events(path).map_err(|e| format!("load failed: {e}"));
    let result: Result<String, String> = match command.as_str() {
        "why" => {
            let (Some(job), [path]) = (job, paths.as_slice()) else {
                return fail("why needs --job <id> and exactly one trace file");
            };
            load(path).map(|events| {
                let lines = why_job(&events, JobId::new(job));
                if lines.is_empty() {
                    format!("job {job} does not appear in {}", path.display())
                } else {
                    format!("job {job}:\n{}", lines.join("\n"))
                }
            })
        }
        "fairness" => {
            let [path] = paths.as_slice() else {
                return fail("fairness needs exactly one trace file");
            };
            load(path).map(|events| fairness_report(&events, user.map(UserId::new), plot))
        }
        "diff" => {
            let [a, b] = paths.as_slice() else {
                return fail("diff needs exactly two trace files");
            };
            load(a).and_then(|ea| load(b).map(|eb| diff_traces(&ea, &eb)))
        }
        "kinds" => {
            let [path] = paths.as_slice() else {
                return fail("kinds needs exactly one trace file");
            };
            load(path).map(|events| {
                let mut out = String::new();
                for (kind, n) in kind_counts(&events) {
                    if n > 0 {
                        out.push_str(&format!("{kind:>16} {n}\n"));
                    }
                }
                out
            })
        }
        other => return fail(&format!("unknown command `{other}`")),
    };
    match result {
        Ok(output) => {
            print!("{output}");
            if !output.ends_with('\n') {
                println!();
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("gfair-trace: {e}");
            ExitCode::FAILURE
        }
    }
}
