//! Query engine behind the `gfair-trace` binary.
//!
//! Simulation runs stream [`TraceEvent`]s as JSONL (one event per line,
//! schema frozen by the golden-trace test in `gfair-obs`). This crate turns
//! those files back into answers:
//!
//! * [`why_job`] — reconstructs one job's life: arrival, every scheduler
//!   decision that touched it (with the candidate set, scores, and
//!   tie-break rule), placements, migrations, failures, finish.
//! * [`fairness_report`] — replays the trace through the
//!   [`FairnessLedger`] and renders deserved vs. received shares, Jain's
//!   index, Gini, and finish-time-fairness ρ — optionally with an ASCII
//!   Jain-over-time plot.
//! * [`diff_traces`] — compares two traces: per-kind event counts, the
//!   first divergent line, and final fairness posture side by side.
//!
//! Everything here works on in-memory event slices so it is directly
//! testable; [`load_events`] is the only filesystem touchpoint.

use gfair_obs::{FairnessLedger, LedgerSummary, TraceEvent};
use gfair_types::{JobId, UserId};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

/// Parses a JSONL trace from text, reporting the 1-based line number of the
/// first malformed line.
pub fn parse_events(text: &str) -> Result<Vec<TraceEvent>, String> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let event =
            TraceEvent::from_json_line(line).map_err(|e| format!("line {}: {}", i + 1, e))?;
        events.push(event);
    }
    Ok(events)
}

/// Loads a JSONL trace file, prefixing parse errors with the path.
pub fn load_events(path: &Path) -> Result<Vec<TraceEvent>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {}", path.display(), e))?;
    parse_events(&text).map_err(|e| format!("{}: {}", path.display(), e))
}

/// Renders a simulated-time prefix like `[   123.400s]`.
fn stamp(t: gfair_types::SimTime) -> String {
    format!("[{:>12.3}s]", t.as_micros() as f64 / 1e6)
}

/// The job an event concerns, if any. Decision events may concern a job
/// without being "about" it structurally, so they carry their own option.
fn event_job(event: &TraceEvent) -> Option<JobId> {
    match event {
        TraceEvent::JobArrive { job, .. }
        | TraceEvent::JobFinish { job, .. }
        | TraceEvent::Placement { job, .. }
        | TraceEvent::Migration { job, .. }
        | TraceEvent::MigrationFailed { job, .. } => Some(*job),
        TraceEvent::Decision { job, .. } => *job,
        _ => None,
    }
}

/// Reconstructs one job's story from a trace: every event that names the
/// job, chronologically, with decision provenance expanded (candidate set,
/// scores, tie-break rule, rejected alternatives).
///
/// Returns human-readable lines; empty means the job never appears.
pub fn why_job(events: &[TraceEvent], job: JobId) -> Vec<String> {
    let mut out = Vec::new();
    for event in events {
        if event_job(event) != Some(job) {
            continue;
        }
        match event {
            TraceEvent::JobArrive {
                t,
                user,
                gang,
                service_secs,
                ..
            } => out.push(format!(
                "{} arrive   user:{} gang:{} service:{:.1}s",
                stamp(*t),
                user.index(),
                gang,
                service_secs
            )),
            TraceEvent::JobFinish { t, user, .. } => {
                out.push(format!("{} finish   user:{}", stamp(*t), user.index()));
            }
            TraceEvent::Placement {
                t, server, gang, ..
            } => out.push(format!(
                "{} resident server:{} gang:{}",
                stamp(*t),
                server.index(),
                gang
            )),
            TraceEvent::Migration {
                t,
                from,
                to,
                outage_secs,
                ..
            } => out.push(format!(
                "{} migrate  server:{} -> server:{} (outage {:.1}s)",
                stamp(*t),
                from.index(),
                to.index(),
                outage_secs
            )),
            TraceEvent::MigrationFailed {
                t,
                from,
                to,
                reason,
                attempt,
                ..
            } => out.push(format!(
                "{} failed   server:{} -> server:{} ({}, attempt {})",
                stamp(*t),
                from.index(),
                to.index(),
                reason.as_str(),
                attempt
            )),
            TraceEvent::Decision {
                t,
                decision,
                chosen,
                tie_break,
                considered,
                candidates,
                rejected,
                ..
            } => {
                out.push(format!(
                    "{} decide   {} -> {} ({} considered, tie-break: {})",
                    stamp(*t),
                    decision,
                    chosen,
                    considered,
                    tie_break
                ));
                for c in candidates {
                    out.push(format!(
                        "{:15}   candidate {} score {:.4}",
                        "", c.label, c.score
                    ));
                }
                for r in rejected {
                    out.push(format!("{:15}   rejected {}x: {}", "", r.count, r.reason));
                }
            }
            _ => {}
        }
    }
    out
}

/// Replays a trace through the fairness ledger, returning the final
/// [`LedgerSummary`] plus a Jain-over-time series sampled at every
/// round boundary (one point per `RoundPlanned`/`RoundsSkipped` record).
pub fn replay_ledger(events: &[TraceEvent]) -> (LedgerSummary, Vec<f64>) {
    let mut ledger = FairnessLedger::new();
    let mut jain_series = Vec::new();
    for event in events {
        ledger.ingest(event);
        if matches!(
            event,
            TraceEvent::RoundPlanned { .. } | TraceEvent::RoundsSkipped { .. }
        ) {
            jain_series.push(ledger.summary().jain);
        }
    }
    (ledger.summary(), jain_series)
}

/// Renders `series` as a `width` x `height` ASCII plot with a y-axis label
/// per row; long series are downsampled by bucket means.
pub fn ascii_plot(series: &[f64], width: usize, height: usize) -> String {
    if series.is_empty() || width == 0 || height == 0 {
        return String::new();
    }
    // Downsample to at most `width` points: mean of each bucket.
    let cols: Vec<f64> = if series.len() <= width {
        series.to_vec()
    } else {
        (0..width)
            .map(|c| {
                let lo = c * series.len() / width;
                let hi = (((c + 1) * series.len()) / width).max(lo + 1);
                series[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
            })
            .collect()
    };
    let min = cols.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = cols.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = if max > min { max - min } else { 1.0 };
    let mut out = String::new();
    for row in 0..height {
        // Top row = max value.
        let level = height - 1 - row;
        let y = min + span * level as f64 / (height - 1).max(1) as f64;
        let _ = write!(out, "{:6.3} |", y);
        for &v in &cols {
            let cell = ((v - min) / span * (height - 1) as f64).round() as usize;
            out.push(if cell >= level { '#' } else { ' ' });
        }
        out.push('\n');
    }
    let _ = writeln!(out, "       +{}", "-".repeat(cols.len()));
    out
}

/// Renders a fairness report for a trace: per-user deserved vs. received
/// GPU-rounds, Jain, Gini, and ρ stats. `user` restricts the per-user table
/// to one user; `plot` appends the ASCII Jain-over-time plot.
pub fn fairness_report(events: &[TraceEvent], user: Option<UserId>, plot: bool) -> String {
    let (summary, jain_series) = replay_ledger(events);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "rounds {}  jain {:.4}  gini {:.4}",
        summary.rounds, summary.jain, summary.gini
    );
    let _ = writeln!(
        out,
        "finish-time fairness rho: n={} mean {:.3} p50 {:.3} p99 {:.3} max {:.3}",
        summary.rho.count, summary.rho.mean, summary.rho.p50, summary.rho.p99, summary.rho.max
    );
    let _ = writeln!(
        out,
        "{:>6} {:>14} {:>14} {:>8} {:>9} {:>9} {:>9}",
        "user", "deserved", "received", "ratio", "finished", "rho_mean", "rho_max"
    );
    for row in &summary.users {
        if let Some(u) = user {
            if row.user != u.raw() {
                continue;
            }
        }
        let ratio = if row.deserved > 0.0 {
            row.received / row.deserved
        } else {
            f64::NAN
        };
        let _ = writeln!(
            out,
            "{:>6} {:>14.1} {:>14.1} {:>8.3} {:>9} {:>9.3} {:>9.3}",
            row.user, row.deserved, row.received, ratio, row.finished, row.rho_mean, row.rho_max
        );
    }
    if plot && !jain_series.is_empty() {
        let _ = writeln!(out, "jain index over rounds:");
        out.push_str(&ascii_plot(&jain_series, 64, 10));
    }
    out
}

/// Per-kind event counts, in [`TraceEvent::KINDS`] order (zero-count kinds
/// included so diffs line up).
pub fn kind_counts(events: &[TraceEvent]) -> BTreeMap<&'static str, u64> {
    let mut counts: BTreeMap<&'static str, u64> = BTreeMap::new();
    for kind in TraceEvent::KINDS {
        counts.insert(kind, 0);
    }
    for event in events {
        *counts.entry(event.kind()).or_insert(0) += 1;
    }
    counts
}

/// Compares two traces: per-kind count deltas, the first line where the
/// serialized events diverge, and the final fairness posture side by side.
pub fn diff_traces(a: &[TraceEvent], b: &[TraceEvent]) -> String {
    let mut out = String::new();
    let (ca, cb) = (kind_counts(a), kind_counts(b));
    let _ = writeln!(out, "{:>16} {:>10} {:>10} {:>8}", "kind", "a", "b", "delta");
    for kind in TraceEvent::KINDS {
        let (na, nb) = (ca[kind], cb[kind]);
        if na == 0 && nb == 0 {
            continue;
        }
        let _ = writeln!(
            out,
            "{:>16} {:>10} {:>10} {:>+8}",
            kind,
            na,
            nb,
            nb as i64 - na as i64
        );
    }
    let divergence =
        a.iter()
            .zip(b.iter())
            .position(|(ea, eb)| ea != eb)
            .or(if a.len() != b.len() {
                Some(a.len().min(b.len()))
            } else {
                None
            });
    match divergence {
        None => {
            let _ = writeln!(out, "traces are identical ({} events)", a.len());
        }
        Some(i) => {
            let _ = writeln!(out, "first divergence at event {} (0-based):", i);
            let _ = writeln!(
                out,
                "  a: {}",
                a.get(i)
                    .map(TraceEvent::to_json_line)
                    .unwrap_or_else(|| "<end of trace>".into())
            );
            let _ = writeln!(
                out,
                "  b: {}",
                b.get(i)
                    .map(TraceEvent::to_json_line)
                    .unwrap_or_else(|| "<end of trace>".into())
            );
        }
    }
    let (sa, _) = replay_ledger(a);
    let (sb, _) = replay_ledger(b);
    let _ = writeln!(
        out,
        "fairness: a jain {:.4} gini {:.4} | b jain {:.4} gini {:.4}",
        sa.jain, sa.gini, sb.jain, sb.gini
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfair_obs::{Candidate, Rejection};
    use gfair_types::{ServerId, SimTime};

    fn sample_trace() -> Vec<TraceEvent> {
        vec![
            TraceEvent::JobArrive {
                t: SimTime::from_secs(1),
                job: JobId::new(7),
                user: UserId::new(3),
                gang: 2,
                service_secs: 100.0,
            },
            TraceEvent::Decision {
                t: SimTime::from_secs(1),
                decision: "placement".to_string(),
                job: Some(JobId::new(7)),
                user: Some(UserId::new(3)),
                chosen: "server:5 (work-conserving fallback)".to_string(),
                tie_break: "least projected load, then lowest server id".to_string(),
                considered: 4,
                candidates: vec![Candidate {
                    label: "server:5".to_string(),
                    score: 0.25,
                }],
                rejected: vec![Rejection {
                    reason: "gang_too_wide_for_server".into(),
                    count: 2,
                }],
            },
            TraceEvent::Placement {
                t: SimTime::from_secs(2),
                job: JobId::new(7),
                server: ServerId::new(5),
                gang: 2,
            },
            TraceEvent::JobFinish {
                t: SimTime::from_secs(301),
                job: JobId::new(7),
                user: UserId::new(3),
            },
        ]
    }

    #[test]
    fn why_job_reconstructs_the_story_in_order() {
        let lines = why_job(&sample_trace(), JobId::new(7));
        assert_eq!(
            lines.len(),
            6,
            "arrive, decide + 2 detail rows, place, finish"
        );
        assert!(lines[0].contains("arrive"));
        assert!(lines[1].contains("placement -> server:5"));
        assert!(lines[1].contains("tie-break: least projected load"));
        assert!(lines[2].contains("candidate server:5 score 0.2500"));
        assert!(lines[3].contains("rejected 2x: gang_too_wide_for_server"));
        assert!(lines[4].contains("resident server:5"));
        assert!(lines[5].contains("finish"));
    }

    #[test]
    fn why_job_of_unknown_job_is_empty() {
        assert!(why_job(&sample_trace(), JobId::new(999)).is_empty());
    }

    #[test]
    fn parse_events_reports_the_failing_line() {
        let text = "{\"kind\":\"job_finish\",\"t_us\":1,\"job\":1,\"user\":0}\nnot json\n";
        let err = parse_events(text).unwrap_err();
        assert!(err.contains("line 2"), "got: {err}");
    }

    #[test]
    fn parse_events_skips_blank_lines() {
        let text = "\n{\"kind\":\"job_finish\",\"t_us\":1,\"job\":1,\"user\":0}\n\n";
        assert_eq!(parse_events(text).unwrap().len(), 1);
    }

    #[test]
    fn fairness_report_names_every_metric() {
        let report = fairness_report(&sample_trace(), None, false);
        assert!(report.contains("jain"));
        assert!(report.contains("gini"));
        assert!(report.contains("rho"));
    }

    #[test]
    fn fairness_report_filters_to_one_user() {
        let mut events = sample_trace();
        events.push(TraceEvent::JobArrive {
            t: SimTime::from_secs(1),
            job: JobId::new(8),
            user: UserId::new(9),
            gang: 1,
            service_secs: 10.0,
        });
        events.push(TraceEvent::JobFinish {
            t: SimTime::from_secs(2),
            job: JobId::new(8),
            user: UserId::new(9),
        });
        let all = fairness_report(&events, None, false);
        let one = fairness_report(&events, Some(UserId::new(3)), false);
        assert!(all.lines().count() > one.lines().count());
        assert!(one.contains("\n     3 "));
        assert!(!one.contains("\n     9 "));
    }

    #[test]
    fn diff_identical_traces_reports_identical() {
        let t = sample_trace();
        let out = diff_traces(&t, &t);
        assert!(out.contains("traces are identical"), "got: {out}");
    }

    #[test]
    fn diff_divergent_traces_pins_the_first_difference() {
        let a = sample_trace();
        let mut b = sample_trace();
        b[2] = TraceEvent::Placement {
            t: SimTime::from_secs(2),
            job: JobId::new(7),
            server: ServerId::new(6),
            gang: 2,
        };
        let out = diff_traces(&a, &b);
        assert!(out.contains("first divergence at event 2"), "got: {out}");
        assert!(out.contains("\"server\":5"));
        assert!(out.contains("\"server\":6"));
    }

    #[test]
    fn diff_length_mismatch_diverges_at_the_shorter_end() {
        let a = sample_trace();
        let b = &a[..3];
        let out = diff_traces(&a, b);
        assert!(out.contains("first divergence at event 3"), "got: {out}");
        assert!(out.contains("<end of trace>"));
    }

    #[test]
    fn ascii_plot_is_bounded_and_monotone_axis() {
        let series: Vec<f64> = (0..200).map(|i| i as f64 / 200.0).collect();
        let plot = ascii_plot(&series, 40, 8);
        let lines: Vec<&str> = plot.lines().collect();
        assert_eq!(lines.len(), 9, "8 rows + axis");
        for line in &lines[..8] {
            assert!(line.len() <= 40 + 8);
        }
        // Rising series: the top row's marks sit to the right of the
        // bottom row's first mark.
        let top = lines[0].find('#').unwrap();
        let bottom = lines[7].find('#').unwrap();
        assert!(top > bottom);
    }

    #[test]
    fn kind_counts_cover_every_kind() {
        let counts = kind_counts(&sample_trace());
        assert_eq!(counts.len(), TraceEvent::KINDS.len());
        assert_eq!(counts["job_arrive"], 1);
        assert_eq!(counts["decision"], 1);
        assert_eq!(counts["server_up"], 0);
    }
}
