//! Fault plans: what can break, when, and how often.
//!
//! A [`FaultPlan`] is a declarative, fully deterministic description of the
//! faults a simulation run should experience. It combines *randomized*
//! faults (per-migration failure probabilities drawn from a seeded hash, so
//! the draw for a given job/attempt never depends on event interleaving)
//! with *scripted* faults (exact job/attempt pairs) and *windowed* faults
//! (network partitions and server flapping on a fixed timeline).

use gfair_types::{JobId, ServerId, SimDuration, SimTime};
use serde::Value;
use std::fmt::Write as _;

/// Every category of fault a [`FaultPlan`] can construct.
///
/// The DESIGN.md fault-model table must enumerate exactly these variants;
/// a test cross-checks the doc against [`FaultKind::ALL`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultKind {
    /// Checkpoint write fails on the source server: the migration aborts
    /// and the job keeps running where it was.
    CheckpointFail,
    /// Restore fails on the destination server: the job's GPU time on the
    /// wire is lost and it re-enters the pending queue.
    RestoreFail,
    /// Checkpoint/restore runs but is transiently slow: the migration
    /// outage is multiplied by the plan's slowdown factor.
    MigrationSlowdown,
    /// Network partition: for a time window the central scheduler cannot
    /// reach one server's local scheduler (the server keeps running).
    Partition,
    /// Server flapping: a server repeatedly fails and recovers on a cycle.
    ServerFlap,
}

impl FaultKind {
    /// All constructible fault kinds, in declaration order.
    pub const ALL: [FaultKind; 5] = [
        FaultKind::CheckpointFail,
        FaultKind::RestoreFail,
        FaultKind::MigrationSlowdown,
        FaultKind::Partition,
        FaultKind::ServerFlap,
    ];

    /// Stable snake_case name used in plan files and documentation.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::CheckpointFail => "checkpoint_fail",
            FaultKind::RestoreFail => "restore_fail",
            FaultKind::MigrationSlowdown => "migration_slowdown",
            FaultKind::Partition => "partition",
            FaultKind::ServerFlap => "server_flap",
        }
    }

    /// Inverse of [`FaultKind::name`].
    pub fn from_name(name: &str) -> Option<FaultKind> {
        FaultKind::ALL.iter().copied().find(|k| k.name() == name)
    }

    /// True for kinds that describe a single migration attempt (and are
    /// therefore valid in [`ScriptedFault`]); partition and flap faults are
    /// windowed and configured separately.
    pub fn is_migration_stage(self) -> bool {
        matches!(
            self,
            FaultKind::CheckpointFail | FaultKind::RestoreFail | FaultKind::MigrationSlowdown
        )
    }
}

/// A window during which the central scheduler cannot reach `server`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionWindow {
    /// The unreachable server.
    pub server: ServerId,
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive) — the heal instant.
    pub until: SimTime,
}

/// A scripted fail/recover cycle for one server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlapSpec {
    /// The flapping server.
    pub server: ServerId,
    /// Time of the first failure.
    pub first_fail: SimTime,
    /// How long each outage lasts.
    pub down: SimDuration,
    /// How long the server stays up between outages.
    pub up: SimDuration,
    /// Number of fail/recover cycles.
    pub cycles: u32,
}

/// An exact fault pinned to one migration attempt of one job.
///
/// Scripted faults override the randomized draw for that (job, attempt)
/// pair; `kind` must be a migration-stage kind (see
/// [`FaultKind::is_migration_stage`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScriptedFault {
    /// The job whose migration is targeted.
    pub job: JobId,
    /// Which attempt fails (1 = the job's first migration attempt ever).
    pub attempt: u32,
    /// What goes wrong.
    pub kind: FaultKind,
}

/// Declarative, seedable description of every fault a run should see.
///
/// The default plan injects nothing; builders opt into each fault class.
/// Randomized migration faults are drawn per (job, attempt) from a
/// counter-based hash of `seed`, so the outcome of any given attempt is
/// independent of event ordering and thread count.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for the randomized per-migration draws.
    pub seed: u64,
    /// Probability a migration fails at the checkpoint stage.
    pub checkpoint_fail_rate: f64,
    /// Probability a migration fails at the restore stage.
    pub restore_fail_rate: f64,
    /// Probability a migration is slowed down (but succeeds).
    pub slowdown_rate: f64,
    /// Outage multiplier applied by a slowdown fault (≥ 1).
    pub slowdown_factor: f64,
    /// Network-partition windows.
    pub partitions: Vec<PartitionWindow>,
    /// Server fail/recover cycles.
    pub flaps: Vec<FlapSpec>,
    /// Exact faults pinned to specific (job, attempt) pairs.
    pub scripted: Vec<ScriptedFault>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            checkpoint_fail_rate: 0.0,
            restore_fail_rate: 0.0,
            slowdown_rate: 0.0,
            slowdown_factor: 3.0,
            partitions: Vec::new(),
            flaps: Vec::new(),
            scripted: Vec::new(),
        }
    }
}

impl FaultPlan {
    /// A plan that injects nothing.
    pub fn none() -> Self {
        Self::default()
    }

    /// Sets the seed for randomized draws.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the checkpoint- and restore-stage failure probabilities.
    pub fn with_migration_fail_rates(mut self, checkpoint: f64, restore: f64) -> Self {
        self.checkpoint_fail_rate = checkpoint;
        self.restore_fail_rate = restore;
        self
    }

    /// Sets the slowdown probability and outage multiplier.
    pub fn with_slowdown(mut self, rate: f64, factor: f64) -> Self {
        self.slowdown_rate = rate;
        self.slowdown_factor = factor;
        self
    }

    /// Adds a partition window for `server` over `[from, until)`.
    pub fn with_partition(mut self, server: ServerId, from: SimTime, until: SimTime) -> Self {
        self.partitions.push(PartitionWindow {
            server,
            from,
            until,
        });
        self
    }

    /// Adds a fail/recover flap cycle for one server.
    pub fn with_flap(
        mut self,
        server: ServerId,
        first_fail: SimTime,
        down: SimDuration,
        up: SimDuration,
        cycles: u32,
    ) -> Self {
        self.flaps.push(FlapSpec {
            server,
            first_fail,
            down,
            up,
            cycles,
        });
        self
    }

    /// Pins `kind` to `job`'s `attempt`-th migration attempt.
    pub fn with_scripted(mut self, job: JobId, attempt: u32, kind: FaultKind) -> Self {
        self.scripted.push(ScriptedFault { job, attempt, kind });
        self
    }

    /// True when the plan injects nothing at all (the engine skips the
    /// fault path entirely for such plans).
    pub fn is_noop(&self) -> bool {
        self.checkpoint_fail_rate == 0.0
            && self.restore_fail_rate == 0.0
            && self.slowdown_rate == 0.0
            && self.partitions.is_empty()
            && self.flaps.is_empty()
            && self.scripted.is_empty()
    }

    /// Validates internal consistency, returning one message per problem.
    ///
    /// An empty result means the plan is well-formed. Server ids are
    /// validated against the cluster by the engine, which knows the
    /// topology.
    pub fn validate(&self) -> Vec<String> {
        let mut errs = Vec::new();
        for (name, rate) in [
            ("checkpoint_fail_rate", self.checkpoint_fail_rate),
            ("restore_fail_rate", self.restore_fail_rate),
            ("slowdown_rate", self.slowdown_rate),
        ] {
            if !(0.0..=1.0).contains(&rate) || !rate.is_finite() {
                errs.push(format!("{name} must be in [0, 1], got {rate}"));
            }
        }
        let sum = self.checkpoint_fail_rate + self.restore_fail_rate + self.slowdown_rate;
        if sum > 1.0 + 1e-9 {
            errs.push(format!(
                "fault rates must sum to at most 1 (a migration has one outcome), got {sum}"
            ));
        }
        if !self.slowdown_factor.is_finite() || self.slowdown_factor < 1.0 {
            errs.push(format!(
                "slowdown_factor must be a finite value ≥ 1, got {}",
                self.slowdown_factor
            ));
        }
        for p in &self.partitions {
            if p.until <= p.from {
                errs.push(format!(
                    "partition window for {} must end after it starts ({} ≤ {})",
                    p.server,
                    p.until.as_secs(),
                    p.from.as_secs()
                ));
            }
        }
        for f in &self.flaps {
            if f.cycles == 0 {
                errs.push(format!("flap for {} has zero cycles", f.server));
            }
            if f.down.is_zero() {
                errs.push(format!("flap for {} has a zero-length outage", f.server));
            }
            if f.up.is_zero() && f.cycles > 1 {
                errs.push(format!(
                    "flap for {} has zero up-time between {} outages",
                    f.server, f.cycles
                ));
            }
        }
        for s in &self.scripted {
            if !s.kind.is_migration_stage() {
                errs.push(format!(
                    "scripted fault for {} attempt {} has kind {:?}; only migration-stage kinds \
                     (checkpoint_fail, restore_fail, migration_slowdown) can be scripted",
                    s.job,
                    s.attempt,
                    s.kind.name()
                ));
            }
            if s.attempt == 0 {
                errs.push(format!(
                    "scripted fault for {} targets attempt 0; attempts are numbered from 1",
                    s.job
                ));
            }
        }
        errs
    }

    /// Serializes the plan to a stable, human-editable JSON document.
    ///
    /// Times and durations are expressed in whole seconds.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256);
        s.push_str("{\n");
        let _ = writeln!(s, "  \"seed\": {},", self.seed);
        let _ = writeln!(
            s,
            "  \"checkpoint_fail_rate\": {},",
            fmt_rate(self.checkpoint_fail_rate)
        );
        let _ = writeln!(
            s,
            "  \"restore_fail_rate\": {},",
            fmt_rate(self.restore_fail_rate)
        );
        let _ = writeln!(s, "  \"slowdown_rate\": {},", fmt_rate(self.slowdown_rate));
        let _ = writeln!(
            s,
            "  \"slowdown_factor\": {},",
            fmt_rate(self.slowdown_factor)
        );
        s.push_str("  \"partitions\": [");
        for (i, p) in self.partitions.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                s,
                "{sep}\n    {{\"server\": {}, \"from_secs\": {}, \"until_secs\": {}}}",
                p.server.raw(),
                p.from.as_secs(),
                p.until.as_secs()
            );
        }
        s.push_str(if self.partitions.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        s.push_str("  \"flaps\": [");
        for (i, f) in self.flaps.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                s,
                "{sep}\n    {{\"server\": {}, \"first_fail_secs\": {}, \"down_secs\": {}, \
                 \"up_secs\": {}, \"cycles\": {}}}",
                f.server.raw(),
                f.first_fail.as_secs(),
                f.down.as_secs(),
                f.up.as_secs(),
                f.cycles
            );
        }
        s.push_str(if self.flaps.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        s.push_str("  \"scripted\": [");
        for (i, f) in self.scripted.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                s,
                "{sep}\n    {{\"job\": {}, \"attempt\": {}, \"kind\": \"{}\"}}",
                f.job.raw(),
                f.attempt,
                f.kind.name()
            );
        }
        s.push_str(if self.scripted.is_empty() {
            "]\n"
        } else {
            "\n  ]\n"
        });
        s.push('}');
        s
    }

    /// Parses a plan from JSON; unknown fields are ignored and missing
    /// fields take their defaults, so minimal plans stay minimal.
    pub fn from_json(text: &str) -> Result<FaultPlan, String> {
        let value = serde_json::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
        let obj = value
            .as_object()
            .ok_or_else(|| format!("fault plan must be a JSON object, got {}", value.kind()))?;
        let mut plan = FaultPlan::default();
        for (key, v) in obj {
            match key.as_str() {
                "seed" => plan.seed = need_u64(v, "seed")?,
                "checkpoint_fail_rate" => {
                    plan.checkpoint_fail_rate = need_f64(v, "checkpoint_fail_rate")?
                }
                "restore_fail_rate" => plan.restore_fail_rate = need_f64(v, "restore_fail_rate")?,
                "slowdown_rate" => plan.slowdown_rate = need_f64(v, "slowdown_rate")?,
                "slowdown_factor" => plan.slowdown_factor = need_f64(v, "slowdown_factor")?,
                "partitions" => {
                    for (i, item) in need_array(v, "partitions")?.iter().enumerate() {
                        plan.partitions.push(parse_partition(item, i)?);
                    }
                }
                "flaps" => {
                    for (i, item) in need_array(v, "flaps")?.iter().enumerate() {
                        plan.flaps.push(parse_flap(item, i)?);
                    }
                }
                "scripted" => {
                    for (i, item) in need_array(v, "scripted")?.iter().enumerate() {
                        plan.scripted.push(parse_scripted(item, i)?);
                    }
                }
                _ => {} // ignore unknown fields: plans stay forward-compatible
            }
        }
        let errs = plan.validate();
        if errs.is_empty() {
            Ok(plan)
        } else {
            Err(errs.join("; "))
        }
    }
}

fn fmt_rate(x: f64) -> String {
    if x == x.trunc() && x.is_finite() {
        format!("{x:.1}")
    } else {
        format!("{x}")
    }
}

fn need_u64(v: &Value, field: &str) -> Result<u64, String> {
    v.as_u64().ok_or_else(|| {
        format!(
            "field {field} must be a non-negative integer, got {}",
            v.kind()
        )
    })
}

fn need_u32(v: &Value, field: &str) -> Result<u32, String> {
    let raw = need_u64(v, field)?;
    u32::try_from(raw).map_err(|_| format!("field {field} does not fit in u32: {raw}"))
}

fn need_f64(v: &Value, field: &str) -> Result<f64, String> {
    v.as_f64()
        .ok_or_else(|| format!("field {field} must be a number, got {}", v.kind()))
}

fn need_array<'a>(v: &'a Value, field: &str) -> Result<&'a [Value], String> {
    v.as_array()
        .map(|a| a.as_slice())
        .ok_or_else(|| format!("field {field} must be an array, got {}", v.kind()))
}

fn field<'a>(v: &'a Value, name: &str, what: &str, i: usize) -> Result<&'a Value, String> {
    v.get(name)
        .ok_or_else(|| format!("{what}[{i}] is missing field {name}"))
}

fn parse_partition(v: &Value, i: usize) -> Result<PartitionWindow, String> {
    Ok(PartitionWindow {
        server: ServerId::new(need_u32(field(v, "server", "partitions", i)?, "server")?),
        from: SimTime::from_secs(need_u64(
            field(v, "from_secs", "partitions", i)?,
            "from_secs",
        )?),
        until: SimTime::from_secs(need_u64(
            field(v, "until_secs", "partitions", i)?,
            "until_secs",
        )?),
    })
}

fn parse_flap(v: &Value, i: usize) -> Result<FlapSpec, String> {
    Ok(FlapSpec {
        server: ServerId::new(need_u32(field(v, "server", "flaps", i)?, "server")?),
        first_fail: SimTime::from_secs(need_u64(
            field(v, "first_fail_secs", "flaps", i)?,
            "first_fail_secs",
        )?),
        down: SimDuration::from_secs(need_u64(field(v, "down_secs", "flaps", i)?, "down_secs")?),
        up: SimDuration::from_secs(need_u64(field(v, "up_secs", "flaps", i)?, "up_secs")?),
        cycles: need_u32(field(v, "cycles", "flaps", i)?, "cycles")?,
    })
}

fn parse_scripted(v: &Value, i: usize) -> Result<ScriptedFault, String> {
    let kind_name = field(v, "kind", "scripted", i)?
        .as_str()
        .ok_or_else(|| format!("scripted[{i}].kind must be a string"))?;
    let kind = FaultKind::from_name(kind_name).ok_or_else(|| {
        format!(
            "scripted[{i}].kind {kind_name:?} is not a fault kind (expected one of: {})",
            FaultKind::ALL.map(|k| k.name()).join(", ")
        )
    })?;
    Ok(ScriptedFault {
        job: JobId::new(need_u32(field(v, "job", "scripted", i)?, "job")?),
        attempt: need_u32(field(v, "attempt", "scripted", i)?, "attempt")?,
        kind,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_noop_and_valid() {
        let plan = FaultPlan::default();
        assert!(plan.is_noop());
        assert!(plan.validate().is_empty());
    }

    #[test]
    fn validate_catches_bad_rates_and_windows() {
        let plan = FaultPlan::default().with_migration_fail_rates(0.7, 0.6);
        assert!(plan.validate().iter().any(|e| e.contains("sum")));
        let plan = FaultPlan::default().with_migration_fail_rates(-0.1, 0.0);
        assert!(!plan.validate().is_empty());
        let plan = FaultPlan::default().with_slowdown(0.1, 0.5);
        assert!(plan
            .validate()
            .iter()
            .any(|e| e.contains("slowdown_factor")));
        let plan = FaultPlan::default().with_partition(
            ServerId::new(0),
            SimTime::from_secs(100),
            SimTime::from_secs(50),
        );
        assert!(plan.validate().iter().any(|e| e.contains("partition")));
        let plan = FaultPlan::default().with_scripted(JobId::new(1), 1, FaultKind::Partition);
        assert!(plan.validate().iter().any(|e| e.contains("scripted")));
    }

    #[test]
    fn json_round_trip_preserves_plan() {
        let plan = FaultPlan::default()
            .with_seed(42)
            .with_migration_fail_rates(0.05, 0.05)
            .with_slowdown(0.1, 3.5)
            .with_partition(
                ServerId::new(2),
                SimTime::from_secs(3600),
                SimTime::from_secs(7200),
            )
            .with_flap(
                ServerId::new(1),
                SimTime::from_secs(600),
                SimDuration::from_secs(120),
                SimDuration::from_secs(1800),
                3,
            )
            .with_scripted(JobId::new(7), 1, FaultKind::RestoreFail);
        let json = plan.to_json();
        let parsed = FaultPlan::from_json(&json).expect("round trip");
        assert_eq!(parsed, plan);
    }

    #[test]
    fn minimal_json_uses_defaults() {
        let plan = FaultPlan::from_json("{\"checkpoint_fail_rate\": 0.1}").expect("minimal plan");
        assert_eq!(plan.checkpoint_fail_rate, 0.1);
        assert_eq!(plan.slowdown_factor, 3.0);
        assert!(plan.partitions.is_empty());
        assert!(FaultPlan::from_json("[1, 2]").is_err());
        assert!(FaultPlan::from_json("{\"checkpoint_fail_rate\": 2.0}").is_err());
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in FaultKind::ALL {
            assert_eq!(FaultKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(FaultKind::from_name("nope"), None);
    }
}
