//! The runtime half of fault injection: deterministic per-attempt draws.
//!
//! [`FaultInjector`] answers one question for the engine — "does this
//! migration attempt fault, and how?" — using a counter-based hash keyed on
//! `(seed, job, attempt)`. Because the draw depends only on that key, the
//! answer is independent of event interleaving and planner thread count,
//! which is what keeps fault runs byte-deterministic.

use crate::plan::{FaultKind, FaultPlan, PartitionWindow};
use gfair_types::{JobId, ServerId, SimTime};

/// The outcome of a faulted migration attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MigrationFault {
    /// The checkpoint write fails; the job never leaves its source.
    Checkpoint,
    /// The restore fails after the transfer; the job is re-queued.
    Restore,
    /// The migration succeeds but its outage is multiplied by this factor.
    Slowdown(f64),
}

/// Interprets a [`FaultPlan`] at runtime.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
}

impl FaultInjector {
    /// Wraps a validated plan. Panics if the plan fails
    /// [`FaultPlan::validate`]; parse or construct plans through the
    /// checked paths first.
    pub fn new(plan: FaultPlan) -> Self {
        let errs = plan.validate();
        assert!(errs.is_empty(), "invalid fault plan: {}", errs.join("; "));
        FaultInjector { plan }
    }

    /// The underlying plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Partition windows, in plan order.
    pub fn partitions(&self) -> &[PartitionWindow] {
        &self.plan.partitions
    }

    /// Expands flap specs into a flat `(time, server, is_failure)` list for
    /// the engine to feed its event queue. The list is in plan order, not
    /// time order; the event queue supplies the total order.
    pub fn server_events(&self) -> Vec<(SimTime, ServerId, bool)> {
        let mut out = Vec::new();
        for f in &self.plan.flaps {
            let mut t = f.first_fail;
            for _ in 0..f.cycles {
                out.push((t, f.server, true));
                let recover = t + f.down;
                out.push((recover, f.server, false));
                t = recover + f.up;
            }
        }
        out
    }

    /// Decides the fate of `job`'s `attempt`-th migration attempt
    /// (attempts are numbered from 1). Scripted faults take precedence;
    /// otherwise a deterministic unit draw is compared against the plan's
    /// cumulative rate thresholds.
    pub fn migration_fault(&self, job: JobId, attempt: u32) -> Option<MigrationFault> {
        for s in &self.plan.scripted {
            if s.job == job && s.attempt == attempt {
                return match s.kind {
                    FaultKind::CheckpointFail => Some(MigrationFault::Checkpoint),
                    FaultKind::RestoreFail => Some(MigrationFault::Restore),
                    FaultKind::MigrationSlowdown => {
                        Some(MigrationFault::Slowdown(self.plan.slowdown_factor))
                    }
                    // validate() rejects windowed kinds in scripts; be
                    // defensive anyway.
                    FaultKind::Partition | FaultKind::ServerFlap => None,
                };
            }
        }
        let total =
            self.plan.checkpoint_fail_rate + self.plan.restore_fail_rate + self.plan.slowdown_rate;
        if total <= 0.0 {
            return None;
        }
        let u = unit_draw(self.plan.seed, job, attempt);
        if u < self.plan.checkpoint_fail_rate {
            Some(MigrationFault::Checkpoint)
        } else if u < self.plan.checkpoint_fail_rate + self.plan.restore_fail_rate {
            Some(MigrationFault::Restore)
        } else if u < total {
            Some(MigrationFault::Slowdown(self.plan.slowdown_factor))
        } else {
            None
        }
    }
}

/// SplitMix64 finalizer — a strong 64-bit mixer with full avalanche.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Deterministic draw in [0, 1) keyed on (seed, job, attempt).
fn unit_draw(seed: u64, job: JobId, attempt: u32) -> f64 {
    let key = (u64::from(job.raw()) << 32) | u64::from(attempt);
    let h = splitmix64(seed ^ splitmix64(key));
    // Top 53 bits → uniform double in [0, 1).
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfair_types::SimDuration;

    #[test]
    fn draws_are_deterministic_and_attempt_sensitive() {
        let a = unit_draw(7, JobId::new(3), 1);
        assert_eq!(a, unit_draw(7, JobId::new(3), 1));
        assert_ne!(a, unit_draw(7, JobId::new(3), 2));
        assert_ne!(a, unit_draw(7, JobId::new(4), 1));
        assert_ne!(a, unit_draw(8, JobId::new(3), 1));
        assert!((0.0..1.0).contains(&a));
    }

    #[test]
    fn rates_partition_the_unit_interval() {
        let inj = FaultInjector::new(
            FaultPlan::default()
                .with_seed(11)
                .with_migration_fail_rates(0.2, 0.2)
                .with_slowdown(0.2, 2.0),
        );
        let mut counts = [0u32; 4]; // checkpoint, restore, slowdown, none
        for j in 0..2000 {
            match inj.migration_fault(JobId::new(j), 1) {
                Some(MigrationFault::Checkpoint) => counts[0] += 1,
                Some(MigrationFault::Restore) => counts[1] += 1,
                Some(MigrationFault::Slowdown(f)) => {
                    assert_eq!(f, 2.0);
                    counts[2] += 1;
                }
                None => counts[3] += 1,
            }
        }
        // Each bucket should land near its expected mass (400/400/400/800).
        for (i, &c) in counts.iter().enumerate() {
            let expected = if i == 3 { 800.0 } else { 400.0 };
            assert!(
                (c as f64 - expected).abs() < 150.0,
                "bucket {i} count {c} too far from {expected}"
            );
        }
    }

    #[test]
    fn scripted_faults_override_draws() {
        let inj = FaultInjector::new(
            FaultPlan::default()
                .with_scripted(JobId::new(5), 2, FaultKind::RestoreFail)
                .with_scripted(JobId::new(6), 1, FaultKind::MigrationSlowdown),
        );
        assert_eq!(inj.migration_fault(JobId::new(5), 1), None);
        assert_eq!(
            inj.migration_fault(JobId::new(5), 2),
            Some(MigrationFault::Restore)
        );
        assert_eq!(
            inj.migration_fault(JobId::new(6), 1),
            Some(MigrationFault::Slowdown(3.0))
        );
    }

    #[test]
    fn flaps_expand_to_alternating_events() {
        let inj = FaultInjector::new(FaultPlan::default().with_flap(
            ServerId::new(1),
            SimTime::from_secs(100),
            SimDuration::from_secs(10),
            SimDuration::from_secs(50),
            2,
        ));
        let events = inj.server_events();
        assert_eq!(
            events,
            vec![
                (SimTime::from_secs(100), ServerId::new(1), true),
                (SimTime::from_secs(110), ServerId::new(1), false),
                (SimTime::from_secs(160), ServerId::new(1), true),
                (SimTime::from_secs(170), ServerId::new(1), false),
            ]
        );
    }

    #[test]
    #[should_panic(expected = "invalid fault plan")]
    fn injector_rejects_invalid_plans() {
        let _ = FaultInjector::new(FaultPlan::default().with_migration_fail_rates(2.0, 0.0));
    }
}
