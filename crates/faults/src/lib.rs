//! Deterministic fault injection for the gfair simulator.
//!
//! Gandiva_fair's mechanisms — checkpoint/restore migration, central ticket
//! accounting, per-server local schedulers — each have failure modes that a
//! fairness claim must survive. This crate describes those failures as
//! data: a [`FaultPlan`] declares *what* can break (migration checkpoint or
//! restore failures, checkpoint/restore slowdowns, per-server network
//! partitions, server flapping), *when* (scripted windows and exact
//! job/attempt pairs), and *how often* (seeded probabilities). The
//! simulation engine interprets the plan; `gfair-core` supplies the
//! recovery policies (bounded retry with backoff, degraded-mode scheduling
//! during partitions, reconcile on heal).
//!
//! Determinism is the design center: randomized draws are keyed on
//! `(seed, job, attempt)` with a counter-based hash, so the same plan and
//! seed produce byte-identical traces regardless of event interleaving or
//! planner thread count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod inject;
mod plan;

pub use inject::{FaultInjector, MigrationFault};
pub use plan::{FaultKind, FaultPlan, FlapSpec, PartitionWindow, ScriptedFault};
