//! Integration tests for the simulation engine, using small reference
//! schedulers to exercise arrival/placement, time slicing, exact-time
//! completion, migration, profiling, horizons, validation, and determinism.

use gfair_sim::{Action, ClusterScheduler, ProfileReport, RoundPlan, SimView, Simulation};
use gfair_types::{
    ClusterSpec, GenCatalog, GfairError, JobId, JobSpec, JobState, ModelProfile, ServerId,
    SimConfig, SimDuration, SimTime, UserId, UserSpec,
};
use std::sync::Arc;

/// Places each arriving job on the least-demand server that fits its gang;
/// each round runs resident jobs first-fit in id order.
struct Greedy;

impl Greedy {
    fn pick_server(view: &SimView<'_>, gang: u32) -> Option<ServerId> {
        view.up_servers()
            .filter(|s| s.num_gpus >= gang)
            .min_by(|a, b| {
                view.server_load(a.id)
                    .total_cmp(&view.server_load(b.id))
                    .then(a.id.cmp(&b.id))
            })
            .map(|s| s.id)
    }
}

impl ClusterScheduler for Greedy {
    fn name(&self) -> &'static str {
        "greedy-test"
    }

    fn on_job_arrival(&mut self, view: &SimView<'_>, job: JobId) -> Vec<Action> {
        let gang = view.job(job).unwrap().gang;
        match Self::pick_server(view, gang) {
            Some(server) => vec![Action::Place { job, server }],
            None => Vec::new(),
        }
    }

    fn plan_round(&mut self, view: &SimView<'_>) -> RoundPlan {
        let mut plan = RoundPlan::empty();
        for server in &view.cluster().servers {
            let mut free = server.num_gpus;
            for job in view.resident(server.id) {
                let info = view.job(job).unwrap();
                if info.state == JobState::Resident && info.gang <= free {
                    free -= info.gang;
                    plan.run_on(server.id, job);
                }
            }
        }
        plan
    }
}

fn model() -> Arc<ModelProfile> {
    Arc::new(ModelProfile::with_default_overheads(
        "ResNet-50",
        vec![1.0, 2.0, 4.0],
    ))
}

fn hetero_cluster() -> ClusterSpec {
    ClusterSpec::build(
        GenCatalog::k80_p100_v100(),
        &[("K80", 1, 4), ("P100", 1, 4), ("V100", 1, 4)],
    )
}

fn mono_cluster(gpus: u32) -> ClusterSpec {
    ClusterSpec::homogeneous(1, gpus)
}

fn mono_model() -> Arc<ModelProfile> {
    Arc::new(ModelProfile::with_default_overheads("VAE", vec![1.0]))
}

fn users(n: u32) -> Vec<UserSpec> {
    UserSpec::equal_users(n, 100)
}

fn job(id: u32, user: u32, model: &Arc<ModelProfile>, gang: u32, service: f64, at: u64) -> JobSpec {
    JobSpec::new(
        JobId::new(id),
        UserId::new(user),
        Arc::clone(model),
        gang,
        service,
        SimTime::from_secs(at),
    )
}

fn config() -> SimConfig {
    SimConfig::default()
}

#[test]
fn single_job_runs_to_completion_with_exact_jct() {
    let m = mono_model();
    let trace = vec![job(0, 0, &m, 2, 300.0, 0)];
    let sim = Simulation::new(mono_cluster(4), users(1), trace, config()).unwrap();
    let report = sim.run(&mut Greedy).unwrap();
    let rec = &report.jobs[&JobId::new(0)];
    // 300 s of service on a base-rate GPU, scheduled every round from t=0.
    assert_eq!(rec.finish, Some(SimTime::from_secs(300)));
    assert_eq!(rec.jct(), Some(SimDuration::from_secs(300)));
    assert_eq!(rec.first_run, Some(SimTime::ZERO));
    // gang 2 x 300 s = 600 GPU-seconds.
    assert!((rec.total_gpu_secs() - 600.0).abs() < 1e-6);
    assert_eq!(report.finished_jobs(), 1);
    assert_eq!(report.end, SimTime::from_secs(300));
}

#[test]
fn fast_generation_shortens_runtime() {
    let m = model();
    // One job placed on the V100 server (least loaded tie broken by id:
    // place explicitly by filling others first).
    struct PinV100;
    impl ClusterScheduler for PinV100 {
        fn name(&self) -> &'static str {
            "pin-v100"
        }
        fn on_job_arrival(&mut self, _view: &SimView<'_>, job: JobId) -> Vec<Action> {
            vec![Action::Place {
                job,
                server: ServerId::new(2),
            }]
        }
        fn plan_round(&mut self, view: &SimView<'_>) -> RoundPlan {
            let mut plan = RoundPlan::empty();
            for j in view.resident(ServerId::new(2)) {
                plan.run_on(ServerId::new(2), j);
            }
            plan
        }
    }
    let trace = vec![job(0, 0, &m, 1, 1200.0, 0)];
    let sim = Simulation::new(hetero_cluster(), users(1), trace, config()).unwrap();
    let report = sim.run(&mut PinV100).unwrap();
    // Server 2 is V100 (rate 4.0): 1200 base-seconds finish in 300 s.
    assert_eq!(
        report.jobs[&JobId::new(0)].finish,
        Some(SimTime::from_secs(300))
    );
}

#[test]
fn mid_round_completion_is_exact() {
    let m = mono_model();
    // 90 s of service with a 60 s quantum: finishes at t=90, mid-round.
    let trace = vec![job(0, 0, &m, 1, 90.0, 0)];
    let sim = Simulation::new(mono_cluster(1), users(1), trace, config()).unwrap();
    let report = sim.run(&mut Greedy).unwrap();
    assert_eq!(
        report.jobs[&JobId::new(0)].finish,
        Some(SimTime::from_secs(90))
    );
    // Only 90 GPU-seconds are accounted, not two full quanta.
    assert!((report.gpu_secs_used - 90.0).abs() < 1e-6);
}

#[test]
fn two_jobs_time_share_one_gpu() {
    let m = mono_model();
    let trace = vec![job(0, 0, &m, 1, 300.0, 0), job(1, 1, &m, 1, 300.0, 0)];
    let sim = Simulation::new(mono_cluster(1), users(2), trace, config()).unwrap();
    // Greedy runs whichever fits first each round: job 0 always wins (id
    // order), so job 1 runs only after job 0 finishes.
    let report = sim.run(&mut Greedy).unwrap();
    assert_eq!(
        report.jobs[&JobId::new(0)].finish,
        Some(SimTime::from_secs(300))
    );
    assert_eq!(
        report.jobs[&JobId::new(1)].finish,
        Some(SimTime::from_secs(600))
    );
    assert!((report.gpu_secs_used - 600.0).abs() < 1e-6);
    // The 1-GPU cluster was fully used until the end.
    assert!((report.utilization() - 1.0).abs() < 1e-6);
}

#[test]
fn late_arrival_starts_rounds_on_demand() {
    let m = mono_model();
    let trace = vec![job(0, 0, &m, 1, 60.0, 1000)];
    let sim = Simulation::new(mono_cluster(1), users(1), trace, config()).unwrap();
    let report = sim.run(&mut Greedy).unwrap();
    let rec = &report.jobs[&JobId::new(0)];
    assert_eq!(rec.first_run, Some(SimTime::from_secs(1000)));
    assert_eq!(rec.finish, Some(SimTime::from_secs(1060)));
    assert_eq!(rec.queue_delay(), Some(SimDuration::ZERO));
}

/// Migrates job 0 to server 1 on the first round after t=120, then behaves
/// like `Greedy`.
struct MigrateOnce {
    done: bool,
}

impl ClusterScheduler for MigrateOnce {
    fn name(&self) -> &'static str {
        "migrate-once"
    }
    fn on_job_arrival(&mut self, _view: &SimView<'_>, job: JobId) -> Vec<Action> {
        vec![Action::Place {
            job,
            server: ServerId::new(0),
        }]
    }
    fn plan_round(&mut self, view: &SimView<'_>) -> RoundPlan {
        let mut plan = RoundPlan::empty();
        if !self.done && view.now() >= SimTime::from_secs(120) {
            self.done = true;
            plan.actions.push(Action::Migrate {
                job: JobId::new(0),
                to: ServerId::new(1),
            });
            return plan;
        }
        for server in &view.cluster().servers {
            for j in view.resident(server.id) {
                if view.job(j).unwrap().state == JobState::Resident {
                    plan.run_on(server.id, j);
                }
            }
        }
        plan
    }
}

#[test]
fn migration_suspends_and_resumes_on_destination() {
    let m = mono_model(); // 30 s ckpt + 30 s restore
    let cluster = ClusterSpec::homogeneous(2, 4);
    let trace = vec![job(0, 0, &m, 2, 300.0, 0)];
    let sim = Simulation::new(cluster, users(1), trace, config()).unwrap();
    let report = sim.run(&mut MigrateOnce { done: false }).unwrap();
    let rec = &report.jobs[&JobId::new(0)];
    assert_eq!(rec.migrations, 1);
    assert_eq!(report.migrations, 1);
    assert_eq!(report.migration_outage, SimDuration::from_secs(60));
    // Ran 120 s, suspended for 60 s (done at t=180), resumes at the next
    // round (also t=180 — migration completes exactly on a boundary), so
    // completion = 120 + 60 + 180 = 360 s.
    assert_eq!(rec.finish, Some(SimTime::from_secs(360)));
}

#[test]
fn profile_reports_reflect_true_rate_within_noise() {
    struct Capture {
        inner: Greedy,
        reports: Vec<ProfileReport>,
    }
    impl ClusterScheduler for Capture {
        fn name(&self) -> &'static str {
            "capture"
        }
        fn on_job_arrival(&mut self, view: &SimView<'_>, job: JobId) -> Vec<Action> {
            self.inner.on_job_arrival(view, job)
        }
        fn on_profile_report(&mut self, _v: &SimView<'_>, r: &ProfileReport) -> Vec<Action> {
            self.reports.push(*r);
            Vec::new()
        }
        fn plan_round(&mut self, view: &SimView<'_>) -> RoundPlan {
            self.inner.plan_round(view)
        }
    }
    let m = mono_model();
    let trace = vec![job(0, 0, &m, 1, 1800.0, 0)];
    let sim = Simulation::new(mono_cluster(1), users(1), trace, config()).unwrap();
    let mut sched = Capture {
        inner: Greedy,
        reports: Vec::new(),
    };
    let report = sim.run(&mut sched).unwrap();
    // 1800 s of runtime with a 180 s stint: 10 stints, but the last report
    // lands after the job's final round and is never delivered mid-run.
    assert!(
        sched.reports.len() >= 8,
        "expected ~9 reports, got {}",
        sched.reports.len()
    );
    assert_eq!(report.profile_reports, sched.reports.len() as u64);
    for r in &sched.reports {
        assert_eq!(r.job, JobId::new(0));
        assert!(
            (r.rate - 1.0).abs() <= 0.05 + 1e-9,
            "observed rate {} outside noise band",
            r.rate
        );
    }
}

#[test]
fn horizon_truncates_service_exactly() {
    let m = mono_model();
    let trace = vec![job(0, 0, &m, 1, 100_000.0, 0)];
    let sim = Simulation::new(mono_cluster(1), users(1), trace, config()).unwrap();
    let horizon = SimTime::from_secs(3_570); // mid-round on purpose
    let report = sim.run_until(&mut Greedy, horizon).unwrap();
    let rec = &report.jobs[&JobId::new(0)];
    assert_eq!(rec.finish, None);
    assert_eq!(report.end, horizon);
    // Service must not be accrued past the horizon.
    assert!(
        report.gpu_secs_used <= 3_570.0 + 1e-6,
        "accrued {} past horizon",
        report.gpu_secs_used
    );
    assert!(report.gpu_secs_used >= 3_500.0);
}

#[test]
fn same_seed_gives_identical_reports() {
    let m = model();
    let trace: Vec<JobSpec> = (0..20)
        .map(|i| {
            job(
                i,
                i % 3,
                &m,
                1 + (i % 4),
                500.0 + 50.0 * i as f64,
                30 * i as u64,
            )
        })
        .collect();
    let mk = || {
        Simulation::new(hetero_cluster(), users(3), trace.clone(), config())
            .unwrap()
            .run(&mut Greedy)
            .unwrap()
    };
    let a = mk();
    let b = mk();
    assert_eq!(a, b);
}

#[test]
fn overcommit_plan_is_rejected() {
    struct Overcommit;
    impl ClusterScheduler for Overcommit {
        fn name(&self) -> &'static str {
            "overcommit"
        }
        fn on_job_arrival(&mut self, _v: &SimView<'_>, job: JobId) -> Vec<Action> {
            vec![Action::Place {
                job,
                server: ServerId::new(0),
            }]
        }
        fn plan_round(&mut self, view: &SimView<'_>) -> RoundPlan {
            let mut plan = RoundPlan::empty();
            // Run everything resident regardless of capacity.
            for j in view.resident(ServerId::new(0)) {
                plan.run_on(ServerId::new(0), j);
            }
            plan
        }
    }
    let m = mono_model();
    let trace = vec![job(0, 0, &m, 3, 100.0, 0), job(1, 0, &m, 3, 100.0, 0)];
    let sim = Simulation::new(mono_cluster(4), users(1), trace, config()).unwrap();
    let err = sim.run(&mut Overcommit).unwrap_err();
    assert!(matches!(err, GfairError::ServerOvercommitted { .. }));
}

#[test]
fn running_a_non_resident_job_is_rejected() {
    struct WrongServer;
    impl ClusterScheduler for WrongServer {
        fn name(&self) -> &'static str {
            "wrong-server"
        }
        fn on_job_arrival(&mut self, _v: &SimView<'_>, job: JobId) -> Vec<Action> {
            vec![Action::Place {
                job,
                server: ServerId::new(0),
            }]
        }
        fn plan_round(&mut self, _view: &SimView<'_>) -> RoundPlan {
            let mut plan = RoundPlan::empty();
            plan.run_on(ServerId::new(1), JobId::new(0));
            plan
        }
    }
    let m = mono_model();
    let trace = vec![job(0, 0, &m, 1, 100.0, 0)];
    let cluster = ClusterSpec::homogeneous(2, 4);
    let sim = Simulation::new(cluster, users(1), trace, config()).unwrap();
    let err = sim.run(&mut WrongServer).unwrap_err();
    assert!(matches!(err, GfairError::JobNotResident { .. }));
}

#[test]
fn placing_an_oversized_gang_is_rejected() {
    struct BadPlace;
    impl ClusterScheduler for BadPlace {
        fn name(&self) -> &'static str {
            "bad-place"
        }
        fn on_job_arrival(&mut self, _v: &SimView<'_>, job: JobId) -> Vec<Action> {
            vec![Action::Place {
                job,
                server: ServerId::new(0),
            }]
        }
        fn plan_round(&mut self, _view: &SimView<'_>) -> RoundPlan {
            RoundPlan::empty()
        }
    }
    let m = mono_model();
    // Cluster has a 4-GPU and an 8-GPU server; the gang of 8 fits only the
    // second but the scheduler places it on the first.
    let cluster = ClusterSpec::build(
        GenCatalog::homogeneous("P100"),
        &[("P100", 1, 4), ("P100", 1, 8)],
    );
    let trace = vec![job(0, 0, &m, 8, 100.0, 0)];
    let sim = Simulation::new(cluster, users(1), trace, config()).unwrap();
    let err = sim.run(&mut BadPlace).unwrap_err();
    assert!(matches!(err, GfairError::GangDoesNotFit { .. }));
}

#[test]
fn never_placing_jobs_hits_round_limit() {
    struct DoNothing;
    impl ClusterScheduler for DoNothing {
        fn name(&self) -> &'static str {
            "do-nothing"
        }
        fn on_job_arrival(&mut self, _v: &SimView<'_>, _job: JobId) -> Vec<Action> {
            Vec::new()
        }
        fn plan_round(&mut self, _view: &SimView<'_>) -> RoundPlan {
            RoundPlan::empty()
        }
    }
    let m = mono_model();
    let trace = vec![job(0, 0, &m, 1, 100.0, 0)];
    let sim = Simulation::new(mono_cluster(1), users(1), trace, config())
        .unwrap()
        .with_round_limit(100);
    let err = sim.run(&mut DoNothing).unwrap_err();
    assert_eq!(err, GfairError::RoundLimitExceeded(100));
}

#[test]
fn oversized_gang_in_trace_is_rejected_at_construction() {
    let m = mono_model();
    let trace = vec![job(0, 0, &m, 16, 100.0, 0)];
    let err = Simulation::new(mono_cluster(4), users(1), trace, config()).unwrap_err();
    assert!(matches!(err, GfairError::InvalidConfig(_)));
}

#[test]
fn unknown_user_in_trace_is_rejected() {
    let m = mono_model();
    let trace = vec![job(0, 7, &m, 1, 100.0, 0)];
    let err = Simulation::new(mono_cluster(4), users(1), trace, config()).unwrap_err();
    assert!(matches!(err, GfairError::InvalidConfig(_)));
}

#[test]
fn model_missing_generations_is_rejected() {
    let narrow = Arc::new(ModelProfile::with_default_overheads("narrow", vec![1.0]));
    let trace = vec![job(0, 0, &narrow, 1, 100.0, 0)];
    let err = Simulation::new(hetero_cluster(), users(1), trace, config()).unwrap_err();
    assert!(matches!(err, GfairError::InvalidConfig(_)));
}

#[test]
fn timeseries_windows_cover_the_run() {
    let m = mono_model();
    let trace = vec![job(0, 0, &m, 1, 900.0, 0)];
    let sim = Simulation::new(mono_cluster(1), users(1), trace, config()).unwrap();
    let report = sim.run(&mut Greedy).unwrap();
    // 900 s of work, 300 s windows: exactly 3 windows of full utilization.
    assert_eq!(report.timeseries.len(), 3);
    for w in &report.timeseries {
        assert!((w.utilization() - 1.0).abs() < 1e-6, "window {w:?}");
        assert!((w.user_gpu_secs[&UserId::new(0)] - 300.0).abs() < 1e-6);
    }
}

#[test]
fn base_equivalent_service_weights_by_speedup() {
    // Same job pinned to V100 (rate 4): base-equivalent service is 4x raw.
    struct PinV100;
    impl ClusterScheduler for PinV100 {
        fn name(&self) -> &'static str {
            "pin"
        }
        fn on_job_arrival(&mut self, _v: &SimView<'_>, job: JobId) -> Vec<Action> {
            vec![Action::Place {
                job,
                server: ServerId::new(2),
            }]
        }
        fn plan_round(&mut self, view: &SimView<'_>) -> RoundPlan {
            let mut plan = RoundPlan::empty();
            for j in view.resident(ServerId::new(2)) {
                plan.run_on(ServerId::new(2), j);
            }
            plan
        }
    }
    let m = model();
    let trace = vec![job(0, 0, &m, 1, 1200.0, 0)];
    let sim = Simulation::new(hetero_cluster(), users(1), trace, config()).unwrap();
    let report = sim.run(&mut PinV100).unwrap();
    let raw = report.gpu_secs_of(UserId::new(0));
    let base = report.base_secs_of(UserId::new(0));
    assert!((raw - 300.0).abs() < 1e-6);
    assert!((base - 1200.0).abs() < 1e-6);
}

#[test]
fn warm_jobs_pay_no_switch_overhead() {
    // A solo job runs continuously: only the first round is a cold start.
    let m = mono_model();
    let trace = vec![job(0, 0, &m, 1, 294.0, 0)];
    let cfg = SimConfig::default().with_switch_overhead(SimDuration::from_secs(6));
    let sim = Simulation::new(mono_cluster(1), users(1), trace, cfg).unwrap();
    let report = sim.run(&mut Greedy).unwrap();
    // 6 s cold start + 294 s of work = finish at exactly t=300.
    assert_eq!(
        report.jobs[&JobId::new(0)].finish,
        Some(SimTime::from_secs(300))
    );
}

#[test]
fn alternating_jobs_pay_switch_overhead_every_round() {
    // Two jobs alternate on one GPU (Greedy runs the lower id first until it
    // finishes; instead force alternation with service that outlives the
    // horizon and a scheduler that swaps every round).
    struct Alternate {
        flip: bool,
    }
    impl ClusterScheduler for Alternate {
        fn name(&self) -> &'static str {
            "alternate"
        }
        fn on_job_arrival(&mut self, _v: &SimView<'_>, job: JobId) -> Vec<Action> {
            vec![Action::Place {
                job,
                server: ServerId::new(0),
            }]
        }
        fn plan_round(&mut self, _view: &SimView<'_>) -> RoundPlan {
            let mut plan = RoundPlan::empty();
            self.flip = !self.flip;
            let job = if self.flip {
                JobId::new(0)
            } else {
                JobId::new(1)
            };
            plan.run_on(ServerId::new(0), job);
            plan
        }
    }
    let m = mono_model();
    let trace = vec![
        job(0, 0, &m, 1, 100_000.0, 0),
        job(1, 1, &m, 1, 100_000.0, 0),
    ];
    let cfg = SimConfig::default().with_switch_overhead(SimDuration::from_secs(6));
    let sim = Simulation::new(mono_cluster(1), users(2), trace, cfg).unwrap();
    let report = sim
        .run_until(&mut Alternate { flip: false }, SimTime::from_secs(3600))
        .unwrap();
    // Every 60 s round loses 6 s to the switch: occupancy is 100% but
    // effective (base-equivalent) service is 90% of it.
    assert!((report.gpu_secs_used - 3600.0).abs() < 1e-6);
    let effective = report.total_base_secs();
    assert!(
        (effective - 3240.0).abs() < 1e-6,
        "expected 90% effective service, got {effective}"
    );
}

#[test]
fn zero_overhead_config_matches_legacy_behaviour() {
    let m = mono_model();
    let trace = vec![job(0, 0, &m, 1, 300.0, 0)];
    let sim = Simulation::new(mono_cluster(1), users(1), trace, config()).unwrap();
    let report = sim.run(&mut Greedy).unwrap();
    assert_eq!(
        report.jobs[&JobId::new(0)].finish,
        Some(SimTime::from_secs(300))
    );
    assert!((report.total_base_secs() - 300.0).abs() < 1e-6);
}

#[test]
fn future_jobs_are_invisible_to_schedulers() {
    // A scheduler must not see jobs before their arrival event — placing
    // tomorrow's job today is both an information leak and a correctness
    // bug (regression test: the pending-job retry loop once placed a job
    // 58 s before it arrived).
    struct Snooper {
        saw_future_job: bool,
    }
    impl ClusterScheduler for Snooper {
        fn name(&self) -> &'static str {
            "snooper"
        }
        fn on_job_arrival(&mut self, _v: &SimView<'_>, job: JobId) -> Vec<Action> {
            vec![Action::Place {
                job,
                server: ServerId::new(0),
            }]
        }
        fn plan_round(&mut self, view: &SimView<'_>) -> RoundPlan {
            if view.now() < SimTime::from_secs(1000) && view.jobs().any(|j| j.id == JobId::new(1)) {
                self.saw_future_job = true;
            }
            let mut plan = RoundPlan::empty();
            for j in view.resident(ServerId::new(0)) {
                plan.run_on(ServerId::new(0), j);
            }
            plan
        }
    }
    let m = mono_model();
    let trace = vec![job(0, 0, &m, 1, 2000.0, 0), job(1, 0, &m, 1, 60.0, 1000)];
    let sim = Simulation::new(mono_cluster(2), users(1), trace, config()).unwrap();
    let mut sched = Snooper {
        saw_future_job: false,
    };
    let report = sim.run(&mut sched).unwrap();
    assert!(!sched.saw_future_job, "view leaked an unarrived job");
    assert_eq!(report.finished_jobs(), 2);
}

#[test]
fn overlapping_failure_events_are_idempotent() {
    // Failing an already-failed server and recovering an up server are
    // no-ops; a fail/recover/fail sequence lands in the expected state.
    let m = mono_model();
    let trace = vec![job(0, 0, &m, 1, 100_000.0, 0)];
    let cluster = ClusterSpec::homogeneous(2, 2);
    let sim = Simulation::new(cluster, users(1), trace, config())
        .unwrap()
        .with_server_failure(ServerId::new(1), SimTime::from_secs(60))
        .with_server_failure(ServerId::new(1), SimTime::from_secs(120))
        .with_server_recovery(ServerId::new(0), SimTime::from_secs(120)) // up already
        .with_server_recovery(ServerId::new(1), SimTime::from_secs(300))
        .with_server_recovery(ServerId::new(1), SimTime::from_secs(360));
    let report = sim
        .run_until(&mut Greedy, SimTime::from_secs(1800))
        .unwrap();
    // The job survived the churn and kept running on server 0 throughout.
    assert!(
        report.gpu_secs_used > 1700.0,
        "used {}",
        report.gpu_secs_used
    );
}

#[test]
fn ticket_change_for_unknown_user_panics() {
    let m = mono_model();
    let trace = vec![job(0, 0, &m, 1, 100.0, 0)];
    let sim = Simulation::new(mono_cluster(1), users(1), trace, config()).unwrap();
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _ = sim.with_ticket_change(UserId::new(9), SimTime::from_secs(60), 100);
    }));
    assert!(result.is_err(), "unknown user must be rejected");
}

#[test]
fn failure_of_idle_server_is_harmless() {
    let m = mono_model();
    let trace = vec![job(0, 0, &m, 1, 300.0, 0)];
    let cluster = ClusterSpec::homogeneous(2, 1);
    // Server 1 never hosts anything; its failure must not disturb job 0.
    let sim = Simulation::new(cluster, users(1), trace, config())
        .unwrap()
        .with_server_failure(ServerId::new(1), SimTime::from_secs(120));
    let report = sim.run(&mut Greedy).unwrap();
    assert_eq!(
        report.jobs[&JobId::new(0)].finish,
        Some(SimTime::from_secs(300))
    );
}

#[test]
fn eviction_preserves_training_progress() {
    // A job evicted mid-run resumes from its checkpointed progress, not
    // from scratch: total completion time = service + downtime gap only.
    let m = mono_model();
    let trace = vec![job(0, 0, &m, 1, 600.0, 0)];
    let cluster = ClusterSpec::homogeneous(2, 1);
    let sim = Simulation::new(cluster, users(1), trace, config())
        .unwrap()
        .with_server_failure(ServerId::new(0), SimTime::from_secs(300));
    // Greedy re-places the evicted job (via the on_job_evicted default) on
    // server 1; it ran 300 s before the failure and needs 300 s more.
    let report = sim
        .run_until(&mut Greedy, SimTime::from_secs(3600))
        .unwrap();
    let rec = &report.jobs[&JobId::new(0)];
    let finish = rec.finish.expect("job completes after re-placement");
    assert!(
        finish <= SimTime::from_secs(700),
        "progress was lost: finished at {finish}"
    );
    assert!(finish >= SimTime::from_secs(600));
}
