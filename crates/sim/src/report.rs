//! Simulation output: per-job records, per-user accounting, time series.
//!
//! The report is the single artifact experiments consume. It contains raw
//! GPU-seconds as well as *base-generation-equivalent* service (GPU-seconds
//! weighted by the job's true speedup on the generation it ran on), which is
//! the currency in which heterogeneity-aware fairness is judged.

use crate::job::JobRecord;
use gfair_obs::ObsSummary;
use gfair_types::{GenId, JobId, SimDuration, SimTime, UserId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Accounting for one reporting window.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct WindowSample {
    /// Window start time.
    pub start: SimTime,
    /// Raw GPU-seconds received per user in this window.
    pub user_gpu_secs: BTreeMap<UserId, f64>,
    /// Base-generation-equivalent GPU-seconds per user (speedup-weighted).
    pub user_base_secs: BTreeMap<UserId, f64>,
    /// Raw GPU-seconds dispensed across all servers.
    pub used_gpu_secs: f64,
    /// GPU-seconds of capacity in the window (total GPUs x window length).
    pub capacity_gpu_secs: f64,
}

impl WindowSample {
    /// Fraction of raw GPU capacity used in this window.
    pub fn utilization(&self) -> f64 {
        if self.capacity_gpu_secs <= 0.0 {
            0.0
        } else {
            self.used_gpu_secs / self.capacity_gpu_secs
        }
    }
}

/// Complete results of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Name of the scheduling policy that produced this run.
    pub scheduler: String,
    /// Time at which the simulation ended (all jobs done, or the horizon).
    pub end: SimTime,
    /// Number of scheduling rounds executed.
    pub rounds: u64,
    /// Per-job records, in id order.
    pub jobs: BTreeMap<JobId, JobRecord>,
    /// Raw GPU-seconds per user over the whole run.
    pub user_gpu_secs: BTreeMap<UserId, f64>,
    /// Base-generation-equivalent GPU-seconds per user over the whole run.
    pub user_base_secs: BTreeMap<UserId, f64>,
    /// Raw GPU-seconds per (user, generation).
    ///
    /// Serialized as a list of `[user, gen, secs]` entries — JSON objects
    /// cannot have tuple keys.
    #[serde(with = "tuple_key_map")]
    pub user_gen_gpu_secs: BTreeMap<(UserId, GenId), f64>,
    /// Raw GPU-seconds dispensed per server (for load-balance analysis).
    pub server_gpu_secs: BTreeMap<gfair_types::ServerId, f64>,
    /// Windowed time series of shares and utilization.
    pub timeseries: Vec<WindowSample>,
    /// Total migrations performed.
    pub migrations: u32,
    /// Total job outage time spent in checkpoint/restore.
    pub migration_outage: SimDuration,
    /// Raw GPU-seconds dispensed over the run.
    pub gpu_secs_used: f64,
    /// Raw GPU-second capacity over the run (total GPUs x end time).
    pub gpu_secs_capacity: f64,
    /// Number of profile reports delivered to the scheduler.
    pub profile_reports: u64,
    /// Migrations that were skipped because the job had finished or moved
    /// by the time the decision was applied, or because the decision raced
    /// a server failure / targeted a partitioned server and could not be
    /// delivered.
    pub stale_migrations: u32,
    /// Migration attempts that started (or were decided) but failed —
    /// checkpoint write, restore, destination lost mid-flight, or
    /// undeliverable across a partition. Zero unless faults are injected.
    pub migration_failures: u32,
    /// Deterministic observability snapshot (event counts, counters,
    /// gauges, histograms, auditor findings). `None` only for reports
    /// deserialized from runs predating the observability layer.
    pub obs: Option<ObsSummary>,
}

impl SimReport {
    /// Overall raw GPU utilization of the run.
    pub fn utilization(&self) -> f64 {
        if self.gpu_secs_capacity <= 0.0 {
            0.0
        } else {
            self.gpu_secs_used / self.gpu_secs_capacity
        }
    }

    /// Job completion times of all finished jobs, in id order.
    pub fn jcts(&self) -> Vec<SimDuration> {
        self.jobs.values().filter_map(|j| j.jct()).collect()
    }

    /// Number of jobs that finished before the horizon.
    pub fn finished_jobs(&self) -> usize {
        self.jobs.values().filter(|j| j.finish.is_some()).count()
    }

    /// Makespan: completion time of the last finished job, if any finished.
    pub fn makespan(&self) -> Option<SimTime> {
        self.jobs.values().filter_map(|j| j.finish).max()
    }

    /// Total base-equivalent service dispensed (the cluster-efficiency
    /// currency: how much "slowest-GPU work" the cluster got done).
    pub fn total_base_secs(&self) -> f64 {
        self.user_base_secs.values().sum()
    }

    /// Raw GPU-seconds received by `user` (0.0 if the user never ran).
    pub fn gpu_secs_of(&self, user: UserId) -> f64 {
        self.user_gpu_secs.get(&user).copied().unwrap_or(0.0)
    }

    /// Base-equivalent GPU-seconds received by `user`.
    pub fn base_secs_of(&self, user: UserId) -> f64 {
        self.user_base_secs.get(&user).copied().unwrap_or(0.0)
    }
}

/// Serde adapter for maps keyed by `(UserId, GenId)`: JSON object keys must
/// be strings, so the map round-trips through a sequence of triples.
mod tuple_key_map {
    use gfair_types::{GenId, UserId};
    use serde::{DeError, Deserialize, Serialize, Value};
    use std::collections::BTreeMap;

    pub fn to_value(map: &BTreeMap<(UserId, GenId), f64>) -> Value {
        let entries: Vec<(UserId, GenId, f64)> =
            map.iter().map(|(&(u, g), &v)| (u, g, v)).collect();
        entries.to_value()
    }

    pub fn from_value(v: &Value) -> Result<BTreeMap<(UserId, GenId), f64>, DeError> {
        let entries = Vec::<(UserId, GenId, f64)>::from_value(v)?;
        Ok(entries.into_iter().map(|(u, g, v)| ((u, g), v)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empty_report() -> SimReport {
        SimReport {
            scheduler: "test".into(),
            end: SimTime::from_secs(100),
            rounds: 0,
            jobs: BTreeMap::new(),
            user_gpu_secs: BTreeMap::new(),
            user_base_secs: BTreeMap::new(),
            user_gen_gpu_secs: BTreeMap::new(),
            server_gpu_secs: BTreeMap::new(),
            timeseries: Vec::new(),
            migrations: 0,
            migration_outage: SimDuration::ZERO,
            gpu_secs_used: 0.0,
            gpu_secs_capacity: 0.0,
            profile_reports: 0,
            stale_migrations: 0,
            migration_failures: 0,
            obs: None,
        }
    }

    #[test]
    fn utilization_handles_zero_capacity() {
        let r = empty_report();
        assert_eq!(r.utilization(), 0.0);
    }

    #[test]
    fn utilization_ratio() {
        let mut r = empty_report();
        r.gpu_secs_used = 50.0;
        r.gpu_secs_capacity = 200.0;
        assert!((r.utilization() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn window_utilization() {
        let w = WindowSample {
            start: SimTime::ZERO,
            user_gpu_secs: BTreeMap::new(),
            user_base_secs: BTreeMap::new(),
            used_gpu_secs: 30.0,
            capacity_gpu_secs: 60.0,
        };
        assert!((w.utilization() - 0.5).abs() < 1e-12);
        assert_eq!(WindowSample::default().utilization(), 0.0);
    }

    #[test]
    fn report_round_trips_through_json() {
        let mut r = empty_report();
        r.user_gen_gpu_secs
            .insert((UserId::new(1), gfair_types::GenId::new(2)), 12.5);
        r.gpu_secs_used = 12.5;
        let json = serde_json::to_string(&r).expect("report serializes");
        let back: SimReport = serde_json::from_str(&json).expect("report deserializes");
        assert_eq!(back, r);
    }

    #[test]
    fn per_user_lookups_default_to_zero() {
        let r = empty_report();
        assert_eq!(r.gpu_secs_of(UserId::new(9)), 0.0);
        assert_eq!(r.base_secs_of(UserId::new(9)), 0.0);
        assert_eq!(r.finished_jobs(), 0);
        assert_eq!(r.makespan(), None);
        assert!(r.jcts().is_empty());
    }
}
