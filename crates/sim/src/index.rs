//! Materialized indexes over simulation state.
//!
//! Every [`crate::SimView`] query used to re-derive its answer by scanning
//! the full job table — including every job that finished hours of simulated
//! time ago — which makes long runs quadratic in trace length. The engine
//! instead maintains this index incrementally: each state transition
//! (arrival, placement, migration, finish, failure) updates the handful of
//! sets it affects, and the view answers queries in O(answer).
//!
//! ## Invariants
//!
//! With `J` the engine's job table and `R` its residency map:
//!
//! * `arrived` — jobs whose `Arrival` event has fired. Monotone; jobs with a
//!   future arrival are never present.
//! * `active` — `{ j ∈ arrived : J[j].state.is_active() }`.
//! * `pending` — `{ j ∈ arrived : J[j].state == Pending }`.
//! * `by_user[u]` — `{ j ∈ active : J[j].user == u }`; users with no active
//!   job carry no entry, so the key set *is* the active-user set.
//! * `demand[s]` — `Σ gang(j) for j ∈ R[s]`; every server has an entry.
//!
//! [`ClusterIndex::verify`] re-derives all of this from scratch and is the
//! oracle for the differential property tests.

use crate::job::JobTable;
use gfair_types::{JobId, JobState, ServerId, UserId};
use std::collections::{BTreeMap, BTreeSet};

/// Incrementally maintained indexes over jobs and residency.
#[derive(Debug, Default)]
pub(crate) struct ClusterIndex {
    /// Jobs whose arrival event has fired, in id order.
    pub(crate) arrived: BTreeSet<JobId>,
    /// Arrived jobs that are not finished (pending, resident or migrating).
    pub(crate) active: BTreeSet<JobId>,
    /// Arrived jobs awaiting placement.
    pub(crate) pending: BTreeSet<JobId>,
    /// Active jobs per user; empty sets are removed, so the key set is
    /// exactly the set of users with at least one active job.
    pub(crate) by_user: BTreeMap<UserId, BTreeSet<JobId>>,
    /// GPUs demanded by resident jobs, per server (sum of gang widths),
    /// indexed by `ServerId::index()` — server ids are dense, and this sits
    /// on the placement hot path where a tree lookup per candidate server
    /// dominates.
    pub(crate) demand: Vec<u32>,
    /// Per-server residency change counter, indexed by `ServerId::index()`:
    /// bumped every time a server's resident set changes (placement, finish,
    /// migration, eviction). Schedulers use it to skip per-round membership
    /// re-derivation for servers whose residency is unchanged. It counts
    /// changes rather than deriving state, so [`ClusterIndex::verify`] has
    /// no oracle for it.
    pub(crate) res_version: Vec<u64>,
}

impl ClusterIndex {
    /// Creates an index for a cluster with the given servers, all empty.
    pub(crate) fn new(servers: impl IntoIterator<Item = ServerId>) -> Self {
        let len = servers
            .into_iter()
            .map(|s| s.index() + 1)
            .max()
            .unwrap_or(0);
        ClusterIndex {
            demand: vec![0; len],
            res_version: vec![0; len],
            ..ClusterIndex::default()
        }
    }

    /// A job's arrival event fired: it becomes visible and starts pending.
    pub(crate) fn on_arrive(&mut self, job: JobId, user: UserId) {
        self.arrived.insert(job);
        self.active.insert(job);
        self.pending.insert(job);
        self.by_user.entry(user).or_default().insert(job);
    }

    /// A job finished (from any active state; evicted jobs can finish while
    /// pending).
    pub(crate) fn on_finish(&mut self, job: JobId, user: UserId) {
        self.active.remove(&job);
        self.pending.remove(&job);
        if let Some(set) = self.by_user.get_mut(&user) {
            set.remove(&job);
            if set.is_empty() {
                self.by_user.remove(&user);
            }
        }
    }

    /// A pending job became resident on `server`.
    pub(crate) fn on_place(&mut self, job: JobId, server: ServerId, gang: u32) {
        self.pending.remove(&job);
        self.add_demand(server, gang);
    }

    /// A resident or migrating job fell back to pending (eviction on server
    /// failure, or a migration stranded by a destination failure).
    pub(crate) fn on_evict(&mut self, job: JobId) {
        self.pending.insert(job);
    }

    /// Adds a resident gang's GPUs to a server's demand.
    pub(crate) fn add_demand(&mut self, server: ServerId, gang: u32) {
        self.demand[server.index()] += gang;
        self.res_version[server.index()] += 1;
    }

    /// Removes a resident gang's GPUs from a server's demand.
    pub(crate) fn sub_demand(&mut self, server: ServerId, gang: u32) {
        let d = &mut self.demand[server.index()];
        debug_assert!(*d >= gang, "demand underflow on {server}");
        *d -= gang;
        self.res_version[server.index()] += 1;
    }

    /// A server failed and its residents were all evicted at once.
    pub(crate) fn clear_demand(&mut self, server: ServerId) {
        self.demand[server.index()] = 0;
        self.res_version[server.index()] += 1;
    }

    /// Recomputes every index from scratch and compares: the differential
    /// oracle. `arrived` is authoritative (only the event loop knows which
    /// arrivals fired), so it is sanity-checked against job metadata and the
    /// derived sets are recomputed relative to it.
    pub(crate) fn verify(
        &self,
        now: gfair_types::SimTime,
        jobs: &JobTable,
        residents: &BTreeMap<ServerId, BTreeSet<JobId>>,
    ) -> Result<(), String> {
        // Sanity: arrivals never fire early, and any job that has changed
        // state, run, or finished must have arrived.
        for (id, j) in jobs.iter() {
            if self.arrived.contains(&id) {
                if j.info.arrival > now {
                    return Err(format!("job {id} marked arrived before its arrival time"));
                }
            } else if j.info.state != JobState::Pending || j.first_run.is_some() {
                return Err(format!("job {id} progressed without being arrived"));
            }
        }
        // Derived sets, recomputed naively.
        let mut active = BTreeSet::new();
        let mut pending = BTreeSet::new();
        let mut by_user: BTreeMap<UserId, BTreeSet<JobId>> = BTreeMap::new();
        for &id in &self.arrived {
            let j = jobs.get(id).ok_or_else(|| format!("unknown job {id}"))?;
            if j.info.state.is_active() {
                active.insert(id);
                by_user.entry(j.info.user).or_default().insert(id);
            }
            if j.info.state == JobState::Pending {
                pending.insert(id);
            }
        }
        if active != self.active {
            return Err(format!(
                "active index diverged: naive {active:?} vs index {:?}",
                self.active
            ));
        }
        if pending != self.pending {
            return Err(format!(
                "pending index diverged: naive {pending:?} vs index {:?}",
                self.pending
            ));
        }
        if by_user != self.by_user {
            return Err(format!(
                "by_user index diverged: naive {by_user:?} vs index {:?}",
                self.by_user
            ));
        }
        let mut demand = vec![0u32; self.demand.len()];
        for (&s, set) in residents {
            demand[s.index()] = set.iter().map(|&id| jobs[id].info.gang).sum::<u32>();
        }
        if demand != self.demand {
            return Err(format!(
                "demand index diverged: naive {demand:?} vs index {:?}",
                self.demand
            ));
        }
        Ok(())
    }
}
