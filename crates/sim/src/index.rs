//! Materialized indexes over simulation state.
//!
//! Every [`crate::SimView`] query used to re-derive its answer by scanning
//! the full job table — including every job that finished hours of simulated
//! time ago — which makes long runs quadratic in trace length. The engine
//! instead maintains this index incrementally: each state transition
//! (arrival, placement, migration, finish, failure) updates the handful of
//! sets it affects, and the view answers queries in O(answer).
//!
//! ## Invariants
//!
//! With `J` the engine's job table and `R` its residency map:
//!
//! * `arrived` — jobs whose `Arrival` event has fired. Monotone; jobs with a
//!   future arrival are never present.
//! * `active` — `{ j ∈ arrived : J[j].state.is_active() }`.
//! * `pending` — `{ j ∈ arrived : J[j].state == Pending }`.
//! * `by_user[u]` — `{ j ∈ active : J[j].user == u }`; users with no active
//!   job carry no entry, so the key set *is* the active-user set.
//! * `demand[s]` — `Σ gang(j) for j ∈ R[s]`; every server has an entry.
//! * `user_demand[u]` — `Σ gang(j) for j ∈ by_user[u]`; entries are removed
//!   at zero, so the key set matches `by_user`'s.
//! * `user_model_gang[(u, m)]` — `Σ gang(j)` over active jobs of user `u`
//!   running model `m`; removed at zero.
//! * `model_active[m]` — active jobs running model `m`; removed when empty.
//! * `user_gen_assigned[(u, g)]` / `user_server_assigned[(u, s)]` —
//!   `Σ gang(j)` over active jobs of `u` with `J[j].server` set, grouped by
//!   the server's generation / the server itself. A migrating job counts
//!   toward its *destination* (its `server` field), mirroring what
//!   schedulers see; removed at zero.
//! * `gen_load[g]` — the servers of generation `g` ordered by
//!   (resident-load, id) ascending, where the load key is the exact f64
//!   bits of `demand/gpus` (non-negative f64 bits order like the values),
//!   so an ordered scan visits servers in the same order a least-loaded
//!   min-scan with `f64::total_cmp` would.
//!
//! [`ClusterIndex::verify`] re-derives all of this from scratch and is the
//! oracle for the differential property tests.
//!
//! The index also keeps a bounded *dirty ring* of residency changes: every
//! demand bump appends the server to a fixed-capacity ring, and consumers
//! (the round planner) read the suffix since their last cursor to learn
//! which servers changed — or fall back to a full pass if the ring lapped
//! them. It records changes rather than deriving state, so `verify` has no
//! oracle for it (same as `res_version`).

use crate::job::JobTable;
use gfair_types::{ClusterSpec, GenId, JobId, JobState, ServerId, UserId};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// The (load, id) ordering key for one server in [`ClusterIndex::gen_load`]:
/// non-negative f64 bit patterns sort identically to the values, so a
/// `BTreeSet` of these keys iterates in exactly `f64::total_cmp` order.
fn load_key(demand: u32, gpus: u32) -> u64 {
    debug_assert!(gpus > 0, "server with zero GPUs");
    (demand as f64 / gpus as f64).to_bits()
}

/// Incrementally maintained indexes over jobs and residency.
#[derive(Debug, Default)]
pub(crate) struct ClusterIndex {
    /// Jobs whose arrival event has fired, in id order.
    pub(crate) arrived: BTreeSet<JobId>,
    /// Arrived jobs that are not finished (pending, resident or migrating).
    pub(crate) active: BTreeSet<JobId>,
    /// Arrived jobs awaiting placement.
    pub(crate) pending: BTreeSet<JobId>,
    /// Active jobs per user; empty sets are removed, so the key set is
    /// exactly the set of users with at least one active job.
    pub(crate) by_user: BTreeMap<UserId, BTreeSet<JobId>>,
    /// GPUs demanded by resident jobs, per server (sum of gang widths),
    /// indexed by `ServerId::index()` — server ids are dense, and this sits
    /// on the placement hot path where a tree lookup per candidate server
    /// dominates.
    pub(crate) demand: Vec<u32>,
    /// Per-server residency change counter, indexed by `ServerId::index()`:
    /// bumped every time a server's resident set changes (placement, finish,
    /// migration, eviction). Schedulers use it to skip per-round membership
    /// re-derivation for servers whose residency is unchanged. It counts
    /// changes rather than deriving state, so [`ClusterIndex::verify`] has
    /// no oracle for it.
    pub(crate) res_version: Vec<u64>,
    /// Total GPUs demanded per active user (sum of active gang widths).
    pub(crate) user_demand: BTreeMap<UserId, u64>,
    /// GPUs demanded per (user, model) over active jobs.
    pub(crate) user_model_gang: BTreeMap<(UserId, Arc<str>), u64>,
    /// Active jobs per model.
    pub(crate) model_active: BTreeMap<Arc<str>, BTreeSet<JobId>>,
    /// GPUs of `user`'s placed jobs per generation (placed = `server` set,
    /// so a migrating job counts toward its destination's generation).
    pub(crate) user_gen_assigned: BTreeMap<(UserId, GenId), u64>,
    /// GPUs of `user`'s placed jobs per server.
    pub(crate) user_server_assigned: BTreeMap<(UserId, ServerId), u64>,
    /// Servers of each generation ordered by (resident load, id), indexed
    /// by `GenId::index()`; each element is `(load_key, server)`.
    pub(crate) gen_load: Vec<BTreeSet<(u64, ServerId)>>,
    /// Each server's generation, indexed by `ServerId::index()`.
    pub(crate) server_gen: Vec<GenId>,
    /// Each server's GPU count, indexed by `ServerId::index()`.
    pub(crate) server_gpus: Vec<u32>,
    /// Bounded ring of servers whose residency changed, written at
    /// `dirty_seq % capacity`; consumers track their own cursor.
    pub(crate) dirty_ring: Vec<ServerId>,
    /// Total residency changes ever recorded (monotone ring write cursor).
    pub(crate) dirty_seq: u64,
}

impl ClusterIndex {
    /// Creates an index for `cluster`, all empty.
    pub(crate) fn new(cluster: &ClusterSpec) -> Self {
        let len = cluster
            .servers
            .iter()
            .map(|s| s.id.index() + 1)
            .max()
            .unwrap_or(0);
        let mut server_gen = vec![GenId::new(0); len];
        // Zero GPUs marks an id gap (server ids are normally dense).
        let mut server_gpus = vec![0u32; len];
        let num_gens = cluster.catalog.ids().count();
        let mut gen_load = vec![BTreeSet::new(); num_gens];
        for s in &cluster.servers {
            server_gen[s.id.index()] = s.gen;
            server_gpus[s.id.index()] = s.num_gpus;
            gen_load[s.gen.index()].insert((load_key(0, s.num_gpus), s.id));
        }
        ClusterIndex {
            demand: vec![0; len],
            res_version: vec![0; len],
            gen_load,
            server_gen,
            server_gpus,
            // Sized so the changes accumulating between two consecutive
            // planner drains (one round's worth of finishes plus applied
            // placements) fit without lapping the consumer even at
            // million-job arrival rates.
            dirty_ring: vec![ServerId::new(0); (len * 8).max(8192)],
            ..ClusterIndex::default()
        }
    }

    /// A job's arrival event fired: it becomes visible and starts pending.
    pub(crate) fn on_arrive(&mut self, job: JobId, user: UserId, gang: u32, model: &Arc<str>) {
        self.arrived.insert(job);
        self.active.insert(job);
        self.pending.insert(job);
        self.by_user.entry(user).or_default().insert(job);
        *self.user_demand.entry(user).or_insert(0) += u64::from(gang);
        *self
            .user_model_gang
            .entry((user, Arc::clone(model)))
            .or_insert(0) += u64::from(gang);
        self.model_active
            .entry(Arc::clone(model))
            .or_default()
            .insert(job);
    }

    /// A job finished (from any active state; evicted jobs can finish while
    /// pending).
    pub(crate) fn on_finish(&mut self, job: JobId, user: UserId, gang: u32, model: &Arc<str>) {
        self.active.remove(&job);
        self.pending.remove(&job);
        if let Some(set) = self.by_user.get_mut(&user) {
            set.remove(&job);
            if set.is_empty() {
                self.by_user.remove(&user);
            }
        }
        if let Some(d) = self.user_demand.get_mut(&user) {
            *d = d.saturating_sub(u64::from(gang));
            if *d == 0 {
                self.user_demand.remove(&user);
            }
        }
        if let Some(d) = self.user_model_gang.get_mut(&(user, Arc::clone(model))) {
            *d = d.saturating_sub(u64::from(gang));
            if *d == 0 {
                self.user_model_gang.remove(&(user, Arc::clone(model)));
            }
        }
        if let Some(set) = self.model_active.get_mut(model) {
            set.remove(&job);
            if set.is_empty() {
                self.model_active.remove(model);
            }
        }
    }

    /// A pending job became resident on `server`.
    pub(crate) fn on_place(&mut self, job: JobId, server: ServerId, gang: u32) {
        self.pending.remove(&job);
        self.add_demand(server, gang);
    }

    /// A resident or migrating job fell back to pending (eviction on server
    /// failure, or a migration stranded by a destination failure).
    pub(crate) fn on_evict(&mut self, job: JobId) {
        self.pending.insert(job);
    }

    /// A job's `server` field was set to `server` (placement, or a migration
    /// departure pointing it at the destination).
    pub(crate) fn assign(&mut self, user: UserId, server: ServerId, gang: u32) {
        let gen = self.server_gen[server.index()];
        *self.user_gen_assigned.entry((user, gen)).or_insert(0) += u64::from(gang);
        *self.user_server_assigned.entry((user, server)).or_insert(0) += u64::from(gang);
    }

    /// A job's `server` field stopped pointing at `server` (finish, eviction
    /// or migration departure).
    pub(crate) fn unassign(&mut self, user: UserId, server: ServerId, gang: u32) {
        let gen = self.server_gen[server.index()];
        if let Some(d) = self.user_gen_assigned.get_mut(&(user, gen)) {
            *d = d.saturating_sub(u64::from(gang));
            if *d == 0 {
                self.user_gen_assigned.remove(&(user, gen));
            }
        }
        if let Some(d) = self.user_server_assigned.get_mut(&(user, server)) {
            *d = d.saturating_sub(u64::from(gang));
            if *d == 0 {
                self.user_server_assigned.remove(&(user, server));
            }
        }
    }

    /// Records a residency change on `server` in the dirty ring.
    fn note_dirty(&mut self, server: ServerId) {
        let cap = self.dirty_ring.len();
        if cap > 0 {
            self.dirty_ring[(self.dirty_seq % cap as u64) as usize] = server;
        }
        self.dirty_seq += 1;
    }

    /// Moves `server` between load-ordered positions after a demand change.
    fn rekey_load(&mut self, server: ServerId, old: u32, new: u32) {
        let gpus = self.server_gpus[server.index()];
        let set = &mut self.gen_load[self.server_gen[server.index()].index()];
        set.remove(&(load_key(old, gpus), server));
        set.insert((load_key(new, gpus), server));
    }

    /// Adds a resident gang's GPUs to a server's demand.
    pub(crate) fn add_demand(&mut self, server: ServerId, gang: u32) {
        let old = self.demand[server.index()];
        self.demand[server.index()] = old + gang;
        self.res_version[server.index()] += 1;
        self.rekey_load(server, old, old + gang);
        self.note_dirty(server);
    }

    /// Removes a resident gang's GPUs from a server's demand.
    pub(crate) fn sub_demand(&mut self, server: ServerId, gang: u32) {
        let old = self.demand[server.index()];
        debug_assert!(old >= gang, "demand underflow on {server}");
        self.demand[server.index()] = old - gang;
        self.res_version[server.index()] += 1;
        self.rekey_load(server, old, old - gang);
        self.note_dirty(server);
    }

    /// A server failed and its residents were all evicted at once.
    pub(crate) fn clear_demand(&mut self, server: ServerId) {
        let old = self.demand[server.index()];
        self.demand[server.index()] = 0;
        self.res_version[server.index()] += 1;
        self.rekey_load(server, old, 0);
        self.note_dirty(server);
    }

    /// Recomputes every index from scratch and compares: the differential
    /// oracle. `arrived` is authoritative (only the event loop knows which
    /// arrivals fired), so it is sanity-checked against job metadata and the
    /// derived sets are recomputed relative to it.
    pub(crate) fn verify(
        &self,
        now: gfair_types::SimTime,
        jobs: &JobTable,
        residents: &BTreeMap<ServerId, BTreeSet<JobId>>,
    ) -> Result<(), String> {
        // Sanity: arrivals never fire early, and any job that has changed
        // state, run, or finished must have arrived.
        for (id, j) in jobs.iter() {
            if self.arrived.contains(&id) {
                if j.info.arrival > now {
                    return Err(format!("job {id} marked arrived before its arrival time"));
                }
            } else if j.info.state != JobState::Pending || j.first_run.is_some() {
                return Err(format!("job {id} progressed without being arrived"));
            }
        }
        // Derived sets, recomputed naively.
        let mut active = BTreeSet::new();
        let mut pending = BTreeSet::new();
        let mut by_user: BTreeMap<UserId, BTreeSet<JobId>> = BTreeMap::new();
        let mut user_demand: BTreeMap<UserId, u64> = BTreeMap::new();
        let mut user_model_gang: BTreeMap<(UserId, Arc<str>), u64> = BTreeMap::new();
        let mut model_active: BTreeMap<Arc<str>, BTreeSet<JobId>> = BTreeMap::new();
        let mut user_gen_assigned: BTreeMap<(UserId, GenId), u64> = BTreeMap::new();
        let mut user_server_assigned: BTreeMap<(UserId, ServerId), u64> = BTreeMap::new();
        for &id in &self.arrived {
            let j = jobs.get(id).ok_or_else(|| format!("unknown job {id}"))?;
            if j.info.state.is_active() {
                active.insert(id);
                by_user.entry(j.info.user).or_default().insert(id);
                *user_demand.entry(j.info.user).or_insert(0) += u64::from(j.info.gang);
                *user_model_gang
                    .entry((j.info.user, Arc::clone(&j.info.model)))
                    .or_insert(0) += u64::from(j.info.gang);
                model_active
                    .entry(Arc::clone(&j.info.model))
                    .or_default()
                    .insert(id);
                if let Some(s) = j.info.server {
                    let gen = self.server_gen[s.index()];
                    *user_gen_assigned.entry((j.info.user, gen)).or_insert(0) +=
                        u64::from(j.info.gang);
                    *user_server_assigned.entry((j.info.user, s)).or_insert(0) +=
                        u64::from(j.info.gang);
                }
            }
            if j.info.state == JobState::Pending {
                pending.insert(id);
            }
        }
        if active != self.active {
            return Err(format!(
                "active index diverged: naive {active:?} vs index {:?}",
                self.active
            ));
        }
        if pending != self.pending {
            return Err(format!(
                "pending index diverged: naive {pending:?} vs index {:?}",
                self.pending
            ));
        }
        if by_user != self.by_user {
            return Err(format!(
                "by_user index diverged: naive {by_user:?} vs index {:?}",
                self.by_user
            ));
        }
        if user_demand != self.user_demand {
            return Err(format!(
                "user_demand index diverged: naive {user_demand:?} vs index {:?}",
                self.user_demand
            ));
        }
        if user_model_gang != self.user_model_gang {
            return Err(format!(
                "user_model_gang index diverged: naive {user_model_gang:?} vs index {:?}",
                self.user_model_gang
            ));
        }
        if model_active != self.model_active {
            return Err(format!(
                "model_active index diverged: naive {model_active:?} vs index {:?}",
                self.model_active
            ));
        }
        if user_gen_assigned != self.user_gen_assigned {
            return Err(format!(
                "user_gen_assigned index diverged: naive {user_gen_assigned:?} vs index {:?}",
                self.user_gen_assigned
            ));
        }
        if user_server_assigned != self.user_server_assigned {
            return Err(format!(
                "user_server_assigned diverged: naive {user_server_assigned:?} vs index {:?}",
                self.user_server_assigned
            ));
        }
        let mut demand = vec![0u32; self.demand.len()];
        for (&s, set) in residents {
            demand[s.index()] = set.iter().map(|&id| jobs[id].info.gang).sum::<u32>();
        }
        if demand != self.demand {
            return Err(format!(
                "demand index diverged: naive {demand:?} vs index {:?}",
                self.demand
            ));
        }
        // The load-ordered sets must hold every server exactly once, keyed
        // by its current demand.
        let total: usize = self.gen_load.iter().map(BTreeSet::len).sum();
        let real = self.server_gpus.iter().filter(|&&g| g > 0).count();
        if total != real {
            return Err(format!("gen_load holds {total} entries for {real} servers"));
        }
        for (i, &d) in demand.iter().enumerate() {
            if self.server_gpus[i] == 0 {
                continue;
            }
            let s = ServerId::new(i as u32);
            let key = (load_key(d, self.server_gpus[i]), s);
            if !self.gen_load[self.server_gen[i].index()].contains(&key) {
                return Err(format!("gen_load misses server {s} at demand {d}"));
            }
        }
        Ok(())
    }
}
