//! Deterministic discrete-event simulator for heterogeneous GPU clusters.
//!
//! The Gandiva_fair paper evaluates on a physical 200-GPU cluster running
//! real deep-learning training jobs; this crate is the substitute substrate:
//! it simulates servers of mixed GPU generations, *gang-scheduled* jobs that
//! are time-sliced with a fixed quantum (the paper's minute-granularity
//! suspend/resume), checkpoint/restore migration between servers, and
//! transparent job profiling with observation noise.
//!
//! Schedulers plug in through the [`ClusterScheduler`] trait and are driven
//! by the engine: they receive job arrival/finish callbacks and, once per
//! quantum, produce a [`RoundPlan`] saying which resident jobs run on each
//! server. The engine validates every decision (gang fit, residency, GPU
//! overcommit) and returns hard errors for invalid plans so scheduler bugs
//! fail tests instead of silently corrupting results.
//!
//! ## Information hiding
//!
//! The simulator knows each job's true per-generation training rate (its
//! [`gfair_types::ModelProfile`]); schedulers do **not**. They see only
//! [`JobInfo`] (gang size, user, model name, migration cost) and learn rates
//! through [`ProfileReport`]s — noisy observations emitted after a job has
//! accumulated enough runtime on a generation, exactly as the paper's
//! profiler measures jobs transparently in production.
//!
//! ## Determinism
//!
//! Time is integer microseconds; events at equal times are ordered by a
//! fixed kind priority then sequence number; all randomness flows from the
//! seed in [`gfair_types::SimConfig`]. Two runs with the same inputs produce
//! byte-identical reports.

#![warn(missing_docs)]

pub mod engine;
pub mod event;
mod index;
pub mod job;
pub mod report;
pub mod sched;
pub mod view;

pub use engine::Simulation;
pub use job::{JobInfo, JobRecord};
pub use report::{SimReport, WindowSample};
pub use sched::{Action, ClusterScheduler, ProfileReport, RoundPlan};
pub use view::SimView;
