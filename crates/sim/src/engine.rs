//! The discrete-event simulation engine.
//!
//! ## Execution model
//!
//! Time advances through four event kinds (see [`crate::event`]). Once per
//! quantum a `Round` event fires and, in order:
//!
//! 1. flushes the reporting window if a boundary was crossed,
//! 2. delivers pending profile reports to the scheduler,
//! 3. applies actions queued by mid-round callbacks,
//! 4. asks the scheduler for a [`RoundPlan`] and applies its actions,
//! 5. validates the plan's run sets (residency, gang fit, overcommit),
//! 6. accrues progress for every running job for the quantum (scheduling an
//!    exact-time `Finish` event for jobs that complete mid-round) and
//!    updates per-user accounting.
//!
//! Because every state change lands on a round boundary, progress accrual
//! never needs to be clawed back and accounting is exact.
//!
//! ## Stale decisions
//!
//! A `Migrate` action may race with the job finishing in the same round
//! (the scheduler could not have known); such stale migrations are counted
//! and skipped. All other invalid decisions are hard errors.

use crate::event::{EventKind, EventQueue};
use crate::index::ClusterIndex;
use crate::job::{JobRecord, JobRt, JobTable};
use crate::report::{SimReport, WindowSample};
use crate::sched::{Action, ClusterScheduler, ProfileReport, RoundPlan};
use crate::view::SimView;
use gfair_faults::{FaultInjector, FaultPlan, MigrationFault};
use gfair_obs::{Obs, Phase, SharedObs, TraceEvent, Violation, ViolationKind};
use gfair_types::{
    ClusterSpec, GfairError, JobId, JobSpec, JobState, MigrationFailReason, Result, ServerId,
    SimConfig, SimDuration, SimTime, UserSpec,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Safety limit on scheduling rounds; prevents schedulers that never place
/// jobs from spinning forever in [`Simulation::run`].
const MAX_ROUNDS: u64 = 10_000_000;

/// A configured simulation, ready to run one scheduling policy.
pub struct Simulation {
    cluster: ClusterSpec,
    users: Vec<UserSpec>,
    config: SimConfig,
    jobs: JobTable,
    residents: BTreeMap<ServerId, BTreeSet<JobId>>,
    /// Materialized indexes over `jobs`/`residents`, updated on every state
    /// transition so view queries run in O(answer); see [`crate::index`].
    index: ClusterIndex,
    down: BTreeSet<ServerId>,
    /// Servers whose local scheduler the central scheduler cannot currently
    /// reach (they keep running, but decisions targeting them are dropped).
    partitioned: BTreeSet<ServerId>,
    /// |down ∪ partitioned|, maintained across failure/recovery/partition
    /// transitions so the view's reachable count is O(1).
    unreachable: u32,
    /// Total GPUs on online servers, maintained across fail/recover.
    gpus_up: u32,
    /// Fault injector, when a [`FaultPlan`] was attached; `None` keeps the
    /// fault machinery entirely off the hot path.
    faults: Option<FaultInjector>,
    /// Failed-migration notifications awaiting delivery to the scheduler at
    /// the next round boundary: (job, intended destination, reason).
    pending_fault_notices: Vec<(JobId, ServerId, MigrationFailReason)>,
    queue: EventQueue,
    now: SimTime,
    rng: ChaCha8Rng,
    round_armed: bool,
    pending_actions: Vec<Action>,
    pending_reports: Vec<ProfileReport>,
    // Accounting.
    rounds: u64,
    migrations: u32,
    stale_migrations: u32,
    migration_failures: u32,
    migration_outage: SimDuration,
    gpu_secs_used: f64,
    profile_reports: u64,
    window: WindowSample,
    timeseries: Vec<WindowSample>,
    /// Live accumulation of the current window's per-user maps, kept dense
    /// (indexed by `UserId::index()`) because [`accrue`](Self::accrue) runs
    /// per grant per quantum; folded into [`WindowSample`]'s maps only when
    /// a window closes. An entry belongs to the window iff its raw
    /// GPU-seconds are positive (every accrual adds a positive amount).
    win_user_gpu_secs: Vec<f64>,
    win_user_base_secs: Vec<f64>,
    /// Run-wide accounting, dense for the same reason; converted to the
    /// report's maps in [`finalize`](Self::finalize). The (user, gen) grid
    /// is flattened as `user.index() * num_gens + gen.index()`.
    acct_user_gpu_secs: Vec<f64>,
    acct_user_base_secs: Vec<f64>,
    acct_user_gen_gpu_secs: Vec<f64>,
    acct_server_gpu_secs: Vec<f64>,
    num_gens: usize,
    /// Round-stamp per job (by `JobId::index()`) marking it as having run in
    /// the previous round: a scheduled job whose stamp is stale pays the
    /// suspend/resume overhead before making progress. `warm_serial` starts
    /// at 1 so the vector's default of zero never reads as warm.
    warm_stamp: Vec<u64>,
    warm_serial: u64,
    /// Round-stamp per job (by `JobId::index()`) for duplicate-grant
    /// detection while validating a plan's run sets: a job stamped with the
    /// current round number has already been granted this round. Rounds
    /// start at 1, so the vector's default of zero never collides.
    dup_stamp: Vec<u64>,
    round_limit: u64,
    /// Observability pipeline: every lifecycle and scheduling decision is
    /// emitted through it, and its online auditor can abort the run.
    obs: SharedObs,
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("now", &self.now)
            .field("jobs", &self.jobs.len())
            .field("servers", &self.cluster.servers.len())
            .field("rounds", &self.rounds)
            .finish_non_exhaustive()
    }
}

impl Simulation {
    /// Builds a simulation from a cluster, a user population, a trace of
    /// jobs (any order; they are scheduled by arrival time) and a config.
    ///
    /// # Errors
    ///
    /// Returns [`GfairError::InvalidConfig`] if the config fails validation,
    /// a job's gang fits no server, a job references an unknown user, or a
    /// job's model does not cover the cluster's generation catalog.
    pub fn new(
        cluster: ClusterSpec,
        users: Vec<UserSpec>,
        trace: Vec<JobSpec>,
        config: SimConfig,
    ) -> Result<Self> {
        let problems = config.validate();
        if !problems.is_empty() {
            return Err(GfairError::InvalidConfig(problems.join("; ")));
        }
        let max_gang = cluster.max_gang();
        let user_ids: BTreeSet<_> = users.iter().map(|u| u.id).collect();
        let mut queue = EventQueue::new();
        let mut jobs = JobTable::new();
        let mut arrivals = Vec::new();
        for spec in trace {
            if spec.gang > max_gang {
                return Err(GfairError::InvalidConfig(format!(
                    "job {} gang {} exceeds the widest server ({max_gang} GPUs)",
                    spec.id, spec.gang
                )));
            }
            if !user_ids.contains(&spec.user) {
                return Err(GfairError::InvalidConfig(format!(
                    "job {} references unknown user {}",
                    spec.id, spec.user
                )));
            }
            if !spec.model.covers(&cluster.catalog) {
                return Err(GfairError::InvalidConfig(format!(
                    "job {} model {} does not cover all {} generations",
                    spec.id,
                    spec.model.name,
                    cluster.catalog.len()
                )));
            }
            arrivals.push((spec.arrival, EventKind::Arrival(spec.id)));
            if jobs.insert(spec.id, JobRt::new(spec)).is_some() {
                return Err(GfairError::InvalidConfig(
                    "duplicate job id in trace".to_string(),
                ));
            }
        }
        // Stage the trace instead of front-loading the heap: the heap then
        // only carries the live working set (finishes, migrations, rounds).
        queue.stage(arrivals);
        let residents: BTreeMap<ServerId, BTreeSet<JobId>> = cluster
            .servers
            .iter()
            .map(|s| (s.id, BTreeSet::new()))
            .collect();
        let index = ClusterIndex::new(&cluster);
        let rng = ChaCha8Rng::seed_from_u64(config.seed);
        let num_gens = cluster.catalog.len().max(1);
        let gpus_up = cluster.servers.iter().map(|s| s.num_gpus).sum();
        Ok(Simulation {
            cluster,
            users,
            config,
            jobs,
            residents,
            index,
            down: BTreeSet::new(),
            partitioned: BTreeSet::new(),
            unreachable: 0,
            gpus_up,
            faults: None,
            pending_fault_notices: Vec::new(),
            queue,
            now: SimTime::ZERO,
            rng,
            round_armed: false,
            pending_actions: Vec::new(),
            pending_reports: Vec::new(),
            rounds: 0,
            migrations: 0,
            stale_migrations: 0,
            migration_failures: 0,
            migration_outage: SimDuration::ZERO,
            gpu_secs_used: 0.0,
            profile_reports: 0,
            window: WindowSample::default(),
            timeseries: Vec::new(),
            win_user_gpu_secs: Vec::new(),
            win_user_base_secs: Vec::new(),
            acct_user_gpu_secs: Vec::new(),
            acct_user_base_secs: Vec::new(),
            acct_user_gen_gpu_secs: Vec::new(),
            acct_server_gpu_secs: Vec::new(),
            num_gens,
            warm_stamp: Vec::new(),
            dup_stamp: Vec::new(),
            warm_serial: 1,
            round_limit: MAX_ROUNDS,
            obs: Arc::new(Obs::new()),
        })
    }

    /// Attaches a shared observability pipeline (trace sinks, metrics, the
    /// invariant auditor). A fresh pipeline with no sinks is used when this
    /// is never called; the auditor is always active either way.
    pub fn with_obs(mut self, obs: SharedObs) -> Self {
        self.obs = obs;
        self
    }

    /// The observability pipeline this simulation emits into.
    pub fn obs(&self) -> SharedObs {
        Arc::clone(&self.obs)
    }

    /// Overrides the round safety limit (mostly for tests; the default is
    /// ten million rounds).
    pub fn with_round_limit(mut self, limit: u64) -> Self {
        self.round_limit = limit;
        self
    }

    /// Schedules a priority change: at `at`, `user`'s tickets become
    /// `tickets`. Ticket-reading schedulers (Gandiva_fair, the lottery) pick
    /// the change up at their next entitlement refresh; static partitioning
    /// ignores it by design.
    ///
    /// # Panics
    ///
    /// Panics if `tickets` is zero or the user is unknown.
    pub fn with_ticket_change(
        mut self,
        user: gfair_types::UserId,
        at: SimTime,
        tickets: u64,
    ) -> Self {
        assert!(tickets > 0, "tickets must be positive");
        assert!(
            self.users.iter().any(|u| u.id == user),
            "ticket change for unknown user {user}"
        );
        self.queue.push(at, EventKind::TicketChange(user, tickets));
        self
    }

    /// Schedules a server failure at `at`: resident jobs are evicted back to
    /// `Pending` (keeping their checkpointed progress) and re-dispatched via
    /// [`ClusterScheduler::on_job_evicted`]; the server rejects placements
    /// and run plans until it recovers.
    ///
    /// # Panics
    ///
    /// Panics if the server is unknown.
    pub fn with_server_failure(mut self, server: ServerId, at: SimTime) -> Self {
        assert!(
            server.index() < self.cluster.servers.len(),
            "failure for unknown server {server}"
        );
        self.queue.push(at, EventKind::ServerFail(server));
        self
    }

    /// Schedules a failed server to come back online at `at`.
    ///
    /// # Panics
    ///
    /// Panics if the server is unknown.
    pub fn with_server_recovery(mut self, server: ServerId, at: SimTime) -> Self {
        assert!(
            server.index() < self.cluster.servers.len(),
            "recovery for unknown server {server}"
        );
        self.queue.push(at, EventKind::ServerRecover(server));
        self
    }

    /// Attaches a deterministic fault plan: migration checkpoint/restore
    /// failures and slowdowns (seeded per-attempt draws plus scripted
    /// faults), per-server network-partition windows, and server flapping.
    ///
    /// The plan's partition windows and flap cycles are scheduled as events
    /// here; migration faults are drawn lazily as attempts start, keyed on
    /// `(seed, job, attempt)` so the outcome never depends on event
    /// interleaving or planner thread count.
    ///
    /// # Panics
    ///
    /// Panics if the plan fails [`FaultPlan::validate`] or references a
    /// server the cluster does not have.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        let errs = plan.validate();
        assert!(errs.is_empty(), "invalid fault plan: {}", errs.join("; "));
        let num_servers = self.cluster.servers.len();
        for w in &plan.partitions {
            assert!(
                w.server.index() < num_servers,
                "fault plan partitions unknown server {}",
                w.server
            );
            self.queue.push(w.from, EventKind::PartitionStart(w.server));
            self.queue.push(w.until, EventKind::PartitionEnd(w.server));
        }
        let injector = FaultInjector::new(plan);
        for (at, server, is_failure) in injector.server_events() {
            assert!(
                server.index() < num_servers,
                "fault plan flaps unknown server {server}"
            );
            let kind = if is_failure {
                EventKind::ServerFail(server)
            } else {
                EventKind::ServerRecover(server)
            };
            self.queue.push(at, kind);
        }
        self.faults = Some(injector);
        self
    }

    /// Runs until every job has finished (or the round safety limit trips).
    ///
    /// # Errors
    ///
    /// Propagates any invalid scheduler decision; see [`crate::sched`].
    pub fn run(self, scheduler: &mut dyn ClusterScheduler) -> Result<SimReport> {
        self.run_inner(scheduler, None)
    }

    /// Runs until `horizon`, leaving unfinished jobs in flight. Service is
    /// never accrued beyond the horizon.
    ///
    /// # Errors
    ///
    /// Propagates any invalid scheduler decision; see [`crate::sched`].
    pub fn run_until(
        self,
        scheduler: &mut dyn ClusterScheduler,
        horizon: SimTime,
    ) -> Result<SimReport> {
        self.run_inner(scheduler, Some(horizon))
    }

    fn run_inner(
        mut self,
        scheduler: &mut dyn ClusterScheduler,
        horizon: Option<SimTime>,
    ) -> Result<SimReport> {
        // Announce every server up front so a trace is self-describing: the
        // auditor (and any consumer) learns capacities from the stream alone.
        for srv in &self.cluster.servers {
            self.obs.emit(TraceEvent::ServerUp {
                t: SimTime::ZERO,
                server: srv.id,
                gen: srv.gen,
                gpus: srv.num_gpus,
            });
        }
        while let Some(ev) = self.queue.pop() {
            if let Some(h) = horizon {
                if ev.time > h {
                    self.now = h;
                    break;
                }
            }
            self.now = ev.time;
            match ev.kind {
                EventKind::Arrival(job) => self.on_arrival(scheduler, job),
                EventKind::Finish(job) => self.on_finish(scheduler, job),
                EventKind::MigrationDone(job) => self.on_migration_done(scheduler, job),
                EventKind::ServerFail(server) => self.on_server_fail(scheduler, server),
                EventKind::ServerRecover(server) => self.on_server_recover(scheduler, server),
                EventKind::PartitionStart(server) => self.on_partition_start(scheduler, server),
                EventKind::PartitionEnd(server) => self.on_partition_end(scheduler, server),
                EventKind::TicketChange(user, tickets) => {
                    if let Some(u) = self.users.iter_mut().find(|u| u.id == user) {
                        u.tickets = tickets;
                    }
                }
                EventKind::Round => self.on_round(scheduler, horizon)?,
            }
            if self.rounds > self.round_limit {
                return Err(GfairError::RoundLimitExceeded(self.round_limit));
            }
        }
        Ok(self.finalize(scheduler.name()))
    }

    fn view(&self) -> SimView<'_> {
        SimView {
            now: self.now,
            cluster: &self.cluster,
            users: &self.users,
            jobs: &self.jobs,
            residents: &self.residents,
            index: &self.index,
            down: &self.down,
            partitioned: &self.partitioned,
            config: &self.config,
            unreachable: self.unreachable,
            gpus_up: self.gpus_up,
        }
    }

    fn arm_round(&mut self, at: SimTime) {
        if !self.round_armed {
            self.queue.push(at, EventKind::Round);
            self.round_armed = true;
        }
    }

    fn on_arrival(&mut self, scheduler: &mut dyn ClusterScheduler, job: JobId) {
        {
            let j = &self.jobs[job];
            self.index
                .on_arrive(job, j.info.user, j.info.gang, &j.info.model);
            self.obs.emit(TraceEvent::JobArrive {
                t: self.now,
                job,
                user: j.spec.user,
                gang: j.spec.gang,
                service_secs: j.spec.service_secs,
            });
        }
        let actions = scheduler.on_job_arrival(&self.view(), job);
        self.pending_actions.extend(actions);
        self.arm_round(self.now);
    }

    fn on_finish(&mut self, scheduler: &mut dyn ClusterScheduler, job: JobId) {
        let user = {
            let j = self.jobs.get_mut(job).expect("finish for known job");
            debug_assert!(j.finishing, "finish event without finishing flag");
            j.info.state = JobState::Finished;
            j.finish = Some(self.now);
            if let Some(server) = j.info.server {
                if let Some(set) = self.residents.get_mut(&server) {
                    if set.remove(&job) {
                        self.index.sub_demand(server, j.info.gang);
                    }
                }
                self.index.unassign(j.info.user, server, j.info.gang);
            }
            j.info.server = None;
            self.index
                .on_finish(job, j.info.user, j.info.gang, &j.info.model);
            j.info.user
        };
        self.obs.emit(TraceEvent::JobFinish {
            t: self.now,
            job,
            user,
        });
        let actions = scheduler.on_job_finish(&self.view(), job);
        self.pending_actions.extend(actions);
    }

    fn on_migration_done(&mut self, scheduler: &mut dyn ClusterScheduler, job: JobId) {
        enum Outcome {
            Landed(ServerId, u32),
            Failed(ServerId, ServerId, MigrationFailReason, u32),
        }
        let outcome = {
            let j = self.jobs.get_mut(job).expect("migration for known job");
            debug_assert_eq!(j.info.state, JobState::Migrating);
            let dst = j.info.server.expect("migrating job has a destination");
            let from = j.migrating_from.take().unwrap_or(dst);
            let attempt = j.attempts;
            if self.down.contains(&dst) {
                // The destination failed while the job was in flight: the
                // job is stranded and must be re-placed.
                j.restore_fail = false;
                j.info.state = JobState::Pending;
                j.info.server = None;
                self.index.unassign(j.info.user, dst, j.info.gang);
                self.index.on_evict(job);
                Outcome::Failed(from, dst, MigrationFailReason::TargetDown, attempt)
            } else if j.restore_fail {
                // The injected fault fires: the restore fails on the
                // destination and the job goes back to the pending queue
                // (its checkpointed progress is intact).
                j.restore_fail = false;
                j.info.state = JobState::Pending;
                j.info.server = None;
                self.index.unassign(j.info.user, dst, j.info.gang);
                self.index.on_evict(job);
                Outcome::Failed(from, dst, MigrationFailReason::Restore, attempt)
            } else {
                j.info.state = JobState::Resident;
                j.info.last_migration = Some(self.now);
                self.residents
                    .get_mut(&dst)
                    .expect("destination exists")
                    .insert(job);
                self.index.add_demand(dst, j.info.gang);
                Outcome::Landed(dst, j.info.gang)
            }
        };
        let actions = match outcome {
            Outcome::Landed(server, gang) => {
                self.obs.emit(TraceEvent::Placement {
                    t: self.now,
                    job,
                    server,
                    gang,
                });
                scheduler.on_migration_done(&self.view(), job)
            }
            Outcome::Failed(from, to, reason, attempt) => {
                self.migration_failures += 1;
                self.obs.emit(TraceEvent::MigrationFailed {
                    t: self.now,
                    job,
                    from,
                    to,
                    reason,
                    attempt,
                });
                scheduler.on_migration_failed(&self.view(), job, to, reason)
            }
        };
        self.pending_actions.extend(actions);
    }

    fn on_server_fail(&mut self, scheduler: &mut dyn ClusterScheduler, server: ServerId) {
        if !self.down.insert(server) {
            return; // already down
        }
        if !self.partitioned.contains(&server) {
            self.unreachable += 1;
        }
        self.gpus_up -= self.cluster.server(server).num_gpus;
        let evicted: Vec<JobId> = self
            .residents
            .get_mut(&server)
            .map(std::mem::take)
            .unwrap_or_default()
            .into_iter()
            .collect();
        for &job in &evicted {
            let j = self.jobs.get_mut(job).expect("resident job is known");
            j.info.state = JobState::Pending;
            j.info.server = None;
            self.index.unassign(j.info.user, server, j.info.gang);
            self.index.on_evict(job);
            // Jobs with a pending Finish event (they banked their last
            // service before the failure instant) stay pending and simply
            // finish when the event fires; they are not re-dispatched.
        }
        self.index.clear_demand(server);
        self.obs.emit(TraceEvent::ServerDown {
            t: self.now,
            server,
            evicted: evicted.len() as u32,
        });
        // Eviction provenance: there is no alternative to evicting residents
        // of a dead server, so the "candidates" are the victims themselves.
        // Trace-only, like every Decision event: skipped without a sink.
        for &job in &evicted {
            if !self.obs.tracing() {
                break;
            }
            let info = &self.jobs[job].info;
            self.obs.emit(TraceEvent::Decision {
                t: self.now,
                decision: "eviction".to_string(),
                job: Some(job),
                user: Some(info.user),
                chosen: format!("evict from server:{}", server.index()),
                tie_break: "none (server failed)".to_string(),
                considered: 1,
                candidates: vec![gfair_obs::Candidate {
                    label: format!("job:{}", job.index()),
                    score: f64::from(info.gang),
                }],
                rejected: vec![],
            });
        }
        for &job in &evicted {
            if self.jobs[job].finishing {
                continue;
            }
            let actions = scheduler.on_job_evicted(&self.view(), job);
            self.pending_actions.extend(actions);
        }
        let actions = scheduler.on_server_down(&self.view(), server);
        self.pending_actions.extend(actions);
        self.arm_round(self.now);
    }

    fn on_server_recover(&mut self, scheduler: &mut dyn ClusterScheduler, server: ServerId) {
        if !self.down.remove(&server) {
            return; // was not down
        }
        if !self.partitioned.contains(&server) {
            self.unreachable -= 1;
        }
        let srv = self.cluster.server(server);
        self.gpus_up += srv.num_gpus;
        self.obs.emit(TraceEvent::ServerUp {
            t: self.now,
            server,
            gen: srv.gen,
            gpus: srv.num_gpus,
        });
        let actions = scheduler.on_server_up(&self.view(), server);
        self.pending_actions.extend(actions);
    }

    fn on_partition_start(&mut self, scheduler: &mut dyn ClusterScheduler, server: ServerId) {
        if !self.partitioned.insert(server) {
            return; // already partitioned
        }
        if !self.down.contains(&server) {
            self.unreachable += 1;
        }
        // The server itself keeps running: residents stay resident and keep
        // making progress on the last-received stride state. Only the
        // control path (decision delivery) is cut.
        self.obs.emit(TraceEvent::PartitionStart {
            t: self.now,
            server,
        });
        let actions = scheduler.on_partition(&self.view(), server);
        self.pending_actions.extend(actions);
        self.arm_round(self.now);
    }

    fn on_partition_end(&mut self, scheduler: &mut dyn ClusterScheduler, server: ServerId) {
        if !self.partitioned.remove(&server) {
            return; // was not partitioned
        }
        if !self.down.contains(&server) {
            self.unreachable -= 1;
        }
        self.obs.emit(TraceEvent::PartitionEnd {
            t: self.now,
            server,
        });
        let actions = scheduler.on_partition_heal(&self.view(), server);
        self.pending_actions.extend(actions);
        self.arm_round(self.now);
    }

    /// Applies a placement or migration.
    ///
    /// `queued` actions were decided by mid-round callbacks against a view
    /// that may have gone stale (the target server can fail before the round
    /// boundary); such races are counted and skipped. Actions from a round
    /// plan saw a fresh view, so targeting a down server there is a hard
    /// scheduler bug. Stale migrations (job finished or moved) are skipped
    /// in both cases.
    fn apply_action(&mut self, action: Action, queued: bool) -> Result<()> {
        match action {
            Action::Place { job, server } => {
                let srv = self
                    .cluster
                    .servers
                    .get(server.index())
                    .ok_or(GfairError::UnknownServer(server))?;
                if self.down.contains(&server) {
                    if queued {
                        // Raced with a failure. The job stays pending;
                        // notify the scheduler so its retry path (not just
                        // luck) re-places it.
                        self.stale_migrations += 1;
                        self.obs.inc("stale_migrations", 1);
                        self.pending_fault_notices.push((
                            job,
                            server,
                            MigrationFailReason::TargetDown,
                        ));
                        return Ok(());
                    }
                    return Err(GfairError::ServerDown(server));
                }
                if self.partitioned.contains(&server) {
                    // The decision cannot be delivered to the server's
                    // local scheduler. Soft-skip in both phases — the
                    // partition may have started after the scheduler's
                    // information went stale — and notify.
                    self.stale_migrations += 1;
                    self.obs.inc("stale_migrations", 1);
                    self.pending_fault_notices.push((
                        job,
                        server,
                        MigrationFailReason::Unreachable,
                    ));
                    return Ok(());
                }
                let gpus = srv.num_gpus;
                let j = self.jobs.get_mut(job).ok_or(GfairError::UnknownJob(job))?;
                if j.info.state != JobState::Pending {
                    // Placing a non-pending job is always a scheduler bug.
                    return Err(GfairError::NotMigratable(job));
                }
                if j.info.gang > gpus {
                    return Err(GfairError::GangDoesNotFit {
                        job,
                        server,
                        gang: j.info.gang,
                        gpus,
                    });
                }
                j.info.state = JobState::Resident;
                j.info.server = Some(server);
                let gang = j.info.gang;
                self.residents
                    .get_mut(&server)
                    .expect("server exists")
                    .insert(job);
                self.index.on_place(job, server, gang);
                self.index.assign(j.info.user, server, gang);
                self.obs.emit(TraceEvent::Placement {
                    t: self.now,
                    job,
                    server,
                    gang,
                });
                Ok(())
            }
            Action::Migrate { job, to } => {
                let srv = self
                    .cluster
                    .servers
                    .get(to.index())
                    .ok_or(GfairError::UnknownServer(to))?;
                let target_down = self.down.contains(&to);
                if target_down && !queued {
                    return Err(GfairError::ServerDown(to));
                }
                let gpus = srv.num_gpus;
                let j = self.jobs.get_mut(job).ok_or(GfairError::UnknownJob(job))?;
                if j.info.state != JobState::Resident || j.finishing {
                    // Stale: the job finished or started moving since the
                    // decision was made. Skip quietly but keep count.
                    self.stale_migrations += 1;
                    self.obs.inc("stale_migrations", 1);
                    return Ok(());
                }
                let src = j.info.server.expect("resident job has a server");
                if target_down || self.partitioned.contains(&to) || self.partitioned.contains(&src)
                {
                    // Undeliverable: the queued decision raced a failure, or
                    // a partition cut the control path to either end. The
                    // job stays where it is; notify so a retrying scheduler
                    // can route the move through its retry path.
                    let reason = if target_down {
                        MigrationFailReason::TargetDown
                    } else {
                        MigrationFailReason::Unreachable
                    };
                    let attempt = j.attempts + 1;
                    self.stale_migrations += 1;
                    self.obs.inc("stale_migrations", 1);
                    self.migration_failures += 1;
                    self.obs.emit(TraceEvent::MigrationFailed {
                        t: self.now,
                        job,
                        from: src,
                        to,
                        reason,
                        attempt,
                    });
                    self.pending_fault_notices.push((job, to, reason));
                    return Ok(());
                }
                if j.info.gang > gpus {
                    return Err(GfairError::GangDoesNotFit {
                        job,
                        server: to,
                        gang: j.info.gang,
                        gpus,
                    });
                }
                if src == to {
                    // No-op move; ignore.
                    return Ok(());
                }
                // The attempt starts: draw its fate (if faults are active).
                // The draw is keyed on (seed, job, attempt), so it depends
                // only on the attempt itself, never on event interleaving.
                let attempt = j.attempts + 1;
                j.attempts = attempt;
                let mut cost = j.info.migration_cost;
                match self
                    .faults
                    .as_ref()
                    .and_then(|f| f.migration_fault(job, attempt))
                {
                    Some(MigrationFault::Checkpoint) => {
                        // The checkpoint write failed: the job never leaves
                        // its source and keeps running there.
                        self.migration_failures += 1;
                        self.obs.emit(TraceEvent::MigrationFailed {
                            t: self.now,
                            job,
                            from: src,
                            to,
                            reason: MigrationFailReason::Checkpoint,
                            attempt,
                        });
                        self.pending_fault_notices
                            .push((job, to, MigrationFailReason::Checkpoint));
                        return Ok(());
                    }
                    Some(MigrationFault::Restore) => {
                        // The transfer departs but is fated to fail at the
                        // restore stage; resolved in `on_migration_done`.
                        j.restore_fail = true;
                    }
                    Some(MigrationFault::Slowdown(factor)) => {
                        cost = cost.mul_f64(factor);
                    }
                    None => {}
                }
                j.migrating_from = Some(src);
                self.residents
                    .get_mut(&src)
                    .expect("source exists")
                    .remove(&job);
                self.index.sub_demand(src, j.info.gang);
                self.index.unassign(j.info.user, src, j.info.gang);
                self.index.assign(j.info.user, to, j.info.gang);
                j.info.state = JobState::Migrating;
                j.info.server = Some(to);
                j.migrations += 1;
                self.migrations += 1;
                self.migration_outage += cost;
                self.obs.emit(TraceEvent::Migration {
                    t: self.now,
                    job,
                    from: src,
                    to,
                    outage_secs: cost.as_secs_f64(),
                });
                self.queue
                    .push(self.now + cost, EventKind::MigrationDone(job));
                Ok(())
            }
        }
    }

    /// Reports undeliverable decisions back to the policy. The resulting
    /// actions join `pending_actions` and are applied with the next batch of
    /// queued actions, exactly like any other mid-round callback output.
    fn drain_fault_notices(&mut self, scheduler: &mut dyn ClusterScheduler) {
        while !self.pending_fault_notices.is_empty() {
            let notices = std::mem::take(&mut self.pending_fault_notices);
            for (job, to, reason) in notices {
                let actions = scheduler.on_migration_failed(&self.view(), job, to, reason);
                self.pending_actions.extend(actions);
            }
        }
    }

    fn on_round(
        &mut self,
        scheduler: &mut dyn ClusterScheduler,
        horizon: Option<SimTime>,
    ) -> Result<()> {
        self.rounds += 1;
        self.maybe_flush_window();

        // 1. Deliver profile reports accumulated since the last round.
        let reports = std::mem::take(&mut self.pending_reports);
        {
            for report in reports {
                self.profile_reports += 1;
                self.obs.inc("profile_reports", 1);
                let actions = scheduler.on_profile_report(&self.view(), &report);
                self.pending_actions.extend(actions);
            }
        }

        // 2. Apply actions queued by mid-round callbacks. Decisions that
        // turn out to be undeliverable (raced a server failure, targeted a
        // partitioned server) are soft-skipped by `apply_action` and
        // reported back to the policy below so they flow through its retry
        // path instead of vanishing.
        let queued = std::mem::take(&mut self.pending_actions);
        {
            for action in queued {
                self.apply_action(action, true)?;
            }
            self.drain_fault_notices(scheduler);
        }

        // 3. Ask the policy for this quantum's plan (self-profiled: the
        // whole call is one round-planning span).
        let obs = Arc::clone(&self.obs);
        let plan: RoundPlan = obs.time(Phase::RoundPlanning, || scheduler.plan_round(&self.view()));
        for action in &plan.actions {
            self.apply_action(*action, false)?;
        }
        self.drain_fault_notices(scheduler);

        // 4. Validate and execute the run sets. Each grant is emitted as a
        // GangPacked event so the auditor independently re-checks the same
        // invariants the inline validation enforces.
        //
        // Duplicate detection stamps each granted job with the round number
        // (`dup_stamp` defaults to 0, rounds start at 1), and per-user grant
        // totals accumulate into a user-indexed vec — both O(1) per gang
        // where a set insert / linear user probe would grow with the plan.
        let mut scheduled = 0u32;
        let mut gpus_used = 0u32;
        let mut grant_by_user: Vec<u32> = vec![0; self.users.len()];
        for (&server, run) in &plan.run {
            let srv = self
                .cluster
                .servers
                .get(server.index())
                .ok_or(GfairError::UnknownServer(server))?;
            if self.down.contains(&server) && !run.is_empty() {
                return Err(GfairError::ServerDown(server));
            }
            let mut requested = 0u32;
            for &job in run {
                let stamp = slot_u64(&mut self.dup_stamp, job.index());
                if *stamp == self.rounds {
                    return Err(GfairError::DuplicateJobInPlan(job));
                }
                *stamp = self.rounds;
                let j = self.jobs.get(job).ok_or(GfairError::UnknownJob(job))?;
                if j.info.state != JobState::Resident || j.info.server != Some(server) {
                    return Err(GfairError::JobNotResident { job, server });
                }
                requested += j.info.gang;
                let (user, gang) = (j.info.user, j.info.gang);
                let slot = user.index();
                if grant_by_user.len() <= slot {
                    grant_by_user.resize(slot + 1, 0);
                }
                grant_by_user[slot] += gang;
                self.obs.emit(TraceEvent::GangPacked {
                    t: self.now,
                    round: self.rounds,
                    server,
                    job,
                    user,
                    width: gang,
                    gang,
                });
                scheduled += 1;
            }
            if requested > srv.num_gpus {
                return Err(GfairError::ServerOvercommitted {
                    server,
                    requested,
                    gpus: srv.num_gpus,
                });
            }
            gpus_used += requested;
        }

        // Round summary: who got what, the queue depth, and the per-user
        // ticket/pass state backing the decision. The auditor checks ticket
        // conservation against the cluster's physical supply.
        let gpus_up = self.gpus_up;
        let pending = self
            .index
            .pending
            .iter()
            .filter(|&&id| !self.jobs[id].finishing)
            .count() as u32;
        let users = scheduler.user_shares(&self.view());
        let user_gpus = grant_by_user
            .into_iter()
            .enumerate()
            .filter(|&(_, gpus)| gpus > 0)
            .map(|(u, gpus)| gfair_obs::UserGrant {
                user: gfair_types::UserId::new(u as u32),
                gpus,
            })
            .collect();
        self.obs.emit(TraceEvent::RoundPlanned {
            t: self.now,
            round: self.rounds,
            scheduled,
            gpus_used,
            gpus_up,
            pending,
            tickets_total: self.cluster.total_gpus() as f64,
            users,
            user_gpus,
        });
        if let Some(v) = self.obs.take_fatal() {
            return Err(violation_to_error(v));
        }
        // 5. Accrue progress for this quantum.
        let quantum = self.config.quantum;
        let budget = match horizon {
            Some(h) => h.saturating_since(self.now).min(quantum),
            None => quantum,
        };
        if !budget.is_zero() {
            for (&server, run) in &plan.run {
                let gen = self.cluster.server(server).gen;
                for &job in run {
                    self.accrue(job, server, gen, budget);
                }
            }
        }

        // 6. Remember who ran, for next round's switch-overhead accounting.
        // Bumping the serial invalidates every previous stamp at once.
        self.warm_serial += 1;
        for job in plan.run.values().flat_map(|jobs| jobs.iter()) {
            *slot_u64(&mut self.warm_stamp, job.index()) = self.warm_serial;
        }

        // 6.5 Quiescence fast-forward: if nothing can change the next plan
        // for a provable horizon, replay this plan analytically instead of
        // re-planning quantum by quantum. Only exact when this round had a
        // full budget (a horizon-truncated quantum ends the run anyway).
        if budget == quantum {
            self.try_fast_forward(scheduler, &plan, horizon)?;
        }

        // 7. Keep the clock ticking while anything is alive. Not-yet-arrived
        // jobs don't count: their arrival events restart the clock.
        self.round_armed = false;
        if !self.index.active.is_empty() {
            self.arm_round(self.now + quantum);
        }
        Ok(())
    }

    /// Replays `plan` for as many upcoming quanta as provably nothing can
    /// perturb it, advancing time, stride state and all accounting in one
    /// step and emitting a single batched [`TraceEvent::RoundsSkipped`].
    ///
    /// The replayed span is byte-identical to stepping those rounds naively
    /// (asserted by the differential tests): the horizon is bounded so that
    ///
    /// - (a) every replayed round fires strictly before the next queued
    ///   event — at equal times every other event kind outranks `Round`;
    /// - (b) every replayed round stays strictly before the scheduler's own
    ///   next internal deadline ([`ClusterScheduler::next_decision_time`]);
    /// - (c)/(d) a profile-stint crossing or a job finish may land only in
    ///   the *last* replayed quantum: its report (delivered at the next
    ///   round) or exact-time `Finish` event then reaches the scheduler at
    ///   the same instant the naive path would deliver it;
    /// - (e) every replayed quantum has a full budget under `run_until`'s
    ///   horizon; and
    /// - (f) the round counter cannot overrun the round safety limit.
    ///
    /// Within those bounds the scheduler's probe performs the differential
    /// check that its stride scan order reproduces `plan` verbatim each
    /// replayed round, and its commit advances pass state bit-identically
    /// (`pass += delta` replayed the exact number of times). The engine
    /// replays progress accrual for real — same float sequence, same RNG
    /// draws, same `Finish` scheduling — so only the planning work and the
    /// per-round trace records are elided.
    fn try_fast_forward(
        &mut self,
        scheduler: &mut dyn ClusterScheduler,
        plan: &RoundPlan,
        horizon: Option<SimTime>,
    ) -> Result<()> {
        // Structural preconditions: anything queued for the scheduler or
        // carried by the plan makes the next round take a different path.
        if !plan.actions.is_empty()
            || !self.pending_actions.is_empty()
            || !self.pending_reports.is_empty()
            || !self.pending_fault_notices.is_empty()
            || self.index.active.is_empty()
        {
            return Ok(());
        }
        let quantum = self.config.quantum;
        let q_us = quantum.as_micros();
        let now_us = self.now.as_micros();
        // (a) Queue: largest j with T + j*q strictly before the next event.
        let mut k: u64 = match self.queue.peek() {
            Some(ev) => {
                let dt = ev.time.as_micros().saturating_sub(now_us);
                if dt == 0 {
                    return Ok(());
                }
                (dt - 1) / q_us
            }
            None => u64::MAX,
        };
        // (b) Scheduler-internal deadlines, same strict-inequality formula.
        if let Some(t) = scheduler.next_decision_time() {
            let dt = t.as_micros().saturating_sub(now_us);
            if dt == 0 {
                return Ok(());
            }
            k = k.min((dt - 1) / q_us);
        }
        // (e) Horizon: each replayed quantum needs a full budget.
        if let Some(h) = horizon {
            let dt = h.as_micros().saturating_sub(now_us);
            k = k.min((dt / q_us).saturating_sub(1));
        }
        // (f) Round safety limit.
        k = k.min(self.round_limit.saturating_sub(self.rounds));
        if k == 0 {
            return Ok(());
        }
        // The policy's differential check: would this exact plan be
        // reproduced for j <= k quanta?
        let mut j = scheduler.probe_fast_forward(&self.view(), plan, k).min(k);
        if j == 0 {
            return Ok(());
        }
        // (c)/(d) Per-job timers, computed only up to the probed j.
        let stint_len_us = self.config.profile_stint.as_micros();
        let q_secs = quantum.as_secs_f64();
        for (&server, run) in &plan.run {
            let gen = self.cluster.server(server).gen;
            for &job in run {
                let rec = &self.jobs[job];
                // (c) Quanta until the profile stint crosses its length
                // (each replayed quantum adds exactly one full quantum of
                // productive time; the jobs are warm, overhead is zero).
                let s0 = rec.stint.get(&gen).copied().unwrap_or(SimDuration::ZERO);
                let to_report = stint_len_us.saturating_sub(s0.as_micros());
                j = j.min(to_report.div_ceil(q_us));
                // (d) Quanta until the job finishes, mirroring `accrue`'s
                // exact float sequence for warm full-budget quanta.
                let rate = rec.true_rate(gen);
                let mut progress = rec.progress;
                for m in 1..=j {
                    let remaining_secs = (rec.spec.service_secs - progress) / rate;
                    let run_d = quantum.min(SimDuration::from_secs_f64(remaining_secs));
                    if run_d < quantum {
                        j = m;
                        break;
                    }
                    progress += q_secs * rate;
                    if rec.spec.service_secs - progress <= 1e-9 {
                        j = m;
                        break;
                    }
                }
                if j == 0 {
                    return Ok(());
                }
            }
        }
        // Commit: stride passes jump j quanta in one step, then the engine
        // replays accrual for real — per round: advance the clock, count the
        // round, flush report windows, accrue every planned job in plan
        // iteration order (identical float/RNG sequence to stepping).
        scheduler.commit_fast_forward(j);
        let first_round = self.rounds + 1;
        let span_t = self.now + quantum;
        for _ in 0..j {
            self.now += quantum;
            self.rounds += 1;
            self.maybe_flush_window();
            for (&server, run) in &plan.run {
                let gen = self.cluster.server(server).gen;
                for &job in run {
                    self.accrue(job, server, gen, quantum);
                }
            }
        }
        // One batched trace record stands in for the per-round GangPacked +
        // RoundPlanned stream; the metrics layer replays it into the same
        // counters and histograms, and the auditor treats the span as one
        // pre-validated unit.
        let mut gpus_used = 0u32;
        let mut scheduled = 0u32;
        let mut widths = Vec::with_capacity(plan.num_running());
        let mut per_user: std::collections::BTreeMap<gfair_types::UserId, u32> =
            std::collections::BTreeMap::new();
        for run in plan.run.values() {
            for &job in run {
                let gang = self.jobs[job].info.gang;
                widths.push(gang);
                gpus_used += gang;
                scheduled += 1;
                *per_user.entry(self.jobs[job].info.user).or_insert(0) += gang;
            }
        }
        // The same aggregation the ledger performs over the naive path's
        // per-round GangPacked events: total granted GPUs per user,
        // ascending by user.
        let user_gpus: Vec<gfair_obs::UserGrant> = per_user
            .into_iter()
            .map(|(user, gpus)| gfair_obs::UserGrant { user, gpus })
            .collect();
        let gpus_up = self.gpus_up;
        let pending = self
            .index
            .pending
            .iter()
            .filter(|&&id| !self.jobs[id].finishing)
            .count() as u32;
        self.obs.emit(TraceEvent::RoundsSkipped {
            t: span_t,
            first_round,
            rounds: j,
            scheduled,
            gpus_used,
            gpus_up,
            pending,
            tickets_total: self.cluster.total_gpus() as f64,
            widths,
            users: scheduler.user_shares(&self.view()),
            user_gpus,
        });
        if let Some(v) = self.obs.take_fatal() {
            return Err(violation_to_error(v));
        }
        Ok(())
    }

    /// Runs `job` on generation `gen` for up to `budget`, scheduling an
    /// exact-time finish if it completes, and updating all accounting.
    fn accrue(
        &mut self,
        job: JobId,
        server: ServerId,
        gen: gfair_types::GenId,
        budget: SimDuration,
    ) {
        let noise = self.config.profile_noise;
        let stint_len = self.config.profile_stint;
        let j = self.jobs.get_mut(job).expect("validated job exists");
        if j.first_run.is_none() {
            j.first_run = Some(self.now);
        }
        let rate = j.true_rate(gen);
        // A job resuming after a round off pays the suspend/resume switch
        // cost before training resumes (the GPU is occupied throughout).
        let warm = self.warm_stamp.get(job.index()) == Some(&self.warm_serial);
        let overhead = if warm {
            SimDuration::ZERO
        } else {
            self.config.switch_overhead
        };
        let remaining_secs = j.remaining() / rate;
        let run = budget.min(overhead + SimDuration::from_secs_f64(remaining_secs));
        if run.is_zero() {
            return;
        }
        let run_secs = run.as_secs_f64();
        let progress_secs = run.saturating_sub(overhead).as_secs_f64();
        if run < budget {
            // Completes mid-round.
            j.progress = j.spec.service_secs;
            j.finishing = true;
            self.queue.push(self.now + run, EventKind::Finish(job));
        } else {
            j.progress += progress_secs * rate;
            if j.remaining() <= 1e-9 {
                j.progress = j.spec.service_secs;
                j.finishing = true;
                self.queue.push(self.now + run, EventKind::Finish(job));
            }
        }
        let gang = j.info.gang as f64;
        let gpu_secs = gang * run_secs;
        let base_secs = gang * progress_secs * rate;
        let user = j.info.user;
        *j.gpu_secs_by_gen.entry(gen).or_insert(0.0) += gpu_secs;

        // Profiling stints (only productive time counts toward a stint).
        let stint = j.stint.entry(gen).or_insert(SimDuration::ZERO);
        *stint += run.saturating_sub(overhead);
        while *stint >= stint_len {
            *stint -= stint_len;
            let eps: f64 = if noise > 0.0 {
                self.rng.gen_range(-noise..noise)
            } else {
                0.0
            };
            self.pending_reports.push(ProfileReport {
                job,
                gen,
                rate: rate * (1.0 + eps),
            });
        }

        // Global and windowed accounting.
        let ui = user.index();
        bump(&mut self.acct_server_gpu_secs, server.index(), gpu_secs);
        self.gpu_secs_used += gpu_secs;
        bump(&mut self.acct_user_gpu_secs, ui, gpu_secs);
        bump(&mut self.acct_user_base_secs, ui, base_secs);
        bump(
            &mut self.acct_user_gen_gpu_secs,
            ui * self.num_gens + gen.index(),
            gpu_secs,
        );
        self.window.used_gpu_secs += gpu_secs;
        bump(&mut self.win_user_gpu_secs, ui, gpu_secs);
        bump(&mut self.win_user_base_secs, ui, base_secs);
    }

    /// Folds the dense per-user window accumulators into the live window's
    /// maps, zeroing them for the next window. A user belongs to the window
    /// iff they received raw GPU-seconds in it; their base-seconds entry
    /// rides along even at 0.0 (all-overhead quanta), exactly as the former
    /// per-accrual map inserts behaved.
    fn fold_window(&mut self) {
        for (i, gpu) in self.win_user_gpu_secs.iter_mut().enumerate() {
            if *gpu > 0.0 {
                let user = gfair_types::UserId::new(i as u32);
                self.window.user_gpu_secs.insert(user, *gpu);
                self.window
                    .user_base_secs
                    .insert(user, self.win_user_base_secs[i]);
                *gpu = 0.0;
                self.win_user_base_secs[i] = 0.0;
            }
        }
    }

    /// Closes the current reporting window if `now` has crossed a boundary.
    fn maybe_flush_window(&mut self) {
        let len = self.config.report_window;
        while self.now >= self.window.start + len {
            self.fold_window();
            let start = self.window.start;
            let mut done = std::mem::take(&mut self.window);
            done.capacity_gpu_secs = len.as_secs_f64() * self.cluster.total_gpus() as f64;
            self.timeseries.push(done);
            self.window.start = start + len;
        }
    }

    fn finalize(mut self, scheduler: &str) -> SimReport {
        // Close the trailing (possibly partial) window.
        if self.window.used_gpu_secs > 0.0 {
            self.fold_window();
            let span = self.now.saturating_since(self.window.start);
            let mut done = std::mem::take(&mut self.window);
            done.capacity_gpu_secs = span.as_secs_f64() * self.cluster.total_gpus() as f64;
            self.timeseries.push(done);
        }
        // Convert the dense run-wide accumulators back to the report's maps.
        // An id accrued in the run iff its raw GPU-seconds are positive;
        // base-seconds entries mirror the raw ones (see `fold_window`).
        let user_gpu_secs: BTreeMap<gfair_types::UserId, f64> = self
            .acct_user_gpu_secs
            .iter()
            .enumerate()
            .filter(|(_, v)| **v > 0.0)
            .map(|(i, v)| (gfair_types::UserId::new(i as u32), *v))
            .collect();
        let user_base_secs: BTreeMap<gfair_types::UserId, f64> = user_gpu_secs
            .keys()
            .map(|&u| (u, self.acct_user_base_secs[u.index()]))
            .collect();
        let user_gen_gpu_secs: BTreeMap<(gfair_types::UserId, gfair_types::GenId), f64> = self
            .acct_user_gen_gpu_secs
            .iter()
            .enumerate()
            .filter(|(_, v)| **v > 0.0)
            .map(|(i, v)| {
                let user = gfair_types::UserId::new((i / self.num_gens) as u32);
                let gen = gfair_types::GenId::new((i % self.num_gens) as u32);
                ((user, gen), *v)
            })
            .collect();
        let server_gpu_secs: BTreeMap<ServerId, f64> = self
            .acct_server_gpu_secs
            .iter()
            .enumerate()
            .filter(|(_, v)| **v > 0.0)
            .map(|(i, v)| (ServerId::new(i as u32), *v))
            .collect();
        let jobs = self
            .jobs
            .into_iter()
            .map(|(id, j)| {
                (
                    id,
                    JobRecord {
                        id,
                        user: j.spec.user,
                        model: j.spec.model.name.clone(),
                        gang: j.spec.gang,
                        service_secs: j.spec.service_secs,
                        arrival: j.spec.arrival,
                        first_run: j.first_run,
                        finish: j.finish,
                        gpu_secs_by_gen: j.gpu_secs_by_gen,
                        migrations: j.migrations,
                    },
                )
            })
            .collect();
        let report = SimReport {
            scheduler: scheduler.to_string(),
            end: self.now,
            rounds: self.rounds,
            jobs,
            user_gpu_secs,
            user_base_secs,
            user_gen_gpu_secs,
            server_gpu_secs,
            timeseries: self.timeseries,
            migrations: self.migrations,
            migration_outage: self.migration_outage,
            gpu_secs_used: self.gpu_secs_used,
            gpu_secs_capacity: self.now.as_secs_f64() * self.cluster.total_gpus() as f64,
            profile_reports: self.profile_reports,
            stale_migrations: self.stale_migrations,
            migration_failures: self.migration_failures,
            obs: Some(self.obs.summary()),
        };
        self.obs.flush();
        report
    }
}

/// Adds `d` at index `i`, growing the accumulator as new ids appear.
#[inline]
fn bump(v: &mut Vec<f64>, i: usize, d: f64) {
    if v.len() <= i {
        v.resize(i + 1, 0.0);
    }
    v[i] += d;
}

/// Grows `v` so index `i` exists, then hands out the slot.
#[inline]
fn slot_u64(v: &mut Vec<u64>, i: usize) -> &mut u64 {
    if v.len() <= i {
        v.resize(i + 1, 0);
    }
    &mut v[i]
}

/// Maps an auditor violation onto the workspace error type. Violations that
/// mirror an inline engine check reuse its variant; novel checks (partial
/// gangs, ticket conservation) surface as [`GfairError::InvariantViolation`]
/// carrying the auditor's full report, offending-round trace included.
fn violation_to_error(v: Violation) -> GfairError {
    match v.kind {
        ViolationKind::Overcommit {
            server,
            requested,
            gpus,
        } => GfairError::ServerOvercommitted {
            server,
            requested,
            gpus,
        },
        ViolationKind::NotResident { job, server } => GfairError::JobNotResident { job, server },
        ViolationKind::DuplicateJob { job } => GfairError::DuplicateJobInPlan(job),
        ViolationKind::UnknownJob { job } => GfairError::UnknownJob(job),
        ViolationKind::PackedOnDownServer { server } => GfairError::ServerDown(server),
        ViolationKind::PartialGang { .. }
        | ViolationKind::TicketConservation { .. }
        | ViolationKind::MigrationLifecycle { .. }
        | ViolationKind::HealConservation { .. } => GfairError::InvariantViolation(v.to_string()),
    }
}
