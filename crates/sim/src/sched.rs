//! The scheduler interface: how policies plug into the simulator.
//!
//! A cluster scheduler is driven by engine callbacks. Mid-round callbacks
//! (arrival, finish, migration-done, profile report) return [`Action`]s that
//! the engine *queues* and applies at the next round boundary, so all state
//! changes happen at quantum edges — matching the paper's round-based
//! suspend/resume design and keeping accounting exact. The per-quantum
//! [`RoundPlan`] may also carry actions; those apply immediately, before the
//! plan's run sets are validated.

use crate::view::SimView;
use gfair_types::{GenId, JobId, JobState, MigrationFailReason, ServerId, SimTime};
use std::collections::BTreeMap;

/// A placement or migration decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Place a pending job on a server (it becomes resident immediately and
    /// can run from the next round plan onward).
    Place {
        /// Job to place.
        job: JobId,
        /// Destination server.
        server: ServerId,
    },
    /// Migrate a resident job to another server. The job is suspended for
    /// its checkpoint+restore cost and becomes resident on the destination
    /// when the migration completes.
    Migrate {
        /// Job to move.
        job: JobId,
        /// Destination server.
        to: ServerId,
    },
}

/// One quantum's scheduling decision.
#[derive(Debug, Clone, Default)]
pub struct RoundPlan {
    /// Jobs to run this quantum, per server. Jobs listed must be resident on
    /// that server and schedulable; gang sizes must fit within the server's
    /// GPUs. Servers may be omitted (nothing runs there).
    pub run: BTreeMap<ServerId, Vec<JobId>>,
    /// Placements/migrations to apply at this round boundary, before the run
    /// sets are validated. A job placed here may appear in `run`.
    pub actions: Vec<Action>,
}

impl RoundPlan {
    /// An empty plan (nothing runs anywhere).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Adds a job to a server's run set (builder-style convenience).
    pub fn run_on(&mut self, server: ServerId, job: JobId) {
        self.run.entry(server).or_default().push(job);
    }

    /// Total number of jobs scheduled across all servers.
    pub fn num_running(&self) -> usize {
        self.run.values().map(|v| v.len()).sum()
    }
}

/// A noisy observation of a job's training rate on one GPU generation.
///
/// Emitted by the engine after the job accumulates
/// [`gfair_types::SimConfig::profile_stint`] of runtime on that generation
/// (and again after each further stint, so estimators can average).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProfileReport {
    /// The profiled job.
    pub job: JobId,
    /// Generation the job was observed on.
    pub gen: GenId,
    /// Observed training rate in minibatches/sec-equivalents. Only *ratios*
    /// between generations are meaningful to a scheduler.
    pub rate: f64,
}

/// A scheduling policy driven by the simulator.
///
/// All callbacks receive a read-only [`SimView`] of cluster state. The
/// default implementations of the optional callbacks do nothing.
pub trait ClusterScheduler {
    /// Human-readable policy name, used in reports.
    fn name(&self) -> &'static str;

    /// Called when a job is submitted. Returned actions are queued and
    /// applied at the next round boundary.
    fn on_job_arrival(&mut self, view: &SimView<'_>, job: JobId) -> Vec<Action>;

    /// Called when a job completes. Returned actions are queued.
    fn on_job_finish(&mut self, _view: &SimView<'_>, _job: JobId) -> Vec<Action> {
        Vec::new()
    }

    /// Called when a migration completes and the job is resident on its
    /// destination. Returned actions are queued.
    fn on_migration_done(&mut self, _view: &SimView<'_>, _job: JobId) -> Vec<Action> {
        Vec::new()
    }

    /// Called for each job evicted by a server failure (the job is back in
    /// the `Pending` state with its training progress intact — DLT jobs
    /// restart from their last checkpoint). The default treats eviction
    /// like a fresh arrival, so every scheduler re-places evicted jobs.
    fn on_job_evicted(&mut self, view: &SimView<'_>, job: JobId) -> Vec<Action> {
        self.on_job_arrival(view, job)
    }

    /// Called when a migration attempt (or a placement decision that could
    /// not be delivered) fails. `to` is the intended destination and
    /// `reason` says which stage broke; the job's current state tells the
    /// scheduler where it ended up — still resident at its source
    /// (checkpoint failure, unreachable target) or back in the pending
    /// queue (restore failure, destination down).
    ///
    /// The default re-dispatches jobs that landed back in the queue through
    /// [`on_job_evicted`](Self::on_job_evicted) and leaves still-resident
    /// jobs alone, so baselines without a retry policy never lose a job.
    fn on_migration_failed(
        &mut self,
        view: &SimView<'_>,
        job: JobId,
        _to: ServerId,
        _reason: MigrationFailReason,
    ) -> Vec<Action> {
        if view.job(job).map(|j| j.state) == Some(JobState::Pending) {
            self.on_job_evicted(view, job)
        } else {
            Vec::new()
        }
    }

    /// Called when the central scheduler loses contact with `server`'s
    /// local scheduler. The server keeps running its last-received state;
    /// decisions targeting it will be dropped until it heals.
    fn on_partition(&mut self, _view: &SimView<'_>, _server: ServerId) -> Vec<Action> {
        Vec::new()
    }

    /// Called when connectivity to a partitioned server is restored and the
    /// scheduler should reconcile any state that went stale.
    fn on_partition_heal(&mut self, _view: &SimView<'_>, _server: ServerId) -> Vec<Action> {
        Vec::new()
    }

    /// Called after a server fails (its jobs have already been evicted and
    /// re-dispatched through [`on_job_evicted`](Self::on_job_evicted)).
    fn on_server_down(&mut self, _view: &SimView<'_>, _server: ServerId) -> Vec<Action> {
        Vec::new()
    }

    /// Called when a failed server comes back online.
    fn on_server_up(&mut self, _view: &SimView<'_>, _server: ServerId) -> Vec<Action> {
        Vec::new()
    }

    /// Called when the profiler observes a job's rate on a generation.
    /// Returned actions are queued.
    fn on_profile_report(&mut self, _view: &SimView<'_>, _report: &ProfileReport) -> Vec<Action> {
        Vec::new()
    }

    /// Called once per quantum: decide which resident jobs run this round.
    fn plan_round(&mut self, view: &SimView<'_>) -> RoundPlan;

    /// Earliest future time at which this scheduler would decide something
    /// differently even with unchanged inputs (a trade epoch, a balance
    /// epoch, a retry-backoff expiry). The engine uses this to bound how far
    /// it may fast-forward through quiescent rounds; `None` means the policy
    /// has no internal timers.
    fn next_decision_time(&self) -> Option<SimTime> {
        None
    }

    /// Asks whether the last [`plan_round`](Self::plan_round) result (`plan`)
    /// would be reproduced verbatim for the next `k` quanta, assuming no
    /// external events. Returns the number of quanta `j <= k` the plan can be
    /// replayed for; `0` declines fast-forwarding. Must not mutate state —
    /// the engine follows up with
    /// [`commit_fast_forward`](Self::commit_fast_forward) only when it
    /// actually skips. The default declines, so policies opt in explicitly.
    fn probe_fast_forward(&mut self, _view: &SimView<'_>, _plan: &RoundPlan, _k: u64) -> u64 {
        0
    }

    /// Advances internal stride state by `j` quanta in one step, exactly as
    /// if [`plan_round`](Self::plan_round) had been called `j` times with
    /// unchanged inputs. Only called with `j` no larger than the value the
    /// immediately preceding [`probe_fast_forward`](Self::probe_fast_forward)
    /// returned.
    fn commit_fast_forward(&mut self, _j: u64) {}

    /// Per-user tickets and stride passes backing the plan just produced,
    /// reported for tracing and audit (the auditor checks that tickets sum
    /// to the cluster's GPU supply). Policies without a per-user ticket
    /// economy return an empty list, which disables the check.
    fn user_shares(&self, _view: &SimView<'_>) -> Vec<gfair_obs::UserShare> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_plan_builder() {
        let mut p = RoundPlan::empty();
        assert_eq!(p.num_running(), 0);
        p.run_on(ServerId::new(0), JobId::new(1));
        p.run_on(ServerId::new(0), JobId::new(2));
        p.run_on(ServerId::new(3), JobId::new(7));
        assert_eq!(p.num_running(), 3);
        assert_eq!(p.run[&ServerId::new(0)], vec![JobId::new(1), JobId::new(2)]);
    }

    #[test]
    fn actions_are_comparable() {
        let a = Action::Place {
            job: JobId::new(1),
            server: ServerId::new(2),
        };
        let b = Action::Place {
            job: JobId::new(1),
            server: ServerId::new(2),
        };
        assert_eq!(a, b);
        assert_ne!(
            a,
            Action::Migrate {
                job: JobId::new(1),
                to: ServerId::new(2)
            }
        );
    }
}
