//! Read-only cluster view handed to schedulers.
//!
//! [`SimView`] exposes everything a real cluster scheduler could know —
//! topology, job metadata, residency, states — and nothing it couldn't
//! (ground-truth rates, exact remaining work).

use crate::index::ClusterIndex;
use crate::job::{JobInfo, JobTable};
use gfair_types::{
    ClusterSpec, GenId, JobId, ServerId, ServerSpec, SimConfig, SimTime, UserId, UserSpec,
};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Read-only snapshot of simulation state at a callback.
///
/// Job- and residency-centric queries answer from the engine's materialized
/// cluster index in O(answer) — they never scan finished jobs or the full
/// job table.
pub struct SimView<'a> {
    pub(crate) now: SimTime,
    pub(crate) cluster: &'a ClusterSpec,
    pub(crate) users: &'a [UserSpec],
    pub(crate) jobs: &'a JobTable,
    pub(crate) residents: &'a BTreeMap<ServerId, BTreeSet<JobId>>,
    pub(crate) index: &'a ClusterIndex,
    pub(crate) down: &'a BTreeSet<ServerId>,
    pub(crate) partitioned: &'a BTreeSet<ServerId>,
    pub(crate) config: &'a SimConfig,
    /// Servers that are down or partitioned (|down ∪ partitioned|),
    /// maintained by the engine so `reachable_count` is O(1).
    pub(crate) unreachable: u32,
    /// Total GPUs on online servers, maintained by the engine.
    pub(crate) gpus_up: u32,
}

impl<'a> SimView<'a> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Cluster topology.
    pub fn cluster(&self) -> &'a ClusterSpec {
        self.cluster
    }

    /// All users, in id order.
    pub fn users(&self) -> &'a [UserSpec] {
        self.users
    }

    /// Simulation configuration (quantum, intervals, ...).
    pub fn config(&self) -> &'a SimConfig {
        self.config
    }

    /// True if `server` is currently online.
    pub fn is_up(&self, server: ServerId) -> bool {
        !self.down.contains(&server)
    }

    /// Online servers, in id order.
    pub fn up_servers(&self) -> impl Iterator<Item = &'a ServerSpec> + '_ {
        self.cluster
            .servers
            .iter()
            .filter(move |s| !self.down.contains(&s.id))
    }

    /// Online servers of one generation, in id order.
    pub fn up_servers_of_gen(
        &self,
        gen: gfair_types::GenId,
    ) -> impl Iterator<Item = &'a ServerSpec> + '_ {
        self.up_servers().filter(move |s| s.gen == gen)
    }

    /// True if `server` is online *and* the central scheduler can reach its
    /// local scheduler (no active network partition).
    ///
    /// A partitioned server keeps running — its resident jobs make progress
    /// on its last-received stride state — but placements and migrations
    /// targeting it cannot be delivered, so schedulers should treat only
    /// reachable servers as decision targets.
    pub fn is_reachable(&self, server: ServerId) -> bool {
        !self.down.contains(&server) && !self.partitioned.contains(&server)
    }

    /// Online, reachable servers, in id order.
    pub fn reachable_servers(&self) -> impl Iterator<Item = &'a ServerSpec> + '_ {
        self.cluster
            .servers
            .iter()
            .filter(move |s| !self.down.contains(&s.id) && !self.partitioned.contains(&s.id))
    }

    /// Online, reachable servers of one generation, in id order.
    pub fn reachable_servers_of_gen(
        &self,
        gen: gfair_types::GenId,
    ) -> impl Iterator<Item = &'a ServerSpec> + '_ {
        self.reachable_servers().filter(move |s| s.gen == gen)
    }

    /// Metadata for a job, if known.
    pub fn job(&self, id: JobId) -> Option<&'a JobInfo> {
        self.jobs.get(id).map(|j| &j.info)
    }

    /// All jobs submitted so far, in id order.
    ///
    /// Jobs whose arrival event has not fired yet are invisible — a real
    /// scheduler cannot see tomorrow's submissions.
    pub fn jobs(&self) -> impl Iterator<Item = &'a JobInfo> + '_ {
        let jobs = self.jobs;
        self.index.arrived.iter().map(move |&id| &jobs[id].info)
    }

    /// Jobs that have arrived and are not finished, in id order.
    pub fn active_jobs(&self) -> impl Iterator<Item = &'a JobInfo> + '_ {
        let jobs = self.jobs;
        self.index.active.iter().map(move |&id| &jobs[id].info)
    }

    /// Arrived jobs awaiting placement, in id order.
    pub fn pending_jobs(&self) -> impl Iterator<Item = &'a JobInfo> + '_ {
        let jobs = self.jobs;
        self.index.pending.iter().map(move |&id| &jobs[id].info)
    }

    /// Ids of jobs resident on `server`, in id order.
    pub fn resident(&self, server: ServerId) -> impl Iterator<Item = JobId> + '_ {
        self.residents
            .get(&server)
            .into_iter()
            .flat_map(|s| s.iter().copied())
    }

    /// Number of GPUs demanded by jobs resident on `server` (sum of gangs).
    pub fn resident_demand(&self, server: ServerId) -> u32 {
        self.index.demand.get(server.index()).copied().unwrap_or(0)
    }

    /// Residency change counter for `server`: bumped on every change to the
    /// server's resident set. Two equal values bracket a span with no
    /// residency change, so a scheduler that cached state derived from the
    /// residency (local membership, say) can skip re-deriving it.
    pub fn residency_version(&self, server: ServerId) -> u64 {
        self.index
            .res_version
            .get(server.index())
            .copied()
            .unwrap_or(0)
    }

    /// Demand-to-capacity ratio of `server` (the paper's load signal for
    /// migration-based balancing).
    pub fn server_load(&self, server: ServerId) -> f64 {
        let gpus = self.cluster.server(server).num_gpus;
        self.resident_demand(server) as f64 / gpus as f64
    }

    /// Users that currently have at least one active job, in id order.
    pub fn active_users(&self) -> Vec<UserId> {
        self.index.by_user.keys().copied().collect()
    }

    /// Active jobs belonging to `user`, in id order.
    pub fn jobs_of_user(&self, user: UserId) -> impl Iterator<Item = &'a JobInfo> + '_ {
        let jobs = self.jobs;
        self.index
            .by_user
            .get(&user)
            .into_iter()
            .flat_map(move |set| set.iter().map(move |&id| &jobs[id].info))
    }

    /// Number of online, reachable servers, in O(1) (maintained by the
    /// engine across failure/recovery/partition events).
    pub fn reachable_count(&self) -> u32 {
        self.cluster.servers.len() as u32 - self.unreachable
    }

    /// Total GPUs on online servers, in O(1).
    pub fn gpus_up(&self) -> u32 {
        self.gpus_up
    }

    /// Total GPUs demanded by `user`'s active jobs (sum of gang widths).
    pub fn user_gpu_demand(&self, user: UserId) -> u64 {
        self.index.user_demand.get(&user).copied().unwrap_or(0)
    }

    /// Per-user total GPU demand over active jobs, in user-id order. Users
    /// with no active job are absent.
    pub fn user_demands(&self) -> impl Iterator<Item = (UserId, u64)> + 'a {
        self.index.user_demand.iter().map(|(&u, &d)| (u, d))
    }

    /// Per-(user, model) GPU demand over active jobs, in (user-id, model)
    /// order. Zero entries are absent.
    pub fn user_model_demands(&self) -> impl Iterator<Item = (UserId, &'a Arc<str>, u64)> + 'a {
        self.index
            .user_model_gang
            .iter()
            .map(|((u, m), &d)| (*u, m, d))
    }

    /// GPUs of `user`'s placed jobs (jobs with a server assigned, including
    /// in-flight migrations toward their destination) on generation `gen`.
    pub fn user_gen_assigned(&self, user: UserId, gen: GenId) -> u64 {
        self.index
            .user_gen_assigned
            .get(&(user, gen))
            .copied()
            .unwrap_or(0)
    }

    /// GPUs of `user`'s placed jobs on `server`.
    pub fn user_server_assigned(&self, user: UserId, server: ServerId) -> u64 {
        self.index
            .user_server_assigned
            .get(&(user, server))
            .copied()
            .unwrap_or(0)
    }

    /// All `(server, gpus)` pairs where `user` has placed jobs, in ascending
    /// server order. Sparse companion to
    /// [`user_server_assigned`](Self::user_server_assigned): a user touches
    /// only a handful of servers, so scans over this beat scans over the
    /// cluster.
    pub fn user_server_assignments(
        &self,
        user: UserId,
    ) -> impl Iterator<Item = (ServerId, u64)> + 'a {
        self.index
            .user_server_assigned
            .range((user, ServerId::new(0))..=(user, ServerId::new(u32::MAX)))
            .map(|(&(_, s), &d)| (s, d))
    }

    /// Models with at least one active job and those jobs' ids, in model
    /// order.
    pub fn active_models(&self) -> impl Iterator<Item = (&'a Arc<str>, &'a BTreeSet<JobId>)> + 'a {
        self.index.model_active.iter()
    }

    /// Servers of `gen` in ascending (resident load, id) order — the order a
    /// least-loaded scan with `f64::total_cmp` ties broken by lowest id
    /// would visit them. Reverse for a most-loaded-first scan.
    pub fn servers_by_load(&self, gen: GenId) -> impl DoubleEndedIterator<Item = ServerId> + 'a {
        self.index
            .gen_load
            .get(gen.index())
            .into_iter()
            .flat_map(|set| set.iter().map(|&(_, s)| s))
    }

    /// Monotone counter of residency changes across the whole cluster; pair
    /// with [`residency_dirty_since`](Self::residency_dirty_since) to learn
    /// which servers changed between two cursor values.
    pub fn residency_dirty_seq(&self) -> u64 {
        self.index.dirty_seq
    }

    /// Servers whose residency changed since `cursor` (a previously observed
    /// [`residency_dirty_seq`](Self::residency_dirty_seq) value), possibly
    /// with duplicates, in change order. Returns `None` when the bounded
    /// change ring has lapped the cursor — the caller must fall back to a
    /// full pass.
    pub fn residency_dirty_since(
        &self,
        cursor: u64,
    ) -> Option<impl Iterator<Item = ServerId> + 'a> {
        let seq = self.index.dirty_seq;
        let cap = self.index.dirty_ring.len() as u64;
        if seq.saturating_sub(cursor) > cap {
            return None;
        }
        let ring = &self.index.dirty_ring;
        Some((cursor..seq).map(move |i| ring[(i % cap) as usize]))
    }

    /// Re-derives every materialized index from the raw job/residency tables
    /// and compares, returning a description of the first divergence.
    ///
    /// This is the oracle for the differential property tests; it is not
    /// part of the scheduler-facing API.
    #[doc(hidden)]
    pub fn audit_indexes(&self) -> Result<(), String> {
        self.index.verify(self.now, self.jobs, self.residents)
    }
}
