//! Read-only cluster view handed to schedulers.
//!
//! [`SimView`] exposes everything a real cluster scheduler could know —
//! topology, job metadata, residency, states — and nothing it couldn't
//! (ground-truth rates, exact remaining work).

use crate::index::ClusterIndex;
use crate::job::{JobInfo, JobTable};
use gfair_types::{ClusterSpec, JobId, ServerId, ServerSpec, SimConfig, SimTime, UserId, UserSpec};
use std::collections::{BTreeMap, BTreeSet};

/// Read-only snapshot of simulation state at a callback.
///
/// Job- and residency-centric queries answer from the engine's materialized
/// cluster index in O(answer) — they never scan finished jobs or the full
/// job table.
pub struct SimView<'a> {
    pub(crate) now: SimTime,
    pub(crate) cluster: &'a ClusterSpec,
    pub(crate) users: &'a [UserSpec],
    pub(crate) jobs: &'a JobTable,
    pub(crate) residents: &'a BTreeMap<ServerId, BTreeSet<JobId>>,
    pub(crate) index: &'a ClusterIndex,
    pub(crate) down: &'a BTreeSet<ServerId>,
    pub(crate) partitioned: &'a BTreeSet<ServerId>,
    pub(crate) config: &'a SimConfig,
}

impl<'a> SimView<'a> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Cluster topology.
    pub fn cluster(&self) -> &'a ClusterSpec {
        self.cluster
    }

    /// All users, in id order.
    pub fn users(&self) -> &'a [UserSpec] {
        self.users
    }

    /// Simulation configuration (quantum, intervals, ...).
    pub fn config(&self) -> &'a SimConfig {
        self.config
    }

    /// True if `server` is currently online.
    pub fn is_up(&self, server: ServerId) -> bool {
        !self.down.contains(&server)
    }

    /// Online servers, in id order.
    pub fn up_servers(&self) -> impl Iterator<Item = &'a ServerSpec> + '_ {
        self.cluster
            .servers
            .iter()
            .filter(move |s| !self.down.contains(&s.id))
    }

    /// Online servers of one generation, in id order.
    pub fn up_servers_of_gen(
        &self,
        gen: gfair_types::GenId,
    ) -> impl Iterator<Item = &'a ServerSpec> + '_ {
        self.up_servers().filter(move |s| s.gen == gen)
    }

    /// True if `server` is online *and* the central scheduler can reach its
    /// local scheduler (no active network partition).
    ///
    /// A partitioned server keeps running — its resident jobs make progress
    /// on its last-received stride state — but placements and migrations
    /// targeting it cannot be delivered, so schedulers should treat only
    /// reachable servers as decision targets.
    pub fn is_reachable(&self, server: ServerId) -> bool {
        !self.down.contains(&server) && !self.partitioned.contains(&server)
    }

    /// Online, reachable servers, in id order.
    pub fn reachable_servers(&self) -> impl Iterator<Item = &'a ServerSpec> + '_ {
        self.cluster
            .servers
            .iter()
            .filter(move |s| !self.down.contains(&s.id) && !self.partitioned.contains(&s.id))
    }

    /// Online, reachable servers of one generation, in id order.
    pub fn reachable_servers_of_gen(
        &self,
        gen: gfair_types::GenId,
    ) -> impl Iterator<Item = &'a ServerSpec> + '_ {
        self.reachable_servers().filter(move |s| s.gen == gen)
    }

    /// Metadata for a job, if known.
    pub fn job(&self, id: JobId) -> Option<&'a JobInfo> {
        self.jobs.get(id).map(|j| &j.info)
    }

    /// All jobs submitted so far, in id order.
    ///
    /// Jobs whose arrival event has not fired yet are invisible — a real
    /// scheduler cannot see tomorrow's submissions.
    pub fn jobs(&self) -> impl Iterator<Item = &'a JobInfo> + '_ {
        let jobs = self.jobs;
        self.index.arrived.iter().map(move |&id| &jobs[id].info)
    }

    /// Jobs that have arrived and are not finished, in id order.
    pub fn active_jobs(&self) -> impl Iterator<Item = &'a JobInfo> + '_ {
        let jobs = self.jobs;
        self.index.active.iter().map(move |&id| &jobs[id].info)
    }

    /// Arrived jobs awaiting placement, in id order.
    pub fn pending_jobs(&self) -> impl Iterator<Item = &'a JobInfo> + '_ {
        let jobs = self.jobs;
        self.index.pending.iter().map(move |&id| &jobs[id].info)
    }

    /// Ids of jobs resident on `server`, in id order.
    pub fn resident(&self, server: ServerId) -> impl Iterator<Item = JobId> + '_ {
        self.residents
            .get(&server)
            .into_iter()
            .flat_map(|s| s.iter().copied())
    }

    /// Number of GPUs demanded by jobs resident on `server` (sum of gangs).
    pub fn resident_demand(&self, server: ServerId) -> u32 {
        self.index.demand.get(server.index()).copied().unwrap_or(0)
    }

    /// Residency change counter for `server`: bumped on every change to the
    /// server's resident set. Two equal values bracket a span with no
    /// residency change, so a scheduler that cached state derived from the
    /// residency (local membership, say) can skip re-deriving it.
    pub fn residency_version(&self, server: ServerId) -> u64 {
        self.index
            .res_version
            .get(server.index())
            .copied()
            .unwrap_or(0)
    }

    /// Demand-to-capacity ratio of `server` (the paper's load signal for
    /// migration-based balancing).
    pub fn server_load(&self, server: ServerId) -> f64 {
        let gpus = self.cluster.server(server).num_gpus;
        self.resident_demand(server) as f64 / gpus as f64
    }

    /// Users that currently have at least one active job, in id order.
    pub fn active_users(&self) -> Vec<UserId> {
        self.index.by_user.keys().copied().collect()
    }

    /// Active jobs belonging to `user`, in id order.
    pub fn jobs_of_user(&self, user: UserId) -> impl Iterator<Item = &'a JobInfo> + '_ {
        let jobs = self.jobs;
        self.index
            .by_user
            .get(&user)
            .into_iter()
            .flat_map(move |set| set.iter().map(move |&id| &jobs[id].info))
    }

    /// Re-derives every materialized index from the raw job/residency tables
    /// and compares, returning a description of the first divergence.
    ///
    /// This is the oracle for the differential property tests; it is not
    /// part of the scheduler-facing API.
    #[doc(hidden)]
    pub fn audit_indexes(&self) -> Result<(), String> {
        self.index.verify(self.now, self.jobs, self.residents)
    }
}
